//! Sidecar indexes: frame-offset directories (v1) and per-frame posting
//! lists (v2) for random-access replay *and* replay-free queries.
//!
//! A trace file is a sequence of self-contained frames (both delta streams
//! reset at every frame boundary), so any frame is a valid decode entry
//! point — but finding the frame that holds record *k* normally means
//! decoding every frame before it. A [`TraceIndex`] is the missing
//! directory: one `(byte offset, records)` entry per frame, built as the
//! stream is written ([`TraceWriter::with_index`](crate::TraceWriter::with_index))
//! or rebuilt afterwards by [`TraceIndex::scan`] in one pass that reads
//! only frame *headers*, skipping every payload, and saved as a compact
//! sidecar file.
//!
//! Version 2 sidecars additionally carry one
//! [`FramePostings`](crate::postings::FramePostings) section per frame:
//! compressed bitmap posting lists keyed by pc bucket, opcode class,
//! address page and violation site (see [`crate::postings`]), which is
//! what lets the trace lake answer "which records touched page X"
//! without decoding any frame payload. Postings are built inline by the
//! indexing writer or rebuilt offline by [`TraceIndex::scan_records`]
//! (which *does* decode payloads — it must see the columns); both
//! construction paths serialize byte-identically. Version 1 sidecars
//! (directory only) still load, and an index without postings still
//! saves as v1, so pre-lake sidecars and their producers keep working.
//!
//! With an index, [`replay_window`](crate::capture::replay_window) seeks a
//! [`TraceReader`](crate::TraceReader) straight to the first frame of a
//! record-range window and decodes only the frames the window touches —
//! the prefix is never decoded.

use crate::codec::{checksum, Codec, TraceError, FRAME_HEADER_BYTES, FRAME_HEADER_BYTES_V2, MAGIC};
use crate::postings::FramePostings;
use igm_lba::TraceBatch;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// The four magic bytes opening every index sidecar.
pub const INDEX_MAGIC: [u8; 4] = *b"IGMX";

/// Directory-only index format version.
pub const INDEX_VERSION: u32 = 1;

/// Directory + per-frame posting lists format version.
pub const INDEX_VERSION_V2: u32 = 2;

/// One frame's directory entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// Byte offset of the frame header in the trace stream (the 8-byte
    /// file header included, so the offset seeks directly).
    pub offset: u64,
    /// Records decoded by every frame before this one.
    pub first_record: u64,
    /// Records in this frame.
    pub records: u32,
}

/// A frame-offset directory — and, when built from record content, a
/// per-frame posting index — over one trace stream.
///
/// # Example
///
/// ```
/// use igm_trace::{encode_to_vec, TraceIndex};
/// use igm_workload::Benchmark;
///
/// let bytes = encode_to_vec(Benchmark::Gzip.trace(5_000), 2048);
/// let index = TraceIndex::scan(&bytes[..]).unwrap();
/// assert_eq!(index.total_records(), 5_000);
/// // The frame holding record 3_000, located without decoding anything.
/// let entry = index.frame_for_record(3_000).unwrap();
/// assert!(entry.first_record <= 3_000);
/// assert!(3_000 < entry.first_record + entry.records as u64);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceIndex {
    entries: Vec<IndexEntry>,
    /// Either empty (directory-only index) or exactly one section per
    /// entry (posting index).
    postings: Vec<FramePostings>,
    total_records: u64,
}

impl TraceIndex {
    /// An empty index.
    pub fn new() -> TraceIndex {
        TraceIndex::default()
    }

    /// Appends one frame's directory entry (header-only construction:
    /// the scan path and v1 sidecar loads).
    pub(crate) fn push_frame(&mut self, offset: u64, records: u32) {
        debug_assert!(self.postings.is_empty(), "cannot mix directory-only and posting frames");
        self.entries.push(IndexEntry { offset, first_record: self.total_records, records });
        self.total_records += records as u64;
    }

    /// Appends one frame's directory entry *and* its posting lists,
    /// extracted from the batch the frame encodes (the indexing writer
    /// and the decoding scan both land here, which is what makes their
    /// sidecars byte-identical).
    pub(crate) fn push_frame_batch(&mut self, offset: u64, batch: &TraceBatch) {
        debug_assert_eq!(self.postings.len(), self.entries.len(), "posting/frame misalignment");
        self.entries.push(IndexEntry {
            offset,
            first_record: self.total_records,
            records: batch.len() as u32,
        });
        self.postings.push(FramePostings::from_batch(batch));
        self.total_records += batch.len() as u64;
    }

    /// The per-frame directory, in stream order.
    pub fn entries(&self) -> &[IndexEntry] {
        &self.entries
    }

    /// Whether this index carries per-frame posting lists (v2 content).
    pub fn has_postings(&self) -> bool {
        !self.postings.is_empty()
    }

    /// The per-frame posting sections, aligned with [`TraceIndex::entries`];
    /// empty for a directory-only index.
    pub fn frame_postings(&self) -> &[FramePostings] {
        &self.postings
    }

    /// Frames indexed.
    pub fn frames(&self) -> usize {
        self.entries.len()
    }

    /// Records across all indexed frames.
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// Total encoded posting bytes (directory excluded) — the numerator
    /// of the index-overhead bytes-per-record metric.
    pub fn posting_bytes(&self) -> u64 {
        self.postings.iter().map(|p| p.encoded_len() as u64).sum()
    }

    /// The entry of the frame containing record number `record` (0-based
    /// over the whole trace), or `None` past the end.
    pub fn frame_for_record(&self, record: u64) -> Option<&IndexEntry> {
        if record >= self.total_records {
            return None;
        }
        let i = self.entries.partition_point(|e| e.first_record + e.records as u64 <= record);
        self.entries.get(i)
    }

    /// The position of the frame containing record number `record`, for
    /// pairing an entry with its posting section.
    pub fn frame_pos_for_record(&self, record: u64) -> Option<usize> {
        if record >= self.total_records {
            return None;
        }
        Some(self.entries.partition_point(|e| e.first_record + e.records as u64 <= record))
    }

    /// Builds the directory from a finished trace stream in one scan that
    /// reads frame *headers* only — every payload is skipped, not decoded
    /// (payload integrity is still the reader's job at replay time). The
    /// result carries no postings; see [`TraceIndex::scan_records`] for
    /// the full posting index.
    pub fn scan<R: Read>(mut r: R) -> Result<TraceIndex, TraceError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic).map_err(|e| match e.kind() {
            io::ErrorKind::UnexpectedEof => TraceError::BadMagic,
            _ => TraceError::Io(e),
        })?;
        if magic != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let mut ver = [0u8; 4];
        r.read_exact(&mut ver).map_err(TraceError::Io)?;
        let version = u32::from_le_bytes(ver);
        if version != crate::codec::FORMAT_VERSION_V1 && version != crate::FORMAT_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let hlen = if version == crate::codec::FORMAT_VERSION_V1 {
            FRAME_HEADER_BYTES
        } else {
            FRAME_HEADER_BYTES_V2
        };
        let mut index = TraceIndex::new();
        let mut offset = 8u64;
        let mut header = [0u8; FRAME_HEADER_BYTES_V2];
        loop {
            match read_exact_or_eof(&mut r, &mut header[..hlen])? {
                0 => return Ok(index),
                n if n < hlen => {
                    return Err(TraceError::Corrupt {
                        offset: offset + n as u64,
                        reason: "stream ends inside a frame header",
                    })
                }
                _ => {}
            }
            let records = u32::from_le_bytes(header[0..4].try_into().unwrap());
            let len = u32::from_le_bytes(header[4..8].try_into().unwrap());
            let codec = if version == crate::codec::FORMAT_VERSION_V1 {
                Codec::Delta
            } else {
                match Codec::from_wire(u32::from_le_bytes(header[12..16].try_into().unwrap())) {
                    Some(c) => c,
                    None => {
                        return Err(TraceError::Corrupt {
                            offset,
                            reason: "unknown codec id in frame header",
                        })
                    }
                }
            };
            crate::codec::validate_frame_header(records, len, offset, codec)?;
            // Skip the payload without materializing it.
            let skipped = io::copy(&mut r.by_ref().take(len as u64), &mut io::sink())
                .map_err(TraceError::Io)?;
            if skipped < len as u64 {
                return Err(TraceError::Corrupt {
                    offset: offset + hlen as u64 + skipped,
                    reason: "stream ends inside a frame payload",
                });
            }
            index.push_frame(offset, records);
            offset += hlen as u64 + len as u64;
        }
    }

    /// Scans the trace file at `path` (directory only).
    pub fn scan_file(path: impl AsRef<Path>) -> Result<TraceIndex, TraceError> {
        TraceIndex::scan(BufReader::new(File::open(path).map_err(TraceError::Io)?))
    }

    /// Builds the *full* posting index from a finished trace stream by
    /// decoding every frame's columns — the offline twin of
    /// [`TraceWriter::with_index`](crate::TraceWriter::with_index):
    /// both run the same per-batch extraction, so the two indexes
    /// serialize byte-identically. Payload checksums are verified as a
    /// side effect of decoding.
    pub fn scan_records<R: Read>(r: R) -> Result<TraceIndex, TraceError> {
        let mut reader = crate::codec::TraceReader::new(r)?;
        let mut index = TraceIndex::new();
        let mut batch = TraceBatch::new();
        loop {
            let offset = reader.offset();
            if !reader.read_chunk_into_batch(&mut batch)? {
                return Ok(index);
            }
            index.push_frame_batch(offset, &batch);
        }
    }

    /// Scans (decoding payloads) the trace file at `path`.
    pub fn scan_records_file(path: impl AsRef<Path>) -> Result<TraceIndex, TraceError> {
        TraceIndex::scan_records(BufReader::new(File::open(path).map_err(TraceError::Io)?))
    }

    /// Serializes the index. Directory-only indexes write version 1:
    /// `IGMX`, version, frame count, one `(offset u64, records u32)` LE
    /// pair per frame, an FNV-1a-32 checksum over the entry bytes.
    /// Posting indexes write version 2: the same directory, then a
    /// `u64` posting-section length and each frame's encoded
    /// [`FramePostings`], with the trailing checksum covering entry and
    /// posting bytes both.
    pub fn save<W: Write>(&self, mut w: W) -> io::Result<()> {
        let version = if self.has_postings() { INDEX_VERSION_V2 } else { INDEX_VERSION };
        w.write_all(&INDEX_MAGIC)?;
        w.write_all(&version.to_le_bytes())?;
        w.write_all(&(self.entries.len() as u64).to_le_bytes())?;
        let mut body = Vec::with_capacity(self.entries.len() * 12);
        for e in &self.entries {
            body.extend_from_slice(&e.offset.to_le_bytes());
            body.extend_from_slice(&e.records.to_le_bytes());
        }
        if self.has_postings() {
            let mut sections = Vec::new();
            for p in &self.postings {
                p.encode(&mut sections);
            }
            body.extend_from_slice(&(sections.len() as u64).to_le_bytes());
            body.extend_from_slice(&sections);
        }
        w.write_all(&body)?;
        w.write_all(&checksum(&body).to_le_bytes())?;
        w.flush()
    }

    /// Writes the sidecar file at `path`.
    pub fn save_file(&self, path: impl AsRef<Path>) -> io::Result<()> {
        self.save(BufWriter::new(File::create(path)?))
    }

    /// Deserializes an index written by [`TraceIndex::save`] (either
    /// version).
    pub fn load<R: Read>(mut r: R) -> Result<TraceIndex, TraceError> {
        let corrupt = |reason| TraceError::Corrupt { offset: 0, reason };
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic).map_err(|e| match e.kind() {
            io::ErrorKind::UnexpectedEof => corrupt("index sidecar truncated"),
            _ => TraceError::Io(e),
        })?;
        if magic != INDEX_MAGIC {
            return Err(corrupt("not an igm trace index (bad magic)"));
        }
        let mut word = [0u8; 4];
        r.read_exact(&mut word).map_err(TraceError::Io)?;
        let version = u32::from_le_bytes(word);
        if version != INDEX_VERSION && version != INDEX_VERSION_V2 {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let mut count = [0u8; 8];
        r.read_exact(&mut count).map_err(TraceError::Io)?;
        let count = u64::from_le_bytes(count);
        // 12 bytes per entry: a corrupt count cannot drive an allocation
        // larger than what the stream actually holds.
        let entry_bytes = count.saturating_mul(12);
        let mut body = Vec::new();
        r.by_ref().take(entry_bytes).read_to_end(&mut body).map_err(TraceError::Io)?;
        if body.len() as u64 != entry_bytes {
            return Err(corrupt("index sidecar truncated"));
        }
        let mut sections = Vec::new();
        if version == INDEX_VERSION_V2 {
            let mut len = [0u8; 8];
            r.read_exact(&mut len).map_err(|e| match e.kind() {
                io::ErrorKind::UnexpectedEof => corrupt("index sidecar truncated"),
                _ => TraceError::Io(e),
            })?;
            let plen = u64::from_le_bytes(len);
            r.by_ref().take(plen).read_to_end(&mut sections).map_err(TraceError::Io)?;
            if sections.len() as u64 != plen {
                return Err(corrupt("index sidecar truncated"));
            }
            body.extend_from_slice(&len);
            body.extend_from_slice(&sections);
        }
        r.read_exact(&mut word).map_err(|e| match e.kind() {
            io::ErrorKind::UnexpectedEof => corrupt("index sidecar truncated"),
            _ => TraceError::Io(e),
        })?;
        if checksum(&body) != u32::from_le_bytes(word) {
            return Err(corrupt("index sidecar checksum mismatch"));
        }
        let mut index = TraceIndex::new();
        let mut pos = 0usize;
        for chunk in body[..entry_bytes as usize].chunks_exact(12) {
            let offset = u64::from_le_bytes(chunk[0..8].try_into().unwrap());
            let records = u32::from_le_bytes(chunk[8..12].try_into().unwrap());
            if records == 0 {
                return Err(corrupt("index entry with zero records"));
            }
            if version == INDEX_VERSION_V2 {
                let fp = FramePostings::decode(&sections, &mut pos, records)
                    .map_err(|reason| TraceError::Corrupt { offset: pos as u64, reason })?;
                index.entries.push(IndexEntry {
                    offset,
                    first_record: index.total_records,
                    records,
                });
                index.postings.push(fp);
                index.total_records += records as u64;
            } else {
                index.push_frame(offset, records);
            }
        }
        if version == INDEX_VERSION_V2 && pos != sections.len() {
            return Err(corrupt("trailing bytes after last posting section"));
        }
        Ok(index)
    }

    /// Reads the sidecar file at `path`.
    pub fn load_file(path: impl AsRef<Path>) -> Result<TraceIndex, TraceError> {
        TraceIndex::load(BufReader::new(File::open(path).map_err(TraceError::Io)?))
    }
}

/// Like `read_exact`, but distinguishes clean EOF (0) and short reads.
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, TraceError> {
    crate::codec::read_exact_or_eof(r, buf).map_err(TraceError::Io)
}
