//! The Metadata-TLB and the `LMA` (Load Metadata Address) instruction
//! (paper §6).
//!
//! A software-managed, user-space TLB that translates *application* virtual
//! addresses to *lifeguard-space metadata* virtual addresses. Three
//! instructions drive it (Figure 8):
//!
//! * `lma_config $imm, $miss` — loads the layout (level-1/level-2 bits,
//!   element size) and the miss-handler address, flushing the TLB
//!   ([`MetadataTlb::lma_config`]);
//! * `lma %rs, %rt` — translates an application address in one cycle on a
//!   hit; on a miss the software miss handler runs and the instruction
//!   re-executes ([`MetadataTlb::lma`]);
//! * `lma_fill %ra, %rb` — inserts a (level-1 index → level-2 chunk start)
//!   mapping ([`MetadataTlb::lma_fill`]).
//!
//! Entries associate a level-1 index with the chunk's start address in
//! lifeguard space; the in-chunk offset is computed combinationally from the
//! configured layout (Figure 9), which is the same arithmetic as
//! [`ShadowLayout`] — the property tests pin hardware and software walks
//! together.

use igm_shadow::ShadowLayout;
use std::fmt;

/// Faults raised by [`MetadataTlb::lma`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LmaFault {
    /// `lma` executed before `lma_config`.
    NotConfigured,
    /// No entry matches the address's level-1 index; software must walk the
    /// level-1 table and `lma_fill`.
    Miss {
        /// The faulting application address (pushed on the stack for the
        /// miss handler in the hardware design).
        app_addr: u32,
    },
}

impl fmt::Display for LmaFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LmaFault::NotConfigured => write!(f, "lma executed before lma_config"),
            LmaFault::Miss { app_addr } => write!(f, "M-TLB miss for {app_addr:#010x}"),
        }
    }
}

impl std::error::Error for LmaFault {}

/// M-TLB statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MtlbStats {
    /// `lma` executions (misses that re-execute count once).
    pub lookups: u64,
    /// Successful one-cycle translations.
    pub hits: u64,
    /// Miss-handler invocations.
    pub misses: u64,
    /// `lma_fill` executions.
    pub fills: u64,
    /// `lma_config` executions (each flushes the TLB).
    pub config_flushes: u64,
}

impl MtlbStats {
    /// Miss rate over all lookups.
    pub fn miss_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.misses as f64 / self.lookups as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    l1_index: u32,
    chunk_start: u32,
    last_used: u64,
}

/// The Metadata-TLB hardware: a fully associative, LRU-replaced CAM of
/// (level-1 index → chunk start) pairs.
///
/// # Example
///
/// ```
/// use igm_core::{MetadataTlb, LmaFault};
/// use igm_shadow::ShadowLayout;
///
/// let mut tlb = MetadataTlb::new(64);
/// tlb.lma_config(ShadowLayout::taintcheck_fig7());
/// // Cold miss: the handler walks the level-1 table and fills.
/// assert_eq!(tlb.lma(0xb3fb_703a), Err(LmaFault::Miss { app_addr: 0xb3fb_703a }));
/// tlb.lma_fill(0xb3fb_703a, 0x0804_6000);
/// // Re-execution hits and computes the Figure 9 example result.
/// assert_eq!(tlb.lma(0xb3fb_703a), Ok(0x0804_7c0e));
/// ```
#[derive(Debug, Clone)]
pub struct MetadataTlb {
    capacity: usize,
    layout: Option<ShadowLayout>,
    entries: Vec<TlbEntry>,
    tick: u64,
    stats: MtlbStats,
}

impl MetadataTlb {
    /// Creates a TLB with space for `capacity` mappings.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> MetadataTlb {
        assert!(capacity > 0, "M-TLB capacity must be positive");
        MetadataTlb {
            capacity,
            layout: None,
            entries: Vec::with_capacity(capacity),
            tick: 0,
            stats: MtlbStats::default(),
        }
    }

    /// Number of mapping slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured layout, if any.
    pub fn layout(&self) -> Option<&ShadowLayout> {
        self.layout.as_ref()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MtlbStats {
        &self.stats
    }

    /// Loads a metadata layout and flushes all entries (`lma_config`).
    /// Runtime reconfiguration is a deliberate flexibility point of the
    /// design (§6.3, first design choice).
    pub fn lma_config(&mut self, layout: ShadowLayout) {
        self.layout = Some(layout);
        self.entries.clear();
        self.stats.config_flushes += 1;
    }

    /// Inserts the mapping for `app_addr`'s level-1 region (`lma_fill`),
    /// evicting the LRU entry when full.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Self::lma_config`] (the hardware would
    /// fault; a lifeguard never does this).
    pub fn lma_fill(&mut self, app_addr: u32, chunk_start: u32) {
        let layout = self.layout.expect("lma_fill before lma_config");
        let l1 = layout.l1_index(app_addr);
        self.tick += 1;
        self.stats.fills += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.l1_index == l1) {
            e.chunk_start = chunk_start;
            e.last_used = self.tick;
            return;
        }
        let entry = TlbEntry { l1_index: l1, chunk_start, last_used: self.tick };
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
        } else {
            let victim = self.entries.iter_mut().min_by_key(|e| e.last_used).expect("capacity > 0");
            *victim = entry;
        }
    }

    /// Translates an application address to its metadata element address
    /// (`lma`).
    ///
    /// # Errors
    ///
    /// [`LmaFault::Miss`] when no entry covers the address (the caller runs
    /// the miss handler, fills, and re-executes); [`LmaFault::NotConfigured`]
    /// before `lma_config`.
    pub fn lma(&mut self, app_addr: u32) -> Result<u32, LmaFault> {
        let layout = self.layout.ok_or(LmaFault::NotConfigured)?;
        self.tick += 1;
        self.stats.lookups += 1;
        let l1 = layout.l1_index(app_addr);
        match self.entries.iter_mut().find(|e| e.l1_index == l1) {
            Some(e) => {
                e.last_used = self.tick;
                self.stats.hits += 1;
                Ok(e.chunk_start.wrapping_add(layout.elem_offset_in_chunk(app_addr)))
            }
            None => {
                self.stats.misses += 1;
                Err(LmaFault::Miss { app_addr })
            }
        }
    }

    /// Translates, running `miss_handler` to obtain the chunk start on a
    /// miss (the software walk), filling, and re-executing — the full
    /// hardware/software protocol in one call. Returns the metadata address
    /// and whether a miss occurred.
    pub fn lma_or_fill(
        &mut self,
        app_addr: u32,
        miss_handler: impl FnOnce() -> u32,
    ) -> (u32, bool) {
        match self.lma(app_addr) {
            Ok(va) => (va, false),
            Err(LmaFault::NotConfigured) => panic!("lma_or_fill before lma_config"),
            Err(LmaFault::Miss { .. }) => {
                let chunk = miss_handler();
                self.lma_fill(app_addr, chunk);
                let va = self.lma(app_addr).expect("hit after fill");
                // The re-executed lma's hit is an artifact of the protocol,
                // not a second logical lookup.
                self.stats.lookups -= 1;
                self.stats.hits -= 1;
                (va, true)
            }
        }
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igm_shadow::layout::ElemSize;
    use igm_shadow::TwoLevelShadow;

    fn fig7() -> ShadowLayout {
        ShadowLayout::taintcheck_fig7()
    }

    #[test]
    fn unconfigured_tlb_faults() {
        let mut tlb = MetadataTlb::new(16);
        assert_eq!(tlb.lma(0x1234), Err(LmaFault::NotConfigured));
    }

    #[test]
    fn fig9_worked_example_hit_path() {
        let mut tlb = MetadataTlb::new(16);
        tlb.lma_config(fig7());
        tlb.lma_fill(0xb3fb_703a, 0x0804_6000);
        assert_eq!(tlb.lma(0xb3fb_703a), Ok(0x0804_7c0e));
        // Same level-1 region, different offset.
        assert_eq!(tlb.lma(0xb3fb_0000), Ok(0x0804_6000));
        assert_eq!(tlb.stats().hits, 2);
    }

    #[test]
    fn miss_fill_reexecute_protocol() {
        let mut tlb = MetadataTlb::new(16);
        tlb.lma_config(fig7());
        let mut shadow = TwoLevelShadow::new(fig7(), 0);
        let addr = 0xb3fb_703a;
        let (va, missed) = tlb.lma_or_fill(addr, || shadow.chunk_base_va(addr));
        assert!(missed);
        assert_eq!(va, shadow.elem_va(addr));
        // Second translation hits and agrees with the software walk.
        let (va2, missed2) = tlb.lma_or_fill(addr, || unreachable!("must hit"));
        assert!(!missed2);
        assert_eq!(va2, va);
        assert_eq!(tlb.stats().misses, 1);
        assert_eq!(tlb.stats().lookups, 2);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut tlb = MetadataTlb::new(2);
        tlb.lma_config(fig7());
        // Three distinct level-1 regions (64 KB apart under 16 level-1 bits).
        tlb.lma_fill(0x0001_0000, 0x100);
        tlb.lma_fill(0x0002_0000, 0x200);
        // Touch region 1 so region 2 is LRU.
        assert!(tlb.lma(0x0001_0000).is_ok());
        tlb.lma_fill(0x0003_0000, 0x300);
        assert!(tlb.lma(0x0001_0000).is_ok());
        assert_eq!(tlb.lma(0x0002_0000), Err(LmaFault::Miss { app_addr: 0x0002_0000 }));
        assert!(tlb.lma(0x0003_0000).is_ok());
        assert_eq!(tlb.occupancy(), 2);
    }

    #[test]
    fn refill_same_region_updates_in_place() {
        let mut tlb = MetadataTlb::new(4);
        tlb.lma_config(fig7());
        tlb.lma_fill(0x0001_0000, 0x100);
        tlb.lma_fill(0x0001_0004, 0x900); // same region, new chunk address
        assert_eq!(tlb.occupancy(), 1);
        assert_eq!(tlb.lma(0x0001_0000), Ok(0x900));
    }

    #[test]
    fn config_flushes_entries() {
        let mut tlb = MetadataTlb::new(4);
        tlb.lma_config(fig7());
        tlb.lma_fill(0x0001_0000, 0x100);
        assert_eq!(tlb.occupancy(), 1);
        // Reconfigure for LockSet-style 4-byte elements.
        tlb.lma_config(ShadowLayout::for_coverage(16, 4, ElemSize::B4).unwrap());
        assert_eq!(tlb.occupancy(), 0);
        assert_eq!(tlb.stats().config_flushes, 2);
    }

    #[test]
    fn translation_matches_software_walk_for_many_layouts() {
        // The hardware translation must equal the software two-level walk
        // for every layout and address we throw at it.
        let layouts = [
            fig7(),
            ShadowLayout::for_coverage(12, 4, ElemSize::B4).unwrap(),
            ShadowLayout::for_coverage(20, 8, ElemSize::B1).unwrap(),
            ShadowLayout::for_coverage(10, 4, ElemSize::B8).unwrap(),
        ];
        let addrs = [0u32, 0x0804_8123, 0x4000_0000, 0xbfff_fffc, 0xffff_ffff];
        for layout in layouts {
            let mut tlb = MetadataTlb::new(8);
            tlb.lma_config(layout);
            let mut shadow = TwoLevelShadow::new(layout, 0);
            for &a in &addrs {
                let (va, _) = tlb.lma_or_fill(a, || shadow.chunk_base_va(a));
                assert_eq!(va, shadow.elem_va(a), "layout {layout:?} addr {a:#x}");
            }
        }
    }

    #[test]
    fn miss_rate_statistic() {
        let mut tlb = MetadataTlb::new(4);
        tlb.lma_config(fig7());
        let _ = tlb.lma(0x0001_0000);
        tlb.lma_fill(0x0001_0000, 0);
        let _ = tlb.lma(0x0001_0000);
        assert!((tlb.stats().miss_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = MetadataTlb::new(0);
    }
}
