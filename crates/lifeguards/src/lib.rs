//! The five instruction-grain lifeguards of the paper (Table 1).
//!
//! | Lifeguard | Detects | Metadata | IT | IF | M-TLB |
//! |---|---|---|---|---|---|
//! | [`AddrCheck`] | accesses to unallocated memory, double/invalid frees, leaks | 1 accessible bit / byte | – | ✓ | ✓ |
//! | [`MemCheck`] | AddrCheck + uses of uninitialized values | +1 initialized bit / byte, per-register state | ✓ | ✓ | ✓ |
//! | [`TaintCheck`] | overwrite-based security exploits | 2 taint bits / byte, per-register state | ✓ | – | ✓ |
//! | [`TaintCheckDetailed`] | same + taint-propagation trail | 8-byte (from, eip) record / word | ✓ | – | ✓ |
//! | [`LockSet`] | data races (Eraser algorithm) | 32-bit state+lockset record / word | – | ✓ | ✓ |
//!
//! Each lifeguard is an ordinary software program running on the lifeguard
//! core: its handlers do *real* metadata work against `igm-shadow` maps (so
//! planted bugs are actually detected) while reporting per-event dynamic
//! instruction counts and metadata memory references through a
//! [`CostSink`], which is what the timing model consumes. Handler costs are
//! calibrated against the paper's Figure 7 listing (8 instructions for the
//! two-level TaintCheck handler, 4 with `LMA`).

pub mod addrcheck;
pub mod cost;
pub mod lockset;
pub mod memcheck;
pub mod taint;
pub mod taint_detailed;
pub mod violation;

pub use addrcheck::AddrCheck;
pub use cost::{CostSink, MISS_HANDLER_INSTRS, NLBA_INSTRS, SOFTWARE_MAP_INSTRS};
pub use lockset::LockSet;
pub use memcheck::MemCheck;
pub use taint::TaintCheck;
pub use taint_detailed::TaintCheckDetailed;
pub use violation::Violation;

use igm_core::{AccelConfig, ItConfig};
use igm_lba::{DeliveredEvent, Etct};
use std::fmt;

/// Which lifeguard (the paper's five).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LifeguardKind {
    AddrCheck,
    MemCheck,
    TaintCheck,
    TaintCheckDetailed,
    LockSet,
}

/// Which accelerators apply to a lifeguard (the paper's Figure 2 matrix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccelSupport {
    /// Inheritance Tracking applies.
    pub it: bool,
    /// Idempotent Filters apply.
    pub idempotent_filter: bool,
    /// The Metadata-TLB applies (true for every studied lifeguard).
    pub lma: bool,
}

impl LifeguardKind {
    /// All five lifeguards in the paper's presentation order.
    pub const ALL: [LifeguardKind; 5] = [
        LifeguardKind::AddrCheck,
        LifeguardKind::MemCheck,
        LifeguardKind::TaintCheck,
        LifeguardKind::TaintCheckDetailed,
        LifeguardKind::LockSet,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            LifeguardKind::AddrCheck => "AddrCheck",
            LifeguardKind::MemCheck => "MemCheck",
            LifeguardKind::TaintCheck => "TaintCheck",
            LifeguardKind::TaintCheckDetailed => "TaintCheck w/ detailed tracking",
            LifeguardKind::LockSet => "LockSet",
        }
    }

    /// The Figure 2 applicability row.
    pub fn accel_support(self) -> AccelSupport {
        match self {
            LifeguardKind::AddrCheck => {
                AccelSupport { it: false, idempotent_filter: true, lma: true }
            }
            LifeguardKind::MemCheck => {
                AccelSupport { it: true, idempotent_filter: true, lma: true }
            }
            LifeguardKind::TaintCheck | LifeguardKind::TaintCheckDetailed => {
                AccelSupport { it: true, idempotent_filter: false, lma: true }
            }
            LifeguardKind::LockSet => {
                AccelSupport { it: false, idempotent_filter: true, lma: true }
            }
        }
    }

    /// The IT policy this lifeguard requires when IT is enabled.
    pub fn it_config(self) -> Option<ItConfig> {
        match self {
            LifeguardKind::MemCheck => Some(ItConfig::memcheck_style()),
            LifeguardKind::TaintCheck | LifeguardKind::TaintCheckDetailed => {
                Some(ItConfig::taint_style())
            }
            _ => None,
        }
    }

    /// Masks a requested configuration by this lifeguard's Figure 2 row and
    /// substitutes the lifeguard's own IT policy.
    pub fn mask_config(self, requested: &AccelConfig) -> AccelConfig {
        let support = self.accel_support();
        AccelConfig {
            lma: requested.lma && support.lma,
            mtlb_entries: requested.mtlb_entries,
            it: if requested.it.is_some() && support.it { self.it_config() } else { None },
            if_geometry: if support.idempotent_filter { requested.if_geometry } else { None },
        }
    }

    /// Builds the lifeguard under a (pre-masked) configuration.
    ///
    /// The box is `Send`: the streaming runtime (`igm-runtime`) moves built
    /// lifeguards onto its worker threads. Hot paths should prefer
    /// [`LifeguardKind::build_any`], which avoids the virtual call per
    /// delivered event.
    pub fn build(self, cfg: &AccelConfig) -> Box<dyn Lifeguard + Send> {
        let cfg = self.mask_config(cfg);
        match self {
            LifeguardKind::AddrCheck => Box::new(AddrCheck::new(&cfg)),
            LifeguardKind::MemCheck => Box::new(MemCheck::new(&cfg)),
            LifeguardKind::TaintCheck => Box::new(TaintCheck::new(&cfg)),
            LifeguardKind::TaintCheckDetailed => Box::new(TaintCheckDetailed::new(&cfg)),
            LifeguardKind::LockSet => Box::new(LockSet::new(&cfg)),
        }
    }

    /// Builds the lifeguard under a (pre-masked) configuration as a
    /// statically-dispatched [`AnyLifeguard`] — the runtime's hot-path
    /// representation: one discriminant branch per *batch* instead of a
    /// virtual call per *event*.
    pub fn build_any(self, cfg: &AccelConfig) -> AnyLifeguard {
        let cfg = self.mask_config(cfg);
        match self {
            LifeguardKind::AddrCheck => AnyLifeguard::AddrCheck(AddrCheck::new(&cfg)),
            LifeguardKind::MemCheck => AnyLifeguard::MemCheck(MemCheck::new(&cfg)),
            LifeguardKind::TaintCheck => AnyLifeguard::TaintCheck(TaintCheck::new(&cfg)),
            LifeguardKind::TaintCheckDetailed => {
                AnyLifeguard::TaintCheckDetailed(TaintCheckDetailed::new(&cfg))
            }
            LifeguardKind::LockSet => AnyLifeguard::LockSet(LockSet::new(&cfg)),
        }
    }

    /// Which events the epoch-parallel *spine* may elide (the runtime's
    /// analogue of the Figure 2 applicability matrix, refined to per-event
    /// granularity). The spine's job is to reproduce the exact shadow-state
    /// evolution at epoch boundaries; any event whose handler is
    /// metadata-pure can be skipped there, because the parallel epoch job
    /// replays the *full* event stream against the boundary snapshot and is
    /// the authoritative source of violations.
    ///
    /// * AddrCheck / TaintCheck (± detailed) — access and use checks only
    ///   read the shadow map and report; the spine elides them all.
    /// * MemCheck — accessibility checks (`MemRead`/`MemWrite`) are pure,
    ///   but `Check` handlers *write* metadata to suppress report cascades
    ///   (register mask and `I_BIT` stores), so those must run on the spine.
    /// * LockSet — nearly every access refines the word's state machine or
    ///   candidate lockset; nothing can be elided.
    ///
    /// Spine-side violations on elided-capable runs are discarded — the
    /// epoch jobs re-derive the complete, ordered violation sequence.
    pub fn spine_elides(self, ev: &igm_lba::Event) -> bool {
        match self {
            LifeguardKind::AddrCheck
            | LifeguardKind::TaintCheck
            | LifeguardKind::TaintCheckDetailed => matches!(
                ev,
                igm_lba::Event::Check { .. }
                    | igm_lba::Event::MemRead(_)
                    | igm_lba::Event::MemWrite(_)
            ),
            LifeguardKind::MemCheck => {
                matches!(ev, igm_lba::Event::MemRead(_) | igm_lba::Event::MemWrite(_))
            }
            LifeguardKind::LockSet => false,
        }
    }

    /// Whether [`LifeguardKind::spine_elides`] elides *anything* for this
    /// lifeguard. The pool's automatic pipelining only engages when it
    /// does — a lifeguard whose spine must run the full stream (LockSet)
    /// gains nothing from shipping replay jobs on top of it.
    pub fn spine_elides_any(self) -> bool {
        !matches!(self, LifeguardKind::LockSet)
    }
}

impl fmt::Display for LifeguardKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An instruction-grain lifeguard: event handlers over metadata.
pub trait Lifeguard {
    /// Which lifeguard this is.
    fn kind(&self) -> LifeguardKind;

    /// The event registrations and Idempotent Filter configuration this
    /// lifeguard loads into the ETCT.
    fn etct(&self) -> Etct;

    /// Handles one delivered event, accumulating handler cost into `cost`.
    /// The `nlba` dispatch instruction is charged by the caller.
    fn handle(&mut self, ev: &DeliveredEvent, cost: &mut CostSink);

    /// Handles a whole batch of delivered events. Cost accumulates across
    /// the batch into `cost` (the caller clears it at batch grain); batch
    /// consumers that need per-event costs must fall back to
    /// [`Lifeguard::handle`].
    ///
    /// The default loops [`Lifeguard::handle`]; because default methods are
    /// instantiated per implementing type, the inner calls are static even
    /// through a `Box<dyn Lifeguard>` — one virtual call per batch instead
    /// of one per event.
    fn handle_batch(&mut self, evs: &[DeliveredEvent], cost: &mut CostSink) {
        for ev in evs {
            self.handle(ev, cost);
        }
    }

    /// Violations reported so far.
    fn violations(&self) -> &[Violation];

    /// Drains the reported violations.
    fn take_violations(&mut self) -> Vec<Violation>;

    /// Marks a loader-established region (globals, stack, mmap) as valid
    /// program state before monitoring starts.
    fn premark_region(&mut self, base: u32, len: u32);

    /// Switches the lifeguard into synthetic-workload mode (statistical
    /// traces rather than real programs). Only MemCheck reacts: it treats
    /// `malloc` as `calloc`, because generated reads are not data-dependent
    /// on generated writes (see `igm-workload` docs). Default: no-op.
    fn set_synthetic_workload_mode(&mut self, enabled: bool) {
        let _ = enabled;
    }

    /// Current metadata footprint in bytes (shadow chunks + auxiliary
    /// structures), for the space studies.
    fn metadata_bytes(&self) -> u64;

    /// Snapshots the lifeguard's full state (shadow memory, register
    /// metadata, allocation records) into an independent shard, or `None`
    /// when the lifeguard is not shardable. Used by the epoch-parallel
    /// runtime: each epoch worker checks against a snapshot of the shadow
    /// state at its epoch boundary. Default: not shardable.
    fn try_snapshot(&self) -> Option<Box<dyn Lifeguard + Send>> {
        None
    }
}

/// Shadow/state shard construction for epoch-parallel monitoring: any
/// `Clone + Send` lifeguard is shardable, its snapshot being an ordinary
/// clone of the shadow structures. Concrete lifeguards implement
/// [`Lifeguard::try_snapshot`] through this helper.
pub trait ShardableLifeguard: Lifeguard + Clone + Send + Sized + 'static {
    /// Clones the lifeguard state into an independent boxed shard.
    fn snapshot_shard(&self) -> Box<dyn Lifeguard + Send> {
        Box::new(self.clone())
    }
}

impl<T: Lifeguard + Clone + Send + Sized + 'static> ShardableLifeguard for T {}

/// A statically-dispatched sum of the five lifeguards.
///
/// The streaming runtime's workers hold their session's lifeguard as an
/// `AnyLifeguard` rather than a `Box<dyn Lifeguard>`: [`handle_batch`]
/// resolves the variant once per batch and then loops the concrete handler
/// directly, so the per-event path is a predictable direct call instead of
/// a vtable load per event. All five variants are `Clone`, which is also
/// what makes the enum snapshottable for epoch-parallel checking.
///
/// [`handle_batch`]: Lifeguard::handle_batch
#[derive(Debug, Clone)]
pub enum AnyLifeguard {
    AddrCheck(AddrCheck),
    MemCheck(MemCheck),
    TaintCheck(TaintCheck),
    TaintCheckDetailed(TaintCheckDetailed),
    LockSet(LockSet),
}

/// Delegates an expression to the concrete variant.
macro_rules! with_each_lifeguard {
    ($self:expr, $lg:ident => $e:expr) => {
        match $self {
            AnyLifeguard::AddrCheck($lg) => $e,
            AnyLifeguard::MemCheck($lg) => $e,
            AnyLifeguard::TaintCheck($lg) => $e,
            AnyLifeguard::TaintCheckDetailed($lg) => $e,
            AnyLifeguard::LockSet($lg) => $e,
        }
    };
}

impl Lifeguard for AnyLifeguard {
    fn kind(&self) -> LifeguardKind {
        with_each_lifeguard!(self, lg => lg.kind())
    }

    fn etct(&self) -> Etct {
        with_each_lifeguard!(self, lg => lg.etct())
    }

    fn handle(&mut self, ev: &DeliveredEvent, cost: &mut CostSink) {
        with_each_lifeguard!(self, lg => lg.handle(ev, cost))
    }

    fn handle_batch(&mut self, evs: &[DeliveredEvent], cost: &mut CostSink) {
        // One discriminant branch for the whole batch; the concrete
        // lifeguard's own batch sweep (columnar override or the default
        // loop) runs with direct, inlinable calls.
        with_each_lifeguard!(self, lg => lg.handle_batch(evs, cost))
    }

    fn violations(&self) -> &[Violation] {
        with_each_lifeguard!(self, lg => lg.violations())
    }

    fn take_violations(&mut self) -> Vec<Violation> {
        with_each_lifeguard!(self, lg => lg.take_violations())
    }

    fn premark_region(&mut self, base: u32, len: u32) {
        with_each_lifeguard!(self, lg => lg.premark_region(base, len))
    }

    fn set_synthetic_workload_mode(&mut self, enabled: bool) {
        with_each_lifeguard!(self, lg => lg.set_synthetic_workload_mode(enabled))
    }

    fn metadata_bytes(&self) -> u64 {
        with_each_lifeguard!(self, lg => lg.metadata_bytes())
    }

    fn try_snapshot(&self) -> Option<Box<dyn Lifeguard + Send>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_matrix() {
        use LifeguardKind::*;
        // Every lifeguard benefits from the M-TLB.
        for k in LifeguardKind::ALL {
            assert!(k.accel_support().lma, "{k}");
        }
        assert!(!AddrCheck.accel_support().it);
        assert!(AddrCheck.accel_support().idempotent_filter);
        assert!(MemCheck.accel_support().it && MemCheck.accel_support().idempotent_filter);
        assert!(TaintCheck.accel_support().it);
        assert!(!TaintCheck.accel_support().idempotent_filter);
        assert!(TaintCheckDetailed.accel_support().it);
        assert!(!LockSet.accel_support().it);
        assert!(LockSet.accel_support().idempotent_filter);
    }

    #[test]
    fn mask_config_respects_support() {
        let full = AccelConfig::full(ItConfig::taint_style());
        let m = LifeguardKind::AddrCheck.mask_config(&full);
        assert!(m.lma && m.it.is_none() && m.if_geometry.is_some());
        let m = LifeguardKind::TaintCheck.mask_config(&full);
        assert!(m.lma && m.it.is_some() && m.if_geometry.is_none());
        let m = LifeguardKind::MemCheck.mask_config(&full);
        assert!(m.it.unwrap().nonunary_check, "MemCheck uses eager checks");
    }

    #[test]
    fn build_constructs_every_lifeguard() {
        for k in LifeguardKind::ALL {
            let lg = k.build(&AccelConfig::full(ItConfig::taint_style()));
            assert_eq!(lg.kind(), k);
            assert!(lg.etct().registered_count() > 0);
        }
    }

    #[test]
    fn any_lifeguard_matches_boxed_build() {
        for k in LifeguardKind::ALL {
            let cfg = AccelConfig::full(ItConfig::taint_style());
            let any = k.build_any(&cfg);
            let boxed = k.build(&cfg);
            assert_eq!(any.kind(), k);
            assert_eq!(any.etct().registered_count(), boxed.etct().registered_count());
            assert!(any.try_snapshot().is_some(), "{k}: every variant is clonable");
        }
    }

    #[test]
    fn spine_elision_matches_metadata_discipline() {
        use igm_isa::{MemRef, OpClass, Reg};
        use igm_lba::{CheckKind, Event, MetaSource};
        let read = Event::MemRead(MemRef::word(0x9000));
        let check =
            Event::Check { kind: CheckKind::CondBranchInput, source: MetaSource::Reg(Reg::Eax) };
        let prop = Event::Prop(OpClass::ImmToReg { rd: Reg::Eax });
        for k in
            [LifeguardKind::AddrCheck, LifeguardKind::TaintCheck, LifeguardKind::TaintCheckDetailed]
        {
            assert!(k.spine_elides(&read) && k.spine_elides(&check), "{k}");
            assert!(!k.spine_elides(&prop), "{k}: updates always run on the spine");
        }
        assert!(LifeguardKind::MemCheck.spine_elides(&read));
        assert!(
            !LifeguardKind::MemCheck.spine_elides(&check),
            "MemCheck check handlers write cascade-suppression state"
        );
        assert!(!LifeguardKind::LockSet.spine_elides(&read));
        assert!(!LifeguardKind::LockSet.spine_elides(&check));
    }

    #[test]
    fn any_lifeguard_handle_batch_equals_per_event_handle() {
        use igm_isa::{Annotation, MemRef, OpClass, Reg};
        use igm_lba::Event;
        let cfg = AccelConfig::baseline();
        let events = [
            DeliveredEvent::new(0x10, Event::Annot(Annotation::Malloc { base: 0x9000, size: 8 })),
            DeliveredEvent::new(0x14, Event::MemRead(MemRef::word(0x9000))),
            DeliveredEvent::new(0x18, Event::MemWrite(MemRef::word(0x9010))), // violation
            DeliveredEvent::new(0x1c, Event::Prop(OpClass::ImmToReg { rd: Reg::Eax })),
        ];
        let mut per_event = LifeguardKind::AddrCheck.build_any(&cfg);
        let mut c1 = CostSink::new();
        for ev in &events {
            per_event.handle(ev, &mut c1);
        }
        let mut batched = LifeguardKind::AddrCheck.build_any(&cfg);
        let mut c2 = CostSink::new();
        batched.handle_batch(&events, &mut c2);
        assert_eq!(per_event.violations(), batched.violations());
        assert_eq!(c1.instrs(), c2.instrs());
        assert_eq!(c1.mem_vas(), c2.mem_vas());
    }
}
