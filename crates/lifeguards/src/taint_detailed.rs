//! TaintCheck with detailed tracking (paper §7.1).
//!
//! The enhanced variant keeps an 8-byte metadata record per 4-byte
//! application word: the 4-byte "from" address the taint was copied from
//! and the 4-byte instruction pointer that performed the copy. A zero
//! record means untainted. On a security violation the propagation trail
//! can be reconstructed by walking the "from" chain
//! ([`TaintCheckDetailed::taint_trail`]).
//!
//! This is exactly the kind of lifeguard that value-based hardware taint
//! proposals cannot support (the metadata is neither a bit nor hardware-
//! interpretable), while Inheritance Tracking accelerates it unchanged —
//! the point of the paper's §4.1 argument.
//!
//! Taint is tracked at word granularity (the metadata unit); sub-word
//! stores taint their containing word.

use crate::cost::{CostSink, MetaMap};
use crate::violation::{SourceDesc, TaintSink, Violation};
use crate::{Lifeguard, LifeguardKind};
use igm_core::AccelConfig;
use igm_isa::{Annotation, MemRef, OpClass, Reg};
use igm_lba::{CheckKind, DeliveredEvent, Etct, Event, EventType, MetaSource};
use igm_shadow::layout::ElemSize;
use igm_shadow::{RegMeta, ShadowLayout, TwoLevelShadow};
use std::collections::HashSet;

/// One taint record: packed `(from_addr, eip)`; zero = untainted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TaintRecord {
    /// Address the tainted value was copied from.
    pub from: u32,
    /// Instruction pointer of the copying instruction.
    pub eip: u32,
}

impl TaintRecord {
    const CLEAN: TaintRecord = TaintRecord { from: 0, eip: 0 };

    fn is_tainted(self) -> bool {
        self != TaintRecord::CLEAN
    }

    fn pack(self) -> u64 {
        (self.from as u64) | ((self.eip as u64) << 32)
    }

    fn unpack(v: u64) -> TaintRecord {
        TaintRecord { from: v as u32, eip: (v >> 32) as u32 }
    }
}

/// The detailed-tracking TaintCheck lifeguard.
#[derive(Debug, Clone)]
pub struct TaintCheckDetailed {
    meta: MetaMap,
    /// Per-register record (packed), zero = clean.
    regs: RegMeta<u64>,
    violations: Vec<Violation>,
}

impl TaintCheckDetailed {
    /// 8-byte records per 4-byte word.
    pub fn layout() -> ShadowLayout {
        ShadowLayout::for_coverage(13, 4, ElemSize::B8).expect("constant layout is valid")
    }

    /// Builds the lifeguard under `cfg`.
    pub fn new(cfg: &AccelConfig) -> TaintCheckDetailed {
        TaintCheckDetailed {
            meta: MetaMap::new(
                TwoLevelShadow::new(Self::layout(), 0),
                cfg.lma.then_some(cfg.mtlb_entries),
            ),
            regs: RegMeta::new(0),
            violations: Vec::new(),
        }
    }

    fn word_record(&self, addr: u32) -> TaintRecord {
        TaintRecord::unpack(self.meta.shadow().elem_u64(addr))
    }

    fn set_word_record(&mut self, addr: u32, r: TaintRecord) {
        self.meta.shadow_mut().set_elem_u64(addr, r.pack());
    }

    /// Records covering `m` (one or two words).
    fn mem_record(&self, m: MemRef) -> TaintRecord {
        let first = self.word_record(m.addr);
        if first.is_tainted() {
            return first;
        }
        let last = m.addr.wrapping_add(m.size.bytes() - 1);
        if last & !3 != m.addr & !3 {
            return self.word_record(last);
        }
        TaintRecord::CLEAN
    }

    fn write_mem_record(&mut self, m: MemRef, r: TaintRecord) {
        let mut w = m.addr & !3;
        let last = m.addr.wrapping_add(m.size.bytes() - 1) & !3;
        loop {
            self.set_word_record(w, r);
            if w == last {
                break;
            }
            w = w.wrapping_add(4);
        }
    }

    fn reg_record(&self, r: Reg) -> TaintRecord {
        TaintRecord::unpack(self.regs.get(r.index()))
    }

    fn set_reg_record(&mut self, r: Reg, rec: TaintRecord) {
        self.regs.set(r.index(), rec.pack());
    }

    /// Whether register `r` holds tainted data.
    pub fn reg_tainted(&self, r: Reg) -> bool {
        self.reg_record(r).is_tainted()
    }

    /// Whether any word of `m` is tainted.
    pub fn mem_tainted(&self, m: MemRef) -> bool {
        self.mem_record(m).is_tainted()
    }

    /// Reconstructs the taint-propagation trail ending at `addr`: the list
    /// of `(location, eip)` hops from most recent backwards, bounded by
    /// `max_hops` and cycle-guarded.
    pub fn taint_trail(&self, addr: u32, max_hops: usize) -> Vec<(u32, u32)> {
        let mut trail = Vec::new();
        let mut seen = HashSet::new();
        let mut cur = addr & !3;
        while trail.len() < max_hops && seen.insert(cur) {
            let rec = self.word_record(cur);
            if !rec.is_tainted() {
                break;
            }
            trail.push((cur, rec.eip));
            cur = rec.from & !3;
        }
        trail
    }

    /// Charges the cost of one 8-byte metadata access (two 32-bit
    /// references on the IA32 lifeguard core).
    fn charge_record_access(&mut self, va: u32, cost: &mut CostSink) {
        cost.instr(2);
        cost.mem(va);
        cost.mem(va + 4);
    }

    fn handle_prop(&mut self, pc: u32, op: &OpClass, cost: &mut CostSink) {
        match *op {
            OpClass::ImmToReg { rd } => {
                cost.instr(2);
                cost.mem(self.regs.va(rd.index()));
                self.set_reg_record(rd, TaintRecord::CLEAN);
            }
            OpClass::ImmToMem { dst } => {
                let va = self.meta.map(dst.addr, cost);
                self.charge_record_access(va, cost);
                cost.instr(1);
                self.write_mem_record(dst, TaintRecord::CLEAN);
            }
            OpClass::RegSelf { .. } | OpClass::MemSelf { .. } | OpClass::ReadOnly { .. } => {
                cost.instr(1);
            }
            OpClass::RegToReg { rs, rd } => {
                cost.instr(3);
                cost.mem(self.regs.va(rs.index()));
                cost.mem(self.regs.va(rd.index()));
                let rec = self.reg_record(rs);
                self.set_reg_record(rd, rec);
            }
            OpClass::RegToMem { rs, dst } => {
                let va = self.meta.map(dst.addr, cost);
                self.charge_record_access(va, cost);
                cost.instr(2);
                cost.mem(self.regs.va(rs.index()));
                let rec = self.reg_record(rs);
                // The store is a new hop: record where the register got its
                // taint and which instruction stored it.
                let out = if rec.is_tainted() {
                    TaintRecord { from: rec.from, eip: pc }
                } else {
                    TaintRecord::CLEAN
                };
                self.write_mem_record(dst, out);
            }
            OpClass::MemToReg { src, rd } => {
                let va = self.meta.map(src.addr, cost);
                self.charge_record_access(va, cost);
                cost.instr(2);
                cost.mem(self.regs.va(rd.index()));
                let rec = self.mem_record(src);
                let out = if rec.is_tainted() {
                    TaintRecord { from: src.addr, eip: pc }
                } else {
                    TaintRecord::CLEAN
                };
                self.set_reg_record(rd, out);
            }
            OpClass::MemToMem { src, dst } => {
                let sva = self.meta.map(src.addr, cost);
                let dva = self.meta.map(dst.addr, cost);
                self.charge_record_access(sva, cost);
                self.charge_record_access(dva, cost);
                cost.instr(2);
                let rec = self.mem_record(src);
                let out = if rec.is_tainted() {
                    TaintRecord { from: src.addr, eip: pc }
                } else {
                    TaintRecord::CLEAN
                };
                self.write_mem_record(dst, out);
            }
            OpClass::DestRegOpReg { rs, rd } => {
                cost.instr(3);
                cost.mem(self.regs.va(rs.index()));
                cost.mem(self.regs.va(rd.index()));
                let rec = if self.reg_record(rd).is_tainted() {
                    self.reg_record(rd)
                } else {
                    self.reg_record(rs)
                };
                self.set_reg_record(rd, rec);
            }
            OpClass::DestRegOpMem { src, rd } => {
                let va = self.meta.map(src.addr, cost);
                self.charge_record_access(va, cost);
                cost.instr(2);
                cost.mem(self.regs.va(rd.index()));
                let rec = if self.reg_record(rd).is_tainted() {
                    self.reg_record(rd)
                } else {
                    let m = self.mem_record(src);
                    if m.is_tainted() {
                        TaintRecord { from: src.addr, eip: pc }
                    } else {
                        TaintRecord::CLEAN
                    }
                };
                self.set_reg_record(rd, rec);
            }
            OpClass::DestMemOpReg { rs, dst } => {
                let va = self.meta.map(dst.addr, cost);
                self.charge_record_access(va, cost);
                cost.instr(2);
                cost.mem(self.regs.va(rs.index()));
                let dst_rec = self.mem_record(dst);
                let rec = if dst_rec.is_tainted() {
                    dst_rec
                } else {
                    let r = self.reg_record(rs);
                    if r.is_tainted() {
                        TaintRecord { from: r.from, eip: pc }
                    } else {
                        TaintRecord::CLEAN
                    }
                };
                self.write_mem_record(dst, rec);
            }
            OpClass::Other { reads, writes, mem_read, mem_write } => {
                cost.instr(14);
                let mut rec = TaintRecord::CLEAN;
                if let Some(mr) = mem_read {
                    let m = self.mem_record(mr);
                    if m.is_tainted() {
                        rec = TaintRecord { from: mr.addr, eip: pc };
                    }
                }
                for r in reads.iter() {
                    let rr = self.reg_record(r);
                    if rr.is_tainted() && !rec.is_tainted() {
                        rec = TaintRecord { from: rr.from, eip: pc };
                    }
                }
                for r in writes.iter() {
                    cost.mem(self.regs.va(r.index()));
                    self.set_reg_record(r, rec);
                }
                if let Some(mw) = mem_write {
                    let va = self.meta.map(mw.addr, cost);
                    self.charge_record_access(va, cost);
                    self.write_mem_record(mw, rec);
                }
            }
        }
    }
}

impl Lifeguard for TaintCheckDetailed {
    fn kind(&self) -> LifeguardKind {
        LifeguardKind::TaintCheckDetailed
    }

    fn etct(&self) -> Etct {
        // Same registrations as plain TaintCheck: the difference is purely
        // in metadata format and handler cost.
        let mut etct = Etct::new();
        etct.register_all([
            EventType::ImmToReg,
            EventType::ImmToMem,
            EventType::RegToReg,
            EventType::RegToMem,
            EventType::MemToReg,
            EventType::MemToMem,
            EventType::DestRegOpReg,
            EventType::DestRegOpMem,
            EventType::DestMemOpReg,
            EventType::Other,
            EventType::CheckJumpTarget,
            EventType::CheckSyscallArg,
            EventType::CheckFormatString,
            EventType::Malloc,
            EventType::ReadInput,
        ]);
        etct
    }

    fn handle(&mut self, ev: &DeliveredEvent, cost: &mut CostSink) {
        match &ev.event {
            Event::Prop(op) => self.handle_prop(ev.pc, op, cost),
            Event::Check { kind, source } => {
                let tainted = match source {
                    MetaSource::Reg(r) => {
                        cost.instr(4);
                        cost.mem(self.regs.va(r.index()));
                        self.reg_tainted(*r)
                    }
                    MetaSource::Mem(m) => {
                        let va = self.meta.map(m.addr, cost);
                        self.charge_record_access(va, cost);
                        cost.instr(2);
                        self.mem_tainted(*m)
                    }
                };
                if tainted {
                    let sink = match kind {
                        CheckKind::SyscallArg => TaintSink::SyscallArg,
                        CheckKind::FormatString => TaintSink::FormatString,
                        _ => TaintSink::JumpTarget,
                    };
                    let source = match source {
                        MetaSource::Reg(r) => SourceDesc::Reg(r.index()),
                        MetaSource::Mem(m) => SourceDesc::Mem(*m),
                    };
                    self.violations.push(Violation::TaintedUse { pc: ev.pc, sink, source });
                }
            }
            Event::Annot(Annotation::Malloc { base, size }) => {
                let va = self.meta.map(*base, cost);
                cost.instr(10 + size / 2); // two 4-byte stores per application word
                cost.mem(va);
                let mut a = *base & !3;
                while a < base + size {
                    self.set_word_record(a, TaintRecord::CLEAN);
                    a += 4;
                }
            }
            Event::Annot(Annotation::ReadInput { base, len }) => {
                let va = self.meta.map(*base, cost);
                cost.instr(10 + len / 2);
                cost.mem(va);
                let mut a = *base & !3;
                while a < base + len {
                    // Input bytes: the "from" is the input buffer itself,
                    // stamped with the read-annotation site.
                    self.set_word_record(a, TaintRecord { from: a, eip: ev.pc });
                    a += 4;
                }
            }
            _ => cost.instr(1),
        }
    }

    fn violations(&self) -> &[Violation] {
        &self.violations
    }

    fn take_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    fn premark_region(&mut self, _base: u32, _len: u32) {}

    fn metadata_bytes(&self) -> u64 {
        self.meta.metadata_bytes() + 64
    }
    fn try_snapshot(&self) -> Option<Box<dyn Lifeguard + Send>> {
        Some(crate::ShardableLifeguard::snapshot_shard(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(lg: &mut TaintCheckDetailed, pc: u32, event: Event) {
        let mut c = CostSink::new();
        lg.handle(&DeliveredEvent::new(pc, event), &mut c);
    }

    #[test]
    fn trail_reconstruction_through_copies() {
        let mut lg = TaintCheckDetailed::new(&AccelConfig::baseline());
        // Input at 0x9000, copied 0x9000 -> %eax (pc 0x10) -> 0xa000
        // (pc 0x20) -> 0xb000 via mem_to_mem (pc 0x30).
        run(&mut lg, 1, Event::Annot(Annotation::ReadInput { base: 0x9000, len: 4 }));
        run(
            &mut lg,
            0x10,
            Event::Prop(OpClass::MemToReg { src: MemRef::word(0x9000), rd: Reg::Eax }),
        );
        run(
            &mut lg,
            0x20,
            Event::Prop(OpClass::RegToMem { rs: Reg::Eax, dst: MemRef::word(0xa000) }),
        );
        run(
            &mut lg,
            0x30,
            Event::Prop(OpClass::MemToMem { src: MemRef::word(0xa000), dst: MemRef::word(0xb000) }),
        );
        assert!(lg.mem_tainted(MemRef::word(0xb000)));
        let trail = lg.taint_trail(0xb000, 8);
        assert_eq!(
            trail,
            vec![(0xb000, 0x30), (0xa000, 0x20), (0x9000, 1)],
            "trail must walk back to the input read"
        );
    }

    #[test]
    fn clean_data_has_empty_trail() {
        let mut lg = TaintCheckDetailed::new(&AccelConfig::baseline());
        run(&mut lg, 1, Event::Prop(OpClass::ImmToMem { dst: MemRef::word(0x9000) }));
        assert!(lg.taint_trail(0x9000, 8).is_empty());
    }

    #[test]
    fn trail_is_cycle_safe() {
        let mut lg = TaintCheckDetailed::new(&AccelConfig::baseline());
        run(&mut lg, 1, Event::Annot(Annotation::ReadInput { base: 0x9000, len: 8 }));
        // Copy 0x9000 -> 0x9004 and back, forming a cycle.
        run(
            &mut lg,
            2,
            Event::Prop(OpClass::MemToMem { src: MemRef::word(0x9000), dst: MemRef::word(0x9004) }),
        );
        run(
            &mut lg,
            3,
            Event::Prop(OpClass::MemToMem { src: MemRef::word(0x9004), dst: MemRef::word(0x9000) }),
        );
        let trail = lg.taint_trail(0x9000, 100);
        assert!(trail.len() <= 3, "cycle guard must terminate: {trail:?}");
    }

    #[test]
    fn sink_detection_matches_plain_taintcheck() {
        let mut lg = TaintCheckDetailed::new(&AccelConfig::baseline());
        run(&mut lg, 1, Event::Annot(Annotation::ReadInput { base: 0x9000, len: 4 }));
        run(&mut lg, 2, Event::Prop(OpClass::MemToReg { src: MemRef::word(0x9000), rd: Reg::Edi }));
        run(
            &mut lg,
            3,
            Event::Check { kind: CheckKind::JumpTarget, source: MetaSource::Reg(Reg::Edi) },
        );
        assert_eq!(lg.violations().len(), 1);
    }

    #[test]
    fn untainted_overwrite_clears_record() {
        let mut lg = TaintCheckDetailed::new(&AccelConfig::baseline());
        run(&mut lg, 1, Event::Annot(Annotation::ReadInput { base: 0x9000, len: 4 }));
        run(&mut lg, 2, Event::Prop(OpClass::ImmToMem { dst: MemRef::word(0x9000) }));
        assert!(!lg.mem_tainted(MemRef::word(0x9000)));
    }

    #[test]
    fn handler_costs_exceed_plain_taintcheck() {
        // The detailed variant moves 8-byte records: its store handler must
        // be costlier than the 2-bit variant's.
        let mut plain = crate::TaintCheck::new(&AccelConfig::baseline());
        let mut detailed = TaintCheckDetailed::new(&AccelConfig::baseline());
        let ev = DeliveredEvent::new(
            0x10,
            Event::Prop(OpClass::RegToMem { rs: Reg::Eax, dst: MemRef::word(0xa000) }),
        );
        let mut c1 = CostSink::new();
        plain.handle(&ev, &mut c1);
        let mut c2 = CostSink::new();
        detailed.handle(&ev, &mut c2);
        assert!(c2.instrs() > c1.instrs());
        assert!(c2.mem_vas().len() > c1.mem_vas().len());
    }
}
