//! Property-based tests of the co-simulation's queueing behaviour: the
//! bounded log buffer and the drain rules must respect causality and
//! monotonicity for arbitrary workloads.

use igm_isa::{Annotation, MemRef, OpClass, Reg, TraceEntry};
use igm_timing::{CoSim, SystemConfig, TimingReport};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Rec {
    addr_sel: u32,
    delivered: u32,
    instrs: u64,
    is_syscall: bool,
}

fn arb_rec() -> impl Strategy<Value = Rec> {
    (0u32..64, 0u32..4, 0u64..24, proptest::bool::weighted(0.01)).prop_map(
        |(addr_sel, delivered, instrs, is_syscall)| Rec {
            addr_sel,
            delivered,
            instrs: if delivered == 0 { 0 } else { instrs },
            is_syscall,
        },
    )
}

fn run(recs: &[Rec], buffer_bytes: u32, work_scale: u64) -> TimingReport {
    let mut cfg = SystemConfig::isca08();
    cfg.log_buffer_bytes = buffer_bytes;
    let mut sim = CoSim::new(cfg);
    for (i, r) in recs.iter().enumerate() {
        let entry = if r.is_syscall {
            TraceEntry::annot(0x1000, Annotation::Syscall { arg_reg: None, arg_mem: None })
        } else {
            TraceEntry::op(
                0x1000 + (i as u32 % 32) * 4,
                OpClass::MemToReg { src: MemRef::word(0x9000 + r.addr_sel * 4), rd: Reg::Eax },
            )
        };
        sim.step_record(&entry, r.delivered, r.instrs * work_scale, &[]);
    }
    sim.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Monitoring never makes the application *faster*: the monitored
    /// timeline includes everything the stand-alone timeline does, plus
    /// log-capture overhead and stalls.
    #[test]
    fn monitoring_never_speeds_up_the_application(
        recs in proptest::collection::vec(arb_rec(), 1..300)
    ) {
        let r = run(&recs, 64 * 1024, 1);
        prop_assert!(r.monitored_cycles >= r.app_alone_cycles);
    }

    /// Causality at completion: the application's finish waits for the
    /// lifeguard's final drain, so the monitored time dominates the
    /// consumer time.
    #[test]
    fn final_drain_orders_timelines(
        recs in proptest::collection::vec(arb_rec(), 1..300)
    ) {
        let r = run(&recs, 64 * 1024, 1);
        prop_assert!(r.monitored_cycles >= r.consumer_cycles);
        prop_assert_eq!(r.records, recs.len() as u64);
    }

    /// Monotonicity in handler work: scaling every handler's instruction
    /// count up cannot reduce the monitored time.
    #[test]
    fn more_handler_work_never_helps(
        recs in proptest::collection::vec(arb_rec(), 1..200)
    ) {
        let light = run(&recs, 64 * 1024, 1);
        let heavy = run(&recs, 64 * 1024, 4);
        prop_assert!(heavy.monitored_cycles >= light.monitored_cycles);
        prop_assert!(heavy.handler_instrs >= light.handler_instrs);
    }

    /// Capacity bound: shrinking the log buffer can only add backpressure,
    /// never remove it.
    #[test]
    fn smaller_buffer_never_helps(
        recs in proptest::collection::vec(arb_rec(), 1..200)
    ) {
        let small = run(&recs, 256, 3);
        let large = run(&recs, 64 * 1024, 3);
        prop_assert!(small.monitored_cycles >= large.monitored_cycles,
            "small {} vs large {}", small.monitored_cycles, large.monitored_cycles);
    }

    /// With zero consumer work the consumer always keeps up: producer
    /// stalls can only come from the (slower) syscall drains, not the
    /// buffer.
    #[test]
    fn idle_consumer_never_backpressures(
        recs in proptest::collection::vec(arb_rec(), 1..300)
    ) {
        let idle: Vec<Rec> = recs.iter()
            .map(|r| Rec { delivered: 0, instrs: 0, ..r.clone() })
            .collect();
        let r = run(&idle, 64 * 1024, 1);
        prop_assert_eq!(r.producer_stall_cycles, 0);
        prop_assert_eq!(r.delivered_events, 0);
    }
}
