//! The lake's HTTP routes, mounted on the stats server.
//!
//! [`LakeRoutes`] is an [`igm_obs::RouteHandler`]; attach it via
//! [`igm_obs::StatsServer::serve_routes`] or
//! [`igm_runtime::MonitorPool::serve_stats_routes`]:
//!
//! | path                | body                                          |
//! |---------------------|-----------------------------------------------|
//! | `/lake/traces.json` | the catalog: stems, ids, sizes, index overhead |
//! | `/lake/query`       | bitmap query / record-neighborhood inspection  |
//!
//! `/lake/query` parameters (all validated by the hardened
//! [`igm_obs::Query`] parser before this handler runs):
//!
//! - `tenant=<stem>` — restrict to one trace (optional for filters,
//!   required for a bare-`seq` `around`).
//! - `pc=`, `page=`, `op=`, `site=` — per-dimension terms: comma = OR,
//!   `!` prefix = NOT; `pc`/`page` take raw addresses (decimal or
//!   `0x` hex), `op`/`site` take class labels (see
//!   [`LakeQuery::parse_dim`]).
//! - `around=<tenant:trace:seq|seq>` + `k=` — decode the ±k record
//!   neighborhood instead of filtering (the only path that touches
//!   trace payloads).
//! - `limit=` — cap on materialized hit ids (default 100, max 10000).

use crate::catalog::{LakeError, TraceLake};
use crate::query::LakeQuery;
use igm_obs::{
    Counter, Histogram, MetricsRegistry, Query, QueryError, RouteHandler, RouteResponse,
};
use igm_span::RecordId;
use igm_trace::{op_class, site, Dim, PAGE_SHIFT};
use std::sync::Arc;

/// Default and maximum `limit=` values for materialized hits.
const DEFAULT_LIMIT: u64 = 100;
/// Upper bound on `limit=`.
const MAX_LIMIT: u64 = 10_000;
/// Default `k=` for neighborhoods.
const DEFAULT_K: u64 = 4;

/// The `/lake/*` route family over one [`TraceLake`].
pub struct LakeRoutes {
    lake: Arc<TraceLake>,
    queries: Counter,
    query_nanos: Histogram,
    replay_nanos: Histogram,
}

impl LakeRoutes {
    /// Wraps `lake` and registers the `igm_lake_*` metrics family on
    /// `registry`: catalog gauges (traces, indexed records, index
    /// bytes) are set now; query counters and latency histograms are
    /// fed per request.
    pub fn new(lake: Arc<TraceLake>, registry: &MetricsRegistry) -> LakeRoutes {
        registry
            .gauge("igm_lake_traces", "Traces cataloged by the lake")
            .set(lake.traces().len() as i64);
        registry
            .gauge("igm_lake_indexed_records", "Records covered by lake posting indexes")
            .set(lake.total_records() as i64);
        registry
            .gauge("igm_lake_index_bytes", "Posting-index bytes across the lake")
            .set(lake.total_index_bytes() as i64);
        LakeRoutes {
            lake,
            queries: registry
                .counter("igm_lake_queries_total", "Lake queries answered (filters and lookups)"),
            query_nanos: registry
                .histogram("igm_lake_query_nanos", "Bitmap query evaluation latency"),
            replay_nanos: registry.histogram(
                "igm_lake_replay_nanos",
                "Neighborhood decode latency (seek + frame decode)",
            ),
        }
    }

    /// The wrapped lake.
    pub fn lake(&self) -> &Arc<TraceLake> {
        &self.lake
    }

    fn traces_json(&self) -> String {
        let mut body = String::from("{\"traces\": [");
        for (i, t) in self.lake.traces().iter().enumerate() {
            if i > 0 {
                body.push_str(", ");
            }
            body.push_str(&format!(
                "{{\"stem\": {}, \"tenant\": \"{:08x}\", \"trace\": \"{:08x}\", \
                 \"records\": {}, \"frames\": {}, \"trace_bytes\": {}, \"index_bytes\": {}, \
                 \"index_bytes_per_record\": {:.4}, \"rebuilt\": {}}}",
                json_str(&t.stem),
                t.tenant,
                t.trace,
                t.index.total_records(),
                t.index.frames(),
                t.trace_bytes,
                t.index.posting_bytes(),
                t.index_bytes_per_record(),
                t.rebuilt,
            ));
        }
        body.push_str("], \"skipped\": [");
        for (i, (stem, why)) in self.lake.skipped().iter().enumerate() {
            if i > 0 {
                body.push_str(", ");
            }
            body.push_str(&format!(
                "{{\"stem\": {}, \"error\": {}}}",
                json_str(stem),
                json_str(why)
            ));
        }
        body.push_str("]}");
        body
    }

    fn query_route(&self, q: &Query) -> RouteResponse {
        if let Err(e) =
            q.expect_only(&["tenant", "pc", "op", "page", "site", "around", "k", "limit"])
        {
            return RouteResponse::bad_request(&e);
        }
        self.queries.inc();
        let tenant = q.get("tenant");
        match q.get("around") {
            Some(raw) => {
                let k = match q.get_u64("k") {
                    Ok(v) => v.unwrap_or(DEFAULT_K),
                    Err(e) => return RouteResponse::bad_request(&e),
                };
                let id = match parse_around(&self.lake, tenant, raw) {
                    Ok(id) => id,
                    Err(resp) => return resp,
                };
                let started = self.replay_nanos.start();
                let resp = self.neighborhood_json(id, k);
                self.replay_nanos.stop(started);
                resp
            }
            None => {
                let mut lq = LakeQuery::new();
                for dim in Dim::ALL {
                    if let Some(raw) = q.get(dim.name()) {
                        lq = match lq.parse_dim(dim, raw) {
                            Ok(next) => next,
                            Err(detail) => {
                                return RouteResponse::bad_request(&QueryError {
                                    kind: "bad_term",
                                    detail,
                                })
                            }
                        };
                    }
                }
                let limit = match q.get_u64("limit") {
                    Ok(v) => v.unwrap_or(DEFAULT_LIMIT).min(MAX_LIMIT) as usize,
                    Err(e) => return RouteResponse::bad_request(&e),
                };
                let started = self.query_nanos.start();
                let resp = self.filter_json(tenant, &lq, limit);
                self.query_nanos.stop(started);
                resp
            }
        }
    }

    fn filter_json(&self, tenant: Option<&str>, lq: &LakeQuery, limit: usize) -> RouteResponse {
        let hits = match self.lake.query(tenant, lq, limit) {
            Ok(h) => h,
            Err(e) => return lake_error(e),
        };
        let mut body = format!(
            "{{\"matched\": {}, \"truncated\": {}, \"traces\": {}, \
             \"frames_visited\": {}, \"frames_skipped\": {}, \"hits\": [",
            hits.matched, hits.truncated, hits.traces, hits.frames_visited, hits.frames_skipped,
        );
        for (i, id) in hits.hits.iter().enumerate() {
            if i > 0 {
                body.push_str(", ");
            }
            body.push_str(&format!("\"{id}\""));
        }
        body.push_str("]}");
        RouteResponse::json(body)
    }

    fn neighborhood_json(&self, id: RecordId, k: u64) -> RouteResponse {
        let records = match self.lake.neighborhood(id, k) {
            Ok(r) => r,
            Err(e) => return lake_error(e),
        };
        let mut body = format!(
            "{{\"around\": \"{id}\", \"k\": {k}, \"count\": {}, \"records\": [",
            records.len()
        );
        for (i, (seq, e)) in records.iter().enumerate() {
            if i > 0 {
                body.push_str(", ");
            }
            let code = e.op.field_code();
            let mut pages: Vec<String> = Vec::new();
            e.op.for_each_addr(|a| pages.push(format!("\"0x{:x}\"", a >> PAGE_SHIFT)));
            body.push_str(&format!(
                "{{\"seq\": {seq}, \"id\": \"{}\", \"pc\": \"0x{:x}\", \"op\": \"{}\", \
                 \"site\": {}, \"pages\": [{}], \"focus\": {}}}",
                RecordId::new(id.tenant, id.trace, *seq),
                e.pc,
                op_class::name(op_class::of(code)),
                match site::of(code) {
                    Some(s) => format!("\"{}\"", site::name(s)),
                    None => "null".into(),
                },
                pages.join(", "),
                *seq == id.seq,
            ));
        }
        body.push_str("]}");
        RouteResponse::json(body)
    }
}

impl RouteHandler for LakeRoutes {
    fn handle(&self, path: &str, query: &Query) -> Option<RouteResponse> {
        match path {
            "/lake/traces.json" => Some(match query.expect_only(&[]) {
                Err(e) => RouteResponse::bad_request(&e),
                Ok(()) => RouteResponse::json(self.traces_json()),
            }),
            "/lake/query" => Some(self.query_route(query)),
            _ => None,
        }
    }

    fn index_lines(&self) -> Vec<String> {
        vec![
            "/lake/traces.json   trace-lake catalog (stems, ids, index overhead)".into(),
            "/lake/query?tenant=&pc=&op=&page=&site=  bitmap record query (comma=OR, !=NOT)".into(),
            "/lake/query?around=T:R:S&k=N  decode the record's +-k neighborhood".into(),
        ]
    }
}

/// Parses `around=`: a full `tenant:trace:seq` record id (hex:hex:dec,
/// the `RecordId` display form), or a bare decimal `seq` resolved
/// against the `tenant=` parameter's trace.
fn parse_around(
    lake: &TraceLake,
    tenant: Option<&str>,
    raw: &str,
) -> Result<RecordId, RouteResponse> {
    let bad = |detail: String| {
        Err(RouteResponse::bad_request(&QueryError { kind: "bad_record_id", detail }))
    };
    let mut parts = raw.split(':');
    match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(t), Some(r), Some(s), None) => {
            let (Ok(t), Ok(r), Ok(s)) =
                (u32::from_str_radix(t, 16), u32::from_str_radix(r, 16), s.parse::<u64>())
            else {
                return bad(format!("around={raw:?} is not tenant:trace:seq (hex:hex:dec)"));
            };
            Ok(RecordId::new(t, r, s))
        }
        (Some(seq), None, ..) => {
            let Ok(seq) = seq.parse::<u64>() else {
                return bad(format!("around={raw:?} is neither a record id nor a seq"));
            };
            let Some(stem) = tenant else {
                return bad("a bare around=seq needs tenant=".into());
            };
            match lake.by_stem(stem) {
                Some(t) => Ok(RecordId::new(t.tenant, t.trace, seq)),
                None => Err(lake_error(LakeError::UnknownTenant(stem.into()))),
            }
        }
        _ => bad(format!("around={raw:?} is not tenant:trace:seq")),
    }
}

/// Maps a lake error to its HTTP shape: unknown names are 404s, broken
/// artifacts are 500s — all with the same typed JSON error body the
/// query parser uses.
fn lake_error(e: LakeError) -> RouteResponse {
    let (status, kind) = match &e {
        LakeError::UnknownTenant(_) => (404, "unknown_tenant"),
        LakeError::UnknownRecord(_) => (404, "unknown_record"),
        LakeError::Trace(_) | LakeError::Replay(_) => (500, "lake_error"),
    };
    RouteResponse {
        status,
        content_type: "application/json",
        body: QueryError { kind, detail: e.to_string() }.to_json(),
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
