//! AddrCheck: every memory access must touch allocated memory (Table 1).
//!
//! Metadata is one *accessible* bit per application byte, kept in a
//! two-level shadow map (1-byte elements covering 8 application bytes).
//! `malloc`/`free` wrapper annotations flip the bits; every load and store
//! checks them. Auxiliary malloc/free record lists catch double frees,
//! invalid frees and leaks.
//!
//! Under the Idempotent Filter, loads and stores share one check category
//! (the check is identical), keyed on address and size; `malloc`, `free`
//! and system calls invalidate the whole filter (paper §5).

use crate::cost::{CostSink, MetaMap, SOFTWARE_MAP_INSTRS};
use crate::violation::Violation;
use crate::{Lifeguard, LifeguardKind};
use igm_core::AccelConfig;
use igm_isa::{Annotation, MemRef};
use igm_lba::{DeliveredEvent, Etct, Event, EventType, IfEventConfig};
use igm_shadow::layout::ElemSize;
use igm_shadow::{ShadowLayout, TwoLevelShadow};
use std::collections::HashMap;

/// Accessible-bit value.
const ACCESSIBLE: u8 = 1;

/// Application page size covered by one bit of the page-accessibility
/// bitmap.
const PAGE_SHIFT: u32 = 12;
/// Pages in the 32-bit application space.
const PAGE_COUNT: usize = 1 << (32 - PAGE_SHIFT);

/// One entry of the merged malloc/free record list: the recorded size and
/// whether the block is currently live (a dead slot is a freed base kept
/// for double-free detection).
#[derive(Debug, Clone, Copy)]
struct AllocSlot {
    size: u32,
    live: bool,
}

/// The AddrCheck lifeguard.
#[derive(Debug, Clone)]
pub struct AddrCheck {
    meta: MetaMap,
    /// Merged malloc/free record list: base → (size, live?).
    allocs: HashMap<u32, AllocSlot>,
    /// One bit per 4 KiB application page; set ⇒ *every* byte of the page
    /// is accessible, so an access that stays inside such a page needs no
    /// shadow walk at all (the software mirror of the paper's check
    /// filtering: the common in-bounds case is a couple of loads).
    page_acc: Box<[u8]>,
    violations: Vec<Violation>,
    /// Total checks performed (for reports).
    checks: u64,
}

impl AddrCheck {
    /// One accessible bit per byte: 1-byte elements covering 8 application
    /// bytes, 16-bit level-1 index.
    pub fn layout() -> ShadowLayout {
        ShadowLayout::for_coverage(12, 8, ElemSize::B1).expect("constant layout is valid")
    }

    /// Builds AddrCheck under `cfg` (only the `lma` and `mtlb_entries`
    /// fields are relevant; IT never applies).
    pub fn new(cfg: &AccelConfig) -> AddrCheck {
        let shadow = TwoLevelShadow::new(Self::layout(), 0);
        AddrCheck {
            meta: MetaMap::new(shadow, cfg.lma.then_some(cfg.mtlb_entries)),
            allocs: HashMap::new(),
            page_acc: vec![0u8; PAGE_COUNT / 8].into_boxed_slice(),
            violations: Vec::new(),
            checks: 0,
        }
    }

    /// Number of access checks performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Reports every still-live block as a leak (call at program exit, as
    /// the real tool does; synthetic workloads intentionally skip this).
    pub fn report_leaks(&mut self) {
        let mut leaks: Vec<_> =
            self.allocs.iter().filter(|(_, s)| s.live).map(|(b, s)| (*b, s.size)).collect();
        leaks.sort_unstable();
        for (base, size) in leaks {
            self.violations.push(Violation::Leak { base, size });
        }
    }

    #[inline]
    fn page_bit(&self, page: u32) -> bool {
        self.page_acc[(page >> 3) as usize] & (1 << (page & 7)) != 0
    }

    /// Maintains the page bitmap for a metadata range update. Marking
    /// accessible sets the bits of *fully covered* pages only; revoking
    /// clears the bits of every overlapped page (conservative: a clear bit
    /// merely means "walk the shadow").
    fn update_page_bitmap(&mut self, base: u32, len: u32, accessible: bool) {
        if len == 0 {
            return;
        }
        let end = base as u64 + len as u64; // exclusive
        let page = |p: u64| (p >> 3, 1u8 << (p & 7));
        if accessible {
            let first = (base as u64).div_ceil(1 << PAGE_SHIFT);
            let last = end >> PAGE_SHIFT; // exclusive
            for p in first..last {
                let (byte, bit) = page(p);
                self.page_acc[byte as usize] |= bit;
            }
        } else {
            let first = (base as u64) >> PAGE_SHIFT;
            let last = (end - 1) >> PAGE_SHIFT; // inclusive
            for p in first..=last {
                let (byte, bit) = page(p);
                self.page_acc[byte as usize] &= !bit;
            }
        }
    }

    #[inline]
    fn check_access(&mut self, pc: u32, mref: MemRef, is_write: bool, cost: &mut CostSink) {
        self.checks += 1;
        let va = self.meta.map(mref.addr, cost);
        // Fast path: load the element, compute the in-element bit offset,
        // extract the per-byte bit field (shift, mask), compare against the
        // all-accessible pattern for the access size, branch.
        cost.instr(6);
        cost.mem(va);
        // Accesses crossing an element boundary re-map the tail.
        let last = mref.addr + (mref.size.bytes() - 1);
        if self.meta.shadow().layout().l1_index(last)
            != self.meta.shadow().layout().l1_index(mref.addr)
            || self.meta.shadow().layout().elem_index(last)
                != self.meta.shadow().layout().elem_index(mref.addr)
        {
            let va2 = self.meta.map(last, cost);
            cost.instr(2);
            cost.mem(va2);
        }
        // An access that stays inside one fully-accessible page needs no
        // shadow walk; anything else takes the (packed, byte-at-a-time at
        // worst) range check.
        let page = mref.addr >> PAGE_SHIFT;
        if (last >> PAGE_SHIFT == page && self.page_bit(page))
            || self.meta.shadow().packed_all(mref.addr, mref.size.bytes(), ACCESSIBLE)
        {
            return;
        }
        self.violations.push(Violation::UnallocatedAccess { pc, mref, is_write });
    }

    fn mark_range(&mut self, base: u32, len: u32, v: u8, cost: &mut CostSink) {
        // The handler memsets the metadata word-at-a-time: one 4-byte store
        // covers 32 application bytes; each metadata cache line is touched
        // once.
        let elems = len.div_ceil(8).max(1);
        cost.instr(4 + elems.div_ceil(4));
        let mut a = base;
        while a < base.saturating_add(len) {
            let va = self.meta.map(a, cost);
            cost.mem(va);
            a = a.saturating_add(512); // one mapped chunk line per 512 app bytes
        }
        self.meta.shadow_mut().packed_set_range(base, len, v);
        self.update_page_bitmap(base, len, v == ACCESSIBLE);
    }
}

impl Lifeguard for AddrCheck {
    fn kind(&self) -> LifeguardKind {
        LifeguardKind::AddrCheck
    }

    fn etct(&self) -> Etct {
        let mut etct = Etct::new();
        // Loads and stores perform the same check: one CC value.
        etct.register(EventType::MemRead, IfEventConfig::cacheable_addr(0));
        etct.register(EventType::MemWrite, IfEventConfig::cacheable_addr(0));
        // Metadata-changing rare events invalidate the filter.
        etct.register(EventType::Malloc, IfEventConfig::invalidates_all());
        etct.register(EventType::Free, IfEventConfig::invalidates_all());
        etct.register(EventType::Syscall, IfEventConfig::invalidates_all());
        // Kernel writes into a user buffer: the buffer must be allocated.
        etct.register_plain(EventType::ReadInput);
        etct
    }

    fn handle(&mut self, ev: &DeliveredEvent, cost: &mut CostSink) {
        match ev.event {
            Event::MemRead(m) => self.check_access(ev.pc, m, false, cost),
            Event::MemWrite(m) => self.check_access(ev.pc, m, true, cost),
            Event::Annot(Annotation::Malloc { base, size }) => {
                self.mark_range(base, size, ACCESSIBLE, cost);
                self.allocs.insert(base, AllocSlot { size, live: true });
                cost.instr(20); // record-list update
            }
            Event::Annot(Annotation::Free { base }) => {
                cost.instr(20);
                let slot = self.allocs.get_mut(&base).map(|s| {
                    let was_live = s.live;
                    s.live = false;
                    (was_live, s.size)
                });
                match slot {
                    Some((true, size)) => self.mark_range(base, size, 0, cost),
                    Some((false, _)) => {
                        self.violations.push(Violation::DoubleFree { pc: ev.pc, base })
                    }
                    None => self.violations.push(Violation::InvalidFree { pc: ev.pc, base }),
                }
            }
            Event::Annot(Annotation::ReadInput { base, len }) => {
                // The whole buffer must be accessible.
                let mref = MemRef::word(base);
                self.checks += 1;
                let va = self.meta.map(base, cost);
                cost.instr(3 + len / 512);
                cost.mem(va);
                if !self.meta.shadow().packed_all(base, len, ACCESSIBLE) {
                    self.violations.push(Violation::UnallocatedAccess {
                        pc: ev.pc,
                        mref,
                        is_write: true,
                    });
                }
            }
            Event::Annot(Annotation::Syscall { .. }) => {
                cost.instr(5); // bookkeeping only
            }
            _ => {
                // Unreachable under this lifeguard's ETCT.
                cost.instr(1);
            }
        }
    }

    /// Columnar batch override: the overwhelmingly common access-check
    /// events take a monomorphic loop whose fast path (page-bitmap hit) is
    /// a couple of loads; everything else falls through to the per-event
    /// handler. Event-for-event equivalent to the default loop.
    fn handle_batch(&mut self, evs: &[DeliveredEvent], cost: &mut CostSink) {
        for ev in evs {
            match ev.event {
                Event::MemRead(m) => self.check_access(ev.pc, m, false, cost),
                Event::MemWrite(m) => self.check_access(ev.pc, m, true, cost),
                _ => self.handle(ev, cost),
            }
        }
    }

    fn violations(&self) -> &[Violation] {
        &self.violations
    }

    fn take_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    fn premark_region(&mut self, base: u32, len: u32) {
        let mut scratch = CostSink::new();
        self.mark_range(base, len, ACCESSIBLE, &mut scratch);
    }

    fn metadata_bytes(&self) -> u64 {
        self.meta.metadata_bytes() + self.allocs.len() as u64 * 8
    }
    fn try_snapshot(&self) -> Option<Box<dyn Lifeguard + Send>> {
        Some(crate::ShardableLifeguard::snapshot_shard(self))
    }
}

/// The paper's baseline mapping cost is visible in this module's handlers:
/// exported for the documentation tests.
pub const ACCESS_CHECK_FAST_PATH_INSTRS: u32 = SOFTWARE_MAP_INSTRS + 6;

#[cfg(test)]
mod tests {
    use super::*;
    use igm_isa::MemSize;

    fn ev(pc: u32, event: Event) -> DeliveredEvent {
        DeliveredEvent::new(pc, event)
    }

    fn run(lg: &mut AddrCheck, event: Event) -> u64 {
        let mut c = CostSink::new();
        lg.handle(&ev(0x1000, event), &mut c);
        c.instrs()
    }

    #[test]
    fn access_to_unallocated_memory_is_flagged() {
        let mut lg = AddrCheck::new(&AccelConfig::baseline());
        run(&mut lg, Event::MemRead(MemRef::word(0x9000)));
        assert_eq!(lg.violations().len(), 1);
        assert!(matches!(lg.violations()[0], Violation::UnallocatedAccess { is_write: false, .. }));
    }

    #[test]
    fn malloc_makes_memory_accessible_free_revokes() {
        let mut lg = AddrCheck::new(&AccelConfig::baseline());
        run(&mut lg, Event::Annot(Annotation::Malloc { base: 0x9000, size: 64 }));
        run(&mut lg, Event::MemRead(MemRef::word(0x9000)));
        run(&mut lg, Event::MemWrite(MemRef::word(0x903c)));
        assert!(lg.violations().is_empty());
        // Out-of-bounds just past the block.
        run(&mut lg, Event::MemRead(MemRef::word(0x9040)));
        assert_eq!(lg.violations().len(), 1);
        // Use after free.
        run(&mut lg, Event::Annot(Annotation::Free { base: 0x9000 }));
        run(&mut lg, Event::MemRead(MemRef::word(0x9000)));
        assert_eq!(lg.violations().len(), 2);
    }

    #[test]
    fn boundary_access_straddling_block_end_is_flagged() {
        let mut lg = AddrCheck::new(&AccelConfig::baseline());
        run(&mut lg, Event::Annot(Annotation::Malloc { base: 0x9000, size: 62 }));
        // 4-byte access at 0x903c covers bytes 60..64, one past the block.
        run(&mut lg, Event::MemRead(MemRef::new(0x903c, MemSize::B4)));
        assert_eq!(lg.violations().len(), 1);
    }

    #[test]
    fn double_free_and_invalid_free() {
        let mut lg = AddrCheck::new(&AccelConfig::baseline());
        run(&mut lg, Event::Annot(Annotation::Malloc { base: 0x9000, size: 64 }));
        run(&mut lg, Event::Annot(Annotation::Free { base: 0x9000 }));
        run(&mut lg, Event::Annot(Annotation::Free { base: 0x9000 }));
        assert!(matches!(lg.violations()[0], Violation::DoubleFree { base: 0x9000, .. }));
        run(&mut lg, Event::Annot(Annotation::Free { base: 0xdead_0000 }));
        assert!(matches!(lg.violations()[1], Violation::InvalidFree { .. }));
    }

    #[test]
    fn leaks_reported_on_demand() {
        let mut lg = AddrCheck::new(&AccelConfig::baseline());
        run(&mut lg, Event::Annot(Annotation::Malloc { base: 0x9000, size: 64 }));
        run(&mut lg, Event::Annot(Annotation::Malloc { base: 0xa000, size: 32 }));
        run(&mut lg, Event::Annot(Annotation::Free { base: 0x9000 }));
        assert!(lg.violations().is_empty());
        lg.report_leaks();
        assert_eq!(lg.violations(), &[Violation::Leak { base: 0xa000, size: 32 }]);
    }

    #[test]
    fn premarked_regions_are_accessible_but_not_freeable() {
        let mut lg = AddrCheck::new(&AccelConfig::baseline());
        lg.premark_region(0xbff0_0000, 0x1000);
        run(&mut lg, Event::MemWrite(MemRef::word(0xbff0_0800)));
        assert!(lg.violations().is_empty());
        run(&mut lg, Event::Annot(Annotation::Free { base: 0xbff0_0000 }));
        assert!(matches!(lg.violations()[0], Violation::InvalidFree { .. }));
    }

    #[test]
    fn lma_halves_check_fast_path() {
        let mut base = AddrCheck::new(&AccelConfig::baseline());
        base.premark_region(0x9000, 64);
        let c_base = run(&mut base, Event::MemRead(MemRef::word(0x9000)));
        assert_eq!(c_base, (SOFTWARE_MAP_INSTRS + 6) as u64);

        let mut fast = AddrCheck::new(&AccelConfig::lma());
        fast.premark_region(0x9000, 64);
        run(&mut fast, Event::MemRead(MemRef::word(0x9000))); // cold miss
        let c_fast = run(&mut fast, Event::MemRead(MemRef::word(0x9000)));
        assert_eq!(c_fast, 7);
    }

    #[test]
    fn readinput_into_unallocated_buffer_is_flagged() {
        let mut lg = AddrCheck::new(&AccelConfig::baseline());
        run(&mut lg, Event::Annot(Annotation::ReadInput { base: 0x9000, len: 128 }));
        assert_eq!(lg.violations().len(), 1);
    }

    #[test]
    fn page_bitmap_fast_path_tracks_allocation_lifecycle() {
        let mut lg = AddrCheck::new(&AccelConfig::baseline());
        // Two fully-covered pages: their bits go hot.
        run(&mut lg, Event::Annot(Annotation::Malloc { base: 0x2000_0000, size: 0x2000 }));
        assert!(lg.page_bit(0x2000_0000 >> PAGE_SHIFT));
        assert!(lg.page_bit(0x2000_1000 >> PAGE_SHIFT));
        run(&mut lg, Event::MemRead(MemRef::word(0x2000_0ffc))); // page-bit hit
        run(&mut lg, Event::MemRead(MemRef::word(0x2000_0ffe))); // crosses pages
        assert!(lg.violations().is_empty());
        // Free revokes the bits and the access flags again.
        run(&mut lg, Event::Annot(Annotation::Free { base: 0x2000_0000 }));
        assert!(!lg.page_bit(0x2000_0000 >> PAGE_SHIFT));
        run(&mut lg, Event::MemRead(MemRef::word(0x2000_0000)));
        assert_eq!(lg.violations().len(), 1);
    }

    #[test]
    fn partial_page_allocations_never_set_page_bits() {
        let mut lg = AddrCheck::new(&AccelConfig::baseline());
        run(&mut lg, Event::Annot(Annotation::Malloc { base: 0x9000, size: 64 }));
        assert!(!lg.page_bit(0x9000 >> PAGE_SHIFT), "64-byte block must not claim its page");
        // The shadow walk still decides correctly in both directions.
        run(&mut lg, Event::MemRead(MemRef::word(0x9000)));
        assert!(lg.violations().is_empty());
        run(&mut lg, Event::MemRead(MemRef::word(0x9040)));
        assert_eq!(lg.violations().len(), 1);
    }

    #[test]
    fn batch_override_matches_per_event_handling() {
        let events = vec![
            ev(0x10, Event::Annot(Annotation::Malloc { base: 0x9000, size: 0x1000 })),
            ev(0x14, Event::MemRead(MemRef::word(0x9000))),
            ev(0x18, Event::MemWrite(MemRef::word(0x9ffc))),
            ev(0x1c, Event::MemRead(MemRef::word(0xdead_0000))),
            ev(0x20, Event::Annot(Annotation::Free { base: 0x9000 })),
            ev(0x24, Event::MemWrite(MemRef::word(0x9000))),
            ev(0x28, Event::Annot(Annotation::Free { base: 0x9000 })),
        ];
        let mut batched = AddrCheck::new(&AccelConfig::baseline());
        let mut looped = AddrCheck::new(&AccelConfig::baseline());
        let mut c1 = CostSink::new();
        let mut c2 = CostSink::new();
        batched.handle_batch(&events, &mut c1);
        for e in &events {
            looped.handle(e, &mut c2);
        }
        assert_eq!(batched.take_violations(), looped.take_violations());
        assert_eq!(c1.instrs(), c2.instrs());
        assert_eq!(c1.mem_vas(), c2.mem_vas());
        assert_eq!(batched.checks(), looped.checks());
    }

    #[test]
    fn etct_shares_cc_for_loads_and_stores() {
        let lg = AddrCheck::new(&AccelConfig::baseline());
        let etct = lg.etct();
        let r = etct.if_config(EventType::MemRead);
        let w = etct.if_config(EventType::MemWrite);
        assert!(r.cacheable && w.cacheable);
        assert_eq!(r.cc, w.cc);
        assert!(etct.if_config(EventType::Malloc).invalidate_all);
    }
}
