//! Four tenant applications, four different lifeguards, one monitor pool.
//!
//! Each tenant streams its own synthetic benchmark trace through a bounded
//! log channel into the shared `MonitorPool`; every session owns a private
//! lifeguard + shadow-memory shard on its worker. Run with:
//!
//! ```sh
//! cargo run --release --example concurrent_monitoring
//! ```

use igm::lifeguards::LifeguardKind;
use igm::runtime::{stats_table, MonitorPool, PoolConfig, SessionConfig};
use igm::workload::{Benchmark, MtBenchmark};

fn main() {
    const N: u64 = 200_000;
    let pool = MonitorPool::new(PoolConfig::with_workers(4));
    let violations = pool.violation_stream().expect("first taker");

    // (tenant, lifeguard, single-threaded workload or the LockSet MT one)
    let tenants: [(&str, LifeguardKind, Option<Benchmark>); 4] = [
        ("gzip", LifeguardKind::AddrCheck, Some(Benchmark::Gzip)),
        ("mcf", LifeguardKind::MemCheck, Some(Benchmark::Mcf)),
        ("gcc", LifeguardKind::TaintCheck, Some(Benchmark::Gcc)),
        ("zchaff", LifeguardKind::LockSet, None),
    ];

    println!("streaming {N} records per tenant through a 4-worker pool…\n");
    let reports = std::thread::scope(|scope| {
        let handles: Vec<_> = tenants
            .iter()
            .map(|(name, kind, bench)| {
                let premark = match bench {
                    Some(b) => b.profile().premark_regions(),
                    None => MtBenchmark::Zchaff.trace(N).premark_regions(),
                };
                let session = pool
                    .open_session(SessionConfig::new(*name, *kind).synthetic().premark(&premark));
                let bench = *bench;
                scope.spawn(move || {
                    match bench {
                        Some(b) => session.stream(b.trace(N)).unwrap(),
                        None => session.stream(MtBenchmark::Zchaff.trace(N)).unwrap(),
                    }
                    session.finish()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
    });

    print!("{}", stats_table(&reports));

    let pool_stats = pool.stats();
    println!(
        "\npool: {} sessions, {:.0} records/s aggregate, {} events delivered, {} steals",
        pool_stats.sessions_closed,
        pool_stats.records_per_sec(),
        pool_stats.events_delivered,
        pool_stats.steals,
    );
    for v in violations.drain().into_iter().take(5) {
        println!("violation [{}/{}]: {:?}", v.tenant, v.lifeguard, v.violation);
    }
    pool.shutdown();
}
