//! The sharded lifeguard worker pool.
//!
//! A [`MonitorPool`] owns N worker threads — the software analogue of a pool
//! of lifeguard cores behind the LBA transport fabric. Each *tenant* (an
//! independent monitored application) opens a [`SessionHandle`]: the session
//! is pinned to one worker (its lifeguard shard), and the tenant streams
//! batched log records through a bounded [`log_channel`](crate::log_channel)
//! exactly as the application core streams into the in-cache log buffer.
//! The worker owns the session's lifeguard, dispatch pipeline and shadow
//! memory shard outright — no shared metadata, no locks on the hot path —
//! so N workers monitor N tenants with linear parallelism.
//!
//! Workers also execute [`EpochJob`]s for the epoch-parallel path (see
//! [`crate::epoch`]), interleaved with session traffic; one job occupies
//! its worker for at most one epoch's worth of records (the sequential
//! fallback runs on the caller's thread, not a worker).

use crate::spsc::{log_channel, ChannelStatsSnapshot, LogConsumer, LogProducer, SendError};
use crate::stats::{PoolStats, PoolStatsSnapshot, SessionReport};
use igm_core::{AccelConfig, DispatchPipeline};
use igm_isa::TraceEntry;
use igm_lba::chunks;
use igm_lifeguards::{CostSink, Lifeguard, LifeguardKind, Violation};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Pool construction parameters.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker (lifeguard shard) threads.
    pub workers: usize,
    /// Per-session log channel capacity in compressed-record bytes
    /// (defaults to the paper's 64 KB buffer).
    pub channel_capacity_bytes: u32,
    /// Producer-side batch size in compressed-record bytes.
    pub chunk_bytes: u32,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            workers: 4,
            channel_capacity_bytes: igm_lba::buffer::DEFAULT_CAPACITY_BYTES,
            chunk_bytes: 4096,
        }
    }
}

impl PoolConfig {
    /// A pool with `workers` workers and default transport sizes.
    pub fn with_workers(workers: usize) -> PoolConfig {
        PoolConfig { workers, ..PoolConfig::default() }
    }
}

/// Per-tenant monitoring configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Tenant label for reports and the violation stream.
    pub name: String,
    /// Which lifeguard monitors this tenant.
    pub lifeguard: LifeguardKind,
    /// Requested accelerators (masked by the lifeguard's Figure 2 row).
    pub accel: AccelConfig,
    /// Synthetic-workload mode (see
    /// [`igm_lifeguards::Lifeguard::set_synthetic_workload_mode`]).
    pub synthetic_workload: bool,
    /// Loader-established regions pre-marked before monitoring starts.
    pub premark: Vec<(u32, u32)>,
}

impl SessionConfig {
    /// A baseline (unaccelerated) session.
    pub fn new(name: impl Into<String>, lifeguard: LifeguardKind) -> SessionConfig {
        SessionConfig {
            name: name.into(),
            lifeguard,
            accel: AccelConfig::baseline(),
            synthetic_workload: false,
            premark: Vec::new(),
        }
    }

    /// Replaces the accelerator configuration.
    pub fn accel(mut self, accel: AccelConfig) -> SessionConfig {
        self.accel = accel;
        self
    }

    /// Enables synthetic-workload mode.
    pub fn synthetic(mut self) -> SessionConfig {
        self.synthetic_workload = true;
        self
    }

    /// Adds pre-marked regions.
    pub fn premark(mut self, regions: &[(u32, u32)]) -> SessionConfig {
        self.premark.extend_from_slice(regions);
        self
    }

    pub(crate) fn build_lifeguard(&self) -> Box<dyn Lifeguard + Send> {
        let mut lg = self.lifeguard.build(&self.accel);
        if self.synthetic_workload {
            lg.set_synthetic_workload_mode(true);
        }
        for (base, len) in &self.premark {
            lg.premark_region(*base, *len);
        }
        lg
    }
}

/// Identifies a session within a pool.
pub type SessionId = u64;

/// One violation, tagged with its reporting session, flowing through the
/// pool's aggregated [`ViolationStream`].
#[derive(Debug, Clone)]
pub struct PoolViolation {
    /// Reporting session.
    pub session: SessionId,
    /// Tenant label.
    pub tenant: String,
    /// Which lifeguard reported.
    pub lifeguard: LifeguardKind,
    /// The violation itself.
    pub violation: Violation,
}

/// Aggregated, pool-wide stream of violations in arrival order (per-session
/// order is preserved; cross-session order is arrival order).
#[derive(Debug)]
pub struct ViolationStream {
    rx: Receiver<PoolViolation>,
}

impl ViolationStream {
    /// Drains everything currently available without blocking.
    pub fn drain(&self) -> Vec<PoolViolation> {
        self.rx.try_iter().collect()
    }

    /// Blocks up to `timeout` for the next violation.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<PoolViolation> {
        self.rx.recv_timeout(timeout).ok()
    }
}

/// A worker wake-up doorbell: producers ring it after publishing a batch so
/// an idle worker re-polls its sessions immediately instead of waiting out
/// its park interval.
#[derive(Debug, Default)]
pub(crate) struct Doorbell {
    pending: Mutex<bool>,
    bell: Condvar,
}

impl Doorbell {
    pub(crate) fn ring(&self) {
        let mut pending = self.pending.lock().unwrap();
        *pending = true;
        drop(pending);
        self.bell.notify_one();
    }

    fn wait(&self, timeout: Duration) {
        let mut pending = self.pending.lock().unwrap();
        if !*pending {
            let (guard, _) = self.bell.wait_timeout(pending, timeout).unwrap();
            pending = guard;
        }
        *pending = false;
    }
}

/// An epoch of records checked against a snapshotted lifeguard shard (see
/// [`crate::epoch`]).
pub(crate) struct EpochJob {
    pub index: usize,
    pub lifeguard: Box<dyn Lifeguard + Send>,
    pub pipeline: DispatchPipeline,
    pub records: Vec<TraceEntry>,
    pub done: Sender<EpochResult>,
}

/// Result of one [`EpochJob`].
#[derive(Debug)]
pub(crate) struct EpochResult {
    pub index: usize,
    pub violations: Vec<Violation>,
    pub delivered: u64,
}

struct SessionTask {
    id: SessionId,
    name: String,
    lifeguard_kind: LifeguardKind,
    lifeguard: Box<dyn Lifeguard + Send>,
    pipeline: DispatchPipeline,
    consumer: LogConsumer,
    done: Sender<SessionReport>,
    opened: Instant,
}

enum WorkerMsg {
    Open(SessionTask),
    Epoch(EpochJob),
    Shutdown,
}

struct WorkerHandle {
    tx: Sender<WorkerMsg>,
    doorbell: Arc<Doorbell>,
    join: Option<JoinHandle<()>>,
}

/// The streaming, multi-tenant monitoring runtime.
///
/// # Example
///
/// ```
/// use igm_lifeguards::LifeguardKind;
/// use igm_runtime::{MonitorPool, PoolConfig, SessionConfig};
/// use igm_isa::{Annotation, OpClass, MemRef, Reg, TraceEntry};
///
/// let pool = MonitorPool::new(PoolConfig::with_workers(2));
/// let session = pool.open_session(SessionConfig::new("app0", LifeguardKind::AddrCheck));
/// session.send_batch(vec![
///     TraceEntry::annot(0x1000, Annotation::Malloc { base: 0x9000, size: 64 }),
///     TraceEntry::op(0x1004, OpClass::MemToReg { src: MemRef::word(0x9000), rd: Reg::Eax }),
///     // Touches one byte past the allocation: a violation.
///     TraceEntry::op(0x1008, OpClass::MemToReg { src: MemRef::word(0x9040), rd: Reg::Ecx }),
/// ]).unwrap();
/// let report = session.finish();
/// assert_eq!(report.records, 3);
/// assert_eq!(report.violations.len(), 1);
/// pool.shutdown();
/// ```
pub struct MonitorPool {
    workers: Vec<WorkerHandle>,
    next_worker: AtomicUsize,
    next_session: AtomicU64,
    stats: Arc<PoolStats>,
    violations_rx: Mutex<Option<Receiver<PoolViolation>>>,
    stream_taken: Arc<AtomicBool>,
    chunk_bytes: u32,
    channel_capacity_bytes: u32,
}

impl MonitorPool {
    /// Spawns the worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.workers` is zero.
    pub fn new(cfg: PoolConfig) -> MonitorPool {
        assert!(cfg.workers > 0, "a pool needs at least one worker");
        let stats = Arc::new(PoolStats::default());
        let stream_taken = Arc::new(AtomicBool::new(false));
        let (vtx, vrx) = mpsc::channel();
        let workers = (0..cfg.workers)
            .map(|i| {
                let (tx, rx) = mpsc::channel();
                let doorbell = Arc::new(Doorbell::default());
                let bell = Arc::clone(&doorbell);
                let wstats = Arc::clone(&stats);
                let wvtx = vtx.clone();
                let wtaken = Arc::clone(&stream_taken);
                let join = std::thread::Builder::new()
                    .name(format!("igm-worker-{i}"))
                    .spawn(move || worker_main(rx, bell, wstats, wvtx, wtaken))
                    .expect("spawn lifeguard worker");
                WorkerHandle { tx, doorbell, join: Some(join) }
            })
            .collect();
        MonitorPool {
            workers,
            next_worker: AtomicUsize::new(0),
            next_session: AtomicU64::new(0),
            stats,
            violations_rx: Mutex::new(Some(vrx)),
            stream_taken,
            chunk_bytes: cfg.chunk_bytes,
            channel_capacity_bytes: cfg.channel_capacity_bytes,
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Picks the next worker round-robin.
    fn pick_worker(&self) -> &WorkerHandle {
        let i = self.next_worker.fetch_add(1, Ordering::Relaxed) % self.workers.len();
        &self.workers[i]
    }

    /// Opens a tenant session: builds the lifeguard shard, pins it to a
    /// worker and returns the producer-side handle.
    pub fn open_session(&self, cfg: SessionConfig) -> SessionHandle {
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        let lifeguard = cfg.build_lifeguard();
        let masked = cfg.lifeguard.mask_config(&cfg.accel);
        let pipeline = DispatchPipeline::new(lifeguard.etct(), &masked);
        let (producer, consumer) = log_channel(self.channel_capacity_bytes);
        let (done_tx, done_rx) = mpsc::channel();
        let task = SessionTask {
            id,
            name: cfg.name,
            lifeguard_kind: cfg.lifeguard,
            lifeguard,
            pipeline,
            consumer,
            done: done_tx,
            opened: Instant::now(),
        };
        let worker = self.pick_worker();
        self.stats.sessions_opened.fetch_add(1, Ordering::Relaxed);
        worker.tx.send(WorkerMsg::Open(task)).expect("worker thread alive while pool exists");
        worker.doorbell.ring();
        SessionHandle {
            id,
            producer: Some(producer),
            doorbell: Arc::clone(&worker.doorbell),
            done: done_rx,
            chunk_bytes: self.chunk_bytes,
        }
    }

    /// Submits an epoch job to the next worker (round-robin).
    pub(crate) fn submit_epoch(&self, job: EpochJob) {
        let worker = self.pick_worker();
        worker.tx.send(WorkerMsg::Epoch(job)).expect("worker thread alive while pool exists");
        worker.doorbell.ring();
    }

    /// Takes the pool-wide violation stream. Yields `Some` on the first
    /// call, `None` afterwards (single consumer).
    ///
    /// Workers forward violations into the stream only from the moment it
    /// is taken (earlier ones are still in their session's
    /// [`SessionReport::violations`]); take the stream before opening
    /// sessions to observe everything.
    pub fn violation_stream(&self) -> Option<ViolationStream> {
        let taken = self.violations_rx.lock().unwrap().take().map(|rx| ViolationStream { rx });
        if taken.is_some() {
            self.stream_taken.store(true, Ordering::Relaxed);
        }
        taken
    }

    /// A point-in-time view of the pool's aggregate counters.
    pub fn stats(&self) -> PoolStatsSnapshot {
        self.stats.snapshot()
    }

    /// Stops the workers and joins the threads; called implicitly on drop.
    ///
    /// Sessions whose producers already finished are finalized normally.
    /// A session whose [`SessionHandle`] is still live is *terminated*:
    /// buffered batches are drained, the session is finalized, and further
    /// `send_batch` calls on the handle fail with [`SendError`] — shutdown
    /// never deadlocks waiting on a producer that will not close.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for w in &self.workers {
            // The worker may already be gone if shutdown raced a panic.
            let _ = w.tx.send(WorkerMsg::Shutdown);
            w.doorbell.ring();
        }
        for w in &mut self.workers {
            if let Some(join) = w.join.take() {
                if join.join().is_err() {
                    eprintln!("igm-runtime: a lifeguard worker panicked");
                }
            }
        }
    }
}

impl Drop for MonitorPool {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Producer-side handle for one tenant session.
///
/// Dropping the handle without [`SessionHandle::finish`] closes the log
/// channel; the worker still drains buffered records and finalizes the
/// session, but the report is discarded.
pub struct SessionHandle {
    id: SessionId,
    producer: Option<LogProducer>,
    doorbell: Arc<Doorbell>,
    done: Receiver<SessionReport>,
    chunk_bytes: u32,
}

impl SessionHandle {
    /// The session's pool-wide id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Publishes one pre-batched chunk of records (blocks on backpressure).
    pub fn send_batch(&self, batch: Vec<TraceEntry>) -> Result<(), SendError> {
        let r = self.producer.as_ref().expect("producer present until finish").send_batch(batch);
        self.doorbell.ring();
        r
    }

    /// Streams a whole trace, batching it with [`igm_lba::chunks`] at the
    /// pool's configured chunk size.
    pub fn stream(&self, trace: impl IntoIterator<Item = TraceEntry>) -> Result<(), SendError> {
        for batch in chunks(trace, self.chunk_bytes) {
            self.send_batch(batch)?;
        }
        Ok(())
    }

    /// Transport counters for this session's log channel.
    pub fn channel_stats(&self) -> ChannelStatsSnapshot {
        self.producer.as_ref().expect("producer present until finish").stats()
    }

    /// Closes the log channel and blocks until the worker has drained and
    /// finalized the session.
    pub fn finish(mut self) -> SessionReport {
        drop(self.producer.take()); // close the channel
        self.doorbell.ring();
        self.done
            .recv()
            .expect("session failed before finalize (lifeguard panic on this tenant; see stderr)")
    }
}

impl Drop for SessionHandle {
    fn drop(&mut self) {
        // Close the channel (if finish() didn't already) and wake the
        // worker so an abandoned session is drained and finalized promptly
        // rather than on the park-timeout safety net.
        drop(self.producer.take());
        self.doorbell.ring();
    }
}

// ---------------------------------------------------------------------------
// Worker side.
// ---------------------------------------------------------------------------

struct ActiveSession {
    task: SessionTask,
    cost: CostSink,
    records: u64,
    violations: Vec<Violation>,
}

impl ActiveSession {
    /// Processes up to `max_batches` buffered batches; returns how many were
    /// processed.
    fn pump(
        &mut self,
        max_batches: usize,
        stats: &PoolStats,
        vtx: &Sender<PoolViolation>,
        stream_taken: &AtomicBool,
    ) -> usize {
        let mut processed = 0;
        while processed < max_batches {
            let Some(batch) = self.task.consumer.try_recv_batch() else { break };
            processed += 1;
            self.records += batch.len() as u64;
            let lg = &mut self.task.lifeguard;
            let cost = &mut self.cost;
            for entry in &batch {
                self.task.pipeline.dispatch(entry, |dev| {
                    cost.clear();
                    lg.handle(&dev, cost);
                });
            }
            stats.records.fetch_add(batch.len() as u64, Ordering::Relaxed);
            let fresh = self.task.lifeguard.take_violations();
            if !fresh.is_empty() {
                stats.violations.fetch_add(fresh.len() as u64, Ordering::Relaxed);
                // Forward to the aggregated stream only once someone holds
                // it; otherwise an untaken stream would buffer violations
                // unboundedly for the pool's lifetime. (They are always
                // retained in the session report below.)
                if stream_taken.load(Ordering::Relaxed) {
                    for v in &fresh {
                        let _ = vtx.send(PoolViolation {
                            session: self.task.id,
                            tenant: self.task.name.clone(),
                            lifeguard: self.task.lifeguard_kind,
                            violation: *v,
                        });
                    }
                }
                self.violations.extend(fresh);
            }
        }
        processed
    }

    fn finished(&self) -> bool {
        self.task.consumer.is_drained()
    }

    fn finalize(mut self, stats: &PoolStats) {
        // Flush any violations reported after the last pump (none today,
        // but harmless and future-proof against buffering handlers).
        self.violations.extend(self.task.lifeguard.take_violations());
        stats.sessions_closed.fetch_add(1, Ordering::Relaxed);
        stats.events_delivered.fetch_add(self.task.pipeline.stats().delivered, Ordering::Relaxed);
        let report = SessionReport {
            id: self.task.id,
            name: self.task.name.clone(),
            lifeguard: self.task.lifeguard_kind,
            records: self.records,
            dispatch: self.task.pipeline.stats().clone(),
            violations: self.violations,
            metadata_bytes: self.task.lifeguard.metadata_bytes(),
            channel: self.task.consumer.stats(),
            wall: self.task.opened.elapsed(),
        };
        // The handle may have been dropped; the report is then discarded.
        let _ = self.task.done.send(report);
    }
}

/// Batches one worker processes from a session before rotating to the next
/// (fairness bound).
const BATCHES_PER_TURN: usize = 4;

fn worker_main(
    ctrl: Receiver<WorkerMsg>,
    doorbell: Arc<Doorbell>,
    stats: Arc<PoolStats>,
    vtx: Sender<PoolViolation>,
    stream_taken: Arc<AtomicBool>,
) {
    let mut sessions: Vec<ActiveSession> = Vec::new();
    let mut accepting = true;
    loop {
        while let Ok(msg) = ctrl.try_recv() {
            match msg {
                WorkerMsg::Open(task) => sessions.push(ActiveSession {
                    task,
                    cost: CostSink::new(),
                    records: 0,
                    violations: Vec::new(),
                }),
                WorkerMsg::Epoch(job) => run_epoch_job_guarded(job, &stats),
                WorkerMsg::Shutdown => accepting = false,
            }
        }
        let mut progress = false;
        let mut i = 0;
        while i < sessions.len() {
            // Panic isolation: one tenant's handler panicking must not take
            // down the other sessions sharded onto this worker.
            let pumped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                sessions[i].pump(BATCHES_PER_TURN, &stats, &vtx, &stream_taken)
            }));
            match pumped {
                Ok(n) => {
                    progress |= n > 0;
                    // After Shutdown, finalize unconditionally after one last
                    // pump: shutdown *terminates*. An actively streaming
                    // producer observes `SendError` once the consumer drops
                    // (records it had buffered beyond this turn are lost);
                    // waiting for it to drain could block for the producer's
                    // whole lifetime.
                    if sessions[i].finished() || !accepting {
                        sessions.swap_remove(i).finalize(&stats);
                    } else {
                        i += 1;
                    }
                }
                Err(_) => {
                    let failed = sessions.swap_remove(i);
                    eprintln!(
                        "igm-runtime: lifeguard panicked in session {} ({}); session dropped",
                        failed.task.id, failed.task.name
                    );
                    // Dropping the task closes the channel (producer sees
                    // SendError) and the report sender (finish() reports
                    // the failure); the other sessions keep running.
                    progress = true;
                }
            }
        }
        if !accepting && sessions.is_empty() {
            // Drain any epoch jobs that raced the shutdown message.
            while let Ok(msg) = ctrl.try_recv() {
                if let WorkerMsg::Epoch(job) = msg {
                    run_epoch_job_guarded(job, &stats);
                }
            }
            return;
        }
        if !progress {
            // Every producer-side state change rings the doorbell (batch
            // published, session opened/finished/dropped, epoch submitted,
            // shutdown); the timeout is only a safety net, so it can be
            // generous without adding latency.
            doorbell.wait(Duration::from_millis(25));
        }
    }
}

/// Runs an epoch job, containing panics to the job: a panicking handler
/// drops the job's result sender, which the epoch driver detects as a
/// missing epoch (it refuses to return a truncated violation set).
fn run_epoch_job_guarded(job: EpochJob, stats: &PoolStats) {
    let index = job.index;
    if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_epoch_job(job, stats))).is_err()
    {
        eprintln!("igm-runtime: lifeguard panicked in epoch job {index}; epoch dropped");
    }
}

fn run_epoch_job(mut job: EpochJob, stats: &PoolStats) {
    let mut cost = CostSink::new();
    for entry in &job.records {
        let lg = &mut job.lifeguard;
        job.pipeline.dispatch(entry, |dev| {
            cost.clear();
            lg.handle(&dev, &mut cost);
        });
    }
    stats.records.fetch_add(job.records.len() as u64, Ordering::Relaxed);
    stats.epoch_jobs.fetch_add(1, Ordering::Relaxed);
    stats.events_delivered.fetch_add(job.pipeline.stats().delivered, Ordering::Relaxed);
    let violations = job.lifeguard.take_violations();
    stats.violations.fetch_add(violations.len() as u64, Ordering::Relaxed);
    let _ = job.done.send(EpochResult {
        index: job.index,
        violations,
        delivered: job.pipeline.stats().delivered,
    });
}
