//! Epoch-chunked parallel monitoring of a single hot application.
//!
//! The trace is cut into fixed-size *epochs*. A sequential **spine** applies
//! only the metadata-*updating* events (propagation and annotations) to a
//! lifeguard instance, snapshotting the full shadow state at every epoch
//! boundary (an [`AnyLifeguard`] clone). Each epoch is
//! then **checked** on a pool worker: the worker replays the epoch's full
//! event stream — updates *and* checks — against the boundary snapshot, so
//! every check observes exactly the shadow state the sequential monitor
//! would have shown it. Epoch results merge back in epoch order, yielding a
//! violation sequence identical to sequential monitoring.
//!
//! The spine may elide an event only when its handler is metadata-pure —
//! then skipping it cannot perturb the shadow-state evolution. That is the
//! runtime's per-lifeguard, per-event capability mask (the analogue of the
//! paper's Figure 2 applicability matrix,
//! [`LifeguardKind::spine_elides`]): AddrCheck and both TaintChecks elide
//! every check; MemCheck elides only its accessibility checks (its `Check`
//! handlers write cascade-suppression state and stay on the spine); LockSet
//! elides nothing — its spine runs the full stream, and the parallelism it
//! gains is the overlap between consecutive epochs' check replays. Every
//! lifeguard takes the parallel path; there is no sequential fallback.
//!
//! The per-core accelerators (IT, IF) are hardware units whose state spans
//! epoch boundaries on a single consumer core; the epoch-parallel software
//! path masks them off (keeping `LMA`/M-TLB, which is a pure translation
//! cache). Epoch throughput therefore trades accelerator filtering for
//! parallel width.

use crate::pool::{EpochJob, MonitorPool, SessionConfig};
use igm_core::{AccelConfig, DispatchPipeline};
use igm_isa::TraceEntry;
use igm_lba::{Event, EventBuf, TraceBatch};
use igm_lifeguards::{AnyLifeguard, CostSink, Lifeguard, LifeguardKind, Violation};
use std::sync::mpsc;

/// Default records per epoch.
pub const DEFAULT_EPOCH_RECORDS: usize = 8_192;

/// How epoch record budgets are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochConfig {
    /// Every epoch holds exactly this many records (the default).
    Fixed(usize),
    /// The next epoch's record budget scales with the *check density* the
    /// previous epoch observed ([`adaptive_next_budget`]): check-heavy
    /// phases get shorter epochs (snapshots amortize over less replayed
    /// work, results merge back sooner), check-light phases get longer
    /// ones (fewer shadow-state snapshots per record). The first epoch
    /// uses `initial`; every budget is clamped to `[min, max]`.
    Adaptive {
        /// First epoch's record budget.
        initial: usize,
        /// Lower clamp for every budget.
        min: usize,
        /// Upper clamp for every budget.
        max: usize,
        /// Check events an epoch should deliver — the feedback target.
        target_checks: u64,
    },
}

impl Default for EpochConfig {
    fn default() -> EpochConfig {
        EpochConfig::Fixed(DEFAULT_EPOCH_RECORDS)
    }
}

impl EpochConfig {
    /// A reasonable adaptive configuration centred on
    /// [`DEFAULT_EPOCH_RECORDS`]: budgets float between 1/8× and 8× the
    /// default, targeting the check volume a default epoch of a
    /// typical (≈1 check/record) workload would deliver.
    pub fn adaptive() -> EpochConfig {
        EpochConfig::Adaptive {
            initial: DEFAULT_EPOCH_RECORDS,
            min: DEFAULT_EPOCH_RECORDS / 8,
            max: DEFAULT_EPOCH_RECORDS * 8,
            target_checks: DEFAULT_EPOCH_RECORDS as u64,
        }
    }

    pub(crate) fn initial_budget(&self) -> usize {
        match *self {
            EpochConfig::Fixed(n) => n,
            EpochConfig::Adaptive { initial, min, max, .. } => initial.clamp(min, max),
        }
    }

    /// The budget following an epoch that held `records` records and
    /// delivered `checks` check events.
    pub(crate) fn next_budget(&self, records: usize, checks: u64) -> usize {
        match *self {
            EpochConfig::Fixed(n) => n,
            EpochConfig::Adaptive { min, max, target_checks, .. } => {
                adaptive_next_budget(records, checks, target_checks, min, max)
            }
        }
    }

    /// Re-clamps a budget carried over from an earlier pipelined stretch.
    /// The pool keeps a session's last adaptive budget across pipeline
    /// exit/re-entry so a hot phase resumes where it left off, but the
    /// carried value must still honor the configuration's `min`/`max` (the
    /// config may not be the one that produced it).
    pub(crate) fn clamp_budget(&self, budget: usize) -> usize {
        match *self {
            EpochConfig::Fixed(n) => n,
            EpochConfig::Adaptive { min, max, .. } => budget.clamp(min, max),
        }
    }
}

/// The adaptive feedback rule: the next epoch's record budget is the
/// record count at which the *previous* epoch's observed check density
/// (`checks / records`) would deliver exactly `target_checks` checks,
/// clamped to `[min, max]`. An epoch that observed no checks at all jumps
/// straight to `max` (nothing to amortize against), so idle phases are
/// spanned by the longest epochs the configuration allows.
pub fn adaptive_next_budget(
    records: usize,
    checks: u64,
    target_checks: u64,
    min: usize,
    max: usize,
) -> usize {
    if records == 0 || checks == 0 {
        return max.max(min);
    }
    // next = target / density = target * records / checks, in integer
    // arithmetic (u128 so huge targets cannot overflow).
    let next = (target_checks as u128 * records as u128 / checks as u128) as usize;
    next.clamp(min, max)
}

/// Outcome of an epoch-parallel run.
#[derive(Debug)]
pub struct EpochReport {
    /// Which lifeguard ran.
    pub lifeguard: LifeguardKind,
    /// Number of epochs executed.
    pub epochs: usize,
    /// Records monitored.
    pub records: u64,
    /// Events delivered to handlers across all epoch jobs.
    pub delivered: u64,
    /// Violations in sequential trace order.
    pub violations: Vec<Violation>,
}

/// Is `ev` a checking event? This classification feeds the adaptive epoch
/// sizing (check density) for every lifeguard; whether the spine may *skip*
/// the event is the separate, per-lifeguard [`LifeguardKind::spine_elides`].
pub(crate) fn is_check_event(ev: &Event) -> bool {
    matches!(ev, Event::Check { .. } | Event::MemRead(_) | Event::MemWrite(_))
}

/// Runs `trace` under `cfg.lifeguard`, checking epochs of `epoch_records`
/// records in parallel on `pool`'s workers.
///
/// The session's accelerator request is masked down to translation-only
/// (no IT/IF) in both paths, so parallel and fallback results are directly
/// comparable and independent of cross-epoch accelerator state.
pub fn monitor_epoch_parallel(
    pool: &MonitorPool,
    cfg: &SessionConfig,
    trace: impl IntoIterator<Item = TraceEntry>,
    epoch_records: usize,
) -> EpochReport {
    monitor_epoch_parallel_with(pool, cfg, trace, EpochConfig::Fixed(epoch_records))
}

/// Like [`monitor_epoch_parallel`], with the epoch sizing policy made
/// explicit — [`EpochConfig::Adaptive`] re-budgets every epoch from the
/// previous epoch's observed check density.
pub fn monitor_epoch_parallel_with(
    pool: &MonitorPool,
    cfg: &SessionConfig,
    trace: impl IntoIterator<Item = TraceEntry>,
    epoch: EpochConfig,
) -> EpochReport {
    match epoch {
        EpochConfig::Fixed(n) => assert!(n > 0, "epochs must hold at least one record"),
        EpochConfig::Adaptive { initial, min, max, .. } => {
            assert!(min > 0 && initial > 0, "epochs must hold at least one record");
            assert!(min <= max, "adaptive epoch bounds must satisfy min <= max");
        }
    }
    let accel =
        AccelConfig { it: None, if_geometry: None, ..cfg.lifeguard.mask_config(&cfg.accel) };
    let cfg = SessionConfig { accel, ..cfg.clone() };
    run_parallel(pool, &cfg, trace, epoch)
}

fn run_parallel(
    pool: &MonitorPool,
    cfg: &SessionConfig,
    trace: impl IntoIterator<Item = TraceEntry>,
    epoch: EpochConfig,
) -> EpochReport {
    let lifeguard = cfg.build_lifeguard();
    let pipeline = DispatchPipeline::new(lifeguard.etct(), &cfg.accel);
    let mut spine = Spine {
        lifeguard,
        pipeline,
        cost: CostSink::new(),
        events: EventBuf::new(),
        updates: Vec::new(),
    };
    let (tx, rx) = mpsc::channel();

    // The update-only spine is much cheaper per record than the full
    // replay the workers do, so without backpressure it would clone and
    // queue nearly the whole trace as in-flight epochs. Bound outstanding
    // jobs (each holding an epoch's record buffer) to a small multiple of
    // the worker count, collecting results as we go.
    let max_in_flight = 2 * pool.workers() + 1;
    let mut in_flight = 0usize;
    let mut results: Vec<crate::pool::EpochResult> = Vec::new();
    // Completed jobs hand their record buffers back through the result;
    // recycling them caps the run at ~max_in_flight epoch-sized
    // allocations total instead of one per epoch.
    let mut recycled: Vec<TraceBatch> = Vec::new();
    let collect_one = |results: &mut Vec<crate::pool::EpochResult>,
                       recycled: &mut Vec<TraceBatch>| {
        // A worker that panicked drops its job's sender without
        // replying; fail loudly instead of hanging on a result that
        // never comes.
        let mut r: crate::pool::EpochResult = rx
            .recv_timeout(std::time::Duration::from_secs(300))
            .expect("an epoch worker failed or stalled (see stderr); aborting merge");
        assert!(!r.failed, "epoch {} job panicked; the violation set would be incomplete", r.index);
        recycled.append(&mut r.records);
        results.push(r);
    };

    let mut epochs = 0usize;
    let mut records = 0u64;
    let mut budget = epoch.initial_budget();
    let mut buf = TraceBatch::with_capacity(budget);
    for entry in trace {
        buf.push(&entry);
        records += 1;
        if buf.len() >= budget {
            let epoch_len = buf.len();
            let empty = recycled.pop().unwrap_or_default();
            let first = records - epoch_len as u64;
            let checks = dispatch_epoch(pool, cfg, &mut spine, &mut buf, empty, epochs, first, &tx);
            // Adaptive sizing: re-budget the next epoch from the check
            // density this one observed (a no-op under Fixed sizing).
            budget = epoch.next_budget(epoch_len, checks);
            epochs += 1;
            in_flight += 1;
            while in_flight >= max_in_flight {
                collect_one(&mut results, &mut recycled);
                in_flight -= 1;
            }
        }
    }
    if !buf.is_empty() {
        let empty = recycled.pop().unwrap_or_default();
        let first = records - buf.len() as u64;
        dispatch_epoch(pool, cfg, &mut spine, &mut buf, empty, epochs, first, &tx);
        epochs += 1;
        in_flight += 1;
    }
    while in_flight > 0 {
        collect_one(&mut results, &mut recycled);
        in_flight -= 1;
    }
    drop(tx);

    // Merge in epoch order: the concatenation equals the sequential
    // violation sequence.
    results.sort_by_key(|r| r.index);
    // A missing epoch means a worker dropped the job (lifeguard panic):
    // refuse to return a silently truncated violation set.
    assert_eq!(
        results.len(),
        epochs,
        "epoch worker(s) failed: only {}/{} epochs reported; the violation set would be incomplete",
        results.len(),
        epochs
    );
    let delivered = results.iter().map(|r| r.delivered).sum();
    let violations = results.into_iter().flat_map(|r| r.violations).collect();
    EpochReport { lifeguard: cfg.lifeguard, epochs, records, delivered, violations }
}

/// The sequential update-only spine: a lifeguard advanced over propagation
/// and annotation events only, with reusable batch staging buffers.
struct Spine {
    lifeguard: AnyLifeguard,
    pipeline: DispatchPipeline,
    cost: CostSink,
    events: EventBuf,
    updates: Vec<igm_lba::DeliveredEvent>,
}

/// Ships `buf` as epoch `index`: snapshot → advance the spine over the
/// epoch's updating events (one columnar dispatch pass) → hand the epoch's
/// record batch itself to the parallel check job, leaving the (recycled)
/// `empty` arena in its place — no per-epoch record copy. Returns the
/// number of *check* events the epoch delivered, the signal the adaptive
/// sizing feedback rule consumes.
#[allow(clippy::too_many_arguments)]
fn dispatch_epoch(
    pool: &MonitorPool,
    cfg: &SessionConfig,
    spine: &mut Spine,
    buf: &mut TraceBatch,
    mut empty: TraceBatch,
    index: usize,
    first_record: u64,
    tx: &mpsc::Sender<crate::pool::EpochResult>,
) -> u64 {
    // The snapshot is an ordinary clone of the spine's shadow state at the
    // epoch *boundary* (AnyLifeguard is Clone), taken before the spine
    // advances; the worker replays the epoch's full event stream against
    // it.
    let snapshot = spine.lifeguard.clone();
    let pipeline = DispatchPipeline::new(snapshot.etct(), &cfg.accel);
    // Spine advance with per-lifeguard elision: events whose handlers are
    // metadata-pure for this lifeguard are skipped here — the epoch job
    // replays them against the snapshot instead.
    spine.pipeline.dispatch_batch(buf, &mut spine.events);
    spine.updates.clear();
    spine
        .updates
        .extend(spine.events.events().iter().filter(|d| !cfg.lifeguard.spine_elides(&d.event)));
    let checks = spine.events.events().iter().filter(|d| is_check_event(&d.event)).count() as u64;
    spine.cost.clear();
    spine.lifeguard.handle_batch(&spine.updates, &mut spine.cost);
    // Spine-side violations are duplicates of what the epoch job will
    // report with exact state (non-elided handlers may report); discard so
    // snapshots always start with an empty violation list.
    let _ = spine.lifeguard.take_violations();
    empty.clear();
    let records = std::mem::replace(buf, empty);
    pool.submit_epoch(EpochJob {
        index,
        lifeguard: snapshot,
        pipeline,
        first_record,
        records: vec![records],
        done: tx.clone(),
        pipelined: None,
    });
    checks
}

#[cfg(test)]
mod tests {
    use super::*;
    use igm_isa::{Annotation, MemRef, OpClass, Reg};

    #[test]
    fn check_event_classification() {
        assert!(is_check_event(&Event::MemRead(MemRef::word(0x9000))));
        assert!(is_check_event(&Event::MemWrite(MemRef::word(0x9000))));
        assert!(!is_check_event(&Event::Prop(OpClass::ImmToReg { rd: Reg::Eax })));
        assert!(!is_check_event(&Event::Annot(Annotation::Free { base: 0x9000 })));
    }

    /// Pins the adaptive feedback rule: next budget = the record count at
    /// which the previous epoch's check density hits the target, clamped.
    #[test]
    fn adaptive_feedback_rule_is_pinned() {
        // Density 0.5 checks/record, target 2_000 checks → 4_000 records.
        assert_eq!(adaptive_next_budget(1_000, 500, 2_000, 64, 65_536), 4_000);
        // Density 2.0, same target → 1_000 records.
        assert_eq!(adaptive_next_budget(1_000, 2_000, 2_000, 64, 65_536), 1_000);
        // Density exactly at target → budget unchanged.
        assert_eq!(adaptive_next_budget(8_192, 4_096, 4_096, 64, 65_536), 8_192);
        // Clamping engages on both sides.
        assert_eq!(adaptive_next_budget(1_000, 1, 1_000_000, 64, 65_536), 65_536);
        assert_eq!(adaptive_next_budget(1_000, 1_000_000, 10, 64, 65_536), 64);
        // A check-free epoch jumps straight to the upper bound.
        assert_eq!(adaptive_next_budget(1_000, 0, 2_000, 64, 65_536), 65_536);
        // Degenerate zero-record input cannot divide by zero.
        assert_eq!(adaptive_next_budget(0, 0, 2_000, 64, 65_536), 65_536);
    }

    #[test]
    fn epoch_config_budgets() {
        let fixed = EpochConfig::Fixed(4_096);
        assert_eq!(fixed.initial_budget(), 4_096);
        assert_eq!(fixed.next_budget(4_096, 1), 4_096, "fixed sizing ignores feedback");
        let adaptive =
            EpochConfig::Adaptive { initial: 1_024, min: 256, max: 16_384, target_checks: 2_048 };
        assert_eq!(adaptive.initial_budget(), 1_024);
        assert_eq!(adaptive.next_budget(1_024, 512), 4_096);
        assert_eq!(EpochConfig::default(), EpochConfig::Fixed(DEFAULT_EPOCH_RECORDS));
    }

    /// Satellite of the pipelining work: a budget carried across a
    /// pipeline exit/re-entry must be re-clamped to the (possibly
    /// different) configuration's bounds before the first epoch runs.
    #[test]
    fn carried_budgets_are_reclamped_on_pipeline_reentry() {
        let adaptive =
            EpochConfig::Adaptive { initial: 1_024, min: 256, max: 16_384, target_checks: 2_048 };
        assert_eq!(adaptive.clamp_budget(64), 256, "below min clamps up");
        assert_eq!(adaptive.clamp_budget(1_000_000), 16_384, "above max clamps down");
        assert_eq!(adaptive.clamp_budget(4_096), 4_096, "in-range budgets carry over");
        assert_eq!(EpochConfig::Fixed(4_096).clamp_budget(9), 4_096, "fixed ignores carryover");
    }
}
