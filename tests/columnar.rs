//! Properties of the columnar record path: the SoA `TraceBatch` round
//! trip is the identity over the *entire* record vocabulary (every
//! `OpClass`/`CtrlOp`/`Annotation` variant, optional fields present and
//! absent), and the trace codec's batch-native encode/decode corresponds
//! exactly to the entry-at-a-time path — same bytes out, same records
//! back, no intermediate `Vec<TraceEntry>`.

use igm::isa::{Annotation, CtrlOp, JumpTarget, MemRef, MemSize, OpClass, Reg, RegSet, TraceEntry};
use igm::lba::{batch_bytes, extract_batch, extract_batch_entries, EventBuf, TraceBatch};
use igm::trace::{TraceReader, TraceWriter};
use proptest::prelude::*;

fn reg() -> impl Strategy<Value = Reg> {
    (0usize..8).prop_map(Reg::from_index)
}

fn regset() -> impl Strategy<Value = RegSet> {
    any::<u8>().prop_map(RegSet::from_bits)
}

fn mem() -> impl Strategy<Value = MemRef> {
    (any::<u32>(), prop_oneof![Just(MemSize::B1), Just(MemSize::B2), Just(MemSize::B4)])
        .prop_map(|(addr, size)| MemRef::new(addr, size))
}

/// Every record variant, every optional field both ways, arbitrary
/// addresses — a strictly wider net than the dispatch-equivalence test's
/// workload-shaped strategy.
fn entry() -> impl Strategy<Value = TraceEntry> {
    let op = prop_oneof![
        reg().prop_map(|rd| OpClass::ImmToReg { rd }),
        mem().prop_map(|dst| OpClass::ImmToMem { dst }),
        reg().prop_map(|rd| OpClass::RegSelf { rd }),
        mem().prop_map(|dst| OpClass::MemSelf { dst }),
        (reg(), reg()).prop_map(|(rs, rd)| OpClass::RegToReg { rs, rd }),
        (reg(), mem()).prop_map(|(rs, dst)| OpClass::RegToMem { rs, dst }),
        (mem(), reg()).prop_map(|(src, rd)| OpClass::MemToReg { src, rd }),
        (mem(), mem()).prop_map(|(src, dst)| OpClass::MemToMem { src, dst }),
        (reg(), reg()).prop_map(|(rs, rd)| OpClass::DestRegOpReg { rs, rd }),
        (mem(), reg()).prop_map(|(src, rd)| OpClass::DestRegOpMem { src, rd }),
        (reg(), mem()).prop_map(|(rs, dst)| OpClass::DestMemOpReg { rs, dst }),
        (proptest::option::of(mem()), regset())
            .prop_map(|(src, reads)| OpClass::ReadOnly { src, reads }),
        (regset(), regset(), proptest::option::of(mem()), proptest::option::of(mem())).prop_map(
            |(reads, writes, mem_read, mem_write)| OpClass::Other {
                reads,
                writes,
                mem_read,
                mem_write
            }
        ),
    ];
    let ctrl = prop_oneof![
        Just(CtrlOp::Direct),
        reg().prop_map(|r| CtrlOp::Indirect { target: JumpTarget::Reg(r) }),
        mem().prop_map(|m| CtrlOp::Indirect { target: JumpTarget::Mem(m) }),
        proptest::option::of(reg()).prop_map(|input| CtrlOp::CondBranch { input }),
        mem().prop_map(|slot| CtrlOp::Ret { slot }),
    ];
    let annot = prop_oneof![
        (any::<u32>(), any::<u32>()).prop_map(|(base, size)| Annotation::Malloc { base, size }),
        any::<u32>().prop_map(|base| Annotation::Free { base }),
        any::<u32>().prop_map(|lock| Annotation::Lock { lock }),
        any::<u32>().prop_map(|lock| Annotation::Unlock { lock }),
        (any::<u32>(), any::<u32>()).prop_map(|(base, len)| Annotation::ReadInput { base, len }),
        (proptest::option::of(reg()), proptest::option::of(mem()))
            .prop_map(|(arg_reg, arg_mem)| Annotation::Syscall { arg_reg, arg_mem }),
        mem().prop_map(|fmt| Annotation::PrintfFormat { fmt }),
        any::<u32>().prop_map(|tid| Annotation::ThreadSwitch { tid }),
        any::<u32>().prop_map(|tid| Annotation::ThreadExit { tid }),
    ];
    (
        any::<u32>(),
        regset(),
        prop_oneof![
            4 => op.prop_map(Payload::Op),
            1 => ctrl.prop_map(Payload::Ctrl),
            1 => annot.prop_map(Payload::Annot),
        ],
    )
        .prop_map(|(pc, addr_regs, payload)| {
            let e = match payload {
                Payload::Op(o) => TraceEntry::op(pc, o),
                Payload::Ctrl(c) => TraceEntry::ctrl(pc, c),
                Payload::Annot(a) => TraceEntry::annot(pc, a),
            };
            e.with_addr_regs(addr_regs)
        })
}

#[derive(Debug)]
enum Payload {
    Op(OpClass),
    Ctrl(CtrlOp),
    Annot(Annotation),
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `from_entries` → view iterator is the identity, and the O(1)
    /// column-length byte accounting equals the per-record model.
    #[test]
    fn trace_batch_round_trip_is_identity(
        entries in proptest::collection::vec(entry(), 0..200),
    ) {
        let batch = TraceBatch::from_entries(&entries);
        prop_assert_eq!(batch.len(), entries.len());
        prop_assert_eq!(batch.to_entries(), entries.clone());
        prop_assert_eq!(batch.compressed_bytes(), batch_bytes(&entries));
        // Incremental push builds the same columns as bulk conversion.
        let mut incremental = TraceBatch::new();
        for e in &entries {
            incremental.push(e);
        }
        prop_assert_eq!(incremental, batch);
    }

    /// Columnar extraction over the batch equals AoS extraction over the
    /// entries — events, order and record boundaries — for the full
    /// vocabulary (the dispatch-equivalence test covers the gated
    /// pipeline; this covers raw extraction over *every* variant).
    #[test]
    fn columnar_extraction_matches_aos_extraction(
        entries in proptest::collection::vec(entry(), 0..200),
    ) {
        let batch = TraceBatch::from_entries(&entries);
        let mut aos = EventBuf::new();
        extract_batch_entries(&entries, &mut aos);
        let mut soa = EventBuf::new();
        extract_batch(&batch, &mut soa);
        prop_assert_eq!(soa.events(), aos.events());
        prop_assert_eq!(soa.records(), aos.records());
    }

    /// The codec's batch-native writer emits byte-identical frames to the
    /// entry-slice writer, and the batch-native reader decodes them back
    /// to the identical records (straight into columns, then viewed out).
    #[test]
    fn codec_batch_path_equals_entry_path(
        entries in proptest::collection::vec(entry(), 1..200),
        chunk in 1usize..64,
    ) {
        let batch_chunks: Vec<TraceBatch> =
            entries.chunks(chunk).map(TraceBatch::from_entries).collect();

        // Encode: columns vs entries, byte for byte.
        let mut via_batch = TraceWriter::new(Vec::new()).unwrap();
        for b in &batch_chunks {
            via_batch.write_chunk_batch(b).unwrap();
        }
        let via_batch = via_batch.finish().unwrap();
        let mut via_entries = TraceWriter::new(Vec::new()).unwrap();
        for c in entries.chunks(chunk) {
            via_entries.write_chunk(c).unwrap();
        }
        let via_entries = via_entries.finish().unwrap();
        prop_assert_eq!(&via_batch, &via_entries, "encoders must agree byte-for-byte");

        // Decode: frames land directly in columns, identical to the
        // entry-buffer path, chunk structure preserved.
        let mut reader = TraceReader::new(&via_batch[..]).unwrap();
        let mut decoded = TraceBatch::new();
        let mut round_tripped: Vec<TraceEntry> = Vec::new();
        let mut frames = 0usize;
        while reader.read_chunk_into_batch(&mut decoded).unwrap() {
            prop_assert_eq!(&decoded, &batch_chunks[frames], "frame {} columns diverge", frames);
            round_tripped.extend(decoded.iter());
            frames += 1;
        }
        prop_assert_eq!(frames, batch_chunks.len());
        prop_assert_eq!(round_tripped, entries);
    }
}
