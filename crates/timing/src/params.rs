//! Timing-model constants.
//!
//! Times are kept in **ticks**, a fixed-point unit of 1/4 cycle, so that
//! sub-cycle hardware dispatch rates stay in integer arithmetic.
//!
//! The values below are the calibration points of the reproduction (the
//! paper gives Table 2's cache/memory latencies; the dispatch-engine and
//! wrapper costs are modelling choices documented here and in
//! `EXPERIMENTS.md`).

/// Ticks per clock cycle.
pub const TICKS_PER_CYCLE: u64 = 4;

/// Producer: one in-order instruction per cycle.
pub const PRODUCER_INSTR_TICKS: u64 = TICKS_PER_CYCLE;

/// Consumer hardware dispatch: records with no delivered events are
/// consumed by the fetch/decompress/dispatch engine at 4 records per cycle
/// (they are ~1-byte records streamed from an L2-resident buffer).
pub const DISPATCH_TICKS_PER_RECORD: u64 = 1;

/// `nlba` event dispatch per *delivered* event. The ETCT lookup and
/// control transfer overlap the handler's first instructions (the event
/// values are pre-loaded into registers by hardware, paper §3), leaving
/// about half a cycle of exposed latency.
pub const NLBA_TICKS: u64 = TICKS_PER_CYCLE / 2;

/// Consumer handler instruction: one cycle each (in-order core).
pub const HANDLER_INSTR_TICKS: u64 = TICKS_PER_CYCLE;

/// Producer-side wrapper-library overhead per annotation record (argument
/// marshalling, record insertion).
pub const ANNOTATION_TICKS: u64 = 20 * TICKS_PER_CYCLE;

/// Extra producer cost of a `malloc`/`free` call (allocator work).
pub const MALLOC_TICKS: u64 = 100 * TICKS_PER_CYCLE;

/// Extra producer cost of entering the kernel (system call, input read).
pub const SYSCALL_TICKS: u64 = 300 * TICKS_PER_CYCLE;

/// Producer cost of a thread context switch.
pub const THREAD_SWITCH_TICKS: u64 = 500 * TICKS_PER_CYCLE;

/// Records per 64-byte log-buffer line: the producer writes, and the
/// consumer reads, one L2 line per this many records (Table 2 models the
/// 1-byte compressed record).
pub const LOG_LINE_RECORDS: u64 = 64;
