//! The structure-of-arrays record batch: the unit of data on the columnar
//! hot path.
//!
//! The paper's LBA hardware streams *compressed per-field* event records —
//! the program counters, instruction types and data addresses travel as
//! separate delta-coded streams, and the value-indexed tables (IT/ETCT/IF)
//! consume whole fields at a time. [`TraceBatch`] is the software analogue
//! of that wide datapath: instead of a `Vec<TraceEntry>` of 28-byte
//! structs, one transport chunk is a set of parallel columns, so the
//! extraction and gating sweeps touch only the fields they need and the
//! `igm-trace` codec's delta streams decode straight into them.
//!
//! # Column layout
//!
//! Fixed columns, one entry per record:
//!
//! | column      | type  | contents                                        |
//! |-------------|-------|-------------------------------------------------|
//! | `pcs`       | `u32` | program counter                                 |
//! | `codes`     | `u8`  | flattened variant id ([`igm_isa::codes`])       |
//! | `addr_regs` | `u8`  | address-computation [`RegSet`] bitmap           |
//! | `regs`      | `u8`  | register payload byte (see below)               |
//! | `flags`     | `u8`  | optional-field / kind flags (see below)         |
//!
//! Shared streams, consumed per record according to `codes`/`flags`
//! (mirroring the codec's per-chunk delta streams exactly):
//!
//! | stream  | type  | contents                                            |
//! |---------|-------|-----------------------------------------------------|
//! | `addrs` | `u32` | memory-operand and annotation-payload addresses     |
//! | `sizes` | `u8`  | access-size code per `addrs` entry ([`MemSize::code`]) |
//! | `vals`  | `u32` | non-address immediates (malloc size, input length, thread ids, `Other` write-set bits) |
//!
//! `regs` packs the record's register operands: `rd` for single-destination
//! classes, `rs << 4 | rd` for register pairs, `rs` for register-source
//! stores, the `reads` bitmap for `ReadOnly`/`Other`, the conditional-branch
//! input or syscall argument register (with [`codes::NO_REG`] for "absent"),
//! and the register jump target. `flags` carries presence bits for optional
//! memory operands (`ReadOnly` bit 0; `Other`/`Syscall` bits 0–1;
//! `Indirect` bit 0 = memory target). Plain (non-sized) addresses occupy a
//! `sizes` slot with code 2 so the two streams stay index-aligned.
//!
//! Stream entries appear in the order the record's wire encoding emits
//! them (`Other`: mem-read before mem-write; `MemToMem`: source before
//! destination), so the codec's encoder and decoder walk both
//! representations with plain cursors.

use crate::record::{ANNOTATION_RECORD_BYTES, INSTR_RECORD_BYTES};
use igm_isa::{
    codes, Annotation, CtrlOp, JumpTarget, MemRef, MemSize, OpClass, Reg, RegSet, TraceEntry,
    TraceOp,
};

/// A reusable structure-of-arrays batch of trace records.
///
/// [`clear`](TraceBatch::clear) retains every column's allocation, so one
/// arena is refilled chunk after chunk on the steady-state path. Per-record
/// [`TraceEntry`] access is a *view*: [`iter`](TraceBatch::iter)
/// reassembles entries on the fly for compatibility consumers, while the
/// hot paths ([`crate::extract_batch`], the codec) sweep the columns
/// directly.
///
/// # Example
///
/// ```
/// use igm_isa::{MemRef, OpClass, Reg, TraceEntry};
/// use igm_lba::TraceBatch;
///
/// let entries = vec![
///     TraceEntry::op(0x10, OpClass::MemToReg { src: MemRef::word(0x9000), rd: Reg::Eax }),
///     TraceEntry::op(0x14, OpClass::RegToReg { rs: Reg::Eax, rd: Reg::Ecx }),
/// ];
/// let batch = TraceBatch::from_entries(&entries);
/// assert_eq!(batch.len(), 2);
/// // The view iterator is the identity over the columns.
/// assert_eq!(batch.iter().collect::<Vec<_>>(), entries);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceBatch {
    pcs: Vec<u32>,
    codes: Vec<u8>,
    addr_regs: Vec<u8>,
    regs: Vec<u8>,
    flags: Vec<u8>,
    addrs: Vec<u32>,
    sizes: Vec<u8>,
    vals: Vec<u32>,
    /// Running count of annotation records (for O(1) compressed-size
    /// accounting).
    annots: u32,
}

impl TraceBatch {
    /// An empty batch.
    pub fn new() -> TraceBatch {
        TraceBatch::default()
    }

    /// An empty batch with room for `records` records before the fixed
    /// columns reallocate.
    pub fn with_capacity(records: usize) -> TraceBatch {
        TraceBatch {
            pcs: Vec::with_capacity(records),
            codes: Vec::with_capacity(records),
            addr_regs: Vec::with_capacity(records),
            regs: Vec::with_capacity(records),
            flags: Vec::with_capacity(records),
            addrs: Vec::with_capacity(records),
            sizes: Vec::with_capacity(records),
            vals: Vec::new(),
            annots: 0,
        }
    }

    /// Records in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.pcs.len()
    }

    /// Whether the batch holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pcs.is_empty()
    }

    /// Empties the batch, keeping every column's allocation.
    pub fn clear(&mut self) {
        self.pcs.clear();
        self.codes.clear();
        self.addr_regs.clear();
        self.regs.clear();
        self.flags.clear();
        self.addrs.clear();
        self.sizes.clear();
        self.vals.clear();
        self.annots = 0;
    }

    /// Total compressed-record bytes of the batch under the paper's size
    /// model ([`crate::compressed_size`]), computed from the column lengths
    /// in O(1) — the byte-occupancy accounting of the transport channels.
    #[inline]
    pub fn compressed_bytes(&self) -> u32 {
        let n = self.pcs.len() as u32;
        (n - self.annots) * INSTR_RECORD_BYTES + self.annots * ANNOTATION_RECORD_BYTES
    }

    // -- columns (the sweep surface) ------------------------------------

    /// The program-counter column.
    #[inline]
    pub fn pcs(&self) -> &[u32] {
        &self.pcs
    }

    /// The flattened-variant (opcode) column ([`igm_isa::codes`]).
    #[inline]
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// The address-computation register-set column (raw [`RegSet`] bits).
    #[inline]
    pub fn addr_regs_bits(&self) -> &[u8] {
        &self.addr_regs
    }

    /// The packed register-operand column.
    #[inline]
    pub fn reg_bytes(&self) -> &[u8] {
        &self.regs
    }

    /// The optional-field flags column.
    #[inline]
    pub fn flag_bytes(&self) -> &[u8] {
        &self.flags
    }

    /// The shared address stream.
    #[inline]
    pub fn addrs(&self) -> &[u32] {
        &self.addrs
    }

    /// The access-size code stream, index-aligned with
    /// [`addrs`](TraceBatch::addrs).
    #[inline]
    pub fn size_codes(&self) -> &[u8] {
        &self.sizes
    }

    /// The non-address immediate stream.
    #[inline]
    pub fn vals(&self) -> &[u32] {
        &self.vals
    }

    // -- raw column builders (codec-grade API) --------------------------

    /// Appends one record's fixed columns. Callers (the trace codec's
    /// decoder) must also append exactly the stream entries
    /// ([`push_raw_addr`](TraceBatch::push_raw_addr) /
    /// [`push_raw_val`](TraceBatch::push_raw_val)) that `code` and `flags`
    /// imply, in wire order; [`push`](TraceBatch::push) is the safe
    /// entry-at-a-time front door.
    #[inline]
    pub fn push_raw_record(&mut self, pc: u32, code: u8, addr_regs: u8, regs: u8, flags: u8) {
        debug_assert!(code < codes::COUNT, "field code out of range");
        self.pcs.push(pc);
        self.codes.push(code);
        self.addr_regs.push(addr_regs);
        self.regs.push(regs);
        self.flags.push(flags);
        self.annots += codes::is_annotation(code) as u32;
    }

    /// Appends one shared-stream address with its size code (use code 2 for
    /// plain, non-sized addresses).
    #[inline]
    pub fn push_raw_addr(&mut self, addr: u32, size_code: u8) {
        self.addrs.push(addr);
        self.sizes.push(size_code);
    }

    /// Appends one immediate to the value stream.
    #[inline]
    pub fn push_raw_val(&mut self, v: u32) {
        self.vals.push(v);
    }

    // -- converters -----------------------------------------------------

    /// Appends one record, scattering its fields into the columns.
    pub fn push(&mut self, e: &TraceEntry) {
        let code = e.op.field_code();
        let mut regs = 0u8;
        let mut flags = 0u8;
        match &e.op {
            TraceOp::Op(op) => match *op {
                OpClass::ImmToReg { rd } | OpClass::RegSelf { rd } => regs = rd.index() as u8,
                OpClass::ImmToMem { dst } | OpClass::MemSelf { dst } => self.push_mem(dst),
                OpClass::RegToReg { rs, rd } | OpClass::DestRegOpReg { rs, rd } => {
                    regs = (rs.index() as u8) << 4 | rd.index() as u8;
                }
                OpClass::RegToMem { rs, dst } | OpClass::DestMemOpReg { rs, dst } => {
                    regs = rs.index() as u8;
                    self.push_mem(dst);
                }
                OpClass::MemToReg { src, rd } | OpClass::DestRegOpMem { src, rd } => {
                    regs = rd.index() as u8;
                    self.push_mem(src);
                }
                OpClass::MemToMem { src, dst } => {
                    self.push_mem(src);
                    self.push_mem(dst);
                }
                OpClass::ReadOnly { src, reads } => {
                    regs = reads.bits();
                    flags = src.is_some() as u8;
                    if let Some(m) = src {
                        self.push_mem(m);
                    }
                }
                OpClass::Other { reads, writes, mem_read, mem_write } => {
                    regs = reads.bits();
                    flags = mem_read.is_some() as u8 | (mem_write.is_some() as u8) << 1;
                    self.vals.push(writes.bits() as u32);
                    if let Some(m) = mem_read {
                        self.push_mem(m);
                    }
                    if let Some(m) = mem_write {
                        self.push_mem(m);
                    }
                }
            },
            TraceOp::Ctrl(c) => match *c {
                CtrlOp::Direct => {}
                CtrlOp::Indirect { target } => match target {
                    JumpTarget::Reg(r) => regs = r.index() as u8,
                    JumpTarget::Mem(m) => {
                        flags = 1;
                        self.push_mem(m);
                    }
                },
                CtrlOp::CondBranch { input } => {
                    regs = input.map_or(codes::NO_REG, |r| r.index() as u8);
                }
                CtrlOp::Ret { slot } => self.push_mem(slot),
            },
            TraceOp::Annot(a) => match *a {
                Annotation::Malloc { base, size } => {
                    self.push_raw_addr(base, 2);
                    self.vals.push(size);
                }
                Annotation::Free { base } => self.push_raw_addr(base, 2),
                Annotation::Lock { lock } | Annotation::Unlock { lock } => {
                    self.push_raw_addr(lock, 2)
                }
                Annotation::ReadInput { base, len } => {
                    self.push_raw_addr(base, 2);
                    self.vals.push(len);
                }
                Annotation::Syscall { arg_reg, arg_mem } => {
                    regs = arg_reg.map_or(codes::NO_REG, |r| r.index() as u8);
                    flags = arg_reg.is_some() as u8 | (arg_mem.is_some() as u8) << 1;
                    if let Some(m) = arg_mem {
                        self.push_mem(m);
                    }
                }
                Annotation::PrintfFormat { fmt } => self.push_mem(fmt),
                Annotation::ThreadSwitch { tid } | Annotation::ThreadExit { tid } => {
                    self.vals.push(tid)
                }
            },
        }
        self.push_raw_record(e.pc, code, e.addr_regs.bits(), regs, flags);
    }

    #[inline]
    fn push_mem(&mut self, m: MemRef) {
        self.push_raw_addr(m.addr, m.size.code());
    }

    /// Builds a batch from a record slice.
    pub fn from_entries(entries: &[TraceEntry]) -> TraceBatch {
        let mut b = TraceBatch::with_capacity(entries.len());
        b.extend_entries(entries.iter().copied());
        b
    }

    /// Appends every record of `entries`.
    pub fn extend_entries(&mut self, entries: impl IntoIterator<Item = TraceEntry>) {
        for e in entries {
            self.push(&e);
        }
    }

    /// Iterates the records as [`TraceEntry`] views, reassembled from the
    /// columns (the compatibility bridge for per-record consumers).
    pub fn iter(&self) -> Records<'_> {
        Records { batch: self, i: 0, ai: 0, vi: 0 }
    }

    /// Collects the batch back into the array-of-structs representation.
    pub fn to_entries(&self) -> Vec<TraceEntry> {
        self.iter().collect()
    }
}

impl From<Vec<TraceEntry>> for TraceBatch {
    fn from(entries: Vec<TraceEntry>) -> TraceBatch {
        TraceBatch::from_entries(&entries)
    }
}

impl From<&[TraceEntry]> for TraceBatch {
    fn from(entries: &[TraceEntry]) -> TraceBatch {
        TraceBatch::from_entries(entries)
    }
}

impl<'a> IntoIterator for &'a TraceBatch {
    type Item = TraceEntry;
    type IntoIter = Records<'a>;
    fn into_iter(self) -> Records<'a> {
        self.iter()
    }
}

impl IntoIterator for TraceBatch {
    type Item = TraceEntry;
    type IntoIter = std::vec::IntoIter<TraceEntry>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_entries().into_iter()
    }
}

impl FromIterator<TraceEntry> for TraceBatch {
    fn from_iter<I: IntoIterator<Item = TraceEntry>>(iter: I) -> TraceBatch {
        let mut b = TraceBatch::new();
        b.extend_entries(iter);
        b
    }
}

/// Sequential [`TraceEntry`] view over a [`TraceBatch`]'s columns.
#[derive(Debug, Clone)]
pub struct Records<'a> {
    batch: &'a TraceBatch,
    i: usize,
    ai: usize,
    vi: usize,
}

impl<'a> Records<'a> {
    #[inline]
    fn mem(&mut self) -> MemRef {
        let m = MemRef::new(
            self.batch.addrs[self.ai],
            MemSize::from_code(self.batch.sizes[self.ai]).expect("valid size code in batch"),
        );
        self.ai += 1;
        m
    }

    #[inline]
    fn addr(&mut self) -> u32 {
        let a = self.batch.addrs[self.ai];
        self.ai += 1;
        a
    }

    #[inline]
    fn val(&mut self) -> u32 {
        let v = self.batch.vals[self.vi];
        self.vi += 1;
        v
    }
}

impl Iterator for Records<'_> {
    type Item = TraceEntry;

    fn next(&mut self) -> Option<TraceEntry> {
        if self.i >= self.batch.len() {
            return None;
        }
        let i = self.i;
        self.i += 1;
        let regs = self.batch.regs[i];
        let flags = self.batch.flags[i];
        let rd = || Reg::from_index((regs & 0x0f) as usize);
        let rs = || Reg::from_index((regs >> 4) as usize);
        let op = match self.batch.codes[i] {
            codes::IMM_TO_REG => TraceOp::Op(OpClass::ImmToReg { rd: rd() }),
            codes::IMM_TO_MEM => TraceOp::Op(OpClass::ImmToMem { dst: self.mem() }),
            codes::REG_SELF => TraceOp::Op(OpClass::RegSelf { rd: rd() }),
            codes::MEM_SELF => TraceOp::Op(OpClass::MemSelf { dst: self.mem() }),
            codes::REG_TO_REG => TraceOp::Op(OpClass::RegToReg { rs: rs(), rd: rd() }),
            codes::REG_TO_MEM => TraceOp::Op(OpClass::RegToMem { rs: rd(), dst: self.mem() }),
            codes::MEM_TO_REG => {
                let src = self.mem();
                TraceOp::Op(OpClass::MemToReg { src, rd: rd() })
            }
            codes::MEM_TO_MEM => {
                let src = self.mem();
                TraceOp::Op(OpClass::MemToMem { src, dst: self.mem() })
            }
            codes::DEST_REG_OP_REG => TraceOp::Op(OpClass::DestRegOpReg { rs: rs(), rd: rd() }),
            codes::DEST_REG_OP_MEM => {
                let src = self.mem();
                TraceOp::Op(OpClass::DestRegOpMem { src, rd: rd() })
            }
            codes::DEST_MEM_OP_REG => {
                TraceOp::Op(OpClass::DestMemOpReg { rs: rd(), dst: self.mem() })
            }
            codes::READ_ONLY => {
                let src = if flags & 1 != 0 { Some(self.mem()) } else { None };
                TraceOp::Op(OpClass::ReadOnly { src, reads: RegSet::from_bits(regs) })
            }
            codes::OTHER => {
                let writes = RegSet::from_bits(self.val() as u8);
                let mem_read = if flags & 1 != 0 { Some(self.mem()) } else { None };
                let mem_write = if flags & 2 != 0 { Some(self.mem()) } else { None };
                TraceOp::Op(OpClass::Other {
                    reads: RegSet::from_bits(regs),
                    writes,
                    mem_read,
                    mem_write,
                })
            }
            codes::CTRL_DIRECT => TraceOp::Ctrl(CtrlOp::Direct),
            codes::CTRL_INDIRECT => {
                let target = if flags & 1 != 0 {
                    JumpTarget::Mem(self.mem())
                } else {
                    JumpTarget::Reg(rd())
                };
                TraceOp::Ctrl(CtrlOp::Indirect { target })
            }
            codes::CTRL_COND => {
                let input =
                    if regs == codes::NO_REG { None } else { Some(Reg::from_index(regs as usize)) };
                TraceOp::Ctrl(CtrlOp::CondBranch { input })
            }
            codes::CTRL_RET => TraceOp::Ctrl(CtrlOp::Ret { slot: self.mem() }),
            codes::ANN_MALLOC => {
                let base = self.addr();
                TraceOp::Annot(Annotation::Malloc { base, size: self.val() })
            }
            codes::ANN_FREE => TraceOp::Annot(Annotation::Free { base: self.addr() }),
            codes::ANN_LOCK => TraceOp::Annot(Annotation::Lock { lock: self.addr() }),
            codes::ANN_UNLOCK => TraceOp::Annot(Annotation::Unlock { lock: self.addr() }),
            codes::ANN_READ_INPUT => {
                let base = self.addr();
                TraceOp::Annot(Annotation::ReadInput { base, len: self.val() })
            }
            codes::ANN_SYSCALL => {
                let arg_reg = if flags & 1 != 0 {
                    Some(Reg::from_index((regs & 0x0f) as usize))
                } else {
                    None
                };
                let arg_mem = if flags & 2 != 0 { Some(self.mem()) } else { None };
                TraceOp::Annot(Annotation::Syscall { arg_reg, arg_mem })
            }
            codes::ANN_PRINTF => TraceOp::Annot(Annotation::PrintfFormat { fmt: self.mem() }),
            codes::ANN_THREAD_SWITCH => {
                TraceOp::Annot(Annotation::ThreadSwitch { tid: self.val() })
            }
            codes::ANN_THREAD_EXIT => TraceOp::Annot(Annotation::ThreadExit { tid: self.val() }),
            c => unreachable!("invalid field code {c} in TraceBatch"),
        };
        Some(TraceEntry {
            pc: self.batch.pcs[i],
            op,
            addr_regs: RegSet::from_bits(self.batch.addr_regs[i]),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.batch.len() - self.i;
        (left, Some(left))
    }
}

impl ExactSizeIterator for Records<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::batch_bytes;

    fn zoo() -> Vec<TraceEntry> {
        let m = MemRef::new(0x9000, MemSize::B2);
        let w = MemRef::word(0xa000);
        let b = MemRef::byte(0xb000);
        vec![
            TraceEntry::op(0x10, OpClass::ImmToReg { rd: Reg::Edi }),
            TraceEntry::op(0x14, OpClass::ImmToMem { dst: m }),
            TraceEntry::op(0x18, OpClass::RegSelf { rd: Reg::Ecx }),
            TraceEntry::op(0x1c, OpClass::MemSelf { dst: w }),
            TraceEntry::op(0x20, OpClass::RegToReg { rs: Reg::Esi, rd: Reg::Ebp }),
            TraceEntry::op(0x24, OpClass::RegToMem { rs: Reg::Eax, dst: b })
                .with_addr_regs(RegSet::from_regs([Reg::Ebx, Reg::Edi])),
            TraceEntry::op(0x28, OpClass::MemToReg { src: m, rd: Reg::Edx }),
            TraceEntry::op(0x2c, OpClass::MemToMem { src: w, dst: b }),
            TraceEntry::op(0x30, OpClass::DestRegOpReg { rs: Reg::Ecx, rd: Reg::Eax }),
            TraceEntry::op(0x34, OpClass::DestRegOpMem { src: b, rd: Reg::Esp }),
            TraceEntry::op(0x38, OpClass::DestMemOpReg { rs: Reg::Edx, dst: w }),
            TraceEntry::op(0x3c, OpClass::ReadOnly { src: Some(m), reads: RegSet::ALL }),
            TraceEntry::op(0x40, OpClass::ReadOnly { src: None, reads: RegSet::EMPTY }),
            TraceEntry::op(
                0x44,
                OpClass::Other {
                    reads: RegSet::from_regs([Reg::Eax]),
                    writes: RegSet::from_regs([Reg::Edx, Reg::Esi]),
                    mem_read: Some(w),
                    mem_write: Some(b),
                },
            ),
            TraceEntry::ctrl(0x48, CtrlOp::Direct),
            TraceEntry::ctrl(0x4c, CtrlOp::Indirect { target: JumpTarget::Reg(Reg::Eax) }),
            TraceEntry::ctrl(0x50, CtrlOp::Indirect { target: JumpTarget::Mem(w) }),
            TraceEntry::ctrl(0x54, CtrlOp::CondBranch { input: Some(Reg::Ebx) }),
            TraceEntry::ctrl(0x58, CtrlOp::CondBranch { input: None }),
            TraceEntry::ctrl(0x5c, CtrlOp::Ret { slot: w }),
            TraceEntry::annot(0x60, Annotation::Malloc { base: 0x9000, size: 64 }),
            TraceEntry::annot(0x64, Annotation::Free { base: 0x9000 }),
            TraceEntry::annot(0x68, Annotation::Lock { lock: 0x120 }),
            TraceEntry::annot(0x6c, Annotation::Unlock { lock: 0x120 }),
            TraceEntry::annot(0x70, Annotation::ReadInput { base: 0xa000, len: 16 }),
            TraceEntry::annot(
                0x74,
                Annotation::Syscall { arg_reg: Some(Reg::Ebx), arg_mem: Some(m) },
            ),
            TraceEntry::annot(0x78, Annotation::Syscall { arg_reg: None, arg_mem: None }),
            TraceEntry::annot(0x7c, Annotation::PrintfFormat { fmt: b }),
            TraceEntry::annot(0x80, Annotation::ThreadSwitch { tid: 3 }),
            TraceEntry::annot(0x84, Annotation::ThreadExit { tid: 3 }),
        ]
    }

    #[test]
    fn round_trip_is_identity_over_every_variant() {
        let entries = zoo();
        let batch = TraceBatch::from_entries(&entries);
        assert_eq!(batch.len(), entries.len());
        assert_eq!(batch.to_entries(), entries);
        // Owned and borrowing iteration agree.
        assert_eq!(batch.clone().into_iter().collect::<Vec<_>>(), entries);
    }

    #[test]
    fn compressed_bytes_match_the_slice_model() {
        let entries = zoo();
        let batch = TraceBatch::from_entries(&entries);
        assert_eq!(batch.compressed_bytes(), batch_bytes(&entries));
    }

    #[test]
    fn clear_retains_capacity() {
        let entries = zoo();
        let mut batch = TraceBatch::from_entries(&entries);
        let cap = batch.pcs.capacity();
        let addr_cap = batch.addrs.capacity();
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.compressed_bytes(), 0);
        assert_eq!(batch.pcs.capacity(), cap);
        assert_eq!(batch.addrs.capacity(), addr_cap);
        batch.extend_entries(entries.iter().copied());
        assert_eq!(batch.to_entries(), entries);
    }

    #[test]
    fn from_vec_and_collect_conversions() {
        let entries = zoo();
        let via_from: TraceBatch = entries.clone().into();
        let via_collect: TraceBatch = entries.iter().copied().collect();
        assert_eq!(via_from, via_collect);
        assert_eq!(via_from.to_entries(), entries);
    }
}
