//! Figure 12: statistics on reduced instructions and events across the
//! benchmarks — the min–max of
//!
//! * dynamic lifeguard instructions removed by `LMA`,
//! * update (propagation) events removed by IT,
//! * check events removed by IF (32-entry filter),
//!
//! per lifeguard, plus the Figure 2 applicability matrix.

use igm_bench::run_scale;
use igm_core::{IfGeometry, ItConfig};
use igm_lifeguards::LifeguardKind;
use igm_profiling::{if_reduction, it_reduction, lma_instr_reduction, CcMode};
use igm_workload::{Benchmark, MtBenchmark};

fn band(vals: &[f64]) -> String {
    let min = vals.iter().cloned().fold(f64::MAX, f64::min);
    let max = vals.iter().cloned().fold(0.0, f64::max);
    format!("{:.1}%-{:.1}%", min * 100.0, max * 100.0)
}

fn main() {
    let n = run_scale();
    println!("=== Figure 2: applicability matrix ===");
    println!("{:<32} {:>4} {:>4} {:>6}", "lifeguard", "IT", "IF", "M-TLB");
    for kind in LifeguardKind::ALL {
        let s = kind.accel_support();
        println!(
            "{:<32} {:>4} {:>4} {:>6}",
            kind.name(),
            if s.it { "yes" } else { "-" },
            if s.idempotent_filter { "yes" } else { "-" },
            if s.lma { "yes" } else { "-" },
        );
    }

    println!("\n=== Figure 12: reduced instructions and events across benchmarks ===");
    println!("Records per run: {n}");
    println!(
        "{:<32} {:>16} {:>16} {:>16}",
        "lifeguard", "LMA: dyn.instr", "IT: update ev", "IF: check ev"
    );

    let geom = IfGeometry::isca08();
    for kind in LifeguardKind::ALL {
        let support = kind.accel_support();

        // LMA column: handler-instruction reduction per benchmark.
        let lma_band: Vec<f64> = if kind == LifeguardKind::LockSet {
            MtBenchmark::ALL
                .iter()
                .map(|b| {
                    let premark = b.trace(1).premark_regions();
                    lma_instr_reduction(kind, || Box::new(b.trace(n)), &premark)
                })
                .collect()
        } else {
            Benchmark::ALL
                .iter()
                .map(|b| {
                    let premark = b.profile().premark_regions();
                    lma_instr_reduction(kind, || Box::new(b.trace(n)), &premark)
                })
                .collect()
        };

        // IT column.
        let it_band: Option<Vec<f64>> = kind
            .it_config()
            .map(|itc| Benchmark::ALL.iter().map(|b| it_reduction(b.trace(n), itc)).collect());
        let _ = ItConfig::taint_style();

        // IF column.
        let if_band: Option<Vec<f64>> = support.idempotent_filter.then(|| {
            if kind == LifeguardKind::LockSet {
                MtBenchmark::ALL
                    .iter()
                    .map(|b| if_reduction(b.trace(n), geom, CcMode::Separate))
                    .collect()
            } else {
                Benchmark::ALL
                    .iter()
                    .map(|b| if_reduction(b.trace(n), geom, CcMode::Combined))
                    .collect()
            }
        });

        println!(
            "{:<32} {:>16} {:>16} {:>16}",
            kind.name(),
            band(&lma_band),
            it_band.map(|v| band(&v)).unwrap_or_else(|| "-".into()),
            if_band.map(|v| band(&v)).unwrap_or_else(|| "-".into()),
        );
    }
    println!("\n(paper: LMA 16.7%-49.3%; IT 24.9%-74.4%; IF 38.2%-77.8%, by lifeguard)");
}
