//! The top-level LBA simulator: workload × lifeguard × accelerator
//! configuration → slowdown and event statistics.
//!
//! Two entry points:
//!
//! * [`Simulator`] — the full co-simulation used by the performance studies
//!   (paper Figures 10–11): drives a synthetic benchmark trace through the
//!   dispatch pipeline and the lifeguard, feeding producer/consumer costs
//!   into the `igm-timing` co-simulator.
//! * [`Monitor`] — a functional (untimed) monitor for real
//!   [`igm_isa::Machine`] traces, used by the examples and the
//!   bug-detection integration tests.
//!
//! # Example
//!
//! ```
//! use igm_sim::{SimConfig, Simulator};
//! use igm_lifeguards::LifeguardKind;
//! use igm_workload::Benchmark;
//!
//! let base = Simulator::new(SimConfig::baseline(LifeguardKind::AddrCheck))
//!     .run_benchmark(Benchmark::Gzip, 50_000);
//! let fast = Simulator::new(SimConfig::optimized(LifeguardKind::AddrCheck))
//!     .run_benchmark(Benchmark::Gzip, 50_000);
//! assert!(fast.slowdown() < base.slowdown());
//! ```

pub mod monitor;
pub mod report;

pub use monitor::Monitor;
pub use report::SimReport;

use igm_core::{AccelConfig, DispatchPipeline, ItConfig};
use igm_isa::TraceEntry;
use igm_lifeguards::{CostSink, LifeguardKind};
use igm_runtime::{MonitorPool, PoolConfig, SessionConfig, SessionReport};
use igm_timing::{CoSim, SystemConfig};
use igm_workload::{Benchmark, MtBenchmark};

/// Configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Which lifeguard monitors the application.
    pub lifeguard: LifeguardKind,
    /// Requested accelerators (masked by the lifeguard's Figure 2 row).
    pub accel: AccelConfig,
    /// The simulated hardware (Table 2 by default).
    pub system: SystemConfig,
    /// Run lifeguards in synthetic-workload mode (see
    /// [`Lifeguard::set_synthetic_workload_mode`]). [`Simulator`] enables
    /// this; [`Monitor`] does not.
    pub synthetic_workload: bool,
}

impl SimConfig {
    /// Unaccelerated LBA (the paper's baseline bars).
    pub fn baseline(lifeguard: LifeguardKind) -> SimConfig {
        SimConfig::with_accel(lifeguard, AccelConfig::baseline())
    }

    /// All applicable accelerators (the paper's optimized bars).
    pub fn optimized(lifeguard: LifeguardKind) -> SimConfig {
        SimConfig::with_accel(lifeguard, AccelConfig::full(ItConfig::taint_style()))
    }

    /// A specific accelerator selection (for the Figure 11 progression).
    pub fn with_accel(lifeguard: LifeguardKind, accel: AccelConfig) -> SimConfig {
        SimConfig {
            lifeguard,
            accel: lifeguard.mask_config(&accel),
            system: SystemConfig::isca08(),
            synthetic_workload: true,
        }
    }
}

/// The full co-simulating LBA model.
#[derive(Debug)]
pub struct Simulator {
    cfg: SimConfig,
}

impl Simulator {
    /// Creates a simulator for `cfg`.
    pub fn new(cfg: SimConfig) -> Simulator {
        Simulator { cfg }
    }

    /// The configuration in force (post-masking).
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Runs a single-threaded SPEC-like benchmark for `n` records.
    pub fn run_benchmark(&self, b: Benchmark, n: u64) -> SimReport {
        let profile = b.profile();
        let premark = profile.premark_regions();
        let heap = profile.heap_region();
        let report = self.run_trace(&premark, Some(heap), b.trace(n));
        report.named(b.name())
    }

    /// Runs a multithreaded benchmark (LockSet study) for `n` records.
    pub fn run_mt_benchmark(&self, b: MtBenchmark, n: u64) -> SimReport {
        let gen = b.trace(n);
        let premark = gen.premark_regions();
        let report = self.run_trace(&premark, None, gen);
        report.named(b.name())
    }

    /// Runs an arbitrary trace. `premark` lists loader-established regions;
    /// `heap_init` optionally pre-marks a heap region's *initialized* bits
    /// (MemCheck synthetic-workload support).
    pub fn run_trace(
        &self,
        premark: &[(u32, u32)],
        heap_init: Option<(u32, u32)>,
        trace: impl IntoIterator<Item = TraceEntry>,
    ) -> SimReport {
        let mut lifeguard = self.cfg.lifeguard.build(&self.cfg.accel);
        if self.cfg.synthetic_workload {
            lifeguard.set_synthetic_workload_mode(true);
        }
        for (base, len) in premark {
            lifeguard.premark_region(*base, *len);
        }
        if let Some((base, len)) = heap_init {
            let _ = (base, len); // heap initialized-bits are covered by
                                 // synthetic-workload mode (calloc semantics)
        }
        let mut pipeline = DispatchPipeline::new(lifeguard.etct(), &self.cfg.accel);
        let mut cosim = CoSim::new(self.cfg.system);
        let mut cost = CostSink::new();
        let mut mem_scratch: Vec<u32> = Vec::with_capacity(16);

        for entry in trace {
            let mut delivered = 0u32;
            let mut instrs = 0u64;
            mem_scratch.clear();
            pipeline.dispatch(&entry, |dev| {
                cost.clear();
                lifeguard.handle(&dev, &mut cost);
                delivered += 1;
                instrs += cost.instrs();
                mem_scratch.extend_from_slice(cost.mem_vas());
            });
            cosim.step_record(&entry, delivered, instrs, &mem_scratch);
        }

        SimReport::new(self.cfg.lifeguard, self.cfg.accel, cosim.finish(), pipeline, lifeguard)
    }

    /// Streams `tenants` independent benchmark applications concurrently
    /// through a [`MonitorPool`] of `workers` lifeguard shards, every tenant
    /// monitored under this simulator's lifeguard/accelerator configuration.
    ///
    /// This is the service-scale entry point layered on `igm-runtime`:
    /// functional (wall-clock) monitoring rather than the cycle-level
    /// co-simulation — use [`Simulator::run_benchmark`] for the paper's
    /// slowdown studies and this for concurrency/throughput studies.
    /// Reports come back in tenant order.
    pub fn run_concurrent(
        &self,
        tenants: &[(Benchmark, u64)],
        workers: usize,
    ) -> Vec<SessionReport> {
        let pool = MonitorPool::new(PoolConfig::with_workers(workers));
        let reports = std::thread::scope(|scope| {
            let handles: Vec<_> = tenants
                .iter()
                .map(|(bench, n)| {
                    let profile = bench.profile();
                    let mut scfg = SessionConfig::new(bench.name(), self.cfg.lifeguard)
                        .accel(self.cfg.accel)
                        .premark(&profile.premark_regions());
                    if self.cfg.synthetic_workload {
                        scfg = scfg.synthetic();
                    }
                    let session = pool.open_session(scfg);
                    let (bench, n) = (*bench, *n);
                    scope.spawn(move || {
                        session.stream(bench.trace(n)).expect("pool outlives the stream");
                        session.finish()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("tenant thread completes")).collect()
        });
        pool.shutdown();
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masked_config_is_applied() {
        let cfg = SimConfig::optimized(LifeguardKind::AddrCheck);
        assert!(cfg.accel.it.is_none(), "AddrCheck never uses IT");
        assert!(cfg.accel.if_geometry.is_some());
        let cfg = SimConfig::optimized(LifeguardKind::TaintCheck);
        assert!(cfg.accel.it.is_some());
        assert!(cfg.accel.if_geometry.is_none());
    }

    #[test]
    fn clean_workload_produces_no_violations() {
        for kind in [LifeguardKind::AddrCheck, LifeguardKind::MemCheck, LifeguardKind::TaintCheck] {
            let r =
                Simulator::new(SimConfig::optimized(kind)).run_benchmark(Benchmark::Crafty, 30_000);
            assert!(
                r.violations.is_empty(),
                "{kind}: unexpected violations {:?}",
                &r.violations[..r.violations.len().min(3)]
            );
        }
    }

    #[test]
    fn clean_mt_workload_is_race_free() {
        let r = Simulator::new(SimConfig::optimized(LifeguardKind::LockSet))
            .run_mt_benchmark(MtBenchmark::WaterNq, 30_000);
        assert!(r.violations.is_empty(), "{:?}", &r.violations[..r.violations.len().min(3)]);
    }

    #[test]
    fn optimization_reduces_slowdown_for_every_lifeguard() {
        for kind in LifeguardKind::ALL {
            let (base, fast) = if kind == LifeguardKind::LockSet {
                let b = Simulator::new(SimConfig::baseline(kind))
                    .run_mt_benchmark(MtBenchmark::Zchaff, 40_000);
                let f = Simulator::new(SimConfig::optimized(kind))
                    .run_mt_benchmark(MtBenchmark::Zchaff, 40_000);
                (b, f)
            } else {
                let b = Simulator::new(SimConfig::baseline(kind))
                    .run_benchmark(Benchmark::Gzip, 40_000);
                let f = Simulator::new(SimConfig::optimized(kind))
                    .run_benchmark(Benchmark::Gzip, 40_000);
                (b, f)
            };
            assert!(
                fast.slowdown() < base.slowdown(),
                "{kind}: optimized {:.2} !< baseline {:.2}",
                fast.slowdown(),
                base.slowdown()
            );
            assert!(base.slowdown() > 1.0, "{kind}: baseline must cost something");
        }
    }

    #[test]
    fn reports_carry_stats() {
        let r = Simulator::new(SimConfig::optimized(LifeguardKind::MemCheck))
            .run_benchmark(Benchmark::Vpr, 20_000);
        assert_eq!(r.timing.records, 20_000);
        assert!(r.dispatch.delivered > 0);
        assert!(r.it.is_some(), "MemCheck runs with IT");
        assert!(r.if_stats.is_some(), "MemCheck runs with IF");
        assert!(r.metadata_bytes > 0);
    }
}
