//! Hardened query-string parsing for the stats endpoint.
//!
//! The stats server answers anything that can open a TCP socket, so the
//! query layer treats every request as hostile until parsed: bounded
//! sizes, validated percent-escapes, rejected duplicates, and a typed
//! [`QueryError`] that every route serves as a `400` JSON body. Parsing
//! happens *once per request, before any route dispatch* — a malformed
//! query is rejected identically on every path, built-in or plugged-in
//! ([`crate::server::RouteHandler`]).

use std::fmt;

/// Longest raw query string accepted (bytes, before decoding).
pub const MAX_QUERY_BYTES: usize = 2048;
/// Most `key=value` pairs accepted.
pub const MAX_PARAMS: usize = 32;
/// Longest decoded parameter key (bytes).
pub const MAX_KEY_BYTES: usize = 64;
/// Longest decoded parameter value (bytes).
pub const MAX_VALUE_BYTES: usize = 512;

/// Why a query string was rejected. Served as the `400` response body
/// via [`QueryError::to_json`] — machine-readable `kind`, human-readable
/// `detail`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryError {
    /// Stable machine-readable tag (`"overlong_query"`,
    /// `"duplicate_param"`, `"bad_escape"`, …).
    pub kind: &'static str,
    /// Human-readable specifics (which parameter, what was wrong).
    pub detail: String,
}

impl QueryError {
    fn new(kind: &'static str, detail: impl Into<String>) -> QueryError {
        QueryError { kind, detail: detail.into() }
    }

    /// The typed JSON error body every route serves with status 400.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"error\": {{\"kind\": \"{}\", \"detail\": {}}}}}",
            self.kind,
            json_escape(&self.detail)
        )
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A validated, decoded query string: unique keys, bounded sizes, clean
/// percent-escapes. The only way to get one is [`Query::parse`], so a
/// route holding a `Query` never re-validates.
#[derive(Debug, Clone, Default)]
pub struct Query {
    pairs: Vec<(String, String)>,
}

impl Query {
    /// Parses and validates a raw query string (the part after `?`,
    /// `None` when the request had none). Enforces, in order: total
    /// length, parameter count, per-pair shape (`key=value` or bare
    /// `key`), percent-escape validity, UTF-8 after decoding, no
    /// control characters, per-part length bounds, and key uniqueness.
    pub fn parse(raw: Option<&str>) -> Result<Query, QueryError> {
        let raw = match raw {
            None | Some("") => return Ok(Query::default()),
            Some(r) => r,
        };
        if raw.len() > MAX_QUERY_BYTES {
            return Err(QueryError::new(
                "overlong_query",
                format!("query string is {} bytes (max {MAX_QUERY_BYTES})", raw.len()),
            ));
        }
        let mut pairs: Vec<(String, String)> = Vec::new();
        for part in raw.split('&') {
            if part.is_empty() {
                // Tolerate `a=1&&b=2` and trailing `&`.
                continue;
            }
            if pairs.len() == MAX_PARAMS {
                return Err(QueryError::new(
                    "too_many_params",
                    format!("more than {MAX_PARAMS} parameters"),
                ));
            }
            let (rk, rv) = match part.split_once('=') {
                Some((k, v)) => (k, v),
                None => (part, ""),
            };
            let key = percent_decode(rk, "key")?;
            let value = percent_decode(rv, "value")?;
            if key.is_empty() {
                return Err(QueryError::new("empty_key", format!("parameter {part:?} has no key")));
            }
            if key.len() > MAX_KEY_BYTES {
                return Err(QueryError::new(
                    "overlong_key",
                    format!("key is {} bytes (max {MAX_KEY_BYTES})", key.len()),
                ));
            }
            if value.len() > MAX_VALUE_BYTES {
                return Err(QueryError::new(
                    "overlong_value",
                    format!("value of {key:?} is {} bytes (max {MAX_VALUE_BYTES})", value.len()),
                ));
            }
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(QueryError::new(
                    "duplicate_param",
                    format!("parameter {key:?} given more than once"),
                ));
            }
            pairs.push((key, value));
        }
        Ok(Query { pairs })
    }

    /// The value of `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// The value of `key` parsed as a `u64`; a present-but-unparsable
    /// value is a typed error, not a silent default.
    pub fn get_u64(&self, key: &str) -> Result<Option<u64>, QueryError> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| {
                QueryError::new("bad_number", format!("parameter {key:?}={v:?} is not a u64"))
            }),
        }
    }

    /// Rejects any parameter whose key is not in `allowed` — routes
    /// refuse what they do not understand instead of ignoring it.
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), QueryError> {
        for (k, _) in &self.pairs {
            if !allowed.contains(&k.as_str()) {
                return Err(QueryError::new(
                    "unknown_param",
                    format!("unknown parameter {k:?} (expected one of {allowed:?})"),
                ));
            }
        }
        Ok(())
    }

    /// Whether no parameters were given.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates `(key, value)` pairs in request order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.pairs.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

/// Decodes one `%`-escaped query part (`+` means space), rejecting bad
/// escapes, non-UTF-8 results, and control characters.
fn percent_decode(raw: &str, what: &str) -> Result<String, QueryError> {
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).ok_or_else(|| {
                    QueryError::new("bad_escape", format!("truncated %-escape in {what} {raw:?}"))
                })?;
                let hi = hex_val(hex[0]);
                let lo = hex_val(hex[1]);
                match (hi, lo) {
                    (Some(h), Some(l)) => out.push(h << 4 | l),
                    _ => {
                        return Err(QueryError::new(
                            "bad_escape",
                            format!("invalid %-escape in {what} {raw:?}"),
                        ))
                    }
                }
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    let s = String::from_utf8(out).map_err(|_| {
        QueryError::new("bad_utf8", format!("{what} {raw:?} does not decode to UTF-8"))
    })?;
    if s.chars().any(|c| (c as u32) < 0x20 || c == '\u{7f}') {
        return Err(QueryError::new(
            "control_char",
            format!("{what} {raw:?} decodes to a control character"),
        ));
    }
    Ok(s)
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_pairs_parse() {
        let q = Query::parse(Some("tenant=gzip&pc=0x10&around=3")).unwrap();
        assert_eq!(q.get("tenant"), Some("gzip"));
        assert_eq!(q.get("pc"), Some("0x10"));
        assert_eq!(q.get("around"), Some("3"));
        assert_eq!(q.get("nope"), None);
        assert!(!q.is_empty());
        assert_eq!(q.iter().count(), 3);
    }

    #[test]
    fn absent_and_empty_queries_are_empty() {
        assert!(Query::parse(None).unwrap().is_empty());
        assert!(Query::parse(Some("")).unwrap().is_empty());
        // Stray separators are tolerated, not errors.
        let q = Query::parse(Some("a=1&&b=2&")).unwrap();
        assert_eq!(q.get("a"), Some("1"));
        assert_eq!(q.get("b"), Some("2"));
    }

    #[test]
    fn percent_escapes_decode_and_validate() {
        let q = Query::parse(Some("name=a%20b%2Bc&plus=x+y")).unwrap();
        assert_eq!(q.get("name"), Some("a b+c"));
        assert_eq!(q.get("plus"), Some("x y"));

        for bad in ["x=%", "x=%2", "x=%zz", "x=%G1", "%41%=v"] {
            let e = Query::parse(Some(bad)).unwrap_err();
            assert_eq!(e.kind, "bad_escape", "{bad:?} must be a bad escape, got {e:?}");
        }
        // Decodes to invalid UTF-8.
        assert_eq!(Query::parse(Some("x=%ff%fe")).unwrap_err().kind, "bad_utf8");
        // Decodes to a control character (header-injection shaped).
        assert_eq!(Query::parse(Some("x=%0d%0aSet-Cookie:1")).unwrap_err().kind, "control_char");
    }

    #[test]
    fn duplicates_are_rejected() {
        let e = Query::parse(Some("since=1&since=2")).unwrap_err();
        assert_eq!(e.kind, "duplicate_param");
        assert!(e.detail.contains("since"));
        // Same key via an escape is still the same key.
        assert_eq!(Query::parse(Some("a=1&%61=2")).unwrap_err().kind, "duplicate_param");
    }

    #[test]
    fn size_bounds_are_enforced() {
        let long = "x".repeat(MAX_QUERY_BYTES + 1);
        assert_eq!(Query::parse(Some(&long)).unwrap_err().kind, "overlong_query");

        let many: String =
            (0..MAX_PARAMS + 1).map(|i| format!("k{i}=v&")).collect::<Vec<_>>().join("");
        assert_eq!(Query::parse(Some(&many)).unwrap_err().kind, "too_many_params");

        let key = format!("{}=v", "k".repeat(MAX_KEY_BYTES + 1));
        assert_eq!(Query::parse(Some(&key)).unwrap_err().kind, "overlong_key");

        let val = format!("k={}", "v".repeat(MAX_VALUE_BYTES + 1));
        assert_eq!(Query::parse(Some(&val)).unwrap_err().kind, "overlong_value");

        assert_eq!(Query::parse(Some("=v")).unwrap_err().kind, "empty_key");
    }

    #[test]
    fn numbers_parse_or_fail_typed() {
        let q = Query::parse(Some("since=42&bad=12x&neg=-1")).unwrap();
        assert_eq!(q.get_u64("since").unwrap(), Some(42));
        assert_eq!(q.get_u64("absent").unwrap(), None);
        assert_eq!(q.get_u64("bad").unwrap_err().kind, "bad_number");
        assert_eq!(q.get_u64("neg").unwrap_err().kind, "bad_number");
    }

    #[test]
    fn unknown_params_are_refused() {
        let q = Query::parse(Some("since=1&extra=2")).unwrap();
        assert!(q.expect_only(&["since", "extra"]).is_ok());
        let e = q.expect_only(&["since"]).unwrap_err();
        assert_eq!(e.kind, "unknown_param");
        assert!(e.detail.contains("extra"));
    }

    #[test]
    fn error_bodies_are_json() {
        let e = Query::parse(Some("a=1&a=2")).unwrap_err();
        let body = e.to_json();
        assert!(body.starts_with("{\"error\": {\"kind\": \"duplicate_param\""));
        assert!(body.contains("\"detail\": \""));
        // Escaping: a detail with a quote stays valid JSON.
        let e = QueryError::new("test", "say \"hi\"\n");
        assert_eq!(
            e.to_json(),
            "{\"error\": {\"kind\": \"test\", \"detail\": \"say \\\"hi\\\"\\n\"}}"
        );
    }
}
