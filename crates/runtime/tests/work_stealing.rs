//! Scheduling properties of the work-stealing pool: session migration
//! between workers must be invisible in the results. For every
//! epoch-supporting lifeguard, the pool's per-session violation sequences
//! must equal a sequential monitor's over the same traces, across
//! randomized worker counts, chunk sizes and tenant/chunk interleavings —
//! and an idle worker must actually steal from a loaded one.

use igm_core::{AccelConfig, DispatchPipeline};
use igm_isa::{Annotation, CtrlOp, JumpTarget, MemRef, OpClass, Reg, TraceEntry};
use igm_lba::EventBuf;
use igm_lifeguards::{CostSink, Lifeguard, LifeguardKind, Violation};
use igm_runtime::{MonitorPool, PoolConfig, SessionConfig};
use proptest::prelude::*;

/// Every lifeguard: epoch jobs replay the full event stream from the
/// boundary snapshot, so all five check in parallel with sequential
/// results.
fn epoch_supporting() -> impl Iterator<Item = LifeguardKind> {
    LifeguardKind::ALL.into_iter()
}

/// A trace for `kind` with violations planted every `stride` records at
/// predictable offsets, amid benign filler.
fn planted_trace(kind: LifeguardKind, n: usize, stride: usize, seed: u32) -> Vec<TraceEntry> {
    let heap = 0x9000_0000u32;
    let mut trace = Vec::with_capacity(n + 8);
    trace.push(TraceEntry::annot(0x10, Annotation::Malloc { base: heap, size: 0x1000 }));
    for i in 0..n as u32 {
        let pc = 0x1000 + 4 * i;
        let addr = heap + 4 * ((i.wrapping_mul(seed | 1)) % 0x400);
        let benign = match i % 4 {
            0 => TraceEntry::op(pc, OpClass::ImmToMem { dst: MemRef::word(addr) }),
            1 => TraceEntry::op(pc, OpClass::MemToReg { src: MemRef::word(addr), rd: Reg::Eax }),
            2 => TraceEntry::op(pc, OpClass::RegToReg { rs: Reg::Eax, rd: Reg::Ecx }),
            _ => TraceEntry::op(pc, OpClass::DestRegOpReg { rs: Reg::Ecx, rd: Reg::Eax }),
        };
        trace.push(benign);
        if (i as usize + 1).is_multiple_of(stride) {
            match kind {
                LifeguardKind::AddrCheck | LifeguardKind::MemCheck => {
                    // Touch unallocated memory.
                    trace.push(TraceEntry::op(
                        pc + 1,
                        OpClass::MemToReg { src: MemRef::word(0xdead_0000 + 8 * i), rd: Reg::Edx },
                    ));
                }
                LifeguardKind::LockSet => {
                    // Two threads write the same fresh word, no lock held.
                    let w = 0xb000_0000 + 4 * i;
                    trace.push(TraceEntry::op(pc + 1, OpClass::ImmToMem { dst: MemRef::word(w) }));
                    trace.push(TraceEntry::annot(pc + 2, Annotation::ThreadSwitch { tid: 1 }));
                    trace.push(TraceEntry::op(pc + 3, OpClass::ImmToMem { dst: MemRef::word(w) }));
                    trace.push(TraceEntry::annot(pc + 4, Annotation::ThreadSwitch { tid: 0 }));
                }
                _ => {
                    // Jump through untrusted input.
                    let buf = 0xa000_0000 + 0x40 * i;
                    trace.push(TraceEntry::annot(
                        pc + 1,
                        Annotation::ReadInput { base: buf, len: 4 },
                    ));
                    trace.push(TraceEntry::op(
                        pc + 2,
                        OpClass::MemToReg { src: MemRef::word(buf), rd: Reg::Ebx },
                    ));
                    trace.push(TraceEntry::ctrl(
                        pc + 3,
                        CtrlOp::Indirect { target: JumpTarget::Reg(Reg::Ebx) },
                    ));
                }
            }
        }
    }
    trace
}

/// The sequential reference: one lifeguard, one pipeline, one pass.
fn sequential_violations(kind: LifeguardKind, trace: &[TraceEntry]) -> Vec<Violation> {
    let accel = AccelConfig::baseline();
    let mut lifeguard = kind.build_any(&accel);
    let mut pipeline = DispatchPipeline::new(lifeguard.etct(), &kind.mask_config(&accel));
    let mut events = EventBuf::new();
    let mut cost = CostSink::new();
    pipeline.dispatch_batch(&igm_lba::TraceBatch::from_entries(trace), &mut events);
    lifeguard.handle_batch(events.events(), &mut cost);
    lifeguard.take_violations()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Pool violations == sequential violations for every epoch-supporting
    /// lifeguard, under randomized worker counts, per-send chunk sizes and
    /// cross-tenant chunk interleavings.
    #[test]
    fn pool_matches_sequential_monitor(
        workers in 1usize..=4,
        tenants in 1usize..=3,
        n in 200usize..700,
        stride in 13usize..60,
        chunk_records in 1usize..48,
        seed in 1u32..1000,
    ) {
        for kind in epoch_supporting() {
            let traces: Vec<Vec<TraceEntry>> = (0..tenants)
                .map(|t| planted_trace(kind, n + 31 * t, stride, seed + t as u32))
                .collect();
            let expected: Vec<Vec<Violation>> =
                traces.iter().map(|t| sequential_violations(kind, t)).collect();
            prop_assert!(
                expected.iter().all(|v| !v.is_empty()),
                "{kind}: planted patterns must fire"
            );

            let pool = MonitorPool::new(PoolConfig {
                workers,
                channel_capacity_bytes: 4096,
                chunk_bytes: 512,
                ..PoolConfig::default()
            });
            let sessions: Vec<_> = (0..tenants)
                .map(|t| {
                    pool.open_session(SessionConfig::new(format!("t{t}"), kind))
                })
                .collect();
            // Interleave: round-robin one chunk per tenant, rotating the
            // starting tenant each round so arrival orders vary.
            let mut offsets = vec![0usize; tenants];
            let mut round = 0usize;
            loop {
                let mut sent_any = false;
                for i in 0..tenants {
                    let t = (i + round) % tenants;
                    let off = offsets[t];
                    if off < traces[t].len() {
                        let end = (off + chunk_records).min(traces[t].len());
                        sessions[t].send_batch(traces[t][off..end].to_vec()).unwrap();
                        offsets[t] = end;
                        sent_any = true;
                    }
                }
                round += 1;
                if !sent_any {
                    break;
                }
            }
            for (t, session) in sessions.into_iter().enumerate() {
                let report = session.finish();
                prop_assert_eq!(report.records, traces[t].len() as u64);
                prop_assert_eq!(
                    &report.violations, &expected[t],
                    "{} tenant {} (workers={}, chunk={})", kind, t, workers, chunk_records
                );
            }
            pool.shutdown();
        }
    }
}

/// An idle worker must steal a runnable session from a loaded one. Session
/// placement is round-robin, so opening hot/idle/hot/idle puts *both* hot
/// tenants on shard 0 and only immediately-dropped tenants on shard 1:
/// while worker 0 pumps one hot session, the other sits runnable in its
/// deque, and idle worker 1 — whose own deque is empty — must take it.
#[test]
fn idle_worker_steals_the_hot_session() {
    let pool = MonitorPool::new(PoolConfig {
        workers: 2,
        channel_capacity_bytes: 16 * 1024,
        chunk_bytes: 512,
        ..PoolConfig::default()
    });
    let hot_a = pool.open_session(SessionConfig::new("hot-a", LifeguardKind::TaintCheck));
    let idle = pool.open_session(SessionConfig::new("idle", LifeguardKind::TaintCheck));
    let hot_b = pool.open_session(SessionConfig::new("hot-b", LifeguardKind::TaintCheck));
    drop(idle); // shard 1 finalizes it at once and goes idle

    let trace = planted_trace(LifeguardKind::TaintCheck, 60_000, 997, 7);
    let expected = sequential_violations(LifeguardKind::TaintCheck, &trace);
    let (ra, rb) = std::thread::scope(|scope| {
        let ta = scope.spawn(|| {
            hot_a.stream(trace.iter().copied()).expect("pool alive");
            hot_a.finish()
        });
        let tb = scope.spawn(|| {
            hot_b.stream(trace.iter().copied()).expect("pool alive");
            hot_b.finish()
        });
        (ta.join().unwrap(), tb.join().unwrap())
    });

    for report in [&ra, &rb] {
        assert_eq!(report.records, trace.len() as u64);
        assert_eq!(report.violations, expected, "migration must not perturb results");
    }
    let stats = pool.stats();
    assert!(
        stats.steals > 0,
        "an idle worker next to a loaded shard must steal (steals = {})",
        stats.steals
    );
    pool.shutdown();
}

/// Stealing transfers the shadow shard with the session: metadata
/// established in batches processed on the victim worker must be visible to
/// checks processed after migration (otherwise the malloc'd region would
/// re-flag as unallocated).
#[test]
fn shadow_state_survives_migration() {
    let pool = MonitorPool::new(PoolConfig {
        workers: 2,
        channel_capacity_bytes: 64 * 1024,
        chunk_bytes: 256,
        ..PoolConfig::default()
    });
    let hot = pool.open_session(SessionConfig::new("hot", LifeguardKind::AddrCheck));
    let idle = pool.open_session(SessionConfig::new("idle", LifeguardKind::AddrCheck));
    drop(idle);

    // One malloc up front; every later access depends on that first
    // record's metadata having travelled with the session.
    let trace = planted_trace(LifeguardKind::AddrCheck, 120_000, 1009, 3);
    let expected = sequential_violations(LifeguardKind::AddrCheck, &trace);
    hot.stream(trace.iter().copied()).expect("pool alive");
    let report = hot.finish();
    assert_eq!(report.violations, expected);
    pool.shutdown();
}
