//! Acceptance tests for the streaming runtime: epoch-parallel monitoring is
//! *exact* (identical violation sequences to the sequential `Monitor`) for
//! every lifeguard — including the ones whose metadata does not commute
//! with check elision, which replay the full event stream per epoch — and
//! the multi-tenant pool serves concurrent benchmark sessions end to end.

use igm::accel::AccelConfig;
use igm::isa::{Annotation, CtrlOp, JumpTarget, MemRef, OpClass, Reg, TraceEntry};
use igm::lifeguards::{Lifeguard, LifeguardKind, TaintCheck};
use igm::runtime::{monitor_epoch_parallel, MonitorPool, PoolConfig, SessionConfig};
use igm::sim::{Monitor, SimConfig, Simulator};
use igm::workload::Benchmark;

/// A benchmark trace with taint-violation patterns planted at irregular
/// offsets (several of which straddle epoch boundaries for any power-of-two
/// epoch size): read untrusted input, load it, jump through it.
fn tainted_trace(n: u64) -> Vec<TraceEntry> {
    let mut trace: Vec<TraceEntry> = Benchmark::Gcc.trace(n).collect();
    let mut at = 977usize; // prime stride, so patterns cross epoch cuts
    let mut k = 0u32;
    while at + 3 < trace.len() {
        let buf = 0xa000_0000 + k * 0x40;
        trace.insert(
            at,
            TraceEntry::annot(0x7000_0000 + k, Annotation::ReadInput { base: buf, len: 4 }),
        );
        trace.insert(
            at + 1,
            TraceEntry::op(
                0x7000_0010 + k,
                OpClass::MemToReg { src: MemRef::word(buf), rd: Reg::Eax },
            ),
        );
        trace.insert(
            at + 2,
            TraceEntry::ctrl(
                0x7000_0020 + k,
                CtrlOp::Indirect { target: JumpTarget::Reg(Reg::Eax) },
            ),
        );
        at += 977;
        k += 1;
    }
    trace
}

#[test]
fn epoch_parallel_taintcheck_matches_sequential_monitor() {
    let trace = tainted_trace(30_000);
    let accel = AccelConfig::baseline();

    // Sequential reference: the ordinary Monitor over the same trace.
    let mut seq = Monitor::new(TaintCheck::new(&accel), &accel);
    seq.observe_all(trace.iter().copied());
    let seq_violations = seq.lifeguard_mut().take_violations();
    assert!(
        seq_violations.len() >= 20,
        "planted patterns must fire (got {})",
        seq_violations.len()
    );

    let pool = MonitorPool::new(PoolConfig::with_workers(4));
    // An epoch size that does not divide the trace evenly, so the tail
    // epoch is short and the planted patterns straddle cuts.
    for epoch_records in [1_000, 4_096] {
        let report = monitor_epoch_parallel(
            &pool,
            &SessionConfig::new("hot-app", LifeguardKind::TaintCheck),
            trace.iter().copied(),
            epoch_records,
        );
        assert_eq!(report.records, trace.len() as u64);
        assert_eq!(report.epochs, trace.len().div_ceil(epoch_records));
        assert_eq!(
            report.violations, seq_violations,
            "epoch-parallel (epoch={epoch_records}) must equal sequential order and content"
        );
    }

    // Adaptive epoch sizing re-budgets every epoch from observed check
    // density; whatever cuts it picks, the merged result must still equal
    // the sequential reference exactly.
    let report = igm::runtime::monitor_epoch_parallel_with(
        &pool,
        &SessionConfig::new("hot-app-adaptive", LifeguardKind::TaintCheck),
        trace.iter().copied(),
        igm::runtime::EpochConfig::Adaptive {
            initial: 1_000,
            min: 500,
            max: 8_192,
            target_checks: 2_000,
        },
    );
    assert_eq!(report.records, trace.len() as u64);
    assert!(report.epochs >= trace.len() / 8_192, "adaptive epochs must cover the trace");
    assert_eq!(report.violations, seq_violations, "adaptive sizing must not change results");
    pool.shutdown();
}

#[test]
fn non_commuting_lifeguards_run_parallel_and_match_sequential() {
    // MemCheck's loads mutate metadata (cascade suppression), so its
    // checks cannot be elided-and-replayed piecemeal — each epoch job
    // replays the full event stream from its boundary snapshot instead.
    // Tiny epochs (2 records) force many cuts right through the
    // store/load dependences; the merged result must still be exact.
    let trace: Vec<TraceEntry> = {
        let mut t = vec![TraceEntry::annot(0x10, Annotation::Malloc { base: 0x9000, size: 64 })];
        // A store then loads; one load of never-allocated memory.
        t.push(TraceEntry::op(0x14, OpClass::ImmToMem { dst: MemRef::word(0x9000) }));
        t.push(TraceEntry::op(0x18, OpClass::MemToReg { src: MemRef::word(0x9000), rd: Reg::Eax }));
        t.push(TraceEntry::op(0x1c, OpClass::MemToReg { src: MemRef::word(0x9020), rd: Reg::Ecx }));
        t.push(TraceEntry::op(
            0x20,
            OpClass::MemToReg { src: MemRef::word(0xdead_0000), rd: Reg::Edx },
        ));
        t
    };
    let accel = AccelConfig::baseline();
    let mut seq = Monitor::new(igm::lifeguards::MemCheck::new(&accel), &accel);
    seq.observe_all(trace.iter().copied());
    let seq_violations = seq.lifeguard_mut().take_violations();
    assert!(!seq_violations.is_empty(), "the unwritten load must fire");

    let pool = MonitorPool::new(PoolConfig::with_workers(2));
    let report = monitor_epoch_parallel(
        &pool,
        &SessionConfig::new("memcheck-app", LifeguardKind::MemCheck),
        trace.iter().copied(),
        2,
    );
    assert_eq!(report.epochs, 3);
    assert_eq!(report.violations, seq_violations);
    pool.shutdown();
}

#[test]
fn run_concurrent_serves_four_tenants() {
    let sim = Simulator::new(SimConfig::baseline(LifeguardKind::AddrCheck));
    let tenants = [
        (Benchmark::Gzip, 8_000),
        (Benchmark::Mcf, 8_000),
        (Benchmark::Vpr, 8_000),
        (Benchmark::Gap, 8_000),
    ];
    let reports = sim.run_concurrent(&tenants, 4);
    assert_eq!(reports.len(), 4);
    for (r, (b, n)) in reports.iter().zip(&tenants) {
        assert_eq!(r.name, b.name());
        assert_eq!(r.records, *n);
        assert!(
            r.violations.is_empty(),
            "{}: clean workload flagged {:?}",
            r.name,
            r.violations.first()
        );
        assert!(r.records_per_sec() > 0.0);
    }
}

#[test]
fn epoch_parallel_is_clean_on_clean_workloads() {
    // No planted taint: both paths must agree on "nothing to report".
    let pool = MonitorPool::new(PoolConfig::with_workers(4));
    let report = monitor_epoch_parallel(
        &pool,
        &SessionConfig::new("clean", LifeguardKind::AddrCheck)
            .synthetic()
            .premark(&Benchmark::Crafty.profile().premark_regions()),
        Benchmark::Crafty.trace(20_000),
        4_096,
    );
    assert_eq!(report.records, 20_000);
    assert!(report.violations.is_empty(), "{:?}", report.violations.first());
    pool.shutdown();
}
