//! The five instruction-grain lifeguards of the paper (Table 1).
//!
//! | Lifeguard | Detects | Metadata | IT | IF | M-TLB |
//! |---|---|---|---|---|---|
//! | [`AddrCheck`] | accesses to unallocated memory, double/invalid frees, leaks | 1 accessible bit / byte | – | ✓ | ✓ |
//! | [`MemCheck`] | AddrCheck + uses of uninitialized values | +1 initialized bit / byte, per-register state | ✓ | ✓ | ✓ |
//! | [`TaintCheck`] | overwrite-based security exploits | 2 taint bits / byte, per-register state | ✓ | – | ✓ |
//! | [`TaintCheckDetailed`] | same + taint-propagation trail | 8-byte (from, eip) record / word | ✓ | – | ✓ |
//! | [`LockSet`] | data races (Eraser algorithm) | 32-bit state+lockset record / word | – | ✓ | ✓ |
//!
//! Each lifeguard is an ordinary software program running on the lifeguard
//! core: its handlers do *real* metadata work against `igm-shadow` maps (so
//! planted bugs are actually detected) while reporting per-event dynamic
//! instruction counts and metadata memory references through a
//! [`CostSink`], which is what the timing model consumes. Handler costs are
//! calibrated against the paper's Figure 7 listing (8 instructions for the
//! two-level TaintCheck handler, 4 with `LMA`).

pub mod addrcheck;
pub mod cost;
pub mod lockset;
pub mod memcheck;
pub mod taint;
pub mod taint_detailed;
pub mod violation;

pub use addrcheck::AddrCheck;
pub use cost::{CostSink, MISS_HANDLER_INSTRS, NLBA_INSTRS, SOFTWARE_MAP_INSTRS};
pub use lockset::LockSet;
pub use memcheck::MemCheck;
pub use taint::TaintCheck;
pub use taint_detailed::TaintCheckDetailed;
pub use violation::Violation;

use igm_core::{AccelConfig, ItConfig};
use igm_lba::{DeliveredEvent, Etct};
use std::fmt;

/// Which lifeguard (the paper's five).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LifeguardKind {
    AddrCheck,
    MemCheck,
    TaintCheck,
    TaintCheckDetailed,
    LockSet,
}

/// Which accelerators apply to a lifeguard (the paper's Figure 2 matrix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccelSupport {
    /// Inheritance Tracking applies.
    pub it: bool,
    /// Idempotent Filters apply.
    pub idempotent_filter: bool,
    /// The Metadata-TLB applies (true for every studied lifeguard).
    pub lma: bool,
}

impl LifeguardKind {
    /// All five lifeguards in the paper's presentation order.
    pub const ALL: [LifeguardKind; 5] = [
        LifeguardKind::AddrCheck,
        LifeguardKind::MemCheck,
        LifeguardKind::TaintCheck,
        LifeguardKind::TaintCheckDetailed,
        LifeguardKind::LockSet,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            LifeguardKind::AddrCheck => "AddrCheck",
            LifeguardKind::MemCheck => "MemCheck",
            LifeguardKind::TaintCheck => "TaintCheck",
            LifeguardKind::TaintCheckDetailed => "TaintCheck w/ detailed tracking",
            LifeguardKind::LockSet => "LockSet",
        }
    }

    /// The Figure 2 applicability row.
    pub fn accel_support(self) -> AccelSupport {
        match self {
            LifeguardKind::AddrCheck => {
                AccelSupport { it: false, idempotent_filter: true, lma: true }
            }
            LifeguardKind::MemCheck => {
                AccelSupport { it: true, idempotent_filter: true, lma: true }
            }
            LifeguardKind::TaintCheck | LifeguardKind::TaintCheckDetailed => {
                AccelSupport { it: true, idempotent_filter: false, lma: true }
            }
            LifeguardKind::LockSet => {
                AccelSupport { it: false, idempotent_filter: true, lma: true }
            }
        }
    }

    /// The IT policy this lifeguard requires when IT is enabled.
    pub fn it_config(self) -> Option<ItConfig> {
        match self {
            LifeguardKind::MemCheck => Some(ItConfig::memcheck_style()),
            LifeguardKind::TaintCheck | LifeguardKind::TaintCheckDetailed => {
                Some(ItConfig::taint_style())
            }
            _ => None,
        }
    }

    /// Masks a requested configuration by this lifeguard's Figure 2 row and
    /// substitutes the lifeguard's own IT policy.
    pub fn mask_config(self, requested: &AccelConfig) -> AccelConfig {
        let support = self.accel_support();
        AccelConfig {
            lma: requested.lma && support.lma,
            mtlb_entries: requested.mtlb_entries,
            it: if requested.it.is_some() && support.it { self.it_config() } else { None },
            if_geometry: if support.idempotent_filter { requested.if_geometry } else { None },
        }
    }

    /// Builds the lifeguard under a (pre-masked) configuration.
    ///
    /// The box is `Send`: the streaming runtime (`igm-runtime`) moves built
    /// lifeguards onto its worker threads.
    pub fn build(self, cfg: &AccelConfig) -> Box<dyn Lifeguard + Send> {
        let cfg = self.mask_config(cfg);
        match self {
            LifeguardKind::AddrCheck => Box::new(AddrCheck::new(&cfg)),
            LifeguardKind::MemCheck => Box::new(MemCheck::new(&cfg)),
            LifeguardKind::TaintCheck => Box::new(TaintCheck::new(&cfg)),
            LifeguardKind::TaintCheckDetailed => Box::new(TaintCheckDetailed::new(&cfg)),
            LifeguardKind::LockSet => Box::new(LockSet::new(&cfg)),
        }
    }

    /// The epoch-parallel capability row (the runtime's analogue of the
    /// Figure 2 applicability matrix): a lifeguard supports epoch-parallel
    /// checking iff its *checking* handlers never write metadata, so a
    /// sequential update-only spine reproduces the exact shadow-state
    /// evolution while checks replay on parallel workers.
    ///
    /// * AddrCheck / TaintCheck (± detailed) — checks only read the shadow
    ///   map and report; epoch-parallel applies.
    /// * MemCheck — loads *set* initialized bits (reads are part of the
    ///   update stream); metadata does not commute with check elision.
    /// * LockSet — every shared access refines the word's candidate lockset;
    ///   same problem.
    ///
    /// Non-supporting lifeguards fall back to sequential-consistency
    /// monitoring on a single worker (see `igm-runtime`'s epoch module).
    pub fn epoch_support(self) -> EpochSupport {
        match self {
            LifeguardKind::AddrCheck
            | LifeguardKind::TaintCheck
            | LifeguardKind::TaintCheckDetailed => EpochSupport { parallel_checks: true },
            LifeguardKind::MemCheck | LifeguardKind::LockSet => {
                EpochSupport { parallel_checks: false }
            }
        }
    }
}

/// Whether a lifeguard's metadata discipline admits epoch-parallel checking
/// (see [`LifeguardKind::epoch_support`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochSupport {
    /// Checking handlers are metadata-pure: checks may run on parallel
    /// workers against snapshotted shadow state.
    pub parallel_checks: bool,
}

impl fmt::Display for LifeguardKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An instruction-grain lifeguard: event handlers over metadata.
pub trait Lifeguard {
    /// Which lifeguard this is.
    fn kind(&self) -> LifeguardKind;

    /// The event registrations and Idempotent Filter configuration this
    /// lifeguard loads into the ETCT.
    fn etct(&self) -> Etct;

    /// Handles one delivered event, accumulating handler cost into `cost`.
    /// The `nlba` dispatch instruction is charged by the caller.
    fn handle(&mut self, ev: &DeliveredEvent, cost: &mut CostSink);

    /// Violations reported so far.
    fn violations(&self) -> &[Violation];

    /// Drains the reported violations.
    fn take_violations(&mut self) -> Vec<Violation>;

    /// Marks a loader-established region (globals, stack, mmap) as valid
    /// program state before monitoring starts.
    fn premark_region(&mut self, base: u32, len: u32);

    /// Switches the lifeguard into synthetic-workload mode (statistical
    /// traces rather than real programs). Only MemCheck reacts: it treats
    /// `malloc` as `calloc`, because generated reads are not data-dependent
    /// on generated writes (see `igm-workload` docs). Default: no-op.
    fn set_synthetic_workload_mode(&mut self, enabled: bool) {
        let _ = enabled;
    }

    /// Current metadata footprint in bytes (shadow chunks + auxiliary
    /// structures), for the space studies.
    fn metadata_bytes(&self) -> u64;

    /// Snapshots the lifeguard's full state (shadow memory, register
    /// metadata, allocation records) into an independent shard, or `None`
    /// when the lifeguard is not shardable. Used by the epoch-parallel
    /// runtime: each epoch worker checks against a snapshot of the shadow
    /// state at its epoch boundary. Default: not shardable.
    fn try_snapshot(&self) -> Option<Box<dyn Lifeguard + Send>> {
        None
    }
}

/// Shadow/state shard construction for epoch-parallel monitoring: any
/// `Clone + Send` lifeguard is shardable, its snapshot being an ordinary
/// clone of the shadow structures. Concrete lifeguards implement
/// [`Lifeguard::try_snapshot`] through this helper.
pub trait ShardableLifeguard: Lifeguard + Clone + Send + Sized + 'static {
    /// Clones the lifeguard state into an independent boxed shard.
    fn snapshot_shard(&self) -> Box<dyn Lifeguard + Send> {
        Box::new(self.clone())
    }
}

impl<T: Lifeguard + Clone + Send + Sized + 'static> ShardableLifeguard for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_matrix() {
        use LifeguardKind::*;
        // Every lifeguard benefits from the M-TLB.
        for k in LifeguardKind::ALL {
            assert!(k.accel_support().lma, "{k}");
        }
        assert!(!AddrCheck.accel_support().it);
        assert!(AddrCheck.accel_support().idempotent_filter);
        assert!(MemCheck.accel_support().it && MemCheck.accel_support().idempotent_filter);
        assert!(TaintCheck.accel_support().it);
        assert!(!TaintCheck.accel_support().idempotent_filter);
        assert!(TaintCheckDetailed.accel_support().it);
        assert!(!LockSet.accel_support().it);
        assert!(LockSet.accel_support().idempotent_filter);
    }

    #[test]
    fn mask_config_respects_support() {
        let full = AccelConfig::full(ItConfig::taint_style());
        let m = LifeguardKind::AddrCheck.mask_config(&full);
        assert!(m.lma && m.it.is_none() && m.if_geometry.is_some());
        let m = LifeguardKind::TaintCheck.mask_config(&full);
        assert!(m.lma && m.it.is_some() && m.if_geometry.is_none());
        let m = LifeguardKind::MemCheck.mask_config(&full);
        assert!(m.it.unwrap().nonunary_check, "MemCheck uses eager checks");
    }

    #[test]
    fn build_constructs_every_lifeguard() {
        for k in LifeguardKind::ALL {
            let lg = k.build(&AccelConfig::full(ItConfig::taint_style()));
            assert_eq!(lg.kind(), k);
            assert!(lg.etct().registered_count() > 0);
        }
    }
}
