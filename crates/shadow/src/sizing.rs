//! Footprint-adaptive level-1 sizing (paper Figure 14(b)).
//!
//! Fewer level-1 bits mean exponentially fewer level-1 entries and hence far
//! fewer distinct M-TLB tags — but coarser level-2 chunks waste lifeguard
//! space when the application's footprint is sparse. The paper's flexible
//! design picks, per application, the smallest level-1 width whose space
//! cost stays acceptable: "the level-1 bits are chosen so that either the
//! lifeguard space grows less than 10% or the lifeguard uses up to 1% of the
//! total 32-bit address space (assuming a 1-1 mapping from application byte
//! to metadata byte)".

use std::collections::BTreeSet;
use std::ops::RangeInclusive;

/// Application page size used for footprint measurement.
pub const APP_PAGE_BYTES: u64 = 4096;

/// The acceptance policy for a candidate level-1 width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizingPolicy {
    /// Maximum tolerated relative growth of metadata space over the perfect
    /// (page-granular) footprint. Paper value: 0.10.
    pub max_growth: f64,
    /// Maximum tolerated absolute metadata space as a fraction of the 2^32
    /// application space. Paper value: 0.01.
    pub max_abs_fraction: f64,
}

impl Default for SizingPolicy {
    fn default() -> SizingPolicy {
        SizingPolicy { max_growth: 0.10, max_abs_fraction: 0.01 }
    }
}

/// Collects the set of touched 4 KiB application pages from an address
/// iterator (the footprint measurement pass of the profiling study).
pub fn footprint_pages<I: IntoIterator<Item = u32>>(addrs: I) -> BTreeSet<u32> {
    addrs.into_iter().map(|a| a >> 12).collect()
}

/// Metadata bytes consumed with `level1_bits`, assuming a 1-1 byte mapping:
/// the number of distinct level-2 chunks touched times the chunk span.
pub fn metadata_bytes_for(pages: &BTreeSet<u32>, level1_bits: u8) -> u64 {
    let span_pages = 1u64 << (32 - level1_bits as u32 - 12);
    let mut chunks = 0u64;
    let mut last = None;
    for &p in pages {
        let c = p as u64 / span_pages;
        if last != Some(c) {
            chunks += 1;
            last = Some(c);
        }
    }
    chunks * span_pages * APP_PAGE_BYTES
}

/// Chooses the smallest level-1 width in `candidates` whose space cost meets
/// `policy`; falls back to the largest candidate when none qualifies.
///
/// Larger level-1 widths always qualify eventually because chunk span
/// approaches the page size, so the fallback only triggers for extreme
/// candidate ranges.
pub fn choose_level1_bits(
    pages: &BTreeSet<u32>,
    candidates: RangeInclusive<u8>,
    policy: SizingPolicy,
) -> u8 {
    assert!(!pages.is_empty(), "footprint must be non-empty");
    let perfect = pages.len() as u64 * APP_PAGE_BYTES;
    let growth_bound = (perfect as f64 * (1.0 + policy.max_growth)) as u64;
    let abs_bound = ((1u64 << 32) as f64 * policy.max_abs_fraction) as u64;
    for bits in candidates.clone() {
        let used = metadata_bytes_for(pages, bits);
        if used <= growth_bound || used <= abs_bound {
            return bits;
        }
    }
    *candidates.end()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A typical sparse IA32 layout: code low, heap middle, stack high.
    fn sparse_footprint() -> BTreeSet<u32> {
        let mut pages = BTreeSet::new();
        for a in (0x0804_8000u32..0x0806_8000).step_by(4096) {
            pages.insert(a >> 12); // 128 KB of code+globals
        }
        for a in (0x0900_0000u32..0x0940_0000).step_by(4096) {
            pages.insert(a >> 12); // 4 MB heap
        }
        for a in (0xbffd_0000u32..0xc000_0000).step_by(4096) {
            pages.insert(a >> 12); // 192 KB stack
        }
        pages
    }

    #[test]
    fn footprint_pages_dedups() {
        let pages = footprint_pages([0x1000, 0x1004, 0x1ffc, 0x2000]);
        assert_eq!(pages.len(), 2);
    }

    #[test]
    fn metadata_bytes_single_chunk_at_few_bits() {
        // With 1 page touched, any width yields exactly one chunk.
        let pages = footprint_pages([0x0804_8000]);
        assert_eq!(metadata_bytes_for(&pages, 20), 4096);
        assert_eq!(metadata_bytes_for(&pages, 12), 1 << 20);
    }

    #[test]
    fn metadata_bytes_counts_distinct_chunks() {
        // Two pages at opposite extremes: always two chunks.
        let pages = footprint_pages([0x0000_0000, 0xffff_f000]);
        assert_eq!(metadata_bytes_for(&pages, 16), 2 * (1 << 16));
        assert_eq!(metadata_bytes_for(&pages, 8), 2 * (1 << 24));
    }

    #[test]
    fn choose_picks_small_width_for_sparse_layout() {
        let pages = sparse_footprint();
        let bits = choose_level1_bits(&pages, 8..=20, SizingPolicy::default());
        // Three clustered regions: even very coarse chunks stay under the
        // 1%-of-2^32 absolute bound (3 chunks of 16 MB = 48 MB > 42.9 MB at
        // 8 bits, but 3 x 8 MB = 24 MB at 9 bits qualifies).
        assert!(bits <= 10, "expected a small level-1 width, got {bits}");
        // And the chosen width indeed meets the policy.
        let used = metadata_bytes_for(&pages, bits);
        assert!(used <= ((1u64 << 32) as f64 * 0.01) as u64);
    }

    #[test]
    fn choose_respects_growth_bound_for_dense_layout() {
        // A dense 64 MB contiguous footprint: growth bound accepts even
        // coarse widths because chunks are fully used.
        let mut pages = BTreeSet::new();
        for p in 0..(64 * 1024 * 1024 / 4096) {
            pages.insert(0x0900_0000 / 4096 + p);
        }
        let bits = choose_level1_bits(&pages, 8..=20, SizingPolicy::default());
        assert_eq!(bits, 8);
    }

    #[test]
    fn strict_policy_pushes_width_up() {
        let pages = sparse_footprint();
        let strict = SizingPolicy { max_growth: 0.0, max_abs_fraction: 0.0 };
        let bits = choose_level1_bits(&pages, 8..=20, strict);
        let loose = choose_level1_bits(&pages, 8..=20, SizingPolicy::default());
        assert!(bits >= loose);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_footprint_panics() {
        let _ = choose_level1_bits(&BTreeSet::new(), 8..=20, SizingPolicy::default());
    }
}
