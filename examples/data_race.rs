//! LockSet (Eraser) catching real data races in a two-thread workload —
//! and staying silent on the properly locked variant.
//!
//! ```sh
//! cargo run --example data_race
//! ```

use igm::accel::AccelConfig;
use igm::lifeguards::LockSet;
use igm::sim::Monitor;
use igm::workload::MtBenchmark;

fn main() {
    let n = 150_000;
    let accel = AccelConfig::lma_if(); // LockSet's Figure 2 row

    // A well-synchronized run: every shared access under its region lock.
    let mut clean = Monitor::new(LockSet::new(&accel), &accel);
    clean.observe_all(MtBenchmark::WaterNq.trace(n));
    println!(
        "clean water-nq : {} records, {} locksets interned, {} violations",
        n,
        clean.lifeguard().lockset_count(),
        clean.violations().len()
    );
    assert!(clean.violations().is_empty());

    // The same workload with a few accesses that skip the lock.
    let mut racy_gen = MtBenchmark::WaterNq.trace_with_race(n);
    let mut racy = Monitor::new(LockSet::new(&accel), &accel);
    let mut buffered = Vec::new();
    for e in &mut racy_gen {
        buffered.push(e);
    }
    racy.observe_all(buffered.iter().copied());
    println!(
        "racy  water-nq : {} unsynchronized accesses planted, {} races reported",
        racy_gen.planted_races(),
        racy.violations().len()
    );
    for v in racy.violations().iter().take(5) {
        println!("  {v}");
    }
    assert!(racy_gen.planted_races() > 0);
    assert!(
        !racy.violations().is_empty(),
        "unsynchronized shared writes must produce empty locksets"
    );

    println!(
        "\nfast-path accesses: {} / slow-path (lockset intersections): {}",
        racy.lifeguard().fast_hits(),
        racy.lifeguard().slow_hits()
    );
    println!("LockSet flagged the unprotected accesses and tolerated the locked ones.");
}
