//! # igm — instruction-grain monitoring, hardware-accelerated
//!
//! A full reproduction of *"Flexible Hardware Acceleration for
//! Instruction-Grain Program Monitoring"* (Chen et al., ISCA 2008): the
//! Log-Based Architecture (LBA) lifeguard platform, the three proposed
//! hardware accelerators — **Inheritance Tracking**, **Idempotent Filters**
//! and the **Metadata-TLB** — five instruction-grain lifeguards, a timing
//! model, synthetic SPEC-like workloads, and the paper's full design-space
//! profiling study.
//!
//! This facade crate re-exports the workspace's sub-crates under stable
//! module names; see each module's documentation for details:
//!
//! * [`isa`] — ISA model, assembler and functional machine.
//! * [`lba`] — log records, log buffer, events and the event-type
//!   configuration table (ETCT).
//! * [`shadow`] — one- and two-level shadow memory (lifeguard metadata).
//! * [`accel`] — the paper's contribution: IT, IF, M-TLB and the dispatch
//!   pipeline.
//! * [`lifeguards`] — AddrCheck, MemCheck, TaintCheck (± detailed tracking)
//!   and LockSet.
//! * [`workload`] — deterministic synthetic benchmark trace generators.
//! * [`timing`] — cache hierarchy and dual-core co-simulation.
//! * [`sim`] — the top-level simulator API.
//! * [`runtime`] — the streaming, multi-tenant monitoring runtime: a
//!   software analogue of the LBA log-transport fabric at service scale.
//!   Bounded SPSC log channels (chunked record batches, backpressure,
//!   producer-stall accounting), a [`runtime::MonitorPool`] of sharded
//!   lifeguard workers serving N concurrent tenant applications, and
//!   epoch-chunked parallel checking of a single hot trace with a
//!   sequential fallback for lifeguards whose metadata does not commute
//!   (per-lifeguard capability masking, mirroring the paper's Figure 2).
//! * [`trace`] — the monitored-event stream as a durable artifact: a
//!   compact binary codec (varint + delta-coded PCs/addresses, framed and
//!   checksummed chunks), capture/replay of live pool sessions
//!   (replaying a recorded file reproduces the live run's violations and
//!   dispatch stats exactly), sidecar frame-offset indexes for seeking
//!   replay windows, and the [`trace::Ingestor`] — one OS thread
//!   multiplexing many tenant sources (generators, trace files,
//!   readiness-polled pipes) into pool sessions with per-source
//!   backpressure, optionally teeing any lane to a trace file.
//! * [`net`] — cross-host trace ingest: a length-delimited wire protocol
//!   carrying the codec's frames verbatim, the multi-tenant
//!   [`net::IngestServer`] (one thread accepts N connections and plugs
//!   each into the shared `Ingestor` as a readiness-polled socket lane)
//!   and the [`net::TraceForwarder`] client, with credit-based
//!   backpressure sized from the pool's log-channel occupancy — a remote
//!   run reproduces the local run's violations and dispatch stats
//!   exactly.
//! * [`obs`] — the unified observability layer: a lock-free
//!   [`obs::MetricsRegistry`] of sharded counters, gauges and log₂-bucketed
//!   latency histograms instrumented through every layer above (dispatch
//!   batches, SPSC queueing, ingest turns, credit stalls), a bounded ring
//!   of typed lifecycle events, and the one-thread [`obs::StatsServer`]
//!   serving live Prometheus + JSON snapshots over HTTP
//!   ([`runtime::MonitorPool::serve_stats`]).
//! * [`span`] — end-to-end frame provenance: a sampled span layer that
//!   follows one trace frame through client send → credit stall → server
//!   ingest → channel wait → dispatch → epoch job → violation as stage
//!   records in a lock-free [`span::FlightRecorder`] (fixed-size seqlock
//!   rings, overwrite-oldest, zero-alloc on the hot path), surfaced as
//!   `/spans.json`, a Chrome trace-event `/trace` export, per-stage
//!   `igm_span_stage_nanos` histograms, and violation span-chain
//!   snapshots in the event ring.
//! * [`lake`] — the queryable trace lake: global
//!   `(tenant, trace, seq)` record ids assigned at capture, `IGMX` v2
//!   sidecars carrying per-frame compressed-bitmap posting lists (pc
//!   bucket, opcode class, address page, violation site), a
//!   [`lake::TraceLake`] catalog whose bitmap query planner answers
//!   forensic filters from sidecars alone, ±k record-neighborhood
//!   decode and windowed replay, and `/lake/*` stats-server routes.
//! * [`profiling`] — design-space sweeps (the paper's PIN study).
//!
//! ## Quickstart
//!
//! ```
//! use igm::sim::{SimConfig, Simulator};
//! use igm::lifeguards::LifeguardKind;
//! use igm::workload::Benchmark;
//!
//! // Simulate TaintCheck monitoring a gzip-like workload with all three
//! // accelerators enabled, and report the slowdown.
//! let cfg = SimConfig::optimized(LifeguardKind::TaintCheck);
//! let report = Simulator::new(cfg).run_benchmark(Benchmark::Gzip, 100_000);
//! assert!(report.slowdown() >= 1.0);
//! ```
//!
//! ## Concurrent monitoring
//!
//! Several independent applications stream through one worker pool; each
//! session owns a lifeguard + shadow-memory shard on its worker:
//!
//! ```
//! use igm::lifeguards::LifeguardKind;
//! use igm::runtime::{MonitorPool, PoolConfig, SessionConfig};
//! use igm::workload::Benchmark;
//!
//! let pool = MonitorPool::new(PoolConfig::with_workers(2));
//! let sessions: Vec<_> = [Benchmark::Gzip, Benchmark::Mcf]
//!     .into_iter()
//!     .map(|b| {
//!         let s = pool.open_session(
//!             SessionConfig::new(b.name(), LifeguardKind::AddrCheck).synthetic(),
//!         );
//!         s.stream(b.trace(5_000)).unwrap();
//!         s
//!     })
//!     .collect();
//! for s in sessions {
//!     assert_eq!(s.finish().records, 5_000);
//! }
//! pool.shutdown();
//! ```

pub use igm_core as accel;
pub use igm_isa as isa;
pub use igm_lake as lake;
pub use igm_lba as lba;
pub use igm_lifeguards as lifeguards;
pub use igm_net as net;
pub use igm_obs as obs;
pub use igm_profiling as profiling;
pub use igm_runtime as runtime;
pub use igm_shadow as shadow;
pub use igm_sim as sim;
pub use igm_span as span;
pub use igm_timing as timing;
pub use igm_trace as trace;
pub use igm_workload as workload;
