//! # igm-net — cross-host trace ingest
//!
//! The paper's Log-Based Architecture ships the compressed instruction
//! log from the application core to the lifeguard core over a dedicated
//! hardware transport; everything else in this workspace keeps both ends
//! in one process. This crate is that transport stretched across hosts —
//! the software analogue of FireGuard-style decoupled analysis engines
//! and of the ARM-SoC work that exports instrumentation streams over
//! debug transports: monitored applications anywhere on the network
//! stream their logs into a central
//! [`MonitorPool`](igm_runtime::MonitorPool). Std-only (`std::net`), no
//! new dependencies. Three pieces:
//!
//! * [`wire`] — the length-delimited message protocol. A handshake
//!   (`HELLO`: magic, protocol version, tenant name, requested
//!   [`LifeguardKind`](igm_lifeguards::LifeguardKind) and accelerator
//!   configuration, premarked regions), chunk messages carrying the
//!   existing `igm-trace` codec **frames verbatim**, a clean-shutdown
//!   `FIN` with final lane stats, and typed [`NetError`]s for version
//!   mismatch, corruption and truncation.
//! * [`server`] — [`IngestServer`]: one thread accepts N tenant
//!   connections and plugs each into the shared multiplexed
//!   [`Ingestor`](igm_trace::Ingestor) as a readiness-polled socket lane
//!   ([`NetSource`]), so a single OS thread still drives every remote
//!   tenant with the same fairness and per-lane backpressure machinery as
//!   local pipe lanes.
//! * [`client`] — [`TraceForwarder`]: ships a live record stream or a
//!   recorded trace file, one codec frame per chunk message.
//!
//! **Credit-based backpressure.** The server grants byte credits sized
//! from each tenant's log-channel occupancy (the same byte accounting the
//! SPSC transport already keeps): as the pool drains a channel, grants
//! flow; when a slow lifeguard lets the channel fill, the grants stop and
//! the remote producer *stalls* — mirroring the paper's bounded in-cache
//! log buffer, where a full buffer stalls the application core rather
//! than growing without bound. Client-side stalls are counted
//! ([`ForwarderStats::credit_stalls`]), server-side refusals appear as the
//! lane's `deferred_sends`.
//!
//! Because a forwarded stream reaches the pool as the same frames with
//! the same batch boundaries and the same session configuration as a
//! local run, the results are *identical*: violations and dispatch stats
//! of a workload streamed through `TraceForwarder` → `IngestServer` →
//! `MonitorPool` equal the local run's, for all five lifeguards
//! (asserted end to end in `tests/net_ingest.rs`).

pub mod client;
pub mod server;
pub mod source;
pub mod wire;

pub use client::{ForwarderConfig, ForwarderReport, ForwarderStats, TraceForwarder};
pub use server::{IngestServer, NetServerConfig, NetServerReport};
pub use source::NetSource;
pub use wire::{
    FinStats, NetError, MAX_MESSAGE_BYTES, NET_MAGIC, NET_VERSION, NET_VERSION_COMPAT,
    SPAN_PREFIX_BYTES,
};
