//! Retirement-trace vocabulary: instruction classes, memory references and
//! high-level annotation records.
//!
//! The instruction classes mirror the paper's Figure 5 exactly; they are the
//! *original events* fed to the Inheritance Tracking hardware. Control-flow
//! and annotation records carry the additional information needed by the
//! checking lifeguards (indirect-jump targets, system-call arguments, heap and
//! lock management events).

use crate::Reg;
use std::fmt;

/// Dense per-record *field codes*: the flattened [`TraceOp`] variant
/// numbering shared by every columnar consumer of the trace — the
/// structure-of-arrays [`TraceBatch`](../igm_lba) `codes` column and the
/// `igm-trace` codec's record tags are this same byte, so a decoded chunk's
/// tag stream and a batch's opcode column line up one-to-one.
pub mod codes {
    pub const IMM_TO_REG: u8 = 0;
    pub const IMM_TO_MEM: u8 = 1;
    pub const REG_SELF: u8 = 2;
    pub const MEM_SELF: u8 = 3;
    pub const REG_TO_REG: u8 = 4;
    pub const REG_TO_MEM: u8 = 5;
    pub const MEM_TO_REG: u8 = 6;
    pub const MEM_TO_MEM: u8 = 7;
    pub const DEST_REG_OP_REG: u8 = 8;
    pub const DEST_REG_OP_MEM: u8 = 9;
    pub const DEST_MEM_OP_REG: u8 = 10;
    pub const READ_ONLY: u8 = 11;
    pub const OTHER: u8 = 12;
    pub const CTRL_DIRECT: u8 = 13;
    pub const CTRL_INDIRECT: u8 = 14;
    pub const CTRL_COND: u8 = 15;
    pub const CTRL_RET: u8 = 16;
    pub const ANN_MALLOC: u8 = 17;
    pub const ANN_FREE: u8 = 18;
    pub const ANN_LOCK: u8 = 19;
    pub const ANN_UNLOCK: u8 = 20;
    pub const ANN_READ_INPUT: u8 = 21;
    pub const ANN_SYSCALL: u8 = 22;
    pub const ANN_PRINTF: u8 = 23;
    pub const ANN_THREAD_SWITCH: u8 = 24;
    pub const ANN_THREAD_EXIT: u8 = 25;

    /// Number of distinct field codes (valid codes are `0..COUNT`).
    pub const COUNT: u8 = 26;
    /// First annotation code; `code >= FIRST_ANNOT` ⇔ annotation record.
    pub const FIRST_ANNOT: u8 = ANN_MALLOC;
    /// "Absent register" sentinel used wherever an optional register rides
    /// a nibble or byte (register indices are `0..8`).
    pub const NO_REG: u8 = 0x0f;

    /// Whether `code` names an annotation record.
    #[inline]
    pub fn is_annotation(code: u8) -> bool {
        code >= FIRST_ANNOT
    }
}

/// Size in bytes of a memory access. The framework models 1-, 2- and 4-byte
/// accesses, the sizes produced by ordinary IA32 integer code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(u8)]
pub enum MemSize {
    B1 = 1,
    B2 = 2,
    #[default]
    B4 = 4,
}

impl MemSize {
    /// The size in bytes.
    #[inline]
    pub fn bytes(self) -> u32 {
        self as u32
    }

    /// Builds a size from a byte count.
    ///
    /// Returns `None` for counts other than 1, 2 or 4.
    pub fn from_bytes(b: u32) -> Option<MemSize> {
        match b {
            1 => Some(MemSize::B1),
            2 => Some(MemSize::B2),
            4 => Some(MemSize::B4),
            _ => None,
        }
    }

    /// The dense size code (0/1/2 for 1/2/4-byte accesses) used by the
    /// columnar `sizes` stream and the trace codec's packed varints.
    #[inline]
    pub fn code(self) -> u8 {
        match self {
            MemSize::B1 => 0,
            MemSize::B2 => 1,
            MemSize::B4 => 2,
        }
    }

    /// Rebuilds a size from its dense code ([`MemSize::code`]); `None` for
    /// codes other than 0, 1, 2.
    #[inline]
    pub fn from_code(code: u8) -> Option<MemSize> {
        match code {
            0 => Some(MemSize::B1),
            1 => Some(MemSize::B2),
            2 => Some(MemSize::B4),
            _ => None,
        }
    }
}

/// A resolved memory reference: virtual address plus access size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Virtual address of the first byte accessed.
    pub addr: u32,
    /// Access size.
    pub size: MemSize,
}

impl MemRef {
    /// Convenience constructor.
    #[inline]
    pub fn new(addr: u32, size: MemSize) -> MemRef {
        MemRef { addr, size }
    }

    /// A 4-byte reference at `addr`.
    #[inline]
    pub fn word(addr: u32) -> MemRef {
        MemRef::new(addr, MemSize::B4)
    }

    /// A 1-byte reference at `addr`.
    #[inline]
    pub fn byte(addr: u32) -> MemRef {
        MemRef::new(addr, MemSize::B1)
    }

    /// Exclusive end address of the access. Saturates at `u32::MAX`.
    #[inline]
    pub fn end(self) -> u32 {
        self.addr.saturating_add(self.size.bytes())
    }

    /// Whether two references touch at least one common byte.
    #[inline]
    pub fn overlaps(self, other: MemRef) -> bool {
        self.addr < other.end() && other.addr < self.end()
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#010x};{}]", self.addr, self.size.bytes())
    }
}

/// A small set of registers, used to describe which registers an opaque
/// (`other`) instruction reads and writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RegSet(u8);

impl RegSet {
    /// The empty set.
    pub const EMPTY: RegSet = RegSet(0);
    /// The set of all eight registers.
    pub const ALL: RegSet = RegSet(0xff);

    /// Builds a set from an iterator of registers.
    pub fn from_regs<I: IntoIterator<Item = Reg>>(regs: I) -> RegSet {
        let mut s = RegSet::EMPTY;
        for r in regs {
            s.insert(r);
        }
        s
    }

    /// Adds a register to the set.
    #[inline]
    pub fn insert(&mut self, r: Reg) {
        self.0 |= 1 << r.index();
    }

    /// Whether the register is in the set.
    #[inline]
    pub fn contains(self, r: Reg) -> bool {
        self.0 & (1 << r.index()) != 0
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Union of two sets.
    #[inline]
    pub fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    /// Iterates over the members in encoding order.
    pub fn iter(self) -> impl Iterator<Item = Reg> {
        (0..crate::NUM_REGS).filter(move |i| self.0 & (1 << i) != 0).map(Reg::from_index)
    }

    /// The raw membership bitmap (bit *i* ⇔ the register with encoding *i*).
    /// Exposed for serializers such as the `igm-trace` codec, which store a
    /// register set as exactly this byte.
    #[inline]
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Rebuilds a set from its raw bitmap ([`RegSet::bits`]). Every `u8` is
    /// a valid bitmap: the framework tracks exactly eight registers.
    #[inline]
    pub fn from_bits(bits: u8) -> RegSet {
        RegSet(bits)
    }
}

impl FromIterator<Reg> for RegSet {
    fn from_iter<I: IntoIterator<Item = Reg>>(iter: I) -> RegSet {
        RegSet::from_regs(iter)
    }
}

/// The data-flow class of a retired instruction — the paper's Figure 5
/// *original event* vocabulary.
///
/// Naming follows the paper: `Dest*Op*` classes are binary computations whose
/// destination doubles as a source (`op %rs, %rd` ≡ `%rd = %rd op %rs`);
/// `*Self` classes are unary computations with an immediate second operand
/// (`op $imm, %rd`); `*To*` classes are copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// `mov $imm, %rd`
    ImmToReg { rd: Reg },
    /// `mov $imm, mem(daddr)`
    ImmToMem { dst: MemRef },
    /// `op $imm, %rd` — e.g. `shr $8, %eax`
    RegSelf { rd: Reg },
    /// `op $imm, mem(daddr)` — e.g. `andl $0xff, (%eax)`
    MemSelf { dst: MemRef },
    /// `mov %rs, %rd`
    RegToReg { rs: Reg, rd: Reg },
    /// `mov %rs, mem(daddr)`
    RegToMem { rs: Reg, dst: MemRef },
    /// `mov mem(saddr), %rd`
    MemToReg { src: MemRef, rd: Reg },
    /// memory-to-memory copy (`movs`), one element
    MemToMem { src: MemRef, dst: MemRef },
    /// `op %rs, %rd`
    DestRegOpReg { rs: Reg, rd: Reg },
    /// `op mem(saddr), %rd`
    DestRegOpMem { src: MemRef, rd: Reg },
    /// `op %rs, mem(daddr)`
    DestMemOpReg { rs: Reg, dst: MemRef },
    /// Flag-setting compare/test instructions (`cmp`, `test`): they read
    /// registers and possibly memory but write only the condition codes, so
    /// they have *no* metadata effect. The paper folds these into its
    /// `reg_self`/`other` rows; giving them their own class avoids spurious
    /// Inheritance Tracking flushes while remaining sound (see `DESIGN.md`).
    ReadOnly { src: Option<MemRef>, reads: RegSet },
    /// Any instruction not covered by the explicit classes (`xchg`, `cpuid`,
    /// …). Carries conservative read/write register sets and optional memory
    /// operands so that Inheritance Tracking can flush exactly the affected
    /// state (paper §4.3, third complication).
    Other { reads: RegSet, writes: RegSet, mem_read: Option<MemRef>, mem_write: Option<MemRef> },
}

impl OpClass {
    /// The memory reference read by this instruction, if any.
    pub fn mem_read(&self) -> Option<MemRef> {
        match *self {
            OpClass::MemSelf { dst } => Some(dst),
            OpClass::MemToReg { src, .. }
            | OpClass::MemToMem { src, .. }
            | OpClass::DestRegOpMem { src, .. } => Some(src),
            OpClass::DestMemOpReg { dst, .. } => Some(dst),
            OpClass::ReadOnly { src, .. } => src,
            OpClass::Other { mem_read, .. } => mem_read,
            _ => None,
        }
    }

    /// The memory reference written by this instruction, if any.
    pub fn mem_write(&self) -> Option<MemRef> {
        match *self {
            OpClass::ImmToMem { dst }
            | OpClass::MemSelf { dst }
            | OpClass::RegToMem { dst, .. }
            | OpClass::MemToMem { dst, .. }
            | OpClass::DestMemOpReg { dst, .. } => Some(dst),
            OpClass::Other { mem_write, .. } => mem_write,
            _ => None,
        }
    }

    /// Whether this instruction class can change the *metadata* of a memory
    /// location under generic propagation semantics. `MemSelf` writes data
    /// but its metadata result equals its metadata source, so it does not
    /// count.
    pub fn writes_mem_metadata(&self) -> bool {
        match self {
            OpClass::MemSelf { .. } => false,
            other => other.mem_write().is_some(),
        }
    }

    /// A short mnemonic matching the paper's event names (`mem_to_reg`, …).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            OpClass::ImmToReg { .. } => "imm_to_reg",
            OpClass::ImmToMem { .. } => "imm_to_mem",
            OpClass::RegSelf { .. } => "reg_self",
            OpClass::MemSelf { .. } => "mem_self",
            OpClass::RegToReg { .. } => "reg_to_reg",
            OpClass::RegToMem { .. } => "reg_to_mem",
            OpClass::MemToReg { .. } => "mem_to_reg",
            OpClass::MemToMem { .. } => "mem_to_mem",
            OpClass::DestRegOpReg { .. } => "dest_reg_op_reg",
            OpClass::DestRegOpMem { .. } => "dest_reg_op_mem",
            OpClass::DestMemOpReg { .. } => "dest_mem_op_reg",
            OpClass::ReadOnly { .. } => "read_only",
            OpClass::Other { .. } => "other",
        }
    }
}

/// Target of an indirect control transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JumpTarget {
    /// `jmp *%r` — target address held in a register.
    Reg(Reg),
    /// `jmp *mem` — target address loaded from memory.
    Mem(MemRef),
}

/// Control-flow classes that matter to the checking lifeguards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CtrlOp {
    /// Direct jump/call; irrelevant to all studied lifeguards but kept for
    /// trace fidelity (it consumes fetch bandwidth and a log record).
    Direct,
    /// Indirect jump or call: TaintCheck verifies the target is untainted.
    Indirect { target: JumpTarget },
    /// Conditional branch: MemCheck verifies the tested value (modelled as
    /// the register whose compare set the flags) is initialized.
    CondBranch { input: Option<Reg> },
    /// `ret`: an indirect transfer through the stack slot at `slot`.
    Ret { slot: MemRef },
}

/// High-level events inserted into the log by wrapper libraries
/// (paper §3: "software-inserted annotation records").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Annotation {
    /// Heap allocation of `[base, base+size)`.
    Malloc { base: u32, size: u32 },
    /// Heap release of the block starting at `base`.
    Free { base: u32 },
    /// Lock acquire (the lock object's address identifies the lock).
    Lock { lock: u32 },
    /// Lock release.
    Unlock { lock: u32 },
    /// A `read`/`recv`-style system call placed `len` bytes of *untrusted
    /// input* at `base`: TaintCheck taints the range, MemCheck marks it
    /// initialized.
    ReadInput { base: u32, len: u32 },
    /// Generic system call with one register argument and an optional memory
    /// argument range; the monitored application stalls here until the
    /// lifeguard drains the log (paper §3 fault-containment rule).
    Syscall { arg_reg: Option<Reg>, arg_mem: Option<MemRef> },
    /// `printf`-style call: `fmt` points at the format string, which
    /// TaintCheck requires to be untainted.
    PrintfFormat { fmt: MemRef },
    /// Scheduler switch: subsequent records belong to thread `tid`.
    ThreadSwitch { tid: u32 },
    /// Thread `tid` exited (LockSet bookkeeping).
    ThreadExit { tid: u32 },
}

impl Annotation {
    /// Whether the monitored application must stall at this record until the
    /// lifeguard has drained the log buffer (all kernel-entering events).
    pub fn is_sync_point(&self) -> bool {
        matches!(self, Annotation::Syscall { .. } | Annotation::ReadInput { .. })
    }
}

/// Payload of one trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceOp {
    /// A retired data-flow instruction.
    Op(OpClass),
    /// A retired control-flow instruction.
    Ctrl(CtrlOp),
    /// A high-level annotation record.
    Annot(Annotation),
}

impl TraceOp {
    /// The record's dense field code ([`codes`]): the flattened variant id
    /// every columnar consumer (the SoA `TraceBatch`, the trace codec)
    /// classifies records by, so those layers never re-match the nested
    /// enums per record.
    pub fn field_code(&self) -> u8 {
        match self {
            TraceOp::Op(op) => match op {
                OpClass::ImmToReg { .. } => codes::IMM_TO_REG,
                OpClass::ImmToMem { .. } => codes::IMM_TO_MEM,
                OpClass::RegSelf { .. } => codes::REG_SELF,
                OpClass::MemSelf { .. } => codes::MEM_SELF,
                OpClass::RegToReg { .. } => codes::REG_TO_REG,
                OpClass::RegToMem { .. } => codes::REG_TO_MEM,
                OpClass::MemToReg { .. } => codes::MEM_TO_REG,
                OpClass::MemToMem { .. } => codes::MEM_TO_MEM,
                OpClass::DestRegOpReg { .. } => codes::DEST_REG_OP_REG,
                OpClass::DestRegOpMem { .. } => codes::DEST_REG_OP_MEM,
                OpClass::DestMemOpReg { .. } => codes::DEST_MEM_OP_REG,
                OpClass::ReadOnly { .. } => codes::READ_ONLY,
                OpClass::Other { .. } => codes::OTHER,
            },
            TraceOp::Ctrl(c) => match c {
                CtrlOp::Direct => codes::CTRL_DIRECT,
                CtrlOp::Indirect { .. } => codes::CTRL_INDIRECT,
                CtrlOp::CondBranch { .. } => codes::CTRL_COND,
                CtrlOp::Ret { .. } => codes::CTRL_RET,
            },
            TraceOp::Annot(a) => match a {
                Annotation::Malloc { .. } => codes::ANN_MALLOC,
                Annotation::Free { .. } => codes::ANN_FREE,
                Annotation::Lock { .. } => codes::ANN_LOCK,
                Annotation::Unlock { .. } => codes::ANN_UNLOCK,
                Annotation::ReadInput { .. } => codes::ANN_READ_INPUT,
                Annotation::Syscall { .. } => codes::ANN_SYSCALL,
                Annotation::PrintfFormat { .. } => codes::ANN_PRINTF,
                Annotation::ThreadSwitch { .. } => codes::ANN_THREAD_SWITCH,
                Annotation::ThreadExit { .. } => codes::ANN_THREAD_EXIT,
            },
        }
    }

    /// Calls `f` with every address this record carries, in the order the
    /// columnar shared address stream holds them: memory-operand
    /// addresses and annotation base/lock addresses alike. This is the
    /// record-level ground truth the trace lake's address-page index is
    /// property-tested against.
    pub fn for_each_addr(&self, mut f: impl FnMut(u32)) {
        let mut mem = |m: &MemRef| f(m.addr);
        match self {
            TraceOp::Op(op) => match op {
                OpClass::ImmToReg { .. }
                | OpClass::RegSelf { .. }
                | OpClass::RegToReg { .. }
                | OpClass::DestRegOpReg { .. } => {}
                OpClass::ImmToMem { dst }
                | OpClass::MemSelf { dst }
                | OpClass::RegToMem { dst, .. }
                | OpClass::DestMemOpReg { dst, .. } => mem(dst),
                OpClass::MemToReg { src, .. } | OpClass::DestRegOpMem { src, .. } => mem(src),
                OpClass::MemToMem { src, dst } => {
                    mem(src);
                    mem(dst);
                }
                OpClass::ReadOnly { src, .. } => {
                    if let Some(m) = src {
                        mem(m);
                    }
                }
                OpClass::Other { mem_read, mem_write, .. } => {
                    if let Some(m) = mem_read {
                        mem(m);
                    }
                    if let Some(m) = mem_write {
                        mem(m);
                    }
                }
            },
            TraceOp::Ctrl(c) => match c {
                CtrlOp::Direct | CtrlOp::CondBranch { .. } => {}
                CtrlOp::Indirect { target } => {
                    if let JumpTarget::Mem(m) = target {
                        mem(m);
                    }
                }
                CtrlOp::Ret { slot } => mem(slot),
            },
            TraceOp::Annot(a) => match a {
                Annotation::Malloc { base, .. }
                | Annotation::Free { base }
                | Annotation::ReadInput { base, .. } => f(*base),
                Annotation::Lock { lock } | Annotation::Unlock { lock } => f(*lock),
                Annotation::Syscall { arg_mem, .. } => {
                    if let Some(m) = arg_mem {
                        mem(m);
                    }
                }
                Annotation::PrintfFormat { fmt } => mem(fmt),
                Annotation::ThreadSwitch { .. } | Annotation::ThreadExit { .. } => {}
            },
        }
    }
}

/// One record of the retirement trace: the program counter plus payload.
///
/// This is the information content of an LBA log record *before* compression
/// (paper §3: "program counter, instruction type, input/output operand
/// identifiers, and any data addresses").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceEntry {
    /// Program counter of the retired instruction (annotation records reuse
    /// the pc of the call site that produced them).
    pub pc: u32,
    /// The payload.
    pub op: TraceOp,
    /// Registers used to compute the instruction's memory operand addresses
    /// (base/index). MemCheck verifies these are initialized at every memory
    /// access ("address computation" checks, paper Table 1).
    pub addr_regs: RegSet,
}

impl TraceEntry {
    /// Convenience constructor for a data-flow record.
    pub fn op(pc: u32, op: OpClass) -> TraceEntry {
        TraceEntry { pc, op: TraceOp::Op(op), addr_regs: RegSet::EMPTY }
    }

    /// Convenience constructor for a control-flow record.
    pub fn ctrl(pc: u32, c: CtrlOp) -> TraceEntry {
        TraceEntry { pc, op: TraceOp::Ctrl(c), addr_regs: RegSet::EMPTY }
    }

    /// Convenience constructor for an annotation record.
    pub fn annot(pc: u32, a: Annotation) -> TraceEntry {
        TraceEntry { pc, op: TraceOp::Annot(a), addr_regs: RegSet::EMPTY }
    }

    /// Attaches the address-computation register set.
    pub fn with_addr_regs(mut self, regs: RegSet) -> TraceEntry {
        self.addr_regs = regs;
        self
    }

    /// The memory reference read by this record, if any.
    pub fn mem_read(&self) -> Option<MemRef> {
        match &self.op {
            TraceOp::Op(o) => o.mem_read(),
            TraceOp::Ctrl(CtrlOp::Indirect { target: JumpTarget::Mem(m) }) => Some(*m),
            TraceOp::Ctrl(CtrlOp::Ret { slot }) => Some(*slot),
            _ => None,
        }
    }

    /// The memory reference written by this record, if any.
    pub fn mem_write(&self) -> Option<MemRef> {
        match &self.op {
            TraceOp::Op(o) => o.mem_write(),
            _ => None,
        }
    }

    /// The record's dense field code (see [`TraceOp::field_code`]).
    #[inline]
    pub fn field_code(&self) -> u8 {
        self.op.field_code()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memref_overlap_is_symmetric_and_correct() {
        let a = MemRef::new(100, MemSize::B4); // [100,104)
        let b = MemRef::new(103, MemSize::B1); // [103,104)
        let c = MemRef::new(104, MemSize::B4); // [104,108)
        assert!(a.overlaps(b));
        assert!(b.overlaps(a));
        assert!(!a.overlaps(c));
        assert!(!c.overlaps(a));
        assert!(!b.overlaps(c));
    }

    #[test]
    fn memref_end_saturates() {
        let m = MemRef::new(u32::MAX - 1, MemSize::B4);
        assert_eq!(m.end(), u32::MAX);
    }

    #[test]
    fn regset_basic_ops() {
        let mut s = RegSet::EMPTY;
        assert!(s.is_empty());
        s.insert(Reg::Eax);
        s.insert(Reg::Edi);
        assert!(s.contains(Reg::Eax));
        assert!(!s.contains(Reg::Ecx));
        let collected: Vec<Reg> = s.iter().collect();
        assert_eq!(collected, vec![Reg::Eax, Reg::Edi]);
        let u = s.union(RegSet::from_regs([Reg::Ecx]));
        assert!(u.contains(Reg::Ecx) && u.contains(Reg::Eax) && u.contains(Reg::Edi));
    }

    #[test]
    fn opclass_mem_accessors() {
        let src = MemRef::word(0x1000);
        let dst = MemRef::word(0x2000);
        let op = OpClass::MemToMem { src, dst };
        assert_eq!(op.mem_read(), Some(src));
        assert_eq!(op.mem_write(), Some(dst));
        assert!(op.writes_mem_metadata());

        // mem_self writes data but not metadata.
        let op = OpClass::MemSelf { dst };
        assert_eq!(op.mem_read(), Some(dst));
        assert_eq!(op.mem_write(), Some(dst));
        assert!(!op.writes_mem_metadata());

        let op = OpClass::DestMemOpReg { rs: Reg::Eax, dst };
        assert!(op.writes_mem_metadata());
        assert_eq!(op.mem_read(), Some(dst));
    }

    #[test]
    fn trace_entry_mem_accessors_cover_ctrl() {
        let slot = MemRef::word(0xbfff_0000);
        let e = TraceEntry::ctrl(0x8048000, CtrlOp::Ret { slot });
        assert_eq!(e.mem_read(), Some(slot));
        assert_eq!(e.mem_write(), None);

        let e = TraceEntry::ctrl(0x8048004, CtrlOp::Indirect { target: JumpTarget::Mem(slot) });
        assert_eq!(e.mem_read(), Some(slot));
    }

    #[test]
    fn annotation_sync_points() {
        assert!(Annotation::Syscall { arg_reg: None, arg_mem: None }.is_sync_point());
        assert!(Annotation::ReadInput { base: 0, len: 4 }.is_sync_point());
        assert!(!Annotation::Malloc { base: 0, size: 16 }.is_sync_point());
        assert!(!Annotation::Lock { lock: 8 }.is_sync_point());
    }

    #[test]
    fn mnemonics_match_paper_names() {
        assert_eq!(OpClass::ImmToReg { rd: Reg::Eax }.mnemonic(), "imm_to_reg");
        assert_eq!(
            OpClass::DestRegOpMem { src: MemRef::word(0), rd: Reg::Eax }.mnemonic(),
            "dest_reg_op_mem"
        );
        assert_eq!(
            OpClass::Other {
                reads: RegSet::EMPTY,
                writes: RegSet::EMPTY,
                mem_read: None,
                mem_write: None
            }
            .mnemonic(),
            "other"
        );
    }
}
