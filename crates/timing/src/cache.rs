//! Set-associative, LRU-replaced cache model.

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Associativity.
    pub ways: u32,
    /// Access latency in cycles.
    pub latency: u32,
}

impl CacheConfig {
    /// Table 2 private L1 (instruction or data): 16 KB, 64 B lines, 2-way,
    /// 1-cycle.
    pub fn isca08_l1() -> CacheConfig {
        CacheConfig { size_bytes: 16 * 1024, line_bytes: 64, ways: 2, latency: 1 }
    }

    /// Table 2 shared L2: 512 KB, 64 B lines, 8-way, 10-cycle.
    pub fn isca08_l2() -> CacheConfig {
        CacheConfig { size_bytes: 512 * 1024, line_bytes: 64, ways: 8, latency: 10 }
    }

    fn sets(&self) -> u32 {
        self.size_bytes / self.line_bytes / self.ways
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub accesses: u64,
    pub misses: u64,
}

impl CacheStats {
    /// Miss rate over all accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// One cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// `tags[set * ways + way]`; `u32::MAX` = invalid.
    tags: Vec<u32>,
    /// LRU timestamps, parallel to `tags`.
    lru: Vec<u64>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometries (zero sets or non-power-of-two line
    /// size).
    pub fn new(cfg: CacheConfig) -> Cache {
        assert!(cfg.line_bytes.is_power_of_two() && cfg.line_bytes >= 4);
        let sets = cfg.sets();
        assert!(sets > 0 && sets.is_power_of_two(), "invalid cache geometry {cfg:?}");
        let n = (sets * cfg.ways) as usize;
        Cache {
            cfg,
            tags: vec![u32::MAX; n],
            lru: vec![0; n],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Accesses `addr`; returns `true` on a hit. A miss fills the line
    /// (allocate-on-miss for both reads and writes).
    pub fn access(&mut self, addr: u32) -> bool {
        self.tick += 1;
        self.stats.accesses += 1;
        let line = addr / self.cfg.line_bytes;
        let sets = self.cfg.sets();
        let set = (line & (sets - 1)) as usize;
        let tag = line / sets;
        let base = set * self.cfg.ways as usize;
        let ways = &mut self.tags[base..base + self.cfg.ways as usize];
        if let Some(w) = ways.iter().position(|t| *t == tag) {
            self.lru[base + w] = self.tick;
            return true;
        }
        self.stats.misses += 1;
        // LRU victim.
        let victim =
            (0..self.cfg.ways as usize).min_by_key(|w| self.lru[base + w]).expect("ways > 0");
        self.tags[base + victim] = tag;
        self.lru[base + victim] = self.tick;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 lines of 64 B, 2-way => 2 sets.
        Cache::new(CacheConfig { size_bytes: 256, line_bytes: 64, ways: 2, latency: 1 })
    }

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x103f)); // same line
        assert!(!c.access(0x1040)); // next line
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().accesses, 4);
    }

    #[test]
    fn lru_within_set() {
        let mut c = tiny();
        // Three lines mapping to set 0 (line numbers even): 0x0000, 0x0080, 0x0100.
        c.access(0x0000);
        c.access(0x0080);
        c.access(0x0000); // touch: 0x0080 becomes LRU
        c.access(0x0100); // evicts 0x0080
        assert!(c.access(0x0000));
        assert!(!c.access(0x0080));
    }

    #[test]
    fn isca08_geometries_are_valid() {
        let l1 = Cache::new(CacheConfig::isca08_l1());
        assert_eq!(l1.config().sets(), 128);
        let l2 = Cache::new(CacheConfig::isca08_l2());
        assert_eq!(l2.config().sets(), 1024);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = Cache::new(CacheConfig::isca08_l1());
        // Stream over 64 KB (4x the 16 KB L1) twice: second pass still
        // misses everywhere.
        for _ in 0..2 {
            for a in (0..64 * 1024).step_by(64) {
                c.access(a);
            }
        }
        assert!(c.stats().miss_rate() > 0.99);
        // A 4 KB working set fits: second pass all hits.
        let mut c = Cache::new(CacheConfig::isca08_l1());
        for a in (0..4096).step_by(64) {
            c.access(a);
        }
        let before = c.stats().misses;
        for a in (0..4096).step_by(64) {
            assert!(c.access(a));
        }
        assert_eq!(c.stats().misses, before);
    }

    #[test]
    fn miss_rate_statistic() {
        let mut c = tiny();
        c.access(0);
        c.access(0);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-9);
    }
}
