//! End-to-end span provenance through the pool: sampled frames leave
//! `channel_wait`/`dispatch` stage records in the flight recorder, a
//! violating frame's chain is snapshotted into its event-ring entry, and
//! switching spans off removes the recorder entirely.

use igm_isa::{Annotation, MemRef, OpClass, Reg, TraceEntry};
use igm_lifeguards::LifeguardKind;
use igm_obs::EventKind;
use igm_runtime::{MonitorPool, PoolConfig, SessionConfig};
use igm_span::Stage;

fn clean(n: u32) -> Vec<TraceEntry> {
    (0..n).map(|i| TraceEntry::op(0x1000 + 4 * i, OpClass::ImmToReg { rd: Reg::Eax })).collect()
}

#[test]
fn sampled_frames_chain_channel_wait_into_dispatch() {
    let pool = MonitorPool::new(PoolConfig::with_workers(2));
    let recorder = pool.recorder().expect("spans are on by default").clone();
    let session = pool.open_session(SessionConfig::new("app", LifeguardKind::AddrCheck));
    // The first frame of a flow is always sampled.
    session.send_batch(clean(16)).unwrap();
    session.finish();

    let spans = recorder.snapshot();
    let wait = spans.iter().find(|r| r.stage == Stage::ChannelWait).expect("channel_wait span");
    let dispatch = spans.iter().find(|r| r.stage == Stage::Dispatch).expect("dispatch span");
    assert_eq!(wait.tag, dispatch.tag, "both stages chain under the frame's tag");
    assert!(wait.tag.flow > 0, "flow 0 is never issued");
    assert!(wait.t_end <= dispatch.t_end, "causal order");
    let chain = recorder.chain(wait.tag);
    assert_eq!(
        chain.iter().map(|r| r.stage).collect::<Vec<_>>(),
        [Stage::ChannelWait, Stage::Dispatch]
    );

    // The stage histograms saw the same observations.
    let snap = pool.metrics().snapshot();
    for stage in ["channel_wait", "dispatch"] {
        let hist = snap
            .histograms
            .iter()
            .find(|h| h.name == "igm_span_stage_nanos" && h.labels.iter().any(|(_, v)| v == stage))
            .unwrap_or_else(|| panic!("igm_span_stage_nanos{{stage={stage}}} registered"));
        assert!(hist.hist.count() > 0, "{stage} histogram recorded");
    }
    pool.shutdown();
}

#[test]
fn violation_event_snapshots_the_frame_chain() {
    let pool = MonitorPool::new(PoolConfig::with_workers(1));
    let session = pool.open_session(SessionConfig::new("victim", LifeguardKind::AddrCheck));
    // First (sampled) frame: allocate 64 bytes, then touch one past the
    // end — a violation inside a sampled frame.
    session
        .send_batch(vec![
            TraceEntry::annot(0x10, Annotation::Malloc { base: 0x9000, size: 64 }),
            TraceEntry::op(0x14, OpClass::MemToReg { src: MemRef::word(0x9040), rd: Reg::Eax }),
        ])
        .unwrap();
    let report = session.finish();
    assert_eq!(report.violations.len(), 1);

    let events = pool.events().since(0);
    let spans = events
        .events
        .iter()
        .find_map(|e| match &e.kind {
            EventKind::Violation { spans, .. } => Some(spans.clone()),
            _ => None,
        })
        .expect("a violation event was recorded");
    assert!(!spans.is_empty(), "sampled frame: the chain rides the event");
    let stages: Vec<Stage> = spans.iter().map(|r| r.stage).collect();
    assert!(stages.contains(&Stage::ChannelWait));
    assert!(stages.contains(&Stage::Dispatch));
    assert!(stages.contains(&Stage::Violation), "the violation marker closes the chain");
    assert!(spans.windows(2).all(|w| w[0].t_start <= w[1].t_start), "causal order");
    pool.shutdown();
}

#[test]
fn spans_off_means_no_recorder_and_no_span_metrics() {
    let pool = MonitorPool::new(PoolConfig { spans: false, ..PoolConfig::with_workers(1) });
    assert!(pool.recorder().is_none());
    let session = pool.open_session(SessionConfig::new("quiet", LifeguardKind::TaintCheck));
    session.send_batch(clean(8)).unwrap();
    let report = session.finish();
    assert_eq!(report.records, 8);
    let snap = pool.metrics().snapshot();
    assert!(
        snap.histograms.iter().all(|h| h.name != "igm_span_stage_nanos"),
        "no span histograms registered with spans off"
    );
    pool.shutdown();
}
