//! Cross-crate property-based tests: arbitrary machine programs produce
//! identical lifeguard verdicts under every accelerator configuration.

use igm::accel::{AccelConfig, ItConfig};
use igm::isa::asm::{Addressing, BinOp, ProgramBuilder, SelfOp};
use igm::isa::{Annotation, Machine, MemSize, Reg, TraceEntry};
use igm::lifeguards::{Lifeguard, MemCheck, TaintCheck, Violation};
use igm::sim::Monitor;
use proptest::prelude::*;

const HEAP: u32 = 0x0900_0000;
const STACK_TOP: u32 = 0xbfff_f000;

/// A random but well-formed instruction for the generated programs.
#[derive(Debug, Clone)]
enum Step {
    MovRI(usize, u32),
    MovRR(usize, usize),
    Load(usize, u32, u8),
    Store(u32, usize, u8),
    StoreImm(u32, u32),
    Alu(usize, usize),
    AluImm(usize),
    Movs(u32, u32),
    ReadInput(u32, u32),
    JumpReg(usize),
}

fn arb_addr() -> impl Strategy<Value = u32> {
    (0u32..64).prop_map(|o| HEAP + o * 4)
}

fn arb_size() -> impl Strategy<Value = u8> {
    prop_oneof![Just(1u8), Just(2), Just(4)]
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0usize..6, any::<u32>()).prop_map(|(r, v)| Step::MovRI(r, v)),
        (0usize..6, 0usize..6).prop_map(|(a, b)| Step::MovRR(a, b)),
        (0usize..6, arb_addr(), arb_size()).prop_map(|(r, a, s)| Step::Load(r, a, s)),
        (arb_addr(), 0usize..6, arb_size()).prop_map(|(a, r, s)| Step::Store(a, r, s)),
        (arb_addr(), any::<u32>()).prop_map(|(a, v)| Step::StoreImm(a, v)),
        (0usize..6, 0usize..6).prop_map(|(a, b)| Step::Alu(a, b)),
        (0usize..6).prop_map(Step::AluImm),
        (arb_addr(), arb_addr()).prop_map(|(s, d)| Step::Movs(s, d)),
        (arb_addr(), 1u32..32).prop_map(|(a, l)| Step::ReadInput(a, l)),
        (0usize..6).prop_map(Step::JumpReg),
    ]
}

/// Registers used by generated code (esp/ebp excluded to keep the stack
/// discipline intact).
const REGS: [Reg; 6] = [Reg::Eax, Reg::Ecx, Reg::Edx, Reg::Ebx, Reg::Esi, Reg::Edi];

fn build_trace(steps: &[Step]) -> Vec<TraceEntry> {
    let mut p = ProgramBuilder::new(0x0804_8000);
    p.mov_ri(Reg::Esp, STACK_TOP);
    p.annot(Annotation::Malloc { base: HEAP, size: 0x200 });
    let mut jumps = 0;
    for s in steps {
        match s {
            Step::MovRI(r, v) => {
                p.mov_ri(REGS[*r], *v);
            }
            Step::MovRR(a, b) => {
                p.mov_rr(REGS[*a], REGS[*b]);
            }
            Step::Load(r, a, sz) => {
                p.load(REGS[*r], Addressing::abs(*a, MemSize::from_bytes(*sz as u32).unwrap()));
            }
            Step::Store(a, r, sz) => {
                p.store(Addressing::abs(*a, MemSize::from_bytes(*sz as u32).unwrap()), REGS[*r]);
            }
            Step::StoreImm(a, v) => {
                p.store_imm(Addressing::abs(*a, MemSize::B4), *v);
            }
            Step::Alu(a, b) => {
                p.alu_rr(BinOp::Add, REGS[*a], REGS[*b]);
            }
            Step::AluImm(r) => {
                p.alu_ri(SelfOp::XorI(0x55), REGS[*r]);
            }
            Step::Movs(s, d) => {
                p.mov_ri(Reg::Esi, *s);
                p.mov_ri(Reg::Edi, *d);
                p.movs(MemSize::B4);
            }
            Step::ReadInput(a, l) => {
                p.annot(Annotation::ReadInput { base: *a, len: *l });
            }
            Step::JumpReg(r) => {
                // Cap control-transfer attempts; the machine stops at the
                // first wild jump anyway.
                if jumps == 0 {
                    jumps += 1;
                    p.jmp_ind_reg(REGS[*r]);
                }
            }
        }
    }
    p.halt();
    let mut m = Machine::new(p.build());
    m.feed_input(&[0xab; 256]);
    let _ = m.run();
    m.take_trace()
}

fn taint_verdicts(trace: &[TraceEntry], accel: &AccelConfig) -> Vec<Violation> {
    let mut mon = Monitor::new(TaintCheck::new(accel), accel);
    mon.observe_all(trace.iter().copied());
    mon.lifeguard_mut().take_violations()
}

fn memcheck_verdicts(trace: &[TraceEntry], accel: &AccelConfig) -> Vec<Violation> {
    let mut mon = Monitor::new(MemCheck::new(accel), accel);
    mon.lifeguard_mut().premark_region(STACK_TOP - 0x1000, 0x1000);
    mon.observe_all(trace.iter().copied());
    mon.lifeguard_mut().take_violations()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// TaintCheck verdict identities — (pc, sink) pairs — are identical
    /// for baseline and every accelerated configuration, over arbitrary
    /// programs. (The reported *source* may differ: IT names the inherited
    /// memory origin where the baseline names the register.)
    #[test]
    fn taintcheck_verdicts_invariant_under_acceleration(
        steps in proptest::collection::vec(arb_step(), 1..60)
    ) {
        let trace = build_trace(&steps);
        let identity = |vs: Vec<Violation>| -> Vec<(u32, igm::lifeguards::violation::TaintSink)> {
            vs.into_iter().map(|v| match v {
                Violation::TaintedUse { pc, sink, .. } => (pc, sink),
                other => panic!("unexpected violation {other}"),
            }).collect()
        };
        let base = identity(taint_verdicts(&trace, &AccelConfig::baseline()));
        for accel in [
            AccelConfig::lma(),
            AccelConfig::lma_it(ItConfig::taint_style()),
            AccelConfig::full(ItConfig::taint_style()),
        ] {
            let got = identity(taint_verdicts(&trace, &accel));
            prop_assert_eq!(&base, &got, "config {}", accel.label());
        }
    }

    /// MemCheck's *accessibility* verdicts are invariant under acceleration.
    /// (Uninitialized-use verdicts legitimately differ between the lazy
    /// baseline and the paper's eager IT variant — §4.2 argues both are
    /// valid — so they are compared only as presence/absence.)
    #[test]
    fn memcheck_verdicts_invariant_under_acceleration(
        steps in proptest::collection::vec(arb_step(), 1..60)
    ) {
        let trace = build_trace(&steps);
        let split = |v: Vec<Violation>| {
            let access: Vec<Violation> = v.iter().copied()
                .filter(|x| matches!(x, Violation::UnallocatedAccess { .. })).collect();
            let uninit = v.iter().any(|x| matches!(x, Violation::UninitUse { .. }));
            (access, uninit)
        };
        let (base_access, _base_uninit) = split(memcheck_verdicts(&trace, &AccelConfig::baseline()));
        for accel in [
            AccelConfig::lma(),
            AccelConfig::full(ItConfig::memcheck_style()),
        ] {
            let (access, _uninit) = split(memcheck_verdicts(&trace, &accel));
            prop_assert_eq!(&base_access, &access, "config {}", accel.label());
        }
    }
}
