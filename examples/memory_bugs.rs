//! A tour of memory bugs caught by AddrCheck and MemCheck: out-of-bounds
//! access, use-after-free, double free, use of an uninitialized value, and
//! a leak.
//!
//! ```sh
//! cargo run --example memory_bugs
//! ```

use igm::accel::AccelConfig;
use igm::isa::asm::{Addressing, Cond, ProgramBuilder};
use igm::isa::{Annotation, Machine, MemSize, Reg};
use igm::lifeguards::{AddrCheck, Lifeguard, MemCheck};
use igm::sim::Monitor;

const BLOCK_A: u32 = 0x0900_0000;
const BLOCK_B: u32 = 0x0900_1000;
const STACK_TOP: u32 = 0xbfff_f000;

fn buggy_program() -> igm::isa::Program {
    let mut p = ProgramBuilder::new(0x0804_8000);
    let out = p.label();
    p.mov_ri(Reg::Esp, STACK_TOP);

    // p = malloc(32)
    p.annot(Annotation::Malloc { base: BLOCK_A, size: 32 });
    // p[0] = 7 — fine.
    p.store_imm(Addressing::abs(BLOCK_A, MemSize::B4), 7);
    // p[8] = 9 — one word past the end! (bug 1: out of bounds)
    p.store_imm(Addressing::abs(BLOCK_A + 32, MemSize::B4), 9);
    // free(p)
    p.annot(Annotation::Free { base: BLOCK_A });
    // *p — bug 2: use after free.
    p.load(Reg::Eax, Addressing::abs(BLOCK_A, MemSize::B4));
    // free(p) again — bug 3: double free.
    p.annot(Annotation::Free { base: BLOCK_A });

    // q = malloc(16), never written, never freed.
    p.annot(Annotation::Malloc { base: BLOCK_B, size: 16 });
    // if (*q) ... — bug 4: branching on an uninitialized value.
    p.load(Reg::Ecx, Addressing::abs(BLOCK_B, MemSize::B4));
    p.cmp_ri(Reg::Ecx, 0);
    p.jcc(Cond::Eq, out);
    p.bind(out);
    p.halt();
    // q is still allocated at exit — bug 5: leak.
    p.build()
}

fn main() {
    let mut machine = Machine::new(buggy_program());
    machine.run().expect("the buggy program itself runs to completion");
    let trace: Vec<_> = machine.take_trace();

    let accel = AccelConfig::lma_if(); // AddrCheck/MemCheck's Figure 2 row
    println!("=== AddrCheck ===");
    let mut ac = Monitor::new(AddrCheck::new(&accel), &accel);
    ac.lifeguard_mut().premark_region(STACK_TOP - 0x1000, 0x1000);
    ac.observe_all(trace.iter().copied());
    ac.lifeguard_mut().report_leaks();
    for v in ac.violations() {
        println!("  {v}");
    }
    // Out-of-bounds store, use-after-free load, double free, leak.
    assert_eq!(ac.violations().len(), 4);

    println!("\n=== MemCheck ===");
    let mut mc = Monitor::new(MemCheck::new(&accel), &accel);
    mc.lifeguard_mut().premark_region(STACK_TOP - 0x1000, 0x1000);
    mc.observe_all(trace.iter().copied());
    for v in mc.violations() {
        println!("  {v}");
    }
    // MemCheck sees everything AddrCheck sees (minus the on-demand leak
    // report) *plus* the uninitialized branch input.
    assert!(mc
        .violations()
        .iter()
        .any(|v| matches!(v, igm::lifeguards::Violation::UninitUse { .. })));

    println!("\nAll five planted bugs were caught.");
}
