//! The lake catalog: artifact discovery, index loading, and the
//! record-coordinate APIs (query, neighborhood, windowed replay).

use crate::query::{execute, LakeHits, LakeQuery};
use igm_isa::TraceEntry;
use igm_lba::TraceBatch;
use igm_runtime::{MonitorPool, SessionConfig, SessionReport};
use igm_span::{tenant_id, trace_id, RecordId};
use igm_trace::{replay_window, CaptureError, TraceError, TraceIndex, TraceReader};
use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};

/// Why a lake operation failed.
#[derive(Debug)]
pub enum LakeError {
    /// No trace in the lake has the requested tenant stem.
    UnknownTenant(String),
    /// No trace matches the record id's `(tenant, trace)` coordinates,
    /// or its `seq` is past the end of the trace.
    UnknownRecord(RecordId),
    /// Reading or decoding a trace artifact failed.
    Trace(TraceError),
    /// A windowed replay failed (pool closed under the session).
    Replay(CaptureError),
}

impl std::fmt::Display for LakeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LakeError::UnknownTenant(t) => write!(f, "no lake trace for tenant {t:?}"),
            LakeError::UnknownRecord(id) => write!(f, "no lake record {id}"),
            LakeError::Trace(e) => write!(f, "lake trace error: {e}"),
            LakeError::Replay(e) => write!(f, "lake replay error: {e}"),
        }
    }
}

impl std::error::Error for LakeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LakeError::Trace(e) => Some(e),
            LakeError::Replay(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for LakeError {
    fn from(e: TraceError) -> LakeError {
        LakeError::Trace(e)
    }
}

/// One cataloged trace: the artifact pair plus its loaded posting index.
#[derive(Debug)]
pub struct LakeTrace {
    /// Artifact stem (`<stem>.igmt` / `<stem>.igmx`) — the tenant label
    /// as sanitized by the capture layer ([`igm_trace::lake_stem`]).
    pub stem: String,
    /// [`tenant_id`] of the stem (the `RecordId.tenant` coordinate).
    pub tenant: u32,
    /// [`trace_id`] of the stem (the `RecordId.trace` coordinate).
    pub trace: u32,
    /// Path of the trace file.
    pub path: PathBuf,
    /// Trace file size in bytes.
    pub trace_bytes: u64,
    /// The loaded (or rebuilt) `IGMX` v2 posting index.
    pub index: TraceIndex,
    /// Whether the sidecar had to be rebuilt by an offline record scan
    /// (missing, v1 directory-only, corrupt, or stale).
    pub rebuilt: bool,
}

impl LakeTrace {
    /// Index overhead in bytes per record (posting sections only — the
    /// lake's headline cost metric).
    pub fn index_bytes_per_record(&self) -> f64 {
        let records = self.index.total_records();
        if records == 0 {
            0.0
        } else {
            self.index.posting_bytes() as f64 / records as f64
        }
    }
}

/// A catalog over one directory of capture/tee artifacts.
///
/// Opening the lake pairs every `<stem>.igmt` with its `<stem>.igmx`
/// sidecar. A sidecar that is missing, directory-only (v1), corrupt, or
/// stale (its frame directory points past the end of the trace file) is
/// rebuilt by [`TraceIndex::scan_records_file`] and saved back — the
/// offline build is byte-identical to the writer-inline one, so a lake
/// heals its indexes without changing what queries see. Traces that fail
/// even the rebuild are left out and reported by [`TraceLake::skipped`].
#[derive(Debug)]
pub struct TraceLake {
    dir: PathBuf,
    traces: Vec<LakeTrace>,
    skipped: Vec<(String, String)>,
}

impl TraceLake {
    /// Opens the lake over `dir`.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<TraceLake> {
        let dir = dir.as_ref().to_path_buf();
        let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "igmt"))
            .collect();
        paths.sort();
        let mut traces = Vec::new();
        let mut skipped = Vec::new();
        for path in paths {
            let stem = match path.file_stem().and_then(|s| s.to_str()) {
                Some(s) => s.to_owned(),
                None => continue,
            };
            let trace_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            let sidecar = path.with_extension("igmx");
            let loaded = TraceIndex::load_file(&sidecar)
                .ok()
                .filter(|i| i.has_postings() && index_fits(i, trace_bytes));
            let (index, rebuilt) = match loaded {
                Some(i) => (i, false),
                None => match TraceIndex::scan_records_file(&path) {
                    Ok(i) => {
                        // Heal the sidecar; failing to save is not fatal
                        // (the in-memory index still serves queries).
                        let _ = i.save_file(&sidecar);
                        (i, true)
                    }
                    Err(e) => {
                        skipped.push((stem, e.to_string()));
                        continue;
                    }
                },
            };
            traces.push(LakeTrace {
                tenant: tenant_id(&stem),
                trace: trace_id(&stem),
                stem,
                path,
                trace_bytes,
                index,
                rebuilt,
            });
        }
        Ok(TraceLake { dir, traces, skipped })
    }

    /// The directory this lake catalogs.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Every cataloged trace, in stem order.
    pub fn traces(&self) -> &[LakeTrace] {
        &self.traces
    }

    /// Artifacts that could not be cataloged: `(stem, reason)`.
    pub fn skipped(&self) -> &[(String, String)] {
        &self.skipped
    }

    /// Records across every cataloged trace.
    pub fn total_records(&self) -> u64 {
        self.traces.iter().map(|t| t.index.total_records()).sum()
    }

    /// Posting-index bytes across every cataloged trace.
    pub fn total_index_bytes(&self) -> u64 {
        self.traces.iter().map(|t| t.index.posting_bytes()).sum()
    }

    /// The trace captured under tenant stem `stem`, if cataloged.
    pub fn by_stem(&self, stem: &str) -> Option<&LakeTrace> {
        self.traces.iter().find(|t| t.stem == stem)
    }

    /// The trace with the given `RecordId` coordinates.
    pub fn by_ids(&self, tenant: u32, trace: u32) -> Option<&LakeTrace> {
        self.traces.iter().find(|t| t.tenant == tenant && t.trace == trace)
    }

    /// Runs `q` across the lake — against one tenant's trace when
    /// `tenant` is given, across every trace otherwise. Pure sidecar
    /// bitmap algebra: no trace file is opened. At most `limit` hit ids
    /// are materialized; `matched` still counts all of them.
    pub fn query(
        &self,
        tenant: Option<&str>,
        q: &LakeQuery,
        limit: usize,
    ) -> Result<LakeHits, LakeError> {
        let mut hits = LakeHits::default();
        match tenant {
            Some(stem) => {
                let t = self.by_stem(stem).ok_or_else(|| LakeError::UnknownTenant(stem.into()))?;
                execute(&t.index, t.tenant, t.trace, q, limit, &mut hits);
            }
            None => {
                for t in &self.traces {
                    execute(&t.index, t.tenant, t.trace, q, limit, &mut hits);
                }
            }
        }
        Ok(hits)
    }

    /// Decodes the ±`k` record neighborhood around `id` — the lake's
    /// only payload-decoding path, and it touches exactly the frames
    /// the window overlaps: the frame directory seeks the reader to the
    /// first one, and decoding stops at the window's end.
    pub fn neighborhood(&self, id: RecordId, k: u64) -> Result<Vec<(u64, TraceEntry)>, LakeError> {
        let t = self.locate(id)?;
        let start = id.seq.saturating_sub(k);
        let end = (id.seq + k + 1).min(t.index.total_records());
        let mut reader =
            TraceReader::new(BufReader::new(File::open(&t.path).map_err(TraceError::Io)?))?;
        let entry = *t.index.frame_for_record(start).expect("start is inside the trace");
        reader.seek_to_frame(&entry)?;
        let mut pos = entry.first_record;
        let mut out = Vec::with_capacity((end - start) as usize);
        let mut batch = TraceBatch::new();
        while pos < end && reader.read_chunk_into_batch(&mut batch)? {
            for (i, e) in batch.iter().enumerate() {
                let seq = pos + i as u64;
                if (start..end).contains(&seq) {
                    out.push((seq, e));
                }
            }
            pos += batch.len() as u64;
        }
        Ok(out)
    }

    /// Replays the ±`k` window around `id` through a fresh lifeguard
    /// session on `pool` (via [`replay_window`]'s directory seek) and
    /// returns its report. The window observes records without their
    /// prefix, so lifeguard state is an inspection view, not the
    /// original run's — see [`replay_window`]'s caveat.
    pub fn replay_around(
        &self,
        pool: &MonitorPool,
        cfg: SessionConfig,
        id: RecordId,
        k: u64,
    ) -> Result<SessionReport, LakeError> {
        let t = self.locate(id)?;
        let start = id.seq.saturating_sub(k);
        let end = id.seq + k + 1;
        let mut reader =
            TraceReader::new(BufReader::new(File::open(&t.path).map_err(TraceError::Io)?))?;
        replay_window(pool, cfg, &mut reader, &t.index, start..end).map_err(LakeError::Replay)
    }

    fn locate(&self, id: RecordId) -> Result<&LakeTrace, LakeError> {
        self.by_ids(id.tenant, id.trace)
            .filter(|t| id.seq < t.index.total_records())
            .ok_or(LakeError::UnknownRecord(id))
    }
}

/// Whether a loaded sidecar is consistent with the trace file's current
/// size (a stale sidecar from a prior capture must not silently answer
/// for a rewritten trace).
fn index_fits(index: &TraceIndex, trace_bytes: u64) -> bool {
    index.entries().last().is_none_or(|e| e.offset < trace_bytes)
}
