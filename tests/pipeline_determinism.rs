//! Intra-session epoch pipelining must be invisible in the results: a
//! single hot session forced through the pipelined path
//! ([`igm::runtime::PipelineMode::Always`]) has to produce the *same
//! violation sequence and the same `DispatchStats`* as the plain
//! sequential `Monitor` over the same trace — for an elision-heavy
//! lifeguard (AddrCheck), a cascade-suppressing one (MemCheck, whose
//! check handlers mutate metadata) and one that elides nothing
//! (LockSet) — across randomized worker counts and epoch budgets.

use igm::accel::{AccelConfig, DispatchStats};
use igm::isa::{Annotation, MemRef, OpClass, Reg, TraceEntry};
use igm::lifeguards::{Lifeguard, LifeguardKind, Violation};
use igm::runtime::{EpochConfig, MonitorPool, PipelineMode, PoolConfig, SessionConfig};
use igm::sim::Monitor;
use proptest::prelude::*;

/// A trace for `kind` with violations planted every `stride` records.
fn planted_trace(kind: LifeguardKind, n: usize, stride: usize, seed: u32) -> Vec<TraceEntry> {
    let heap = 0x9000_0000u32;
    let mut trace = Vec::with_capacity(n + 8);
    trace.push(TraceEntry::annot(0x10, Annotation::Malloc { base: heap, size: 0x1000 }));
    for i in 0..n as u32 {
        let pc = 0x1000 + 8 * i;
        let addr = heap + 4 * ((i.wrapping_mul(seed | 1)) % 0x400);
        let benign = match i % 4 {
            0 => TraceEntry::op(pc, OpClass::ImmToMem { dst: MemRef::word(addr) }),
            1 => TraceEntry::op(pc, OpClass::MemToReg { src: MemRef::word(addr), rd: Reg::Eax }),
            2 => TraceEntry::op(pc, OpClass::RegToReg { rs: Reg::Eax, rd: Reg::Ecx }),
            _ => TraceEntry::op(pc, OpClass::DestRegOpReg { rs: Reg::Ecx, rd: Reg::Eax }),
        };
        trace.push(benign);
        if (i as usize + 1).is_multiple_of(stride) {
            match kind {
                LifeguardKind::LockSet => {
                    // Two threads write the same fresh word, no lock held.
                    let w = 0xb000_0000 + 4 * i;
                    trace.push(TraceEntry::op(pc + 1, OpClass::ImmToMem { dst: MemRef::word(w) }));
                    trace.push(TraceEntry::annot(pc + 2, Annotation::ThreadSwitch { tid: 1 }));
                    trace.push(TraceEntry::op(pc + 3, OpClass::ImmToMem { dst: MemRef::word(w) }));
                    trace.push(TraceEntry::annot(pc + 4, Annotation::ThreadSwitch { tid: 0 }));
                }
                _ => {
                    // Touch unallocated memory (AddrCheck, MemCheck).
                    trace.push(TraceEntry::op(
                        pc + 1,
                        OpClass::MemToReg { src: MemRef::word(0xdead_0000 + 8 * i), rd: Reg::Edx },
                    ));
                }
            }
        }
    }
    trace
}

/// The sequential reference: the ordinary single-threaded `Monitor`.
fn sequential_reference(
    kind: LifeguardKind,
    trace: &[TraceEntry],
) -> (Vec<Violation>, DispatchStats) {
    let accel = AccelConfig::baseline();
    let mut seq = Monitor::new(kind.build_any(&accel), &accel);
    seq.observe_all(trace.iter().copied());
    let stats = seq.dispatch_stats().clone();
    let violations = seq.lifeguard_mut().take_violations();
    (violations, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// One hot session, pipelined from the first record: violations and
    /// dispatch counters equal the sequential monitor exactly, for every
    /// worker count and epoch budget.
    #[test]
    fn pipelined_session_matches_sequential_monitor(
        workers in 1usize..=4,
        budget in 8usize..600,
        n in 300usize..900,
        stride in 11usize..50,
        chunk_records in 1usize..64,
        seed in 1u32..1000,
    ) {
        for kind in [LifeguardKind::AddrCheck, LifeguardKind::MemCheck, LifeguardKind::LockSet] {
            let trace = planted_trace(kind, n, stride, seed);
            let (seq_violations, seq_dispatch) = sequential_reference(kind, &trace);
            prop_assert!(!seq_violations.is_empty(), "{kind}: planted patterns must fire");

            let pool = MonitorPool::new(PoolConfig {
                workers,
                channel_capacity_bytes: 8192,
                chunk_bytes: 512,
                pipeline: PipelineMode::Always,
                epoch: EpochConfig::Fixed(budget),
                ..PoolConfig::default()
            });
            let session = pool.open_session(SessionConfig::new("hot", kind));
            for chunk in trace.chunks(chunk_records) {
                session.send_batch(chunk.to_vec()).unwrap();
            }
            let report = session.finish();
            prop_assert!(
                pool.stats().epoch_jobs > 0,
                "{kind}: Always mode must actually ship epoch jobs"
            );
            prop_assert_eq!(report.records, trace.len() as u64);
            prop_assert_eq!(
                &report.violations, &seq_violations,
                "{} violations (workers={}, budget={}, chunk={})",
                kind, workers, budget, chunk_records
            );
            prop_assert_eq!(
                &report.dispatch, &seq_dispatch,
                "{} dispatch stats (workers={}, budget={}, chunk={})",
                kind, workers, budget, chunk_records
            );
            pool.shutdown();
        }
    }

    /// Auto mode decides per session from live channel occupancy whether
    /// to pipeline — and whichever way the race falls, results must equal
    /// the sequential monitor, and the pipeline gauges must settle back
    /// to zero once the session finishes.
    #[test]
    fn auto_mode_is_invisible_and_settles_gauges(
        workers in 1usize..=4,
        n in 400usize..900,
        seed in 1u32..1000,
    ) {
        let kind = LifeguardKind::AddrCheck;
        let trace = planted_trace(kind, n, 19, seed);
        let (seq_violations, seq_dispatch) = sequential_reference(kind, &trace);

        let pool = MonitorPool::new(PoolConfig {
            workers,
            // A tiny channel, so a blasting producer keeps it byte-hot and
            // Auto's occupancy detector has every chance to trigger.
            channel_capacity_bytes: 2048,
            chunk_bytes: 256,
            pipeline: PipelineMode::Auto,
            ..PoolConfig::default()
        });
        let session = pool.open_session(SessionConfig::new("hot", kind));
        for chunk in trace.chunks(64) {
            session.send_batch(chunk.to_vec()).unwrap();
        }
        let report = session.finish();
        prop_assert_eq!(&report.violations, &seq_violations);
        prop_assert_eq!(&report.dispatch, &seq_dispatch);
        for g in pool.metrics().snapshot().gauges {
            if g.name == "igm_epoch_pipeline_active" || g.name == "igm_epoch_backlog_records" {
                prop_assert_eq!(g.value, 0, "{} must settle after finish", g.name);
            }
        }
        pool.shutdown();
    }

    /// Adaptive epoch sizing under pipelining must not change results
    /// either — whatever cuts the check-density feedback picks.
    #[test]
    fn pipelined_adaptive_budgets_match_sequential_monitor(
        workers in 1usize..=4,
        n in 300usize..700,
        seed in 1u32..1000,
    ) {
        let kind = LifeguardKind::AddrCheck;
        let trace = planted_trace(kind, n, 17, seed);
        let (seq_violations, seq_dispatch) = sequential_reference(kind, &trace);

        let pool = MonitorPool::new(PoolConfig {
            workers,
            channel_capacity_bytes: 8192,
            chunk_bytes: 512,
            pipeline: PipelineMode::Always,
            epoch: EpochConfig::Adaptive { initial: 64, min: 16, max: 256, target_checks: 128 },
            ..PoolConfig::default()
        });
        let session = pool.open_session(SessionConfig::new("hot", kind));
        for chunk in trace.chunks(23) {
            session.send_batch(chunk.to_vec()).unwrap();
        }
        let report = session.finish();
        prop_assert_eq!(&report.violations, &seq_violations);
        prop_assert_eq!(&report.dispatch, &seq_dispatch);
        pool.shutdown();
    }
}
