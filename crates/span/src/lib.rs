//! # igm-span — end-to-end frame provenance
//!
//! The metrics registry (`igm-obs`) aggregates *where time goes on
//! average*; this crate answers *where one frame went*: a sampled span
//! layer that follows a single trace frame through the whole pipeline —
//! client send → credit stall → server ingest → channel wait → dispatch →
//! (epoch job) → violation — as a chain of fixed-size stage records
//! written into a lock-free [`FlightRecorder`].
//!
//! ## Model
//!
//! - A **flow** (`u32`) identifies one producer lane or session; a
//!   **frame seq** (`u64`) counts frames within it. The pair — a
//!   [`FrameTag`] — is the chain key: every stage record stamped with the
//!   same tag belongs to the same frame's waterfall.
//! - Sampling is decided **once per frame** at its origin (the
//!   `TraceForwarder` for remote tenants, the session handle for local
//!   ones) by a cheap counter ([`Sampler`]); unsampled frames carry
//!   `None` and cost one branch at every stage site.
//! - A stage record is one [`Stage`] id, a [`Track`] (which worker, lane
//!   or client observed it), the tag, and `t_start`/`t_end` nanos
//!   relative to the recorder's epoch.
//!
//! ## The flight recorder
//!
//! [`FlightRecorder`] is a set of fixed-size rings of seqlock-versioned
//! slots: writers claim a slot with one relaxed `fetch_add`, bump the
//! slot's version odd, store the fields, bump it even — no locks, no
//! allocation, overwrite-oldest, never blocks the hot path. Each writer
//! site (worker, ingest lane, forwarder) records into its own ring
//! ([`FlightRecorder::ring_handle`]), so rings are single-writer by
//! construction; readers ([`FlightRecorder::since`],
//! [`FlightRecorder::chain`]) detect and discard slots torn by a
//! concurrent overwrite via the version word.
//!
//! Records carry a globally increasing sequence number, so
//! `/spans.json?since=N` cursor paging works exactly like the event
//! ring's, including a `dropped` count for records that were overwritten
//! before they were read.
//!
//! ## Export
//!
//! [`SpanSnapshot::to_json`] backs the `/spans.json` endpoint;
//! [`chrome_trace`] renders any record set as Chrome trace-event JSON
//! (open it in `chrome://tracing` or Perfetto: one track per worker, one
//! per lane, one per client).

#![deny(missing_docs)]

mod export;
mod record;

pub use export::chrome_trace;
pub use record::{name_hash, tenant_id, trace_id, RecordId};

use std::sync::atomic::{fence, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Default sampling cadence: one frame in 64 is followed end to end.
pub const DEFAULT_SAMPLE_EVERY: u32 = 64;

/// Process-global flow allocator (starts at 1; flow 0 is never issued, so
/// it can serve as a "no flow" placeholder in packed encodings).
static NEXT_FLOW: AtomicU32 = AtomicU32::new(1);

/// Allocates a fresh flow id, unique within this process. Flows are
/// assigned per producer (one per forwarder connection, one per local
/// session), so in a loopback run client-side and server-side stages of
/// the same frame share a flow while independent producers never collide.
/// Across hosts each process draws from its own counter; joining those
/// waterfalls is the reader's job (the chain key is still unique per
/// host-side recorder).
pub fn alloc_flow() -> u32 {
    NEXT_FLOW.fetch_add(1, Ordering::Relaxed)
}

/// One pipeline stage a frame passes through, in causal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Client side: one frame encoded and pushed onto the socket.
    ClientSend = 0,
    /// Client side: the forwarder stalled waiting for wire credit.
    CreditStall = 1,
    /// Server side: the frame decoded off the wire into a batch arena.
    ServerIngest = 2,
    /// The batch sat in its tenant's log channel (publish → worker pickup).
    ChannelWait = 3,
    /// The batch ran through `dispatch_batch` + lifeguard handlers.
    Dispatch = 4,
    /// An epoch-parallel job processed (part of) the frame's records.
    EpochJob = 5,
    /// A lifeguard raised a violation while handling the frame.
    Violation = 6,
}

impl Stage {
    /// Every stage, in causal order.
    pub const ALL: [Stage; 7] = [
        Stage::ClientSend,
        Stage::CreditStall,
        Stage::ServerIngest,
        Stage::ChannelWait,
        Stage::Dispatch,
        Stage::EpochJob,
        Stage::Violation,
    ];

    /// Stable lowercase label (metric `stage` label values, JSON export).
    pub fn name(self) -> &'static str {
        match self {
            Stage::ClientSend => "client_send",
            Stage::CreditStall => "credit_stall",
            Stage::ServerIngest => "server_ingest",
            Stage::ChannelWait => "channel_wait",
            Stage::Dispatch => "dispatch",
            Stage::EpochJob => "epoch_job",
            Stage::Violation => "violation",
        }
    }

    fn from_u8(v: u8) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| *s as u8 == v)
    }
}

/// Who observed a stage: the timeline ("thread") the record renders on in
/// the Chrome trace export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// A pool worker, by worker index.
    Worker(u32),
    /// An ingest lane (local or socket), by lane id.
    Lane(u32),
    /// A forwarder client, by its flow id.
    Client(u32),
}

const TRACK_ID_MASK: u32 = (1 << 30) - 1;

impl Track {
    /// Packs the track into one u32 (2-bit kind, 30-bit id).
    pub fn code(self) -> u32 {
        match self {
            Track::Worker(id) => id & TRACK_ID_MASK,
            Track::Lane(id) => (1 << 30) | (id & TRACK_ID_MASK),
            Track::Client(id) => (2 << 30) | (id & TRACK_ID_MASK),
        }
    }

    /// Inverse of [`Track::code`].
    pub fn from_code(code: u32) -> Track {
        let id = code & TRACK_ID_MASK;
        match code >> 30 {
            1 => Track::Lane(id),
            2 => Track::Client(id),
            _ => Track::Worker(id),
        }
    }

    /// Human-readable track name ("worker 3", "lane 7", "client 12").
    pub fn label(self) -> String {
        match self {
            Track::Worker(id) => format!("worker {id}"),
            Track::Lane(id) => format!("lane {id}"),
            Track::Client(id) => format!("client {id}"),
        }
    }
}

/// The span context that rides with one sampled frame: the chain key
/// every stage record of that frame is stamped with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameTag {
    /// The producer's flow id ([`alloc_flow`]).
    pub flow: u32,
    /// The frame's ordinal within the flow.
    pub seq: u64,
}

/// The once-per-frame sampling decision: a cheap modular counter, safe to
/// drive through `&self` (the counter is atomic, one relaxed `fetch_add`
/// per frame). `every == 0` disables sampling entirely.
#[derive(Debug)]
pub struct Sampler {
    every: u32,
    n: AtomicU32,
}

impl Sampler {
    /// Samples one frame in `every` (0 = never).
    pub fn new(every: u32) -> Sampler {
        Sampler { every, n: AtomicU32::new(0) }
    }

    /// Decides the current frame; the first frame of a flow is always
    /// sampled (so short smoke runs still produce at least one chain).
    pub fn sample(&self) -> bool {
        if self.every == 0 {
            return false;
        }
        self.n.fetch_add(1, Ordering::Relaxed).is_multiple_of(self.every)
    }

    /// The configured cadence.
    pub fn every(&self) -> u32 {
        self.every
    }
}

/// Flight-recorder geometry.
#[derive(Debug, Clone)]
pub struct SpanConfig {
    /// Independent slot rings; each writer site records into one ring
    /// (assigned round-robin by [`FlightRecorder::ring_handle`]).
    pub rings: usize,
    /// Slots per ring (rounded up to a power of two).
    pub slots_per_ring: usize,
    /// Sampling cadence handed to [`FlightRecorder::sampler`].
    pub sample_every: u32,
}

impl Default for SpanConfig {
    fn default() -> SpanConfig {
        SpanConfig { rings: 8, slots_per_ring: 1024, sample_every: DEFAULT_SAMPLE_EVERY }
    }
}

/// An empty slot's `seq` sentinel (never issued: sequence numbers count
/// up from zero and the recorder would wrap the rings long before 2⁶⁴).
const SEQ_EMPTY: u64 = u64::MAX;

/// One seqlock-versioned slot. Writers bump `version` odd, store the
/// fields relaxed, bump it even; readers reject a slot whose version was
/// odd or changed across the field reads. All fields are atomics, so a
/// torn read is garbage-by-rejection, never undefined behaviour.
struct Slot {
    version: AtomicU64,
    seq: AtomicU64,
    /// `flow << 32 | track code`.
    flow_track: AtomicU64,
    stage: AtomicU64,
    frame_seq: AtomicU64,
    t_start: AtomicU64,
    t_end: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            version: AtomicU64::new(0),
            seq: AtomicU64::new(SEQ_EMPTY),
            flow_track: AtomicU64::new(0),
            stage: AtomicU64::new(0),
            frame_seq: AtomicU64::new(0),
            t_start: AtomicU64::new(0),
            t_end: AtomicU64::new(0),
        }
    }
}

struct Ring {
    head: AtomicUsize,
    slots: Box<[Slot]>,
}

/// One completed stage observation, as read back from the recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Global record sequence number (the `/spans.json` cursor).
    pub seq: u64,
    /// Which pipeline stage.
    pub stage: Stage,
    /// Which worker/lane/client observed it.
    pub track: Track,
    /// The frame chain key.
    pub tag: FrameTag,
    /// Stage start, nanos since the recorder's epoch.
    pub t_start: u64,
    /// Stage end, nanos since the recorder's epoch.
    pub t_end: u64,
}

impl SpanRecord {
    /// Stage duration in nanos.
    pub fn nanos(&self) -> u64 {
        self.t_end.saturating_sub(self.t_start)
    }
}

/// A cursor-paged read of the recorder (`/spans.json?since=N`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Records with `seq >= since`, in sequence order.
    pub spans: Vec<SpanRecord>,
    /// The next sequence number the recorder will issue; pass it back as
    /// the next request's `since` to read only newer records.
    pub next_seq: u64,
    /// Records in `[since, next_seq)` that were overwritten before this
    /// read (ring wrapped past them).
    pub dropped: u64,
}

/// The lock-free, overwrite-oldest span sink — see the crate docs for the
/// full model. Cheap enough to leave on in production: recording one
/// stage is a handful of relaxed atomic stores into a preallocated slot,
/// and unsampled frames never reach it.
pub struct FlightRecorder {
    rings: Box<[Ring]>,
    next_seq: AtomicU64,
    next_ring: AtomicUsize,
    sample_every: u32,
    epoch: Instant,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("rings", &self.rings.len())
            .field("slots_per_ring", &self.rings.first().map_or(0, |r| r.slots.len()))
            .field("next_seq", &self.next_seq.load(Ordering::Relaxed))
            .field("sample_every", &self.sample_every)
            .finish()
    }
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new(SpanConfig::default())
    }
}

impl FlightRecorder {
    /// A recorder with the given geometry (slot counts rounded up to a
    /// power of two; at least one ring of at least two slots).
    pub fn new(cfg: SpanConfig) -> FlightRecorder {
        let rings = cfg.rings.max(1);
        let slots = cfg.slots_per_ring.next_power_of_two().max(2);
        let rings = (0..rings)
            .map(|_| Ring {
                head: AtomicUsize::new(0),
                slots: (0..slots).map(|_| Slot::empty()).collect(),
            })
            .collect();
        FlightRecorder {
            rings,
            next_seq: AtomicU64::new(0),
            next_ring: AtomicUsize::new(0),
            sample_every: cfg.sample_every,
            epoch: Instant::now(),
        }
    }

    /// The configured sampling cadence.
    pub fn sample_every(&self) -> u32 {
        self.sample_every
    }

    /// A fresh [`Sampler`] at the recorder's cadence.
    pub fn sampler(&self) -> Sampler {
        Sampler::new(self.sample_every)
    }

    /// Claims a ring index for a new writer site (round-robin). Each
    /// single-threaded writer (a worker, a forwarder, the ingest thread's
    /// lane) should record through its own handle so rings stay
    /// single-writer.
    pub fn ring_handle(&self) -> usize {
        self.next_ring.fetch_add(1, Ordering::Relaxed) % self.rings.len()
    }

    /// Nanos since the recorder's epoch.
    pub fn now(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Converts an externally captured [`Instant`] (e.g. the SPSC
    /// channel's publish timestamp) to epoch-relative nanos. Instants
    /// predating the recorder clamp to zero.
    pub fn stamp(&self, at: Instant) -> u64 {
        at.checked_duration_since(self.epoch).map_or(0, |d| d.as_nanos() as u64)
    }

    /// Records one completed stage for a sampled frame. `ring` is the
    /// writer's [`FlightRecorder::ring_handle`] (out-of-range values
    /// wrap). Lock-free and allocation-free; overwrites the ring's oldest
    /// record when full.
    pub fn record(
        &self,
        ring: usize,
        stage: Stage,
        track: Track,
        tag: FrameTag,
        t_start: u64,
        t_end: u64,
    ) {
        let ring = &self.rings[ring % self.rings.len()];
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let idx = ring.head.fetch_add(1, Ordering::Relaxed) & (ring.slots.len() - 1);
        let slot = &ring.slots[idx];
        // Seqlock write: odd while in flight. The AcqRel RMWs keep the
        // field stores inside the odd window.
        slot.version.fetch_add(1, Ordering::AcqRel);
        slot.seq.store(seq, Ordering::Relaxed);
        slot.flow_track.store(((tag.flow as u64) << 32) | track.code() as u64, Ordering::Relaxed);
        slot.stage.store(stage as u8 as u64, Ordering::Relaxed);
        slot.frame_seq.store(tag.seq, Ordering::Relaxed);
        slot.t_start.store(t_start, Ordering::Relaxed);
        slot.t_end.store(t_end, Ordering::Relaxed);
        slot.version.fetch_add(1, Ordering::AcqRel);
    }

    /// Convenience: record a stage whose start was captured as an
    /// [`Instant`] and which ends now.
    pub fn record_since(
        &self,
        ring: usize,
        stage: Stage,
        track: Track,
        tag: FrameTag,
        started: Instant,
    ) -> u64 {
        let t_start = self.stamp(started);
        let t_end = self.now();
        self.record(ring, stage, track, tag, t_start, t_end);
        t_end.saturating_sub(t_start)
    }

    fn read_slot(slot: &Slot) -> Option<SpanRecord> {
        let v1 = slot.version.load(Ordering::Acquire);
        if v1 & 1 == 1 {
            return None; // mid-write
        }
        let seq = slot.seq.load(Ordering::Relaxed);
        let flow_track = slot.flow_track.load(Ordering::Relaxed);
        let stage = slot.stage.load(Ordering::Relaxed);
        let frame_seq = slot.frame_seq.load(Ordering::Relaxed);
        let t_start = slot.t_start.load(Ordering::Relaxed);
        let t_end = slot.t_end.load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        if slot.version.load(Ordering::Relaxed) != v1 || seq == SEQ_EMPTY {
            return None; // torn by a concurrent overwrite, or never written
        }
        Some(SpanRecord {
            seq,
            stage: Stage::from_u8(stage as u8)?,
            track: Track::from_code(flow_track as u32),
            tag: FrameTag { flow: (flow_track >> 32) as u32, seq: frame_seq },
            t_start,
            t_end,
        })
    }

    /// Every currently readable record, in sequence order.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.since(0).spans
    }

    /// Cursor-paged read: records with `seq >= since`, plus the next
    /// cursor and how many records in the window were already overwritten.
    pub fn since(&self, since: u64) -> SpanSnapshot {
        let mut spans: Vec<SpanRecord> = self
            .rings
            .iter()
            .flat_map(|r| r.slots.iter())
            .filter_map(Self::read_slot)
            .filter(|rec| rec.seq >= since)
            .collect();
        spans.sort_unstable_by_key(|r| r.seq);
        let next_seq = self.next_seq.load(Ordering::Relaxed);
        let window = next_seq.saturating_sub(since.min(next_seq));
        let dropped = window.saturating_sub(spans.len() as u64);
        SpanSnapshot { spans, next_seq, dropped }
    }

    /// The completed span chain of one frame — every readable stage
    /// record carrying `tag`, in causal (start-time, then sequence)
    /// order. Allocates; meant for cold paths (violation snapshots, the
    /// stats endpoint), never the per-record hot path.
    pub fn chain(&self, tag: FrameTag) -> Vec<SpanRecord> {
        let mut chain: Vec<SpanRecord> = self
            .rings
            .iter()
            .flat_map(|r| r.slots.iter())
            .filter_map(Self::read_slot)
            .filter(|rec| rec.tag == tag)
            .collect();
        chain.sort_unstable_by_key(|r| (r.t_start, r.seq));
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sampler_cadence_and_off_switch() {
        let s = Sampler::new(4);
        let picks: Vec<bool> = (0..8).map(|_| s.sample()).collect();
        assert_eq!(picks, [true, false, false, false, true, false, false, false]);
        let off = Sampler::new(0);
        assert!((0..16).all(|_| !off.sample()));
        let every = Sampler::new(1);
        assert!((0..4).all(|_| every.sample()));
    }

    #[test]
    fn track_codes_round_trip() {
        for t in [Track::Worker(0), Track::Worker(7), Track::Lane(3), Track::Client(123)] {
            assert_eq!(Track::from_code(t.code()), t);
        }
    }

    #[test]
    fn records_read_back_in_sequence_order() {
        let rec = FlightRecorder::new(SpanConfig { rings: 2, slots_per_ring: 8, sample_every: 1 });
        let tag = FrameTag { flow: alloc_flow(), seq: 0 };
        rec.record(0, Stage::ChannelWait, Track::Worker(1), tag, 10, 20);
        rec.record(1, Stage::Dispatch, Track::Worker(1), tag, 20, 45);
        let snap = rec.since(0);
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.next_seq, 2);
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans[0].stage, Stage::ChannelWait);
        assert_eq!(snap.spans[0].nanos(), 10);
        assert_eq!(snap.spans[1].stage, Stage::Dispatch);
        assert_eq!(snap.spans[1].tag, tag);
    }

    #[test]
    fn overwrite_reports_dropped_and_cursor_pages() {
        let rec = FlightRecorder::new(SpanConfig { rings: 1, slots_per_ring: 4, sample_every: 1 });
        let tag = FrameTag { flow: 9, seq: 0 };
        for i in 0..10u64 {
            rec.record(0, Stage::Dispatch, Track::Worker(0), tag, i, i + 1);
        }
        // Ring holds 4 slots; records 0..6 were overwritten.
        let snap = rec.since(0);
        assert_eq!(snap.next_seq, 10);
        assert_eq!(snap.spans.len(), 4);
        assert_eq!(snap.spans.iter().map(|r| r.seq).collect::<Vec<_>>(), [6, 7, 8, 9]);
        assert_eq!(snap.dropped, 6);
        // Cursor past the head: empty, nothing dropped.
        let tail = rec.since(10);
        assert!(tail.spans.is_empty());
        assert_eq!(tail.dropped, 0);
        // Cursor inside the overwritten region.
        let mid = rec.since(4);
        assert_eq!(mid.spans.len(), 4);
        assert_eq!(mid.dropped, 2);
    }

    #[test]
    fn chain_joins_stages_across_rings_in_causal_order() {
        let rec = FlightRecorder::new(SpanConfig { rings: 4, slots_per_ring: 16, sample_every: 1 });
        let tag = FrameTag { flow: 5, seq: 3 };
        let other = FrameTag { flow: 5, seq: 4 };
        rec.record(2, Stage::Dispatch, Track::Worker(2), tag, 300, 400);
        rec.record(0, Stage::ClientSend, Track::Client(5), tag, 0, 100);
        rec.record(1, Stage::ChannelWait, Track::Worker(2), tag, 150, 300);
        rec.record(3, Stage::Dispatch, Track::Worker(0), other, 1, 2);
        let chain = rec.chain(tag);
        assert_eq!(
            chain.iter().map(|r| r.stage).collect::<Vec<_>>(),
            [Stage::ClientSend, Stage::ChannelWait, Stage::Dispatch]
        );
        assert!(chain.iter().all(|r| r.tag == tag));
    }

    #[test]
    fn concurrent_hammering_never_yields_garbage() {
        let rec = Arc::new(FlightRecorder::new(SpanConfig {
            rings: 4,
            slots_per_ring: 8,
            sample_every: 1,
        }));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let rec = Arc::clone(&rec);
                std::thread::spawn(move || {
                    let ring = rec.ring_handle();
                    for i in 0..20_000u64 {
                        let tag = FrameTag { flow: w, seq: i };
                        rec.record(ring, Stage::Dispatch, Track::Worker(w), tag, i, i + 7);
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            for r in rec.snapshot() {
                // Field coherence: a torn slot must have been rejected.
                assert_eq!(r.stage, Stage::Dispatch);
                assert_eq!(r.t_end - r.t_start, 7);
                assert_eq!(r.t_start, r.tag.seq);
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        let snap = rec.since(0);
        assert_eq!(snap.next_seq, 80_000);
        assert_eq!(snap.spans.len(), 4 * 8);
    }
}
