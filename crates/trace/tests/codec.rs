//! Codec correctness: property-tested roundtrip over arbitrary
//! `TraceEntry` sequences, plus the framing error paths (truncation,
//! checksum corruption, zero-length chunks, field validation) for both
//! the predicted (format 2) and legacy delta (format 1) codecs.

use igm_isa::{
    Annotation, CtrlOp, JumpTarget, MemRef, MemSize, OpClass, Reg, RegSet, TraceEntry, TraceOp,
};
use igm_trace::{
    checksum, decode_from_slice, encode_to_vec, frame_codec, Codec, TraceError, TraceReader,
    TraceWriter, FORMAT_VERSION, MAGIC,
};
use proptest::collection::vec;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Strategies over the full trace vocabulary.
// ---------------------------------------------------------------------------

fn reg() -> impl Strategy<Value = Reg> {
    (0usize..8).prop_map(Reg::from_index)
}

fn mem_size() -> impl Strategy<Value = MemSize> {
    prop_oneof![Just(MemSize::B1), Just(MemSize::B2), Just(MemSize::B4)]
}

fn mem_ref() -> impl Strategy<Value = MemRef> {
    (any::<u32>(), mem_size()).prop_map(|(addr, size)| MemRef::new(addr, size))
}

fn regset() -> impl Strategy<Value = RegSet> {
    any::<u8>().prop_map(RegSet::from_bits)
}

fn op_class() -> impl Strategy<Value = OpClass> {
    prop_oneof![
        reg().prop_map(|rd| OpClass::ImmToReg { rd }),
        mem_ref().prop_map(|dst| OpClass::ImmToMem { dst }),
        reg().prop_map(|rd| OpClass::RegSelf { rd }),
        mem_ref().prop_map(|dst| OpClass::MemSelf { dst }),
        (reg(), reg()).prop_map(|(rs, rd)| OpClass::RegToReg { rs, rd }),
        (reg(), mem_ref()).prop_map(|(rs, dst)| OpClass::RegToMem { rs, dst }),
        (mem_ref(), reg()).prop_map(|(src, rd)| OpClass::MemToReg { src, rd }),
        (mem_ref(), mem_ref()).prop_map(|(src, dst)| OpClass::MemToMem { src, dst }),
        (reg(), reg()).prop_map(|(rs, rd)| OpClass::DestRegOpReg { rs, rd }),
        (mem_ref(), reg()).prop_map(|(src, rd)| OpClass::DestRegOpMem { src, rd }),
        (reg(), mem_ref()).prop_map(|(rs, dst)| OpClass::DestMemOpReg { rs, dst }),
        (proptest::option::of(mem_ref()), regset())
            .prop_map(|(src, reads)| OpClass::ReadOnly { src, reads }),
        (regset(), regset(), proptest::option::of(mem_ref()), proptest::option::of(mem_ref()))
            .prop_map(|(reads, writes, mem_read, mem_write)| OpClass::Other {
                reads,
                writes,
                mem_read,
                mem_write
            }),
    ]
}

fn ctrl_op() -> impl Strategy<Value = CtrlOp> {
    prop_oneof![
        Just(CtrlOp::Direct),
        reg().prop_map(|r| CtrlOp::Indirect { target: JumpTarget::Reg(r) }),
        mem_ref().prop_map(|m| CtrlOp::Indirect { target: JumpTarget::Mem(m) }),
        proptest::option::of(reg()).prop_map(|input| CtrlOp::CondBranch { input }),
        mem_ref().prop_map(|slot| CtrlOp::Ret { slot }),
    ]
}

fn annotation() -> impl Strategy<Value = Annotation> {
    prop_oneof![
        (any::<u32>(), any::<u32>()).prop_map(|(base, size)| Annotation::Malloc { base, size }),
        any::<u32>().prop_map(|base| Annotation::Free { base }),
        any::<u32>().prop_map(|lock| Annotation::Lock { lock }),
        any::<u32>().prop_map(|lock| Annotation::Unlock { lock }),
        (any::<u32>(), any::<u32>()).prop_map(|(base, len)| Annotation::ReadInput { base, len }),
        (proptest::option::of(reg()), proptest::option::of(mem_ref()))
            .prop_map(|(arg_reg, arg_mem)| Annotation::Syscall { arg_reg, arg_mem }),
        mem_ref().prop_map(|fmt| Annotation::PrintfFormat { fmt }),
        any::<u32>().prop_map(|tid| Annotation::ThreadSwitch { tid }),
        any::<u32>().prop_map(|tid| Annotation::ThreadExit { tid }),
    ]
}

fn trace_entry() -> impl Strategy<Value = TraceEntry> {
    (
        any::<u32>(),
        prop_oneof![
            10 => op_class().prop_map(TraceOp::Op),
            3 => ctrl_op().prop_map(TraceOp::Ctrl),
            2 => annotation().prop_map(TraceOp::Annot),
        ],
        regset(),
    )
        .prop_map(|(pc, op, addr_regs)| TraceEntry { pc, op, addr_regs })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip_arbitrary_sequences(
        entries in vec(trace_entry(), 0..200),
        chunk_bytes in 1u32..600,
    ) {
        let bytes = encode_to_vec(entries.iter().copied(), chunk_bytes);
        let decoded = decode_from_slice(&bytes).expect("well-formed stream decodes");
        prop_assert_eq!(decoded, entries);
    }

    #[test]
    fn encoding_is_deterministic(entries in vec(trace_entry(), 0..100)) {
        let a = encode_to_vec(entries.iter().copied(), 256);
        let b = encode_to_vec(entries.iter().copied(), 256);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn roundtrip_arbitrary_sequences_all_codecs(entries in vec(trace_entry(), 1..120)) {
        // Predicted-in-v2, delta-in-v2 and the legacy v1 container must
        // all be lossless over the same arbitrary stream.
        for mode in 0..3u8 {
            let mut w = match mode {
                0 => TraceWriter::new(Vec::new()),
                1 => TraceWriter::with_codec(Vec::new(), Codec::Delta),
                _ => TraceWriter::new_v1(Vec::new()),
            }
            .unwrap();
            for chunk in entries.chunks(33) {
                w.write_chunk(chunk).unwrap();
            }
            let bytes = w.finish().unwrap();
            prop_assert_eq!(&decode_from_slice(&bytes).expect("decodes"), &entries);
        }
    }

    #[test]
    fn truncation_never_panics_and_always_errors(
        entries in vec(trace_entry(), 1..60),
        cut_frac in 0u32..1000,
    ) {
        let bytes = encode_to_vec(entries.iter().copied(), 128);
        // Cut strictly inside the stream: every prefix must either fail or
        // decode to a strict prefix of the chunk sequence (cuts at frame
        // boundaries decode cleanly — by design, a trailing well-formed
        // prefix is a valid shorter trace).
        let cut = 1 + (cut_frac as usize * (bytes.len() - 1)) / 1000;
        match decode_from_slice(&bytes[..cut]) {
            Ok(prefix) => {
                prop_assert!(prefix.len() <= entries.len());
                prop_assert_eq!(&entries[..prefix.len()], &prefix[..]);
            }
            Err(TraceError::BadMagic) => prop_assert!(cut < 8, "magic is the first 8 bytes"),
            Err(TraceError::Corrupt { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Directed framing error paths.
// ---------------------------------------------------------------------------

fn sample_entries() -> Vec<TraceEntry> {
    vec![
        TraceEntry::op(0x0804_8000, OpClass::ImmToReg { rd: Reg::Eax }),
        TraceEntry::op(0x0804_8004, OpClass::MemToReg { src: MemRef::word(0x9000), rd: Reg::Ecx })
            .with_addr_regs(RegSet::from_regs([Reg::Ebx])),
        TraceEntry::annot(0x0804_8008, Annotation::Malloc { base: 0xa000, size: 64 }),
        TraceEntry::ctrl(0x0804_800c, CtrlOp::Ret { slot: MemRef::word(0xbfff_fffc) }),
    ]
}

/// A format-2 stream header followed by one hand-built frame whose header
/// carries `codec` verbatim (so unknown ids are expressible too).
fn raw_stream_codec(records: u32, payload: &[u8], sum: u32, codec: u32) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&records.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&sum.to_le_bytes());
    bytes.extend_from_slice(&codec.to_le_bytes());
    bytes.extend_from_slice(payload);
    bytes
}

/// A hand-built delta-codec frame in a format-2 container (the delta
/// record grammar is the easiest to damage one field at a time).
fn raw_stream(records: u32, payload: &[u8], sum: u32) -> Vec<u8> {
    raw_stream_codec(records, payload, sum, Codec::Delta.wire())
}

/// A hand-built predicted-codec frame in a format-2 container.
fn raw_stream_v2(records: u32, payload: &[u8]) -> Vec<u8> {
    raw_stream_codec(records, payload, checksum(payload), Codec::Predicted.wire())
}

#[test]
fn bad_magic_is_rejected() {
    assert!(matches!(TraceReader::new(&b"NOPE0000"[..]), Err(TraceError::BadMagic)));
    assert!(matches!(TraceReader::new(&b"IG"[..]), Err(TraceError::BadMagic)));
}

#[test]
fn future_version_is_rejected() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&99u32.to_le_bytes());
    assert!(matches!(TraceReader::new(&bytes[..]), Err(TraceError::UnsupportedVersion(99))));
}

#[test]
fn corrupt_checksum_is_detected() {
    let mut bytes = encode_to_vec(sample_entries(), 64);
    // Flip one bit in the frame payload (after the 8-byte file header and
    // 12-byte frame header).
    let idx = bytes.len() - 1;
    bytes[idx] ^= 0x40;
    match decode_from_slice(&bytes) {
        Err(TraceError::Corrupt { reason, .. }) => assert!(
            reason.contains("checksum") || reason.contains("trailing") || reason.contains("ends"),
            "unexpected reason: {reason}"
        ),
        other => panic!("corruption not detected: {other:?}"),
    }
}

#[test]
fn checksum_mismatch_reports_payload_offset() {
    let payload = [0u8; 4];
    let bytes = raw_stream(1, &payload, checksum(&payload) ^ 1);
    match decode_from_slice(&bytes) {
        Err(TraceError::Corrupt { offset, reason }) => {
            assert_eq!(offset, 24, "payload begins after 8B header + 16B frame header");
            assert!(reason.contains("checksum"));
        }
        other => panic!("expected checksum error, got {other:?}"),
    }
}

#[test]
fn zero_record_frame_is_corrupt() {
    let payload = [0u8; 2];
    let bytes = raw_stream(0, &payload, checksum(&payload));
    match decode_from_slice(&bytes) {
        Err(TraceError::Corrupt { reason, .. }) => assert!(reason.contains("zero-record")),
        other => panic!("expected zero-record error, got {other:?}"),
    }
}

#[test]
fn zero_length_payload_is_corrupt() {
    let bytes = raw_stream(3, &[], checksum(&[]));
    match decode_from_slice(&bytes) {
        Err(TraceError::Corrupt { reason, .. }) => assert!(reason.contains("zero-length")),
        other => panic!("expected zero-length error, got {other:?}"),
    }
}

#[test]
fn truncated_header_and_payload_are_corrupt() {
    let bytes = encode_to_vec(sample_entries(), 64);
    // Inside the frame header.
    match decode_from_slice(&bytes[..8 + 5]) {
        Err(TraceError::Corrupt { reason, .. }) => assert!(reason.contains("frame header")),
        other => panic!("expected truncated-header error, got {other:?}"),
    }
    // Inside the payload.
    match decode_from_slice(&bytes[..bytes.len() - 1]) {
        Err(TraceError::Corrupt { reason, .. }) => assert!(reason.contains("payload")),
        other => panic!("expected truncated-payload error, got {other:?}"),
    }
}

#[test]
fn unknown_tag_is_corrupt_even_with_valid_checksum() {
    // tag 26 does not exist; pc delta 0.
    let payload = [26u8, 0u8];
    let bytes = raw_stream(1, &payload, checksum(&payload));
    match decode_from_slice(&bytes) {
        Err(TraceError::Corrupt { reason, .. }) => assert!(reason.contains("unknown record tag")),
        other => panic!("expected unknown-tag error, got {other:?}"),
    }
}

#[test]
fn out_of_range_register_is_corrupt() {
    // ImmToReg (tag 0), pc delta 0, register index 9.
    let payload = [0u8, 0u8, 9u8];
    let bytes = raw_stream(1, &payload, checksum(&payload));
    match decode_from_slice(&bytes) {
        Err(TraceError::Corrupt { reason, .. }) => assert!(reason.contains("register")),
        other => panic!("expected register-range error, got {other:?}"),
    }
}

#[test]
fn trailing_payload_bytes_are_corrupt() {
    // One valid ImmToReg record plus a stray byte, checksummed correctly.
    let payload = [0u8, 0u8, 3u8, 0xEE];
    let bytes = raw_stream(1, &payload, checksum(&payload));
    match decode_from_slice(&bytes) {
        Err(TraceError::Corrupt { reason, .. }) => assert!(reason.contains("trailing")),
        other => panic!("expected trailing-bytes error, got {other:?}"),
    }
}

#[test]
fn inflated_record_count_is_rejected_before_allocation() {
    // Valid 4-byte payload and checksum, but a record count (the header
    // is not checksummed) that no 4-byte payload could hold: must be a
    // typed error, not a huge `Vec::reserve`.
    let payload = [0u8, 0u8, 3u8, 0xEE];
    let bytes = raw_stream(u32::MAX, &payload, checksum(&payload));
    match decode_from_slice(&bytes) {
        Err(TraceError::Corrupt { reason, .. }) => assert!(reason.contains("inconsistent")),
        other => panic!("expected count-consistency error, got {other:?}"),
    }
}

#[test]
fn oversized_length_field_is_rejected_before_allocation() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&1u32.to_le_bytes());
    bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd payload_len
    bytes.extend_from_slice(&0u32.to_le_bytes());
    bytes.extend_from_slice(&Codec::Delta.wire().to_le_bytes());
    match decode_from_slice(&bytes) {
        Err(TraceError::Corrupt { reason, .. }) => assert!(reason.contains("bound")),
        other => panic!("expected length-bound error, got {other:?}"),
    }
}

#[test]
fn empty_stream_and_empty_chunks() {
    // Header-only stream: zero entries.
    let bytes = encode_to_vec(std::iter::empty(), 64);
    assert_eq!(decode_from_slice(&bytes).unwrap(), Vec::<TraceEntry>::new());
    // Writer skips empty batches entirely.
    let mut w = TraceWriter::new(Vec::new()).unwrap();
    w.write_chunk(&[]).unwrap();
    assert_eq!(w.chunks(), 0);
    let bytes = w.finish().unwrap();
    assert_eq!(decode_from_slice(&bytes).unwrap(), Vec::<TraceEntry>::new());
}

// ---------------------------------------------------------------------------
// Predicted-codec (format 2) error paths: the hit bitmaps and predictor
// tables open attack surface the delta stream never had.
// ---------------------------------------------------------------------------

#[test]
fn unknown_codec_id_in_frame_header_is_corrupt() {
    let payload = [0u8, 0u8];
    let bytes = raw_stream_codec(1, &payload, checksum(&payload), 7);
    match decode_from_slice(&bytes) {
        Err(TraceError::Corrupt { reason, .. }) => assert!(reason.contains("codec id")),
        other => panic!("expected unknown-codec error, got {other:?}"),
    }
}

#[test]
fn pc_hit_on_unseeded_predictor_slot_is_corrupt() {
    // Record 0 claims a pc predictor hit, but no escape ever seeded the
    // table — a decoder that trusted it would read uninitialized state.
    let bytes = raw_stream_v2(1, &[0x01, 0x00]);
    match decode_from_slice(&bytes) {
        Err(TraceError::Corrupt { reason, .. }) => assert!(reason.contains("unseeded")),
        other => panic!("expected unseeded-slot error, got {other:?}"),
    }
}

#[test]
fn static_hit_on_unseeded_predictor_slot_is_corrupt() {
    // pc misses (escape: delta 0), then the static column claims a hit on
    // a table nothing seeded.
    let bytes = raw_stream_v2(1, &[0x00, 0x00, 0x01]);
    match decode_from_slice(&bytes) {
        Err(TraceError::Corrupt { reason, .. }) => assert!(reason.contains("unseeded")),
        other => panic!("expected unseeded-slot error, got {other:?}"),
    }
}

#[test]
fn nonzero_bitmap_padding_is_corrupt() {
    // One record, but a hit bit set past it in the bitmap's padding.
    let bytes = raw_stream_v2(1, &[0x02, 0x00]);
    match decode_from_slice(&bytes) {
        Err(TraceError::Corrupt { reason, .. }) => assert!(reason.contains("padding")),
        other => panic!("expected bitmap-padding error, got {other:?}"),
    }
}

#[test]
fn payload_ending_inside_a_bitmap_is_corrupt() {
    // pc bitmap + escape consume both bytes; the static bitmap read runs
    // off the end of the payload.
    let bytes = raw_stream_v2(1, &[0x00, 0x00]);
    match decode_from_slice(&bytes) {
        Err(TraceError::Corrupt { reason, .. }) => assert!(reason.contains("bitmap")),
        other => panic!("expected truncated-bitmap error, got {other:?}"),
    }
}

#[test]
fn predicted_frame_corruption_never_panics() {
    // Every single-byte corruption of a real predicted stream must come
    // back as a typed error or a correct decode — never a panic.
    let entries = sample_entries();
    let good = encode_to_vec(entries.iter().copied(), 256);
    for i in 8..good.len() {
        let mut bad = good.clone();
        bad[i] ^= 0x01;
        match decode_from_slice(&bad) {
            Ok(_) | Err(TraceError::Corrupt { .. }) => {}
            Err(e) => panic!("byte {i}: unexpected error class: {e}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Adversarial stream shapes: the predictor stack must stay lossless on
// streams it compresses well AND on streams it cannot predict at all.
// ---------------------------------------------------------------------------

fn roundtrip(entries: &[TraceEntry], chunk_bytes: u32) -> f64 {
    let bytes = encode_to_vec(entries.iter().copied(), chunk_bytes);
    assert_eq!(decode_from_slice(&bytes).expect("roundtrip decodes"), entries);
    (bytes.len() - 8) as f64 / entries.len() as f64
}

#[test]
fn constant_stream_compresses_below_one_byte_per_record() {
    // A tight loop re-executing one load: every predictor locks on, so
    // each record costs four hit bits plus amortized frame headers.
    let entries: Vec<TraceEntry> = (0..8_192)
        .map(|_| {
            TraceEntry::op(
                0x0804_8000,
                OpClass::MemToReg { src: MemRef::word(0x9000), rd: Reg::Ecx },
            )
        })
        .collect();
    let bpr = roundtrip(&entries, 1 << 20);
    assert!(bpr < 1.0, "constant stream must beat 1 B/record, got {bpr:.3}");
}

#[test]
fn strided_loop_compresses_below_one_byte_per_record() {
    // A four-instruction loop sweeping an array with a fixed stride: pc
    // chains repeat and the per-slot stride predictor tracks the sweep.
    let mut entries = Vec::new();
    for i in 0u32..4_096 {
        let base = 0x1000_0000 + i * 4;
        entries.push(TraceEntry::op(0x0804_8000, OpClass::ImmToReg { rd: Reg::Eax }));
        entries.push(TraceEntry::op(
            0x0804_8004,
            OpClass::MemToReg { src: MemRef::word(base), rd: Reg::Ecx },
        ));
        entries.push(TraceEntry::op(
            0x0804_8008,
            OpClass::RegToMem { rs: Reg::Ecx, dst: MemRef::word(0x2000_0000 + i * 4) },
        ));
        entries.push(TraceEntry::ctrl(0x0804_800c, CtrlOp::Direct));
    }
    let bpr = roundtrip(&entries, 1 << 20);
    assert!(bpr < 1.0, "strided loop must beat 1 B/record, got {bpr:.3}");
}

#[test]
fn random_stream_roundtrips_and_stays_bounded() {
    // Unpredictable pcs and addresses (xorshift): most fields escape, and
    // the miss path must stay within a small factor of the delta codec.
    let mut x = 0x9e37_79b9u32;
    let mut step = move || {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        x
    };
    let entries: Vec<TraceEntry> = (0..8_192)
        .map(|_| {
            TraceEntry::op(step(), OpClass::MemToReg { src: MemRef::word(step()), rd: Reg::Edx })
        })
        .collect();
    let bpr = roundtrip(&entries, 1 << 20);
    // Two random u32 deltas cost ~5 varint bytes each; the predicted
    // codec adds only its half-byte of hit bits on top of that worst case.
    assert!(bpr < 13.0, "random stream must stay bounded, got {bpr:.3}");
}

#[test]
fn mixed_phases_roundtrip() {
    // Phase changes mid-frame: constant, then strided, then random, then
    // back — predictor retraining must never lose a record.
    let mut x = 0x1234_5678u32;
    let mut step = move || {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        x
    };
    let mut entries = Vec::new();
    for phase in 0..8 {
        for i in 0u32..512 {
            entries.push(match phase % 3 {
                0 => TraceEntry::op(0x0804_8000, OpClass::ImmToReg { rd: Reg::Eax }),
                1 => TraceEntry::op(
                    0x0805_0000 + (i % 4) * 4,
                    OpClass::MemToReg { src: MemRef::word(0x9000 + i * 8), rd: Reg::Ecx },
                ),
                _ => TraceEntry::op(
                    step(),
                    OpClass::RegToMem { rs: Reg::Ebx, dst: MemRef::word(step()) },
                ),
            });
        }
    }
    roundtrip(&entries, 4096);
}

// ---------------------------------------------------------------------------
// Codec/format interop: legacy format-1 files and delta frames inside a
// format-2 container both still replay.
// ---------------------------------------------------------------------------

#[test]
fn legacy_v1_container_roundtrips() {
    let entries = sample_entries();
    let mut w = TraceWriter::new_v1(Vec::new()).unwrap();
    assert_eq!(w.version(), 1);
    w.write_chunk(&entries).unwrap();
    let bytes = w.finish().unwrap();
    let mut r = TraceReader::new(&bytes[..]).unwrap();
    assert_eq!(r.version(), 1);
    let mut out = Vec::new();
    assert!(r.read_chunk_into(&mut out).unwrap());
    assert_eq!(out, entries);
    assert!(!r.read_chunk_into(&mut out).unwrap());
}

#[test]
fn delta_codec_in_a_v2_container_roundtrips() {
    let entries = sample_entries();
    let mut w = TraceWriter::with_codec(Vec::new(), Codec::Delta).unwrap();
    assert_eq!((w.version(), w.codec()), (2, Codec::Delta));
    w.write_chunk(&entries).unwrap();
    let bytes = w.finish().unwrap();
    // Every frame header carries the delta codec id.
    assert_eq!(frame_codec(&bytes[8..]), Some(Codec::Delta));
    assert_eq!(decode_from_slice(&bytes).unwrap(), entries);
}

#[test]
fn default_writer_emits_predicted_frames() {
    let mut w = TraceWriter::new(Vec::new()).unwrap();
    assert_eq!((w.version(), w.codec()), (2, Codec::Predicted));
    w.write_chunk(&sample_entries()).unwrap();
    let bytes = w.finish().unwrap();
    assert_eq!(frame_codec(&bytes[8..]), Some(Codec::Predicted));
}

#[test]
fn reader_preserves_chunk_structure() {
    let entries = sample_entries();
    let mut w = TraceWriter::new(Vec::new()).unwrap();
    w.write_chunk(&entries[..2]).unwrap();
    w.write_chunk(&entries[2..]).unwrap();
    let bytes = w.finish().unwrap();
    let mut r = TraceReader::new(&bytes[..]).unwrap();
    let mut chunk = Vec::new();
    assert!(r.read_chunk_into(&mut chunk).unwrap());
    assert_eq!(chunk, &entries[..2]);
    assert!(r.read_chunk_into(&mut chunk).unwrap());
    assert_eq!(chunk, &entries[2..]);
    assert!(!r.read_chunk_into(&mut chunk).unwrap());
    assert!(chunk.is_empty(), "clean EOF leaves the buffer cleared");
    assert_eq!(r.chunks(), 2);
    assert_eq!(r.records(), 4);
}
