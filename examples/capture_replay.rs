//! Capture a live monitoring session to a trace file, replay the file,
//! and verify the replay reproduces the live run bit-for-bit.
//!
//! This is the durable-artifact workflow the `igm-trace` subsystem exists
//! for: a monitored run is recorded once (hardware would tee the
//! compressed instruction log; here the capture session tees each
//! transport batch into a framed, checksummed file) and can then be
//! re-monitored at any time — same lifeguard for a regression check, or a
//! different lifeguard/accelerator configuration entirely, without the
//! original workload. Used as the CI capture→replay smoke step:
//!
//! ```sh
//! cargo run --release --example capture_replay
//! ```

use igm::lifeguards::LifeguardKind;
use igm::runtime::{MonitorPool, PoolConfig, SessionConfig};
use igm::trace::{capture_to_file, replay_file};
use igm::workload::Benchmark;

fn main() {
    const N: u64 = 50_000;
    let bench = Benchmark::Gzip;
    let dir = std::env::temp_dir();
    let path = dir.join(format!("igm-capture-{}.igmt", std::process::id()));

    let pool = MonitorPool::new(PoolConfig::with_workers(4));
    let cfg = SessionConfig::new(bench.name(), LifeguardKind::TaintCheck)
        .synthetic()
        .premark(&bench.profile().premark_regions());

    // Live run, teed to the trace file.
    let mut capture = capture_to_file(&pool, cfg.clone(), &path).expect("open capture");
    capture.stream(bench.trace(N)).expect("stream live session");
    let (live, _file) = capture.finish().expect("finalize capture");
    let encoded = std::fs::metadata(&path).expect("capture file exists").len();
    println!(
        "live:   {} records, {} violations, {} events delivered",
        live.records,
        live.violations.len(),
        live.dispatch.delivered
    );
    println!(
        "file:   {encoded} bytes ({:.2} B/record vs {} B in memory)",
        encoded as f64 / live.records as f64,
        std::mem::size_of::<igm::isa::TraceEntry>()
    );

    // Replay the artifact through a fresh session.
    let replayed = replay_file(&pool, cfg, &path).expect("replay capture");
    println!(
        "replay: {} records, {} violations, {} events delivered",
        replayed.records,
        replayed.violations.len(),
        replayed.dispatch.delivered
    );

    assert_eq!(replayed.records, live.records, "record counts diverge");
    assert_eq!(replayed.violations, live.violations, "violations diverge");
    assert_eq!(replayed.dispatch, live.dispatch, "dispatch stats diverge");

    // A recorded artifact is lifeguard-agnostic: re-monitor the same bytes
    // under a different lifeguard without the generator.
    let addr_cfg = SessionConfig::new("gzip-addrcheck", LifeguardKind::AddrCheck)
        .synthetic()
        .premark(&bench.profile().premark_regions());
    let cross = replay_file(&pool, addr_cfg, &path).expect("cross-lifeguard replay");
    println!(
        "cross:  {} records re-monitored under AddrCheck, {} violations",
        cross.records,
        cross.violations.len()
    );
    assert_eq!(cross.records, live.records);

    std::fs::remove_file(&path).ok();
    pool.shutdown();
    println!("\ncapture -> replay determinism verified ✓");
}
