//! Offline API-compatible shim for the `rand` crate.
//!
//! Implements the subset of the `rand` 0.8 API this workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range` and `gen_bool`. The generator is
//! xoshiro256** seeded through SplitMix64 — deterministic and statistically
//! solid, but the streams are *not* bit-identical to upstream `rand`
//! (nothing in this workspace depends on particular streams, only on
//! determinism).

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

mod sealed {
    /// One SplitMix64 step; also used to expand seeds.
    pub fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    use super::sealed::splitmix64;
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A type that can be sampled uniformly from a range (the subset of
/// `rand::distributions::uniform::SampleUniform` this workspace needs).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)` (`high` exclusive).
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]` (`high` inclusive).
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = uniform_u128(rng, span);
                (low as i128 + v as i128) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased uniform sample from `[0, span)` via rejection sampling.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // A full-width range (span = 2^64, e.g. `0u64..=u64::MAX`) needs no
    // rejection sampling — every u64 is in range.
    if span > u64::MAX as u128 {
        return rng.next_u64() as u128;
    }
    let span64 = span as u64;
    let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span64) as u128;
        }
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The user-facing extension trait.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::from_rng(self) < p
    }

    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let a_vals: Vec<u32> = (0..16).map(|_| a.gen_range(0..1_000_000)).collect();
        let c_vals: Vec<u32> = (0..16).map(|_| c.gen_range(0..1_000_000)).collect();
        assert_ne!(a_vals, c_vals, "different seeds must diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let v = r.gen_range(0usize..=5);
            assert!(v <= 5);
            let v = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_probability_is_roughly_respected() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "got {hits}");
        assert!(!(0..1000).any(|_| r.gen_bool(0.0)));
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
    }
}
