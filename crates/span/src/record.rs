//! Global record identity: one `(tenant, trace, seq)` triple per trace
//! record, assigned at capture/ingest and carried through violation
//! reports, the event ring, and the trace lake's query results.
//!
//! The tenant and trace components are FNV-1a-32 hashes of their labels
//! ([`tenant_id`], [`trace_id`]) so every layer — capture files, tee'd
//! net lanes, the lake catalog — derives the *same* id from the same
//! name without coordination. `seq` is the record's 0-based position in
//! its trace stream, which is exactly the coordinate
//! `TraceIndex::frame_for_record` and `replay_window` already seek by:
//! a `RecordId` surfaced by a lake query or a violation event is
//! directly replayable.

use std::fmt;

/// FNV-1a-32 over a byte string — the same hash the trace codec uses
/// for frame checksums, reused here to hash names into stable ids.
/// Duplicated (eight lines) rather than depended on: `igm-span` is the
/// workspace's zero-dependency vocabulary crate.
pub fn name_hash(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// The id a tenant label hashes to. `tenant_id("")` is reserved as
/// "no tenant" only by convention; empty labels are not rejected.
pub fn tenant_id(label: &str) -> u32 {
    name_hash(label.as_bytes())
}

/// The id a trace (file stem) hashes to. A trace id of `0` means "not
/// attached to a durable trace" (live session with no capture tee).
pub fn trace_id(stem: &str) -> u32 {
    name_hash(stem.as_bytes())
}

/// A globally meaningful record coordinate: which tenant, which durable
/// trace, and the record's 0-based sequence number within that trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId {
    /// [`tenant_id`] of the tenant label.
    pub tenant: u32,
    /// [`trace_id`] of the trace file stem; `0` when the record was
    /// only ever live-streamed (no durable trace to seek into).
    pub trace: u32,
    /// 0-based record position within the trace stream — the same
    /// coordinate `replay_window` record ranges use.
    pub seq: u64,
}

impl RecordId {
    /// A record id from raw components.
    pub fn new(tenant: u32, trace: u32, seq: u64) -> RecordId {
        RecordId { tenant, trace, seq }
    }

    /// Whether this id points into a durable trace (seekable) rather
    /// than a live-only stream.
    pub fn is_durable(&self) -> bool {
        self.trace != 0
    }
}

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:08x}:{:08x}:{}", self.tenant, self.trace, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_hash_is_fnv1a32() {
        // Reference vectors for FNV-1a 32-bit.
        assert_eq!(name_hash(b""), 0x811c_9dc5);
        assert_eq!(name_hash(b"a"), 0xe40c_292c);
        assert_eq!(name_hash(b"foobar"), 0xbf9c_f968);
    }

    #[test]
    fn ids_are_stable_and_ordered() {
        let a = RecordId::new(tenant_id("gzip"), trace_id("gzip"), 7);
        let b = RecordId::new(tenant_id("gzip"), trace_id("gzip"), 8);
        assert_eq!(a.tenant, tenant_id("gzip"));
        assert!(a < b);
        assert!(a.is_durable());
        assert!(!RecordId::new(a.tenant, 0, 7).is_durable());
        assert_eq!(format!("{a}"), format!("{:08x}:{:08x}:7", a.tenant, a.trace));
    }
}
