//! Runtime throughput scaling: records/sec through the `MonitorPool` for
//! 1, 2, 4 and 8 workers × {AddrCheck, TaintCheck}, eight concurrent tenant
//! sessions each, plus the transport/scheduler counters that explain the
//! scaling (total producer stalls and stalled nanoseconds, work-stealing
//! session migrations). Further sections measure the trace subsystems:
//! single-thread multiplexed **ingest** throughput (one `Ingestor`
//! driving all eight tenants, vs. eight producer threads), cross-host
//! **net ingest** (four loopback `TraceForwarder` clients through one
//! `IngestServer` thread, with credit-stall and deferred-send counts),
//! and the **codec**'s encoded bytes/record against the in-memory and
//! compressed-model baselines. Emits `BENCH_throughput.json` so future
//! changes have a perf trajectory to compare against.
//!
//! ```sh
//! cargo run --release -p igm-bench --bin throughput   # N=50000 by default
//! N=200000 cargo run --release -p igm-bench --bin throughput
//! ```

use igm_core::DispatchPipeline;
use igm_lba::{chunks, extract_batch, extract_batch_entries, EventBuf, TraceBatch};
use igm_lifeguards::{Lifeguard, LifeguardKind};
use igm_net::{ForwarderConfig, IngestServer, NetServerConfig, TraceForwarder};
use igm_obs::MetricsRegistry;
use igm_runtime::{MonitorPool, PipelineMode, PoolConfig, SessionConfig};
use igm_trace::{IngestConfig, Ingestor, IterSource, TraceReader, TraceWriter};
use igm_workload::Benchmark;
use std::sync::Arc;
use std::time::Instant;

/// One configuration's measurements.
struct RunResult {
    records_per_sec: f64,
    /// Producer-side sends that blocked on a full log channel, summed over
    /// the eight tenants.
    stall_events: u64,
    /// Wall-clock nanoseconds producers spent stalled, summed.
    stall_nanos: u64,
    /// Sessions migrated between workers by the stealing scheduler.
    steals: u64,
}

const TENANTS: [Benchmark; 8] = [
    Benchmark::Bzip2,
    Benchmark::Crafty,
    Benchmark::Gap,
    Benchmark::Gcc,
    Benchmark::Gzip,
    Benchmark::Mcf,
    Benchmark::Twolf,
    Benchmark::Vpr,
];

/// Records per tenant per run (`N` env var, default 50k).
fn run_scale() -> u64 {
    std::env::var("N").ok().and_then(|v| v.parse().ok()).unwrap_or(50_000)
}

/// Repetitions per configuration (`REPS` env var, default 5). The *median*
/// run is reported: on small or shared machines, OS scheduling noise easily
/// swings a single wall-clock sample by ±30% in either direction, and the
/// median damps both the unlucky runs and the occasional unimpeded spike
/// that a mean or max would latch onto.
fn repetitions() -> usize {
    std::env::var("REPS").ok().and_then(|v| v.parse().ok()).unwrap_or(5).max(1)
}

/// Streams all eight tenants through a pool of `workers` shards; returns
/// aggregate records/sec plus the stall/steal counters.
fn run_once(kind: LifeguardKind, workers: usize, n: u64) -> RunResult {
    // Pre-generate the traces so trace synthesis is not part of the
    // measured window.
    let traces: Vec<(Benchmark, Vec<_>)> =
        TENANTS.iter().map(|b| (*b, b.trace(n).collect())).collect();
    let chunk_bytes = std::env::var("CHUNK")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(PoolConfig::default().chunk_bytes);
    let pool = MonitorPool::new(PoolConfig { chunk_bytes, ..PoolConfig::with_workers(workers) });
    let start = Instant::now();
    let (stall_events, stall_nanos) = std::thread::scope(|scope| {
        let handles: Vec<_> = traces
            .into_iter()
            .map(|(bench, trace)| {
                let session = pool.open_session(
                    SessionConfig::new(bench.name(), kind)
                        .synthetic()
                        .premark(&bench.profile().premark_regions()),
                );
                scope.spawn(move || {
                    session.stream(trace).expect("pool alive");
                    session.finish()
                })
            })
            .collect();
        let mut stall_events = 0u64;
        let mut stall_nanos = 0u64;
        for h in handles {
            let report = h.join().expect("tenant completes");
            assert!(report.violations.is_empty(), "clean workloads only");
            stall_events += report.channel.stall_events;
            stall_nanos += report.channel.stall_nanos;
        }
        (stall_events, stall_nanos)
    });
    let elapsed = start.elapsed().as_secs_f64();
    let total = TENANTS.len() as u64 * n;
    let steals = pool.stats().steals;
    pool.shutdown();
    RunResult { records_per_sec: total as f64 / elapsed, stall_events, stall_nanos, steals }
}

/// Median of `reps` runs by records/sec (lower middle for even `reps`, so
/// an even count never degenerates into reporting the fastest spike).
fn run_median(kind: LifeguardKind, workers: usize, n: u64, reps: usize) -> RunResult {
    let mut runs: Vec<RunResult> = (0..reps).map(|_| run_once(kind, workers, n)).collect();
    runs.sort_by(|a, b| a.records_per_sec.total_cmp(&b.records_per_sec));
    runs.remove((runs.len() - 1) / 2)
}

/// Single-tenant scaling: ONE hot session through `workers` shards,
/// forced through the intra-session epoch pipeline (`Always`) or pinned
/// to the plain per-session spine (`Never`). This is the single-session
/// wall the pipelining work targets: before it, a lone tenant's rate was
/// flat in the worker count because one session never left one worker.
fn run_single_once(kind: LifeguardKind, workers: usize, n: u64, mode: PipelineMode) -> f64 {
    let bench = Benchmark::Gcc;
    let trace: Vec<igm_isa::TraceEntry> = bench.trace(n).collect();
    let chunk_bytes = std::env::var("CHUNK")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(PoolConfig::default().chunk_bytes);
    let pool = MonitorPool::new(PoolConfig {
        chunk_bytes,
        pipeline: mode,
        ..PoolConfig::with_workers(workers)
    });
    let session = pool.open_session(
        SessionConfig::new(bench.name(), kind)
            .synthetic()
            .premark(&bench.profile().premark_regions()),
    );
    let start = Instant::now();
    session.stream(trace).expect("pool alive");
    let report = session.finish();
    let elapsed = start.elapsed().as_secs_f64();
    assert!(report.violations.is_empty(), "clean workloads only");
    pool.shutdown();
    n as f64 / elapsed
}

/// Median single-tenant rate (same selection rule as [`run_median`]).
fn run_single_median(
    kind: LifeguardKind,
    workers: usize,
    n: u64,
    reps: usize,
    mode: PipelineMode,
) -> f64 {
    let mut runs: Vec<f64> = (0..reps).map(|_| run_single_once(kind, workers, n, mode)).collect();
    runs.sort_by(f64::total_cmp);
    runs[(runs.len() - 1) / 2]
}

/// One multiplexed-ingest measurement: records/sec plus the backpressure
/// deferral count across all lanes.
struct IngestResult {
    records_per_sec: f64,
    deferred_sends: u64,
}

/// Streams all eight tenants through a pool of `workers` shards from a
/// **single** ingest thread multiplexing eight in-memory sources.
fn run_ingest_once(kind: LifeguardKind, workers: usize, n: u64) -> IngestResult {
    let traces: Vec<(Benchmark, Vec<_>)> =
        TENANTS.iter().map(|b| (*b, b.trace(n).collect())).collect();
    let chunk_bytes = std::env::var("CHUNK")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(PoolConfig::default().chunk_bytes);
    let pool = MonitorPool::new(PoolConfig { chunk_bytes, ..PoolConfig::with_workers(workers) });
    let start = Instant::now();
    let mut ingestor = Ingestor::with_config(&pool, IngestConfig::default());
    for (bench, trace) in traces {
        ingestor.add_source(
            SessionConfig::new(bench.name(), kind)
                .synthetic()
                .premark(&bench.profile().premark_regions()),
            IterSource::new(trace, chunk_bytes),
        );
    }
    let report = ingestor.run();
    let elapsed = start.elapsed().as_secs_f64();
    assert!(report.errors.is_empty(), "in-memory sources cannot fail");
    assert_eq!(report.records(), TENANTS.len() as u64 * n, "ingest lost records");
    let deferred_sends = report.lanes.iter().map(|(_, l)| l.deferred_sends).sum();
    pool.shutdown();
    IngestResult { records_per_sec: report.records() as f64 / elapsed, deferred_sends }
}

/// Median ingest run (same selection rule as [`run_median`]).
fn run_ingest_median(kind: LifeguardKind, workers: usize, n: u64, reps: usize) -> IngestResult {
    let mut runs: Vec<IngestResult> =
        (0..reps).map(|_| run_ingest_once(kind, workers, n)).collect();
    runs.sort_by(|a, b| a.records_per_sec.total_cmp(&b.records_per_sec));
    runs.remove((runs.len() - 1) / 2)
}

/// One cross-host (loopback) ingest measurement.
struct NetResult {
    records_per_sec: f64,
    /// Server-side sends refused by full log channels (lane backpressure).
    deferred_sends: u64,
    /// Client-side stalls waiting for credit grants.
    credit_stalls: u64,
}

/// Streams `clients` loopback tenants through a **single** server thread
/// (accept + handshake + credit flow + multiplexed ingest) into a pool of
/// `workers` shards, each tenant from its own forwarder thread.
fn run_net_once(kind: LifeguardKind, workers: usize, clients: usize, n: u64) -> NetResult {
    let traces: Vec<(Benchmark, Vec<_>)> =
        TENANTS.iter().cycle().take(clients).map(|b| (*b, b.trace(n).collect())).collect();
    let chunk_bytes = std::env::var("CHUNK")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(PoolConfig::default().chunk_bytes);
    let pool = MonitorPool::new(PoolConfig { chunk_bytes, ..PoolConfig::with_workers(workers) });
    let server =
        IngestServer::bind("127.0.0.1:0", &pool, NetServerConfig::default()).expect("bind");
    let addr = server.local_addr().expect("bound");
    let start = Instant::now();
    let (report, credit_stalls) = std::thread::scope(|scope| {
        let handles: Vec<_> = traces
            .into_iter()
            .enumerate()
            .map(|(i, (bench, trace))| {
                scope.spawn(move || {
                    let cfg = SessionConfig::new(format!("{}-{i}", bench.name()), kind)
                        .synthetic()
                        .premark(&bench.profile().premark_regions());
                    let fcfg = ForwarderConfig { chunk_bytes, ..ForwarderConfig::default() };
                    let mut fwd = TraceForwarder::connect_with(addr, &cfg, fcfg).expect("connect");
                    fwd.stream(trace).expect("stream");
                    fwd.finish().expect("clean FIN")
                })
            })
            .collect();
        let report = server.serve_connections(clients);
        let mut credit_stalls = 0u64;
        for h in handles {
            let r = h.join().expect("client completes");
            assert_eq!(r.server_records, r.stats.records, "records lost in flight");
            credit_stalls += r.stats.credit_stalls;
        }
        (report, credit_stalls)
    });
    let elapsed = start.elapsed().as_secs_f64();
    assert!(report.ingest.errors.is_empty(), "loopback lanes cannot fail");
    assert_eq!(report.ingest.records(), clients as u64 * n, "server lost records");
    let deferred_sends = report.ingest.lanes.iter().map(|(_, l)| l.deferred_sends).sum();
    pool.shutdown();
    NetResult {
        records_per_sec: report.ingest.records() as f64 / elapsed,
        deferred_sends,
        credit_stalls,
    }
}

/// Median loopback-ingest run (same selection rule as [`run_median`]).
fn run_net_median(
    kind: LifeguardKind,
    workers: usize,
    clients: usize,
    n: u64,
    reps: usize,
) -> NetResult {
    let mut runs: Vec<NetResult> =
        (0..reps).map(|_| run_net_once(kind, workers, clients, n)).collect();
    runs.sort_by(|a, b| a.records_per_sec.total_cmp(&b.records_per_sec));
    runs.remove((runs.len() - 1) / 2)
}

/// Streams all eight tenants through a pool whose registry has latency
/// timers on or off, returning aggregate records/sec — the cost of the
/// observability layer's clock reads on the dispatch hot path. (Counters
/// and gauges stay live either way; they are what the pool's own stats
/// are made of.)
fn run_obs_once(kind: LifeguardKind, workers: usize, n: u64, timers: bool) -> f64 {
    let traces: Vec<(Benchmark, Vec<_>)> =
        TENANTS.iter().map(|b| (*b, b.trace(n).collect())).collect();
    let chunk_bytes = std::env::var("CHUNK")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(PoolConfig::default().chunk_bytes);
    let pool = MonitorPool::new(PoolConfig {
        chunk_bytes,
        metrics: Some(Arc::new(MetricsRegistry::with_timers(timers))),
        ..PoolConfig::with_workers(workers)
    });
    let start = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = traces
            .into_iter()
            .map(|(bench, trace)| {
                let session = pool.open_session(
                    SessionConfig::new(bench.name(), kind)
                        .synthetic()
                        .premark(&bench.profile().premark_regions()),
                );
                scope.spawn(move || {
                    session.stream(trace).expect("pool alive");
                    session.finish()
                })
            })
            .collect();
        for h in handles {
            h.join().expect("tenant completes");
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    pool.shutdown();
    (TENANTS.len() as u64 * n) as f64 / elapsed
}

/// Median records/sec of `reps` observability-configured runs.
fn run_obs_median(kind: LifeguardKind, workers: usize, n: u64, reps: usize, timers: bool) -> f64 {
    let mut runs: Vec<f64> = (0..reps).map(|_| run_obs_once(kind, workers, n, timers)).collect();
    runs.sort_by(f64::total_cmp);
    runs[(runs.len() - 1) / 2]
}

/// Streams all eight tenants through a pool with the span flight
/// recorder on (default 1-in-`DEFAULT_SAMPLE_EVERY` origin sampling) or
/// off, returning aggregate records/sec — the hot-path cost of frame
/// provenance: one sampler branch per frame plus, for the sampled
/// minority, a clock read and two seqlock stage records per hop.
fn run_span_once(kind: LifeguardKind, workers: usize, n: u64, spans: bool) -> f64 {
    let traces: Vec<(Benchmark, Vec<_>)> =
        TENANTS.iter().map(|b| (*b, b.trace(n).collect())).collect();
    let chunk_bytes = std::env::var("CHUNK")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(PoolConfig::default().chunk_bytes);
    let pool =
        MonitorPool::new(PoolConfig { chunk_bytes, spans, ..PoolConfig::with_workers(workers) });
    let start = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = traces
            .into_iter()
            .map(|(bench, trace)| {
                let session = pool.open_session(
                    SessionConfig::new(bench.name(), kind)
                        .synthetic()
                        .premark(&bench.profile().premark_regions()),
                );
                scope.spawn(move || {
                    session.stream(trace).expect("pool alive");
                    session.finish()
                })
            })
            .collect();
        for h in handles {
            h.join().expect("tenant completes");
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    pool.shutdown();
    (TENANTS.len() as u64 * n) as f64 / elapsed
}

/// Median records/sec of `reps` span-configured runs.
fn run_span_median(kind: LifeguardKind, workers: usize, n: u64, reps: usize, spans: bool) -> f64 {
    let mut runs: Vec<f64> = (0..reps).map(|_| run_span_once(kind, workers, n, spans)).collect();
    runs.sort_by(f64::total_cmp);
    runs[(runs.len() - 1) / 2]
}

/// One lifeguard's dispatch-latency profile, read back from its pool's
/// `igm_dispatch_batch_nanos` histogram.
struct DispatchProfile {
    kind: LifeguardKind,
    count: u64,
    mean_nanos: f64,
    p50_nanos: u64,
    p90_nanos: u64,
    p99_nanos: u64,
}

/// Streams four tenants per lifeguard kind through a 4-worker pool with
/// its own registry and snapshots the per-kind batch-dispatch histogram
/// (AddrCheck is the flat-scaling baseline the others compare against).
fn run_dispatch_profile(n: u64) -> Vec<DispatchProfile> {
    let chunk_bytes = std::env::var("CHUNK")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(PoolConfig::default().chunk_bytes);
    LifeguardKind::ALL
        .into_iter()
        .map(|kind| {
            let registry = Arc::new(MetricsRegistry::new());
            let pool = MonitorPool::new(PoolConfig {
                chunk_bytes,
                metrics: Some(registry.clone()),
                ..PoolConfig::with_workers(4)
            });
            std::thread::scope(|scope| {
                for bench in [Benchmark::Gzip, Benchmark::Mcf, Benchmark::Gcc, Benchmark::Vpr] {
                    let session = pool.open_session(
                        SessionConfig::new(bench.name(), kind)
                            .synthetic()
                            .premark(&bench.profile().premark_regions()),
                    );
                    scope.spawn(move || {
                        session.stream(bench.trace(n)).expect("pool alive");
                        session.finish()
                    });
                }
            });
            let snap = registry.snapshot();
            let sample = snap
                .histogram_sample("igm_dispatch_batch_nanos", Some(("lifeguard", kind.name())))
                .expect("dispatch histogram registered");
            pool.shutdown();
            let h = &sample.hist;
            DispatchProfile {
                kind,
                count: h.count(),
                mean_nanos: h.mean(),
                p50_nanos: h.quantile(0.5),
                p90_nanos: h.quantile(0.9),
                p99_nanos: h.quantile(0.99),
            }
        })
        .collect()
}

/// One extraction-path comparison: records/sec through the AoS
/// (`extract_batch_entries` / `dispatch_batch_entries`) and columnar
/// (`extract_batch` / `dispatch_batch` over `TraceBatch`) pipelines.
struct ExtractionResult {
    stage: &'static str,
    aos_rec_per_sec: f64,
    columnar_rec_per_sec: f64,
}

impl ExtractionResult {
    fn speedup(&self) -> f64 {
        self.columnar_rec_per_sec / self.aos_rec_per_sec
    }
}

/// Median records/sec over `reps` samples of `passes` full sweeps each.
fn time_passes(n_records: u64, passes: usize, reps: usize, mut sweep: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..passes {
                sweep();
            }
            (passes as u64 * n_records) as f64 / start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[(samples.len() - 1) / 2]
}

/// Measures the record→event extraction path (and extraction+dispatch)
/// AoS vs columnar over one workload, pre-chunked at the transport chunk
/// size so both sides sweep identical batch boundaries. Batch
/// construction/decoding is outside the timed region on both sides: this
/// isolates the extract→dispatch stage the columnar refactor targets.
fn run_extraction(n: u64, reps: usize) -> Vec<ExtractionResult> {
    let bench = Benchmark::Gzip;
    let chunk_bytes = PoolConfig::default().chunk_bytes;
    let mut chunker = igm_lba::chunks(bench.trace(n), chunk_bytes);
    let mut entry_chunks: Vec<Vec<igm_isa::TraceEntry>> = Vec::new();
    let mut buf = Vec::new();
    while chunker.next_into(&mut buf) {
        entry_chunks.push(buf.clone());
    }
    let batch_chunks: Vec<TraceBatch> =
        entry_chunks.iter().map(|c| TraceBatch::from_entries(c)).collect();
    let passes = (2_000_000 / n.max(1)).max(1) as usize;
    let mut results = Vec::new();

    // Pure extraction: the event mux alone.
    let mut events = EventBuf::new();
    let aos = time_passes(n, passes, reps, || {
        for c in &entry_chunks {
            extract_batch_entries(c, &mut events);
        }
    });
    let columnar = time_passes(n, passes, reps, || {
        for b in &batch_chunks {
            extract_batch(b, &mut events);
        }
    });
    results.push(ExtractionResult {
        stage: "extract",
        aos_rec_per_sec: aos,
        columnar_rec_per_sec: columnar,
    });

    // Extraction + full dispatch (ETCT/IF gating) per lifeguard.
    for kind in [LifeguardKind::AddrCheck, LifeguardKind::TaintCheck] {
        let accel = igm_core::AccelConfig::baseline();
        let masked = kind.mask_config(&accel);
        let lifeguard = kind.build_any(&accel);
        let mut aos_pipeline = DispatchPipeline::new(lifeguard.etct(), &masked);
        let aos = time_passes(n, passes, reps, || {
            for c in &entry_chunks {
                aos_pipeline.dispatch_batch_entries(c, &mut events);
            }
        });
        let mut col_pipeline = DispatchPipeline::new(lifeguard.etct(), &masked);
        let columnar = time_passes(n, passes, reps, || {
            for b in &batch_chunks {
                col_pipeline.dispatch_batch(b, &mut events);
            }
        });
        results.push(ExtractionResult {
            stage: match kind {
                LifeguardKind::AddrCheck => "extract_dispatch_addrcheck",
                _ => "extract_dispatch_taintcheck",
            },
            aos_rec_per_sec: aos,
            columnar_rec_per_sec: columnar,
        });
    }
    results
}

fn main() {
    let n = run_scale();
    let reps = repetitions();
    let lifeguards = [LifeguardKind::AddrCheck, LifeguardKind::TaintCheck];
    let worker_counts = [1usize, 2, 4, 8];

    println!(
        "runtime throughput: {} tenants x {} records, workers x lifeguard, median of {}\n",
        TENANTS.len(),
        n,
        reps
    );
    println!(
        "{:<12} {:>8} {:>16} {:>8} {:>12} {:>8}",
        "lifeguard", "workers", "records/s", "stalls", "stall ms", "steals"
    );
    let mut entries = Vec::new();
    for kind in lifeguards {
        for workers in worker_counts {
            let r = run_median(kind, workers, n, reps);
            println!(
                "{:<12} {:>8} {:>16.0} {:>8} {:>12.1} {:>8}",
                kind.name(),
                workers,
                r.records_per_sec,
                r.stall_events,
                r.stall_nanos as f64 / 1e6,
                r.steals
            );
            entries.push(format!(
                "    {{\"lifeguard\": \"{}\", \"workers\": {}, \"records_per_sec\": {:.0}, \
                 \"producer_stalls\": {}, \"producer_stall_nanos\": {}, \"steals\": {}}}",
                kind.name(),
                workers,
                r.records_per_sec,
                r.stall_events,
                r.stall_nanos,
                r.steals
            ));
        }
    }

    // ------------------------------------------------------------------
    // Intra-session scaling: ONE tenant, pipelined vs sequential. A floor
    // on the record count keeps the section meaningful under smoke-run
    // N values (pipelining amortizes over epochs; a few-ms run is all
    // warmup).
    // ------------------------------------------------------------------
    let n_single = n.max(20_000);
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    println!(
        "\nintra-session scaling: 1 tenant x {n_single} records, pipelined vs sequential \
         ({cores} cores)\n"
    );
    println!(
        "{:<12} {:>8} {:>18} {:>18}",
        "lifeguard", "workers", "pipelined rec/s", "sequential rec/s"
    );
    let mut single_entries = Vec::new();
    let mut addr_rates: Vec<(usize, f64)> = Vec::new();
    for kind in [LifeguardKind::AddrCheck, LifeguardKind::MemCheck] {
        for workers in worker_counts {
            let piped = run_single_median(kind, workers, n_single, reps, PipelineMode::Always);
            let seq = run_single_median(kind, workers, n_single, reps, PipelineMode::Never);
            println!("{:<12} {:>8} {:>18.0} {:>18.0}", kind.name(), workers, piped, seq);
            if kind == LifeguardKind::AddrCheck {
                addr_rates.push((workers, piped));
            }
            single_entries.push(format!(
                "      {{\"lifeguard\": \"{}\", \"workers\": {}, \
                 \"pipelined_records_per_sec\": {:.0}, \"sequential_records_per_sec\": {:.0}}}",
                kind.name(),
                workers,
                piped,
                seq
            ));
        }
    }
    // The scaling gate: the pipelined 8-worker AddrCheck rate must beat
    // the 1-worker one wherever the host can express parallelism at all;
    // on a single-core host every worker count shares one execution
    // stream, so the comparison degenerates to scheduler noise and the
    // gate reports the hardware limit instead of a bogus verdict.
    let rate_1w = addr_rates.iter().find(|(w, _)| *w == 1).map(|(_, r)| *r).unwrap_or(0.0);
    let rate_8w = addr_rates.iter().find(|(w, _)| *w == 8).map(|(_, r)| *r).unwrap_or(0.0);
    let addrcheck_8w_exceeds_1w = cores < 2 || rate_8w > rate_1w;
    println!(
        "addrcheck 8w/1w pipelined speedup: {:.2}x ({})",
        rate_8w / rate_1w.max(1.0),
        if cores < 2 { "single-core host, gate waived" } else { "gated" }
    );

    // ------------------------------------------------------------------
    // Multiplexed ingest: one OS thread drives all eight tenant sources.
    // ------------------------------------------------------------------
    println!(
        "\nsingle-thread ingest: {} tenant sources multiplexed by one Ingestor\n",
        TENANTS.len()
    );
    println!("{:<12} {:>8} {:>16} {:>10}", "lifeguard", "workers", "records/s", "deferred");
    let mut ingest_entries = Vec::new();
    for kind in lifeguards {
        for workers in worker_counts {
            let r = run_ingest_median(kind, workers, n, reps);
            println!(
                "{:<12} {:>8} {:>16.0} {:>10}",
                kind.name(),
                workers,
                r.records_per_sec,
                r.deferred_sends
            );
            ingest_entries.push(format!(
                "    {{\"lifeguard\": \"{}\", \"workers\": {}, \"sources\": {}, \
                 \"ingest_records_per_sec\": {:.0}, \"deferred_sends\": {}}}",
                kind.name(),
                workers,
                TENANTS.len(),
                r.records_per_sec,
                r.deferred_sends
            ));
        }
    }

    // ------------------------------------------------------------------
    // Cross-host ingest: loopback clients → one server thread → pool.
    // ------------------------------------------------------------------
    const NET_CLIENTS: usize = 4;
    println!("\ncross-host ingest: {NET_CLIENTS} loopback clients, 1 server thread, 4 workers\n");
    println!(
        "{:<12} {:>8} {:>16} {:>10} {:>14}",
        "lifeguard", "clients", "records/s", "deferred", "credit-stalls"
    );
    let mut net_entries = Vec::new();
    for kind in lifeguards {
        let r = run_net_median(kind, 4, NET_CLIENTS, n, reps);
        println!(
            "{:<12} {:>8} {:>16.0} {:>10} {:>14}",
            kind.name(),
            NET_CLIENTS,
            r.records_per_sec,
            r.deferred_sends,
            r.credit_stalls
        );
        net_entries.push(format!(
            "    {{\"lifeguard\": \"{}\", \"clients\": {}, \"server_threads\": 1, \
             \"workers\": 4, \"net_records_per_sec\": {:.0}, \"deferred_sends\": {}, \
             \"credit_stalls\": {}}}",
            kind.name(),
            NET_CLIENTS,
            r.records_per_sec,
            r.deferred_sends,
            r.credit_stalls
        ));
    }

    // ------------------------------------------------------------------
    // Codec density + speed: the predicted codec's bytes/record per
    // tenant against the legacy delta codec, the in-memory representation
    // and the paper's compressed-size model, plus single-thread
    // encode/decode throughput over pre-chunked batches.
    // ------------------------------------------------------------------
    let in_memory = std::mem::size_of::<igm_isa::TraceEntry>() as f64;
    println!("\ncodec density ({n} records/tenant, {in_memory} B/record in memory)\n");
    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>12} {:>12}",
        "tenant", "bytes/rec", "delta B/rec", "model", "enc Mrec/s", "dec Mrec/s"
    );
    let mut codec_entries = Vec::new();
    for bench in TENANTS {
        let trace: Vec<igm_isa::TraceEntry> = bench.trace(n).collect();
        let model = igm_lba::batch_bytes(&trace) as f64 / trace.len() as f64;
        // Pre-chunk once so the timed loops measure the codec alone.
        let mut batches: Vec<TraceBatch> = Vec::new();
        let mut chunker = chunks(trace.iter().copied(), 16 * 1024);
        let mut b = TraceBatch::new();
        while chunker.next_into_batch(&mut b) {
            batches.push(std::mem::take(&mut b));
        }
        let encode = |mk: fn(Vec<u8>) -> std::io::Result<TraceWriter<Vec<u8>>>| {
            let mut w = mk(Vec::new()).expect("in-memory encode cannot fail");
            for batch in &batches {
                w.write_chunk_batch(batch).unwrap();
            }
            w.finish().unwrap()
        };
        let mut encoded = Vec::new();
        let mut enc_runs = Vec::new();
        for _ in 0..reps {
            let start = Instant::now();
            encoded = encode(TraceWriter::new);
            enc_runs.push(trace.len() as f64 / start.elapsed().as_secs_f64() / 1e6);
        }
        let mut dec_runs = Vec::new();
        for _ in 0..reps {
            let mut r = TraceReader::new(&encoded[..]).unwrap();
            let mut out = TraceBatch::new();
            let mut total = 0u64;
            let start = Instant::now();
            while r.read_chunk_into_batch(&mut out).unwrap() {
                total += out.len() as u64;
            }
            dec_runs.push(total as f64 / start.elapsed().as_secs_f64() / 1e6);
            assert_eq!(total, trace.len() as u64, "decode lost records");
        }
        enc_runs.sort_by(f64::total_cmp);
        dec_runs.sort_by(f64::total_cmp);
        let enc = enc_runs[(enc_runs.len() - 1) / 2];
        let dec = dec_runs[(dec_runs.len() - 1) / 2];
        let bpr = (encoded.len() - 8) as f64 / trace.len() as f64;
        let delta_bpr = (encode(TraceWriter::new_v1).len() - 8) as f64 / trace.len() as f64;
        assert!(
            bpr < in_memory,
            "{bench}: encoded {bpr:.2} B/record must beat the {in_memory} B in-memory baseline"
        );
        // Predictors reset at frame boundaries, so the density bound only
        // holds once frames fill out to their 16 KiB model size; tiny
        // smoke runs are all warmup and are exempt.
        if trace.len() >= 16 * 1024 {
            assert!(bpr <= 2.0, "{bench}: the predicted codec must hold 2 B/record, got {bpr:.3}");
        }
        println!(
            "{:<10} {:>12.2} {:>12.2} {:>10.2} {:>12.1} {:>12.1}",
            bench.name(),
            bpr,
            delta_bpr,
            model,
            enc,
            dec
        );
        codec_entries.push(format!(
            "    {{\"tenant\": \"{}\", \"bytes_per_record\": {:.3}, \
             \"delta_bytes_per_record\": {:.3}, \"model_bytes_per_record\": {:.3}, \
             \"in_memory_bytes_per_record\": {:.0}, \"encode_mrecs_per_sec\": {:.1}, \
             \"decode_mrecs_per_sec\": {:.1}}}",
            bench.name(),
            bpr,
            delta_bpr,
            model,
            in_memory,
            enc,
            dec
        ));
    }

    // ------------------------------------------------------------------
    // Extraction path: AoS (`Vec<TraceEntry>`) vs columnar (`TraceBatch`)
    // through the event mux and the full dispatch pipeline.
    // ------------------------------------------------------------------
    println!("\nextraction path: AoS vs columnar (gzip workload, {n} records)\n");
    println!("{:<28} {:>16} {:>16} {:>9}", "stage", "AoS rec/s", "columnar rec/s", "speedup");
    let mut extraction_entries = Vec::new();
    for r in run_extraction(n, reps) {
        println!(
            "{:<28} {:>16.0} {:>16.0} {:>8.2}x",
            r.stage,
            r.aos_rec_per_sec,
            r.columnar_rec_per_sec,
            r.speedup()
        );
        extraction_entries.push(format!(
            "    {{\"stage\": \"{}\", \"aos_rec_per_sec\": {:.0}, \
             \"columnar_rec_per_sec\": {:.0}, \"speedup\": {:.3}}}",
            r.stage,
            r.aos_rec_per_sec,
            r.columnar_rec_per_sec,
            r.speedup()
        ));
    }

    // ------------------------------------------------------------------
    // Observability overhead: the same TaintCheck pool run with latency
    // timers on (instrumented) vs off (registry-disabled). Counters stay
    // live in both — the delta is the hot-path clock reads.
    // ------------------------------------------------------------------
    println!("\nmetrics overhead: TaintCheck, 4 workers, timers on vs off\n");
    let instrumented = run_obs_median(LifeguardKind::TaintCheck, 4, n, reps, true);
    let disabled = run_obs_median(LifeguardKind::TaintCheck, 4, n, reps, false);
    let overhead_pct = (disabled - instrumented) / disabled * 100.0;
    println!("{:<14} {:>16}", "timers", "records/s");
    println!("{:<14} {:>16.0}", "on", instrumented);
    println!("{:<14} {:>16.0}", "off", disabled);
    println!("overhead: {overhead_pct:.1}%");
    let overhead_entry = format!(
        "    {{\"lifeguard\": \"TaintCheck\", \"workers\": 4, \
         \"instrumented_records_per_sec\": {instrumented:.0}, \
         \"disabled_records_per_sec\": {disabled:.0}, \"overhead_pct\": {overhead_pct:.2}}}"
    );

    // ------------------------------------------------------------------
    // Span overhead: the same TaintCheck pool with the frame-provenance
    // flight recorder on (origin sampling at the default rate) vs off.
    // Unsampled frames cost one branch; sampled ones add clock reads and
    // seqlock stage records — the delta must stay within bench noise.
    // ------------------------------------------------------------------
    let every = igm_span::DEFAULT_SAMPLE_EVERY;
    println!("\nspan overhead: TaintCheck, 4 workers, recorder on (1/{every} sampling) vs off\n");
    let sampled = run_span_median(LifeguardKind::TaintCheck, 4, n, reps, true);
    let recorder_off = run_span_median(LifeguardKind::TaintCheck, 4, n, reps, false);
    let span_overhead_pct = (recorder_off - sampled) / recorder_off * 100.0;
    println!("{:<14} {:>16}", "recorder", "records/s");
    println!("{:<14} {:>16.0}", "on", sampled);
    println!("{:<14} {:>16.0}", "off", recorder_off);
    println!("overhead: {span_overhead_pct:.1}%");
    let span_entry = format!(
        "    {{\"lifeguard\": \"TaintCheck\", \"workers\": 4, \"sample_every\": {every}, \
         \"sampled_records_per_sec\": {sampled:.0}, \
         \"disabled_records_per_sec\": {recorder_off:.0}, \
         \"overhead_pct\": {span_overhead_pct:.2}}}"
    );

    // ------------------------------------------------------------------
    // Per-lifeguard dispatch-latency profile, read from the registry's
    // log2 histograms (quantiles are bucket upper bounds).
    // ------------------------------------------------------------------
    println!("\ndispatch latency per lifeguard (4 tenants x {n} records, 4 workers)\n");
    println!(
        "{:<34} {:>8} {:>12} {:>10} {:>10} {:>10}",
        "lifeguard", "batches", "mean ns", "p50 ns", "p90 ns", "p99 ns"
    );
    let mut dispatch_entries = Vec::new();
    for p in run_dispatch_profile(n) {
        println!(
            "{:<34} {:>8} {:>12.0} {:>10} {:>10} {:>10}",
            p.kind.name(),
            p.count,
            p.mean_nanos,
            p.p50_nanos,
            p.p90_nanos,
            p.p99_nanos
        );
        assert!(p.count > 0, "{}: the dispatch histogram must have samples", p.kind.name());
        dispatch_entries.push(format!(
            "    {{\"lifeguard\": \"{}\", \"batches\": {}, \"mean_nanos\": {:.0}, \
             \"p50_nanos\": {}, \"p90_nanos\": {}, \"p99_nanos\": {}}}",
            p.kind.name(),
            p.count,
            p.mean_nanos,
            p.p50_nanos,
            p.p90_nanos,
            p.p99_nanos
        ));
    }

    // ------------------------------------------------------------------
    // Trace lake: posting-index overhead, indexed-encode cost, and the
    // bitmap query planner vs a full-replay filter at three
    // selectivities. The SPEC-like tenants' op/page streams are
    // randomized, so their posting lists are entropy-bound (~1 B/record,
    // reported for transparency); the loop tenant is the structured case
    // the sidecar containers exist for — strided runs and periodic
    // op patterns — where the index stays under 0.3 B/record and the
    // planner's directory-level frame skips buy the ≥10× speedup at
    // ≤1% selectivity. Both bounds are asserted.
    // ------------------------------------------------------------------
    use igm_lake::query::{execute, matches_entry};
    use igm_lake::{LakeHits, LakeQuery};
    use igm_trace::Dim;

    let n_lake = n.max(120_000);
    let loop_entries: Vec<igm_isa::TraceEntry> = (0..n_lake)
        .map(|i| {
            // A 16-instruction loop body streaming sequentially through
            // memory, one store per four ops: periodic in pc and op
            // class, strided in address — the shapes the run/pxor
            // posting containers compress to near nothing.
            let pc = 0x4000_0000 + 4 * ((i % 16) as u32);
            let addr = 0x1000_0000u32.wrapping_add((4 * i) as u32);
            if i % 4 == 3 {
                igm_isa::TraceEntry::op(
                    pc,
                    igm_isa::OpClass::RegToMem {
                        rs: igm_isa::Reg::Eax,
                        dst: igm_isa::MemRef::word(addr),
                    },
                )
            } else {
                igm_isa::TraceEntry::op(
                    pc,
                    igm_isa::OpClass::MemToReg {
                        src: igm_isa::MemRef::word(addr),
                        rd: igm_isa::Reg::Eax,
                    },
                )
            }
        })
        .collect();
    let chunk_batches = |entries: &[igm_isa::TraceEntry]| {
        let mut batches: Vec<TraceBatch> = Vec::new();
        let mut chunker = chunks(entries.iter().copied(), 16 * 1024);
        let mut b = TraceBatch::new();
        while chunker.next_into_batch(&mut b) {
            batches.push(std::mem::take(&mut b));
        }
        batches
    };
    let median = |mut v: Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[(v.len() - 1) / 2]
    };

    println!("\ntrace lake: posting-index density and indexed-encode cost ({n_lake} records)\n");
    println!(
        "{:<10} {:>12} {:>14} {:>14} {:>10}",
        "tenant", "index B/rec", "plain Mrec/s", "indexed Mrec/s", "cost"
    );
    let mut lake_density_entries = Vec::new();
    let mut loop_index = None;
    let mut loop_encoded = Vec::new();
    let lake_tenants: Vec<(&str, Vec<igm_isa::TraceEntry>)> = vec![
        ("gzip", Benchmark::Gzip.trace(n_lake).collect()),
        ("mcf", Benchmark::Mcf.trace(n_lake).collect()),
        ("vpr", Benchmark::Vpr.trace(n_lake).collect()),
        ("loop", loop_entries),
    ];
    for (name, entries) in &lake_tenants {
        let batches = chunk_batches(entries);
        let mut timed_encode = |indexed: bool| {
            median(
                (0..reps)
                    .map(|_| {
                        let start = Instant::now();
                        let mut w = if indexed {
                            TraceWriter::with_index(Vec::new()).unwrap()
                        } else {
                            TraceWriter::new(Vec::new()).unwrap()
                        };
                        for batch in &batches {
                            w.write_chunk_batch(batch).unwrap();
                        }
                        let index = w.take_index();
                        let bytes = w.finish().unwrap();
                        std::hint::black_box(&bytes);
                        let rate = entries.len() as f64 / start.elapsed().as_secs_f64() / 1e6;
                        if *name == "loop" && indexed {
                            loop_index = index;
                            loop_encoded = bytes;
                        }
                        rate
                    })
                    .collect(),
            )
        };
        let plain = timed_encode(false);
        let indexed = timed_encode(true);
        let mut w = TraceWriter::with_index(Vec::new()).unwrap();
        for batch in &batches {
            w.write_chunk_batch(batch).unwrap();
        }
        let index = w.take_index().unwrap();
        let bpr = index.posting_bytes() as f64 / index.total_records() as f64;
        let cost_pct = (plain - indexed) / plain * 100.0;
        println!("{name:<10} {bpr:>12.3} {plain:>14.1} {indexed:>14.1} {cost_pct:>9.1}%");
        if *name == "loop" {
            assert!(
                bpr <= 0.3,
                "loop tenant: structured postings must stay under 0.3 B/record, got {bpr:.3}"
            );
        }
        lake_density_entries.push(format!(
            "      {{\"tenant\": \"{name}\", \"index_bytes_per_record\": {bpr:.4}, \
             \"plain_encode_mrecs_per_sec\": {plain:.2}, \
             \"indexed_encode_mrecs_per_sec\": {indexed:.2}, \
             \"indexing_cost_pct\": {cost_pct:.2}}}"
        ));
    }
    let loop_index = loop_index.expect("timed loop encode ran at least once");
    let loop_bpr = loop_index.posting_bytes() as f64 / loop_index.total_records() as f64;

    // Query vs full-replay filter on the loop tenant. Selectivity is set
    // by how many sequentially-visited 4 KiB pages the page dimension
    // ORs together: 1 page ≈ 1024 records, all-pages ≈ the whole trace.
    let first_page = 0x1000_0000u32 >> 12;
    let pages_total = (n_lake * 4).div_ceil(4096) as u32;
    let selectivity_pages = [1u32, pages_total.div_ceil(10).max(2), pages_total];
    println!("\ntrace lake: bitmap query vs full-replay filter (loop tenant)\n");
    println!(
        "{:<12} {:>10} {:>14} {:>14} {:>10}",
        "selectivity", "matched", "query µs", "replay µs", "speedup"
    );
    let mut lake_query_entries = Vec::new();
    let mut speedup_at_low_sel = None;
    for pages in selectivity_pages {
        let mut q = LakeQuery::new();
        for p in 0..pages {
            q = q.include(Dim::AddrPage, first_page + p);
        }
        // The planner answers from the sidecar alone...
        let query_nanos = median(
            (0..reps)
                .map(|_| {
                    let iters = 32;
                    let start = Instant::now();
                    let mut hits = LakeHits::default();
                    for _ in 0..iters {
                        hits = LakeHits::default();
                        execute(&loop_index, 1, 1, &q, usize::MAX, &mut hits);
                    }
                    std::hint::black_box(&hits);
                    start.elapsed().as_nanos() as f64 / iters as f64
                })
                .collect(),
        );
        let mut hits = LakeHits::default();
        execute(&loop_index, 1, 1, &q, usize::MAX, &mut hits);
        // ...while the baseline decodes every frame and tests every record.
        let mut replay_matched = 0u64;
        let replay_nanos = median(
            (0..reps)
                .map(|_| {
                    let start = Instant::now();
                    let mut r = TraceReader::new(&loop_encoded[..]).unwrap();
                    let mut batch = TraceBatch::new();
                    let mut seq = 0u64;
                    replay_matched = 0;
                    while r.read_chunk_into_batch(&mut batch).unwrap() {
                        for e in batch.iter() {
                            if matches_entry(&q, seq, &e) {
                                replay_matched += 1;
                            }
                            seq += 1;
                        }
                    }
                    start.elapsed().as_nanos() as f64
                })
                .collect(),
        );
        assert_eq!(hits.matched, replay_matched, "planner and replay filter disagree");
        let selectivity_pct = hits.matched as f64 / n_lake as f64 * 100.0;
        let speedup = replay_nanos / query_nanos;
        println!(
            "{:>10.2}% {:>10} {:>14.1} {:>14.1} {:>9.1}x",
            selectivity_pct,
            hits.matched,
            query_nanos / 1e3,
            replay_nanos / 1e3,
            speedup
        );
        if selectivity_pct <= 1.0 {
            speedup_at_low_sel = Some(speedup);
        }
        lake_query_entries.push(format!(
            "      {{\"selectivity_pct\": {selectivity_pct:.3}, \"matched\": {}, \
             \"query_nanos\": {query_nanos:.0}, \"replay_nanos\": {replay_nanos:.0}, \
             \"speedup\": {speedup:.2}}}",
            hits.matched
        ));
    }
    let speedup_at_low_sel =
        speedup_at_low_sel.expect("the 1-page query sits at or under 1% selectivity");
    assert!(
        speedup_at_low_sel >= 10.0,
        "lake acceptance: need >=10x over replay-scan at <=1% selectivity, got {speedup_at_low_sel:.1}x"
    );
    println!(
        "\nlake gates: {loop_bpr:.3} B/record index (<=0.3), \
         {speedup_at_low_sel:.0}x at <=1% selectivity (>=10x) ✓"
    );
    let lake_section = format!(
        "{{\n    \"records\": {n_lake},\n    \"loop_index_bytes_per_record\": {loop_bpr:.4},\n    \
         \"speedup_at_1pct_selectivity\": {speedup_at_low_sel:.2},\n    \
         \"index_density\": [\n{}\n    ],\n    \"query_speedup\": [\n{}\n    ]\n  }}",
        lake_density_entries.join(",\n"),
        lake_query_entries.join(",\n")
    );

    let intra_session = format!(
        "{{\n    \"records\": {n_single},\n    \"cores\": {cores},\n    \
         \"addrcheck_8w_exceeds_1w\": {addrcheck_8w_exceeds_1w},\n    \"results\": [\n{}\n    ]\n  }}",
        single_entries.join(",\n")
    );
    let json = format!(
        "{{\n  \"bench\": \"throughput\",\n  \"tenants\": {},\n  \"records_per_tenant\": {},\n  \"reps\": {},\n  \"results\": [\n{}\n  ],\n  \"intra_session_scaling\": {},\n  \"ingest_results\": [\n{}\n  ],\n  \"net_ingest\": [\n{}\n  ],\n  \"codec\": [\n{}\n  ],\n  \"extraction\": [\n{}\n  ],\n  \"metrics_overhead\": [\n{}\n  ],\n  \"span_overhead\": [\n{}\n  ],\n  \"dispatch_latency\": [\n{}\n  ],\n  \"lake\": {}\n}}\n",
        TENANTS.len(),
        n,
        reps,
        entries.join(",\n"),
        intra_session,
        ingest_entries.join(",\n"),
        net_entries.join(",\n"),
        codec_entries.join(",\n"),
        extraction_entries.join(",\n"),
        overhead_entry,
        span_entry,
        dispatch_entries.join(",\n"),
        lake_section
    );
    std::fs::write("BENCH_throughput.json", &json).expect("write BENCH_throughput.json");
    println!("\nwrote BENCH_throughput.json");
}
