//! Per-benchmark workload profiles.
//!
//! A [`Profile`] is the calibration surface of the reproduction: it fixes
//! the idiom mix (instruction-class distribution → Inheritance Tracking
//! behaviour), the hot-set and working-set sizes (address reuse → Idempotent
//! Filter behaviour; footprint → M-TLB behaviour) and the annotation rates
//! (malloc/free, system calls, untrusted-input reads).
//!
//! The numbers are chosen to reproduce each benchmark's *qualitative*
//! character reported in the paper and the SPEC literature — e.g. `mcf` is a
//! pointer-chasing, memory-bound code with a huge working set; `crafty` and
//! `eon` are register-heavy compute; `gcc` and `parser` are call- and
//! branch-heavy with frequent allocation — not to match absolute counts.

use crate::Benchmark;

/// An instruction idiom: a short, structurally realistic burst of retired
/// instructions emitted as a unit by the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Idiom {
    /// Sequential array scan: load, accumulate, induction update, branch.
    ArrayScan,
    /// Data-dependent table lookup (compression/huffman style).
    TableLookup,
    /// Register-register compute loop touching a few hot globals.
    HotLoop,
    /// Call frame: prologue, local stores/loads, epilogue, return.
    StackFrame,
    /// Register spill to a stack slot and later reload.
    SpillReload,
    /// `movs`-style memory-to-memory copy burst.
    StringCopy,
    /// Random-node pointer chase over a large region (mcf-style).
    PointerChase,
    /// Compare/branch-dense code with small copies (parser/gcc style).
    BranchyCode,
    /// Read-modify-write updates of hot global counters.
    GlobalUpdate,
    /// An opaque `xchg` (exercises the IT flush path).
    OpaqueOp,
}

/// Workload parameters for one benchmark.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Human-readable name.
    pub name: &'static str,
    /// Idiom mix as (idiom, weight) pairs.
    pub idioms: Vec<(Idiom, u32)>,
    /// Heap working set in bytes (blocks are allocated inside it).
    pub heap_bytes: u32,
    /// Large-region working set in bytes (0 = none); used by
    /// [`Idiom::PointerChase`].
    pub mmap_bytes: u32,
    /// Global segment bytes.
    pub global_bytes: u32,
    /// Number of hot global words (the high-reuse set).
    pub hot_globals: u32,
    /// Mean heap block size in bytes.
    pub mean_block: u32,
    /// malloc events per 1000 instructions.
    pub malloc_per_kinstr: f64,
    /// System calls per 1000 instructions.
    pub syscall_per_kinstr: f64,
    /// Untrusted-input reads (`read`/`recv`) per 1000 instructions.
    pub input_per_kinstr: f64,
}

impl Profile {
    /// Total idiom weight (for sampling).
    pub fn total_weight(&self) -> u32 {
        self.idioms.iter().map(|(_, w)| w).sum()
    }
}

/// The profile table for the SPEC2000-int stand-ins.
pub fn spec_profile(b: Benchmark) -> Profile {
    use Idiom::*;
    let (idioms, heap_kb, mmap_kb, hot, mean_block, malloc, syscall, input) = match b {
        // Compression: table lookups and copies over a moderate window,
        // heavy untrusted input.
        Benchmark::Bzip2 => (
            vec![(TableLookup, 3), (ArrayScan, 3), (StringCopy, 2), (HotLoop, 1), (StackFrame, 1)],
            8 * 1024,
            0,
            24,
            2048,
            0.02,
            0.01,
            0.05,
        ),
        // Chess: register-heavy evaluation over small tables.
        Benchmark::Crafty => (
            vec![
                (HotLoop, 5),
                (BranchyCode, 2),
                (StackFrame, 2),
                (TableLookup, 1),
                (SpillReload, 1),
            ],
            2 * 1024,
            0,
            48,
            512,
            0.01,
            0.005,
            0.0,
        ),
        // C++ ray tracer: compute plus frequent small calls.
        Benchmark::Eon => (
            vec![(HotLoop, 4), (StackFrame, 3), (ArrayScan, 1), (BranchyCode, 1), (SpillReload, 1)],
            1024,
            0,
            32,
            256,
            0.03,
            0.004,
            0.0,
        ),
        // Group theory interpreter: large heap, mixed access.
        Benchmark::Gap => (
            vec![
                (ArrayScan, 2),
                (TableLookup, 2),
                (HotLoop, 2),
                (StackFrame, 2),
                (GlobalUpdate, 1),
            ],
            24 * 1024,
            0,
            24,
            4096,
            0.05,
            0.008,
            0.01,
        ),
        // Compiler: branchy, call-heavy, allocation-heavy, sizeable
        // pointer-linked working set.
        Benchmark::Gcc => (
            vec![
                (BranchyCode, 3),
                (StackFrame, 3),
                (TableLookup, 1),
                (ArrayScan, 1),
                (GlobalUpdate, 1),
                (PointerChase, 1),
                (OpaqueOp, 1),
            ],
            16 * 1024,
            4 * 1024,
            32,
            256,
            0.20,
            0.01,
            0.01,
        ),
        // Compression: dominated by copies and lookups, heavy input.
        Benchmark::Gzip => (
            vec![(StringCopy, 3), (TableLookup, 3), (ArrayScan, 2), (HotLoop, 1)],
            4 * 1024,
            0,
            16,
            4096,
            0.01,
            0.01,
            0.08,
        ),
        // Network-flow solver: pointer chasing over a huge arc array —
        // the paper's sole memory-bound benchmark.
        Benchmark::Mcf => (
            vec![(PointerChase, 6), (ArrayScan, 1), (StackFrame, 1)],
            4 * 1024,
            96 * 1024,
            8,
            8192,
            0.005,
            0.002,
            0.0,
        ),
        // Link grammar parser: calls, branches, dictionary chases, constant
        // small allocation.
        Benchmark::Parser => (
            vec![
                (StackFrame, 3),
                (BranchyCode, 3),
                (PointerChase, 1),
                (TableLookup, 1),
                (GlobalUpdate, 1),
            ],
            8 * 1024,
            2 * 1024,
            24,
            128,
            0.30,
            0.006,
            0.005,
        ),
        // Place-and-route: compute over mid-size graph structures.
        Benchmark::Twolf => (
            vec![
                (HotLoop, 2),
                (ArrayScan, 2),
                (BranchyCode, 2),
                (StackFrame, 1),
                (PointerChase, 1),
            ],
            4 * 1024,
            1024,
            32,
            256,
            0.04,
            0.004,
            0.0,
        ),
        // OO database: deep call chains over a large object heap.
        Benchmark::Vortex => (
            vec![
                (StackFrame, 3),
                (GlobalUpdate, 2),
                (TableLookup, 2),
                (BranchyCode, 1),
                (StringCopy, 1),
                (OpaqueOp, 1),
            ],
            48 * 1024,
            0,
            40,
            1024,
            0.10,
            0.01,
            0.01,
        ),
        // FPGA place-and-route: compute and branches over small structures.
        Benchmark::Vpr => (
            vec![
                (HotLoop, 2),
                (BranchyCode, 2),
                (ArrayScan, 2),
                (StackFrame, 1),
                (PointerChase, 1),
            ],
            2 * 1024,
            1024,
            32,
            256,
            0.02,
            0.004,
            0.0,
        ),
    };
    Profile {
        name: b.name(),
        idioms,
        heap_bytes: heap_kb * 1024,
        mmap_bytes: mmap_kb * 1024,
        global_bytes: 256 * 1024,
        hot_globals: hot,
        mean_block: mean_block.max(64),
        malloc_per_kinstr: malloc,
        syscall_per_kinstr: syscall,
        input_per_kinstr: input,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_has_a_nonempty_profile() {
        for b in Benchmark::ALL {
            let p = b.profile();
            assert!(!p.idioms.is_empty(), "{b}");
            assert!(p.total_weight() > 0, "{b}");
            assert!(p.heap_bytes >= 64 * 1024, "{b}");
        }
    }

    #[test]
    fn mcf_has_the_largest_working_set() {
        let mcf = Benchmark::Mcf.profile();
        for b in Benchmark::ALL {
            if b != Benchmark::Mcf {
                let p = b.profile();
                assert!(
                    mcf.heap_bytes + mcf.mmap_bytes > p.heap_bytes + p.mmap_bytes,
                    "mcf must dominate {b}"
                );
            }
        }
    }

    #[test]
    fn compression_benchmarks_read_untrusted_input() {
        assert!(Benchmark::Gzip.profile().input_per_kinstr > 0.0);
        assert!(Benchmark::Bzip2.profile().input_per_kinstr > 0.0);
    }
}
