//! Snapshot exporters: Prometheus text exposition and JSON.
//!
//! Both render a [`MetricsSnapshot`] (or [`EventsSnapshot`]) into an
//! owned `String` — the cold scrape path, never the record path. The
//! JSON is hand-rolled (std-only workspace), with full string escaping.

use crate::events::{EventKind, EventsSnapshot};
use crate::registry::{bucket_upper_bound, HistogramSample, MetricsSnapshot, HISTOGRAM_BUCKETS};
use std::fmt::Write;

/// Escapes a string for a JSON string literal (quotes not included).
fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    json_escape(s, &mut out);
    out.push('"');
    out
}

fn json_labels(labels: &[(String, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: {}", json_str(k), json_str(v));
    }
    out.push('}');
    out
}

/// Escapes a Prometheus label *value* (backslash, quote, newline).
fn prom_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders `{k="v",...}`, with `extra` appended (for the histogram `le`).
fn prom_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).chain(extra) {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", prom_label_value(v));
    }
    out.push('}');
    out
}

impl MetricsSnapshot {
    /// Prometheus text exposition (`text/plain; version=0.0.4`):
    /// counters and gauges as single samples, histograms as cumulative
    /// `_bucket{le=...}` series (empty tail buckets elided, `+Inf` always
    /// present) plus `_sum`/`_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        // Self-describing scrape preamble: what build is this, how long
        // has it been up.
        let _ = writeln!(out, "# HELP igm_build_info Build version/revision of this monitor");
        let _ = writeln!(out, "# TYPE igm_build_info gauge");
        let _ = writeln!(
            out,
            "igm_build_info{} 1",
            prom_labels(
                &[
                    ("version".to_owned(), self.build_version.clone()),
                    ("revision".to_owned(), self.build_revision.clone()),
                ],
                None
            )
        );
        let _ = writeln!(out, "# HELP igm_uptime_seconds Seconds since the registry was created");
        let _ = writeln!(out, "# TYPE igm_uptime_seconds gauge");
        let _ = writeln!(out, "igm_uptime_seconds {:.3}", self.uptime_nanos as f64 / 1e9);
        let mut seen: Vec<&str> = Vec::new();
        // One HELP/TYPE block per family even when labeled series repeat
        // the name.
        fn header<'a>(
            out: &mut String,
            seen: &mut Vec<&'a str>,
            name: &'a str,
            help: &str,
            ty: &str,
        ) {
            if !seen.contains(&name) {
                let _ = writeln!(out, "# HELP {name} {help}");
                let _ = writeln!(out, "# TYPE {name} {ty}");
                seen.push(name);
            }
        }
        for c in &self.counters {
            header(&mut out, &mut seen, &c.name, &c.help, "counter");
            let _ = writeln!(out, "{}{} {}", c.name, prom_labels(&c.labels, None), c.value);
        }
        for g in &self.gauges {
            header(&mut out, &mut seen, &g.name, &g.help, "gauge");
            let _ = writeln!(out, "{}{} {}", g.name, prom_labels(&g.labels, None), g.value);
        }
        for h in &self.histograms {
            header(&mut out, &mut seen, &h.name, &h.help, "histogram");
            let last_used =
                h.hist.buckets.iter().rposition(|&b| b > 0).unwrap_or(0).min(HISTOGRAM_BUCKETS - 2);
            let mut cumulative = 0u64;
            for (i, b) in h.hist.buckets.iter().enumerate().take(last_used + 1) {
                cumulative += b;
                let le = bucket_upper_bound(i).to_string();
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    h.name,
                    prom_labels(&h.labels, Some(("le", &le))),
                    cumulative
                );
            }
            let count = h.hist.count();
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                h.name,
                prom_labels(&h.labels, Some(("le", "+Inf"))),
                count
            );
            let _ = writeln!(out, "{}_sum{} {}", h.name, prom_labels(&h.labels, None), h.hist.sum);
            let _ = writeln!(out, "{}_count{} {}", h.name, prom_labels(&h.labels, None), count);
        }
        out
    }

    /// JSON rendering: `{"uptime_nanos": …, "counters": [...], "gauges":
    /// [...], "histograms": [...]}` with non-empty buckets as
    /// `[bucket_upper_bound, count]` pairs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"uptime_nanos\": {}, \"uptime_seconds\": {:.3}, \"build\": \
             {{\"version\": {}, \"revision\": {}}}, \"counters\": [",
            self.uptime_nanos,
            self.uptime_nanos as f64 / 1e9,
            json_str(&self.build_version),
            json_str(&self.build_revision)
        );
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"name\": {}, \"labels\": {}, \"value\": {}}}",
                json_str(&c.name),
                json_labels(&c.labels),
                c.value
            );
        }
        out.push_str("], \"gauges\": [");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"name\": {}, \"labels\": {}, \"value\": {}}}",
                json_str(&g.name),
                json_labels(&g.labels),
                g.value
            );
        }
        out.push_str("], \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&histogram_json(h));
        }
        out.push_str("]}");
        out
    }
}

fn histogram_json(h: &HistogramSample) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"name\": {}, \"labels\": {}, \"count\": {}, \"sum\": {}, \"buckets\": [",
        json_str(&h.name),
        json_labels(&h.labels),
        h.hist.count(),
        h.hist.sum
    );
    let mut first = true;
    for (i, &b) in h.hist.buckets.iter().enumerate() {
        if b == 0 {
            continue;
        }
        if !first {
            out.push_str(", ");
        }
        first = false;
        let _ = write!(out, "[{}, {}]", bucket_upper_bound(i), b);
    }
    out.push_str("]}");
    out
}

impl EventsSnapshot {
    /// JSON rendering: `{"dropped": …, "next_seq": …, "events": [...]}`
    /// with each event as `{"seq", "at_nanos", "kind", ...fields}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"dropped\": {}, \"next_seq\": {}, \"events\": [",
            self.dropped, self.next_seq
        );
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"seq\": {}, \"at_nanos\": {}, \"kind\": {}",
                e.seq,
                e.at_nanos,
                json_str(e.kind.name())
            );
            match &e.kind {
                EventKind::SessionOpen { session, tenant, lifeguard } => {
                    let _ = write!(
                        out,
                        ", \"session\": {session}, \"tenant\": {}, \"lifeguard\": {}",
                        json_str(tenant),
                        json_str(lifeguard)
                    );
                }
                EventKind::SessionClose { session, tenant, records, violations } => {
                    let _ = write!(
                        out,
                        ", \"session\": {session}, \"tenant\": {}, \"records\": {records}, \
                         \"violations\": {violations}",
                        json_str(tenant)
                    );
                }
                EventKind::Steal { session, from_worker, to_worker } => {
                    let _ = write!(
                        out,
                        ", \"session\": {session}, \"from_worker\": {from_worker}, \
                         \"to_worker\": {to_worker}"
                    );
                }
                EventKind::LaneFailure { lane, error } => {
                    let _ = write!(
                        out,
                        ", \"lane\": {}, \"error\": {}",
                        json_str(lane),
                        json_str(error)
                    );
                }
                EventKind::HandshakeReject { peer, reason } => {
                    let _ = write!(
                        out,
                        ", \"peer\": {}, \"reason\": {}",
                        json_str(peer),
                        json_str(reason)
                    );
                }
                EventKind::PipelineEnter { session, tenant } => {
                    let _ =
                        write!(out, ", \"session\": {session}, \"tenant\": {}", json_str(tenant));
                }
                EventKind::PipelineExit { session, tenant, epochs } => {
                    let _ = write!(
                        out,
                        ", \"session\": {session}, \"tenant\": {}, \"epochs\": {epochs}",
                        json_str(tenant)
                    );
                }
                EventKind::Violation { session, tenant, detail, record, spans } => {
                    let _ = write!(
                        out,
                        ", \"session\": {session}, \"tenant\": {}, \"detail\": {}, \"record\": ",
                        json_str(tenant),
                        json_str(detail)
                    );
                    match record {
                        Some(id) => {
                            let _ = write!(out, "{}", json_str(&id.to_string()));
                        }
                        None => out.push_str("null"),
                    }
                    out.push_str(", \"spans\": [");
                    for (i, s) in spans.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(
                            out,
                            "{{\"stage\": {}, \"flow\": {}, \"frame_seq\": {}, \
                             \"t_start_nanos\": {}, \"t_end_nanos\": {}}}",
                            json_str(s.stage.name()),
                            s.tag.flow,
                            s.tag.seq,
                            s.t_start,
                            s.t_end
                        );
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}
