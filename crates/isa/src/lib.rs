//! IA32-flavoured ISA model for instruction-grain program monitoring.
//!
//! This crate provides the machine-level vocabulary shared by the rest of the
//! `igm` workspace:
//!
//! * [`Reg`] — the eight IA32 general-purpose registers.
//! * [`OpClass`] — the twelve propagation-relevant instruction classes of the
//!   paper's Figure 5 (`imm_to_reg` … `other`), plus control-flow classes.
//! * [`TraceEntry`] / [`TraceOp`] — one retired-instruction record as captured
//!   by a log-based architecture, including high-level [`Annotation`] records
//!   (malloc/free, lock/unlock, system calls, input reads) inserted by wrapper
//!   libraries.
//! * [`Program`] / [`asm::ProgramBuilder`] — a tiny assembler for writing test
//!   programs.
//! * [`Machine`] — a functional interpreter that executes a [`Program`] and
//!   emits the corresponding retirement trace, playing the role of the
//!   monitored application core.
//!
//! The trace format is deliberately *resolved*: memory operands carry concrete
//! virtual addresses, because that is exactly what the LBA log-capture
//! hardware records and what the lifeguards and accelerators consume.
//!
//! # Example
//!
//! ```
//! use igm_isa::{asm::ProgramBuilder, Machine, Reg};
//!
//! let mut p = ProgramBuilder::new(0x0804_8000);
//! p.mov_ri(Reg::Eax, 7);
//! p.mov_rr(Reg::Ecx, Reg::Eax);
//! p.halt();
//! let mut m = Machine::new(p.build());
//! let trace = m.run_to_completion().expect("program halts");
//! assert_eq!(m.reg(Reg::Ecx), 7);
//! assert_eq!(trace.len(), 2); // `halt` emits no record
//! ```

pub mod asm;
pub mod machine;
pub mod trace;

pub use asm::{Program, ProgramBuilder};
pub use machine::{ExecError, Machine};
pub use trace::{
    codes, Annotation, CtrlOp, JumpTarget, MemRef, MemSize, OpClass, RegSet, TraceEntry, TraceOp,
};

use std::fmt;

/// One of the eight IA32 general-purpose registers.
///
/// Sub-register views (`al`, `ah`, `ax`, …) are folded into their containing
/// 32-bit register; see `DESIGN.md` for the rationale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Reg {
    Eax = 0,
    Ecx = 1,
    Edx = 2,
    Ebx = 3,
    Esp = 4,
    Ebp = 5,
    Esi = 6,
    Edi = 7,
}

/// Number of general-purpose registers tracked by the framework.
pub const NUM_REGS: usize = 8;

impl Reg {
    /// All registers, in encoding order.
    pub const ALL: [Reg; NUM_REGS] =
        [Reg::Eax, Reg::Ecx, Reg::Edx, Reg::Ebx, Reg::Esp, Reg::Ebp, Reg::Esi, Reg::Edi];

    /// The register's dense index in `0..NUM_REGS`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Builds a register from its dense index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= NUM_REGS`.
    #[inline]
    pub fn from_index(idx: usize) -> Reg {
        Reg::ALL[idx]
    }

    /// Builds a register from its dense index, rejecting out-of-range
    /// encodings — the fallible twin of [`Reg::from_index`] used by
    /// deserializers (the `igm-trace` codec) validating untrusted bytes.
    #[inline]
    pub fn try_from_index(idx: usize) -> Option<Reg> {
        Reg::ALL.get(idx).copied()
    }

    /// The conventional IA32 mnemonic (e.g. `"eax"`).
    pub fn name(self) -> &'static str {
        match self {
            Reg::Eax => "eax",
            Reg::Ecx => "ecx",
            Reg::Edx => "edx",
            Reg::Ebx => "ebx",
            Reg::Esp => "esp",
            Reg::Ebp => "ebp",
            Reg::Esi => "esi",
            Reg::Edi => "edi",
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_index_round_trip() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Reg::from_index(i), *r);
        }
    }

    #[test]
    fn reg_display_uses_att_syntax() {
        assert_eq!(Reg::Eax.to_string(), "%eax");
        assert_eq!(Reg::Edi.to_string(), "%edi");
    }
}
