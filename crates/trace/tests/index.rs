//! The sidecar frame-offset index: writer-built == scan-built, sidecar
//! round trip, and seeking replay windows without decoding the prefix.

use igm_lba::TraceBatch;
use igm_lifeguards::LifeguardKind;
use igm_runtime::{MonitorPool, PoolConfig, SessionConfig};
use igm_trace::{
    checksum, replay_window, TraceError, TraceIndex, TraceReader, TraceWriter, INDEX_VERSION_V2,
};
use igm_workload::Benchmark;
use std::io::Cursor;

const N: u64 = 12_000;
const CHUNK: u32 = 2_048;

/// Encodes a workload and returns (trace bytes, writer-built index).
fn encoded() -> (Vec<u8>, TraceIndex) {
    let mut w = TraceWriter::with_index(Vec::new()).unwrap();
    let mut chunker = igm_lba::chunks(Benchmark::Gzip.trace(N), CHUNK);
    let mut batch = TraceBatch::new();
    while chunker.next_into_batch(&mut batch) {
        w.write_chunk_batch(&batch).unwrap();
    }
    let index = w.index().expect("index tracking requested").clone();
    (w.finish().unwrap(), index)
}

#[test]
fn writer_index_matches_a_header_scan() {
    let (bytes, written) = encoded();
    let scanned = TraceIndex::scan(&bytes[..]).unwrap();
    // The header-only scan rebuilds the directory half exactly; the
    // writer additionally carries postings (v2 content).
    assert_eq!(written.entries(), scanned.entries());
    assert!(written.has_postings() && !scanned.has_postings());
    assert!(written.frames() > 1, "the workload must span several frames");
    assert_eq!(written.total_records(), N);
    // Entries partition the record space contiguously.
    let mut next = 0u64;
    for e in written.entries() {
        assert_eq!(e.first_record, next);
        assert!(e.records > 0);
        next += e.records as u64;
    }
    assert_eq!(next, N);
}

#[test]
fn sidecar_round_trips_and_rejects_damage() {
    let (_, index) = encoded();
    let mut sidecar = Vec::new();
    index.save(&mut sidecar).unwrap();
    assert_eq!(u32::from_le_bytes(sidecar[4..8].try_into().unwrap()), INDEX_VERSION_V2);
    assert_eq!(TraceIndex::load(&sidecar[..]).unwrap(), index);

    // Bad magic.
    let mut bad = sidecar.clone();
    bad[0] = b'Z';
    assert!(matches!(TraceIndex::load(&bad[..]), Err(TraceError::Corrupt { .. })));
    // Wrong version.
    let mut bad = sidecar.clone();
    bad[4..8].copy_from_slice(&(INDEX_VERSION_V2 + 1).to_le_bytes());
    assert!(matches!(TraceIndex::load(&bad[..]), Err(TraceError::UnsupportedVersion(_))));
    // Flipped entry byte: checksum catches it.
    let mut bad = sidecar.clone();
    let mid = 16 + (bad.len() - 20) / 2;
    bad[mid] ^= 0xff;
    assert!(matches!(TraceIndex::load(&bad[..]), Err(TraceError::Corrupt { .. })));
    // Truncation (inside the posting section and at the tail).
    for cut in [3, sidecar.len() / 3] {
        let bad = &sidecar[..sidecar.len() - cut];
        assert!(matches!(TraceIndex::load(bad), Err(TraceError::Corrupt { .. })));
    }
}

/// Damage the posting section but *repair the checksum*, so only the
/// structural validation inside `FramePostings::decode` stands between
/// the damage and the caller. Structure-level damage (the section's
/// leading count/dim bytes) must be rejected outright; a value-level
/// flip deep inside a container body may decode as a structurally
/// valid posting, but must never silently load as the original index.
#[test]
fn v2_posting_section_damage_is_rejected_structurally() {
    let (_, index) = encoded();
    let mut sidecar = Vec::new();
    index.save(&mut sidecar).unwrap();
    let frames = index.frames();
    // Body layout: 16-byte header, frames*12 directory, 8-byte posting
    // length, postings, 4-byte checksum.
    let postings_at = 16 + frames * 12 + 8;
    let body_range = 16..sidecar.len() - 4;
    let repaired = |victim: usize| {
        let mut bad = sidecar.clone();
        bad[victim] ^= 0x2a;
        let sum = checksum(&bad[body_range.clone()]);
        let at = bad.len() - 4;
        bad[at..].copy_from_slice(&sum.to_le_bytes());
        bad
    };
    for victim in [postings_at, postings_at + 1] {
        let bad = repaired(victim);
        assert!(
            matches!(TraceIndex::load(&bad[..]), Err(TraceError::Corrupt { .. })),
            "flipping posting byte at {victim} must not load cleanly"
        );
    }
    let bad = repaired((postings_at + sidecar.len() - 4) / 2);
    match TraceIndex::load(&bad[..]) {
        Err(TraceError::Corrupt { .. }) => {}
        Ok(loaded) => assert_ne!(loaded, index, "damaged sidecar must not load as the original"),
        Err(e) => panic!("unexpected error kind: {e:?}"),
    }
}

/// A directory-only index still writes the v1 format, and v1 sidecars
/// (whatever produced them) still load — read-compat for every sidecar
/// written before postings existed.
#[test]
fn v1_sidecars_still_load() {
    let (bytes, written) = encoded();
    let scanned = TraceIndex::scan(&bytes[..]).unwrap();
    let mut v1 = Vec::new();
    scanned.save(&mut v1).unwrap();
    assert_eq!(u32::from_le_bytes(v1[4..8].try_into().unwrap()), 1, "directory-only saves as v1");
    let loaded = TraceIndex::load(&v1[..]).unwrap();
    assert_eq!(loaded, scanned);
    assert!(!loaded.has_postings());
    assert_eq!(loaded.entries(), written.entries());
    // It still drives seeks exactly like the posting-bearing index.
    assert_eq!(loaded.frame_for_record(N / 2).unwrap(), written.frame_for_record(N / 2).unwrap());
}

/// The tentpole byte-identity property: an index built inline by the
/// writer and one rebuilt offline by the decoding scan serialize to the
/// exact same sidecar bytes, across workloads and chunk sizes.
#[test]
fn writer_and_scan_records_sidecars_are_byte_identical() {
    for bench in [Benchmark::Gzip, Benchmark::Mcf, Benchmark::Parser] {
        for (n, chunk) in [(1_500u64, 512u32), (9_000, 2_048), (4_096, 4_096)] {
            let mut w = TraceWriter::with_index(Vec::new()).unwrap();
            let mut chunker = igm_lba::chunks(bench.trace(n), chunk);
            let mut batch = TraceBatch::new();
            while chunker.next_into_batch(&mut batch) {
                w.write_chunk_batch(&batch).unwrap();
            }
            let written = w.index().unwrap().clone();
            let bytes = w.finish().unwrap();
            let rescanned = TraceIndex::scan_records(&bytes[..]).unwrap();
            assert_eq!(written, rescanned, "{bench:?} n={n} chunk={chunk}");
            let mut a = Vec::new();
            let mut b = Vec::new();
            written.save(&mut a).unwrap();
            rescanned.save(&mut b).unwrap();
            assert_eq!(a, b, "sidecar bytes diverge for {bench:?} n={n} chunk={chunk}");
        }
    }
}

#[test]
fn frame_lookup_finds_every_record() {
    let (_, index) = encoded();
    for record in [0, 1, N / 3, N / 2, N - 1] {
        let e = index.frame_for_record(record).unwrap();
        assert!(e.first_record <= record && record < e.first_record + e.records as u64);
    }
    assert!(index.frame_for_record(N).is_none());
}

#[test]
fn seeked_window_decodes_exactly_the_requested_records() {
    let (bytes, index) = encoded();
    let full = igm_trace::decode_from_slice(&bytes).unwrap();

    for (start, end) in [(0u64, 100u64), (N / 2 - 7, N / 2 + 1_311), (N - 259, N), (N - 1, N + 50)]
    {
        let mut reader = TraceReader::new(Cursor::new(&bytes)).unwrap();
        let entry = index.frame_for_record(start).unwrap();
        reader.seek_to_frame(entry).unwrap();
        // Decode frames from the seek point, trimming to the window.
        let mut got = Vec::new();
        let mut pos = entry.first_record;
        let mut batch = TraceBatch::new();
        let end_clamped = end.min(N);
        while pos < end_clamped && reader.read_chunk_into_batch(&mut batch).unwrap() {
            let n = batch.len() as u64;
            let skip = start.saturating_sub(pos).min(n) as usize;
            let take = (end_clamped - pos).min(n) as usize;
            got.extend(batch.iter().skip(skip).take(take.saturating_sub(skip)));
            pos += n;
        }
        assert_eq!(
            got,
            full[start as usize..end_clamped as usize],
            "window [{start}, {end}) diverges from the full decode"
        );
    }
}

#[test]
fn replay_window_matches_a_trimmed_local_run() {
    let (bytes, index) = encoded();
    let full = igm_trace::decode_from_slice(&bytes).unwrap();
    let pool = MonitorPool::new(PoolConfig::with_workers(2));
    let cfg = SessionConfig::new("window", LifeguardKind::TaintCheck)
        .synthetic()
        .premark(&Benchmark::Gzip.profile().premark_regions());

    let (start, end) = (N / 3 + 5, 2 * N / 3 - 9);
    // Reference: stream exactly the window's records locally.
    let reference = {
        let session = pool.open_session(cfg.clone());
        session.stream(full[start as usize..end as usize].iter().copied()).unwrap();
        session.finish()
    };
    // Seeked replay of the same window straight off the artifact.
    let mut reader = TraceReader::new(Cursor::new(&bytes)).unwrap();
    let replayed = replay_window(&pool, cfg, &mut reader, &index, start..end).unwrap();

    assert_eq!(replayed.records, end - start);
    assert_eq!(replayed.records, reference.records);
    assert_eq!(replayed.violations, reference.violations);

    // An empty or out-of-range window is simply empty.
    let mut reader = TraceReader::new(Cursor::new(&bytes)).unwrap();
    let cfg2 = SessionConfig::new("empty", LifeguardKind::AddrCheck).synthetic();
    let empty = replay_window(&pool, cfg2, &mut reader, &index, N + 10..N + 20).unwrap();
    assert_eq!(empty.records, 0);
    pool.shutdown();
}
