//! Cross-host ingest equivalence, end to end over loopback.
//!
//! The acceptance bar for `igm-net`: a workload streamed through
//! `TraceForwarder` → `IngestServer` → `MonitorPool` must yield
//! violations and `DispatchStats` identical to the same workload run
//! locally, for all five lifeguards — the network transport is
//! semantically invisible, exactly like the paper's hardware log
//! transport between the application and lifeguard cores.

use igm::isa::{Annotation, CtrlOp, JumpTarget, MemRef, OpClass, Reg, TraceEntry};
use igm::lifeguards::LifeguardKind;
use igm::net::{ForwarderConfig, IngestServer, NetServerConfig, TraceForwarder};
use igm::runtime::{MonitorPool, PoolConfig, SessionConfig};
use igm::workload::{Benchmark, MtBenchmark};

/// A short buggy epilogue appended to a clean generated trace so the
/// equivalence is asserted over *non-empty* violation sets.
fn buggy_epilogue() -> Vec<TraceEntry> {
    vec![
        TraceEntry::annot(0x9100_0000, Annotation::Malloc { base: 0x0a00_0000, size: 64 }),
        TraceEntry::annot(0x9100_0004, Annotation::ReadInput { base: 0x0a00_0000, len: 4 }),
        TraceEntry::op(
            0x9100_0008,
            OpClass::MemToReg { src: MemRef::word(0x0a00_0040), rd: Reg::Edx },
        ),
        TraceEntry::op(
            0x9100_000c,
            OpClass::MemToReg { src: MemRef::word(0x0a00_0000), rd: Reg::Eax },
        ),
        TraceEntry::ctrl(0x9100_0010, CtrlOp::Indirect { target: JumpTarget::Reg(Reg::Eax) }),
        TraceEntry::annot(0x9100_0014, Annotation::Free { base: 0x0a00_0000 }),
    ]
}

fn session_cfg(kind: LifeguardKind, name: &str) -> SessionConfig {
    let premark = match kind {
        LifeguardKind::LockSet => MtBenchmark::Zchaff.trace(1).premark_regions(),
        _ => Benchmark::Gzip.profile().premark_regions(),
    };
    SessionConfig::new(name, kind).synthetic().premark(&premark)
}

fn workload_for(kind: LifeguardKind, n: u64) -> Vec<TraceEntry> {
    match kind {
        LifeguardKind::LockSet => MtBenchmark::Zchaff.trace(n).collect(),
        _ => {
            let mut trace: Vec<TraceEntry> = Benchmark::Gzip.trace(n).collect();
            trace.extend(buggy_epilogue());
            trace
        }
    }
}

#[test]
fn loopback_ingest_equals_the_local_run_for_all_five_lifeguards() {
    const N: u64 = 15_000;
    // The same chunking on both paths, so batch boundaries (semantically
    // inert, but visible in per-batch pipeline staging) line up exactly.
    const CHUNK: u32 = 16 * 1024;
    let pool = MonitorPool::new(PoolConfig { chunk_bytes: CHUNK, ..PoolConfig::with_workers(4) });

    for kind in [
        LifeguardKind::AddrCheck,
        LifeguardKind::MemCheck,
        LifeguardKind::TaintCheck,
        LifeguardKind::TaintCheckDetailed,
        LifeguardKind::LockSet,
    ] {
        let trace = workload_for(kind, N);

        // Local reference run.
        let local = {
            let session = pool.open_session(session_cfg(kind, kind.name()));
            session.stream(trace.iter().copied()).expect("pool alive");
            session.finish()
        };
        if !matches!(kind, LifeguardKind::LockSet) {
            assert!(
                !local.violations.is_empty(),
                "{kind:?}: the buggy epilogue must trip the lifeguard locally"
            );
        }

        // The same workload over the network: forwarder → server → pool.
        let server = IngestServer::bind("127.0.0.1:0", &pool, NetServerConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        let cfg = session_cfg(kind, kind.name());
        let client = std::thread::spawn(move || {
            let fcfg = ForwarderConfig { chunk_bytes: CHUNK, ..ForwarderConfig::default() };
            let mut fwd = TraceForwarder::connect_with(addr, &cfg, fcfg).unwrap();
            fwd.stream(trace).unwrap();
            fwd.finish().unwrap()
        });
        let report = server.serve_connections(1);
        let fwd_report = client.join().unwrap();

        assert!(report.ingest.errors.is_empty(), "{kind:?}: {:?}", report.ingest.errors);
        assert_eq!(report.accepted, 1);
        let remote = &report.ingest.sessions[0];
        assert_eq!(fwd_report.server_records, fwd_report.stats.records, "{kind:?}: lost records");
        assert_eq!(remote.records, local.records, "{kind:?}: record counts diverge");
        assert_eq!(remote.violations, local.violations, "{kind:?}: violations diverge");
        assert_eq!(remote.dispatch, local.dispatch, "{kind:?}: dispatch stats diverge");
    }
    pool.shutdown();
}

#[test]
fn loopback_spans_join_client_and_server_stages_into_one_chain() {
    use igm::span::Stage;

    let pool = MonitorPool::new(PoolConfig::with_workers(2));
    let recorder = pool.recorder().expect("spans on by default").clone();
    let server = IngestServer::bind("127.0.0.1:0", &pool, NetServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();

    let rec = recorder.clone();
    let client = std::thread::spawn(move || {
        let cfg = session_cfg(LifeguardKind::AddrCheck, "spanful");
        let mut fwd = TraceForwarder::connect(addr, &cfg).unwrap();
        assert_eq!(fwd.wire_version(), igm::net::NET_VERSION);
        fwd.attach_spans(&rec);
        fwd.stream(Benchmark::Gzip.trace(20_000)).unwrap();
        fwd.finish().unwrap()
    });
    let report = server.serve_connections(1);
    let fwd_report = client.join().unwrap();
    assert!(report.ingest.errors.is_empty(), "{:?}", report.ingest.errors);
    assert_eq!(fwd_report.server_records, 20_000);

    // The forwarder's first chunk is always sampled; its chain must hold
    // both halves of the journey, causally ordered: the client-side send
    // and the server-side decode → channel wait → dispatch.
    let spans = recorder.snapshot();
    let sent = spans
        .iter()
        .find(|r| r.stage == Stage::ClientSend)
        .expect("a sampled frame left a client_send stage");
    let chain = recorder.chain(sent.tag);
    let stages: Vec<Stage> = chain.iter().map(|r| r.stage).collect();
    for want in [Stage::ClientSend, Stage::ServerIngest, Stage::ChannelWait, Stage::Dispatch] {
        assert!(stages.contains(&want), "chain {stages:?} is missing {want:?}");
    }
    let at = |s: Stage| stages.iter().position(|&x| x == s).unwrap();
    assert!(at(Stage::ClientSend) < at(Stage::ServerIngest), "client half precedes server half");
    assert!(at(Stage::ServerIngest) < at(Stage::ChannelWait));
    assert!(at(Stage::ChannelWait) < at(Stage::Dispatch));
    pool.shutdown();
}

#[test]
fn many_loopback_clients_multiplex_through_one_server_thread() {
    const N: u64 = 5_000;
    const TENANTS: [Benchmark; 6] = [
        Benchmark::Bzip2,
        Benchmark::Crafty,
        Benchmark::Gap,
        Benchmark::Gcc,
        Benchmark::Gzip,
        Benchmark::Mcf,
    ];
    let pool = MonitorPool::new(PoolConfig::with_workers(4));
    let server = IngestServer::bind("127.0.0.1:0", &pool, NetServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();

    let clients: Vec<_> = TENANTS
        .iter()
        .enumerate()
        .map(|(i, bench)| {
            let bench = *bench;
            std::thread::spawn(move || {
                let kind =
                    if i % 2 == 0 { LifeguardKind::AddrCheck } else { LifeguardKind::TaintCheck };
                let cfg = SessionConfig::new(bench.name(), kind)
                    .synthetic()
                    .premark(&bench.profile().premark_regions());
                let mut fwd = TraceForwarder::connect(addr, &cfg).unwrap();
                fwd.stream(bench.trace(N)).unwrap();
                fwd.finish().unwrap()
            })
        })
        .collect();
    let report = server.serve_connections(TENANTS.len());
    let fwd_reports: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();

    assert_eq!(report.accepted, TENANTS.len());
    assert!(report.ingest.errors.is_empty(), "{:?}", report.ingest.errors);
    assert_eq!(report.ingest.records(), TENANTS.len() as u64 * N);
    for session in &report.ingest.sessions {
        assert_eq!(session.records, N, "tenant {} lost records", session.name);
        assert!(session.violations.is_empty(), "clean workloads only");
    }
    for (name, lane) in &report.ingest.lanes {
        assert!(lane.turns > 0, "lane {name} was never scheduled");
        assert_eq!(lane.records, N, "lane {name} accounting diverges");
    }
    for r in &fwd_reports {
        assert_eq!(r.server_records, N);
    }
    pool.shutdown();
}
