//! A small structured assembler for writing monitored test programs.
//!
//! [`ProgramBuilder`] offers one method per supported instruction form and
//! resolves labels at [`ProgramBuilder::build`] time. The produced
//! [`Program`] is executed by [`crate::Machine`], which emits the retirement
//! trace consumed by the monitoring infrastructure.
//!
//! The instruction set is a two-operand IA32-style subset: register/immediate
//! /memory `mov`s, two-operand ALU ops (`dst = dst op src`), compares,
//! conditional and indirect control flow, `push`/`pop`/`call`/`ret`, a
//! string-copy element (`movs`), an opaque `xchg`, and the high-level
//! annotations of [`Annotation`].

use crate::trace::{Annotation, MemSize};
use crate::Reg;
use std::collections::HashMap;
use std::fmt;

/// A memory operand before address resolution: `disp(base, index, scale)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Addressing {
    /// Base register, if any.
    pub base: Option<Reg>,
    /// Index register, if any.
    pub index: Option<Reg>,
    /// Scale applied to the index register (1, 2, 4 or 8).
    pub scale: u8,
    /// Constant displacement (wrapping arithmetic, as on IA32).
    pub disp: u32,
    /// Access size.
    pub size: MemSize,
}

impl Addressing {
    /// Absolute address: `disp`.
    pub fn abs(disp: u32, size: MemSize) -> Addressing {
        Addressing { base: None, index: None, scale: 1, disp, size }
    }

    /// Base + displacement: `disp(%base)`.
    pub fn base_disp(base: Reg, disp: i32, size: MemSize) -> Addressing {
        Addressing { base: Some(base), index: None, scale: 1, disp: disp as u32, size }
    }

    /// Base + scaled index + displacement: `disp(%base, %index, scale)`.
    pub fn base_index(base: Reg, index: Reg, scale: u8, disp: i32, size: MemSize) -> Addressing {
        Addressing { base: Some(base), index: Some(index), scale, disp: disp as u32, size }
    }

    /// Registers participating in the address computation.
    pub fn regs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.base.into_iter().chain(self.index)
    }
}

/// Two-operand ALU operations (`dst = dst op src`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
}

impl BinOp {
    /// Applies the operation.
    #[inline]
    pub fn apply(self, dst: u32, src: u32) -> u32 {
        match self {
            BinOp::Add => dst.wrapping_add(src),
            BinOp::Sub => dst.wrapping_sub(src),
            BinOp::And => dst & src,
            BinOp::Or => dst | src,
            BinOp::Xor => dst ^ src,
        }
    }
}

/// Single-operand (register- or memory-"self") ALU operations with an
/// immediate: `dst = dst op imm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelfOp {
    AddI(u32),
    SubI(u32),
    AndI(u32),
    OrI(u32),
    XorI(u32),
    Shl(u8),
    Shr(u8),
    Not,
    Neg,
}

impl SelfOp {
    /// Applies the operation.
    #[inline]
    pub fn apply(self, v: u32) -> u32 {
        match self {
            SelfOp::AddI(i) => v.wrapping_add(i),
            SelfOp::SubI(i) => v.wrapping_sub(i),
            SelfOp::AndI(i) => v & i,
            SelfOp::OrI(i) => v | i,
            SelfOp::XorI(i) => v ^ i,
            SelfOp::Shl(s) => v.wrapping_shl(s as u32),
            SelfOp::Shr(s) => v.wrapping_shr(s as u32),
            SelfOp::Not => !v,
            SelfOp::Neg => v.wrapping_neg(),
        }
    }
}

/// Branch conditions (signed comparisons plus equality and unsigned
/// below/above-or-equal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Unsigned below.
    B,
    /// Unsigned above or equal.
    Ae,
}

impl Cond {
    /// Evaluates the condition for the pair `(lhs, rhs)` last compared.
    pub fn eval(self, lhs: u32, rhs: u32) -> bool {
        let (sl, sr) = (lhs as i32, rhs as i32);
        match self {
            Cond::Eq => lhs == rhs,
            Cond::Ne => lhs != rhs,
            Cond::Lt => sl < sr,
            Cond::Le => sl <= sr,
            Cond::Gt => sl > sr,
            Cond::Ge => sl >= sr,
            Cond::B => lhs < rhs,
            Cond::Ae => lhs >= rhs,
        }
    }
}

/// A label placeholder used before resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub(crate) u32);

/// One assembled instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `mov $imm, %rd`
    MovRI { rd: Reg, imm: u32 },
    /// `mov %rs, %rd`
    MovRR { rd: Reg, rs: Reg },
    /// `mov mem, %rd` (load; 1/2-byte loads zero-extend)
    Load { rd: Reg, src: Addressing },
    /// `mov %rs, mem` (store)
    Store { dst: Addressing, rs: Reg },
    /// `mov $imm, mem`
    StoreI { dst: Addressing, imm: u32 },
    /// one `movs` element: copy `size` bytes from `[esi]` to `[edi]` and
    /// advance both by the element size
    Movs { size: MemSize },
    /// `op %rs, %rd`
    AluRR { op: BinOp, rd: Reg, rs: Reg },
    /// `op mem, %rd`
    AluRM { op: BinOp, rd: Reg, src: Addressing },
    /// `op %rs, mem`
    AluMR { op: BinOp, dst: Addressing, rs: Reg },
    /// `op $imm, %rd` (reg_self)
    AluRI { op: SelfOp, rd: Reg },
    /// `op $imm, mem` (mem_self)
    AluMI { op: SelfOp, dst: Addressing },
    /// `cmp %rs, %rd` — sets flags from `rd - rs`
    CmpRR { rd: Reg, rs: Reg },
    /// `cmp $imm, %rd`
    CmpRI { rd: Reg, imm: u32 },
    /// `cmp mem, %rd`
    CmpRM { rd: Reg, src: Addressing },
    /// `xchg %ra, %rb` — modelled as an opaque `other` instruction
    Xchg { ra: Reg, rb: Reg },
    /// `push %rs`
    Push { rs: Reg },
    /// `push $imm`
    PushI { imm: u32 },
    /// `pop %rd`
    Pop { rd: Reg },
    /// `jmp label`
    Jmp { target: Label },
    /// `jcc label`
    Jcc { cond: Cond, target: Label },
    /// `jmp *%r`
    JmpIndReg { r: Reg },
    /// `jmp *mem`
    JmpIndMem { src: Addressing },
    /// `call label`
    Call { target: Label },
    /// `call *%r`
    CallIndReg { r: Reg },
    /// `ret`
    Ret,
    /// high-level annotation record (wrapper-library event)
    Annot(Annotation),
    /// stop execution
    Halt,
}

/// Errors raised while assembling a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound with [`ProgramBuilder::bind`].
    UnboundLabel(u32),
    /// A label was bound twice.
    RedefinedLabel(u32),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(l) => write!(f, "label L{l} referenced but never bound"),
            AsmError::RedefinedLabel(l) => write!(f, "label L{l} bound more than once"),
        }
    }
}

impl std::error::Error for AsmError {}

/// An assembled, label-resolved program.
#[derive(Debug, Clone)]
pub struct Program {
    pub(crate) base_pc: u32,
    pub(crate) instrs: Vec<Instr>,
    pub(crate) label_targets: Vec<usize>,
}

/// Bytes of code occupied by each instruction in the synthetic encoding.
/// IA32 encodings vary from 1 to 15 bytes; a fixed 4-byte pitch keeps pc
/// arithmetic simple without affecting any monitored behaviour.
pub const INSTR_BYTES: u32 = 4;

impl Program {
    /// The pc of the first instruction.
    pub fn base_pc(&self) -> u32 {
        self.base_pc
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The pc of instruction `idx`.
    pub fn pc_of(&self, idx: usize) -> u32 {
        self.base_pc + (idx as u32) * INSTR_BYTES
    }

    /// The instruction index for `pc`, if `pc` falls inside the program.
    pub fn index_of_pc(&self, pc: u32) -> Option<usize> {
        if pc < self.base_pc {
            return None;
        }
        let off = pc - self.base_pc;
        if !off.is_multiple_of(INSTR_BYTES) {
            return None;
        }
        let idx = (off / INSTR_BYTES) as usize;
        (idx < self.instrs.len()).then_some(idx)
    }

    /// Instruction at index `idx`.
    pub fn instr(&self, idx: usize) -> &Instr {
        &self.instrs[idx]
    }

    /// Resolves a label to its instruction index.
    pub fn resolve(&self, l: Label) -> usize {
        self.label_targets[l.0 as usize]
    }
}

/// Incremental builder for [`Program`]s.
///
/// # Example
///
/// ```
/// use igm_isa::{asm::ProgramBuilder, Reg};
///
/// let mut p = ProgramBuilder::new(0x0804_8000);
/// let top = p.label();
/// p.mov_ri(Reg::Eax, 3);
/// p.bind(top);
/// p.alu_ri(igm_isa::asm::SelfOp::SubI(1), Reg::Eax);
/// p.cmp_ri(Reg::Eax, 0);
/// p.jcc(igm_isa::asm::Cond::Ne, top);
/// p.halt();
/// let prog = p.build();
/// assert_eq!(prog.len(), 5);
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    base_pc: u32,
    instrs: Vec<Instr>,
    bound: HashMap<u32, usize>,
    next_label: u32,
}

impl ProgramBuilder {
    /// Starts a program whose first instruction sits at `base_pc`.
    pub fn new(base_pc: u32) -> ProgramBuilder {
        ProgramBuilder { base_pc, instrs: Vec::new(), bound: HashMap::new(), next_label: 0 }
    }

    /// Allocates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Binds `label` to the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound (programming error in the caller).
    pub fn bind(&mut self, label: Label) {
        let prev = self.bound.insert(label.0, self.instrs.len());
        assert!(prev.is_none(), "label L{} bound twice", label.0);
    }

    /// Emits a raw instruction; prefer the named helpers below.
    pub fn emit(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self
    }

    // --- data movement -----------------------------------------------------

    /// `mov $imm, %rd`
    pub fn mov_ri(&mut self, rd: Reg, imm: u32) -> &mut Self {
        self.emit(Instr::MovRI { rd, imm })
    }

    /// `mov %rs, %rd`
    pub fn mov_rr(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.emit(Instr::MovRR { rd, rs })
    }

    /// `mov mem, %rd`
    pub fn load(&mut self, rd: Reg, src: Addressing) -> &mut Self {
        self.emit(Instr::Load { rd, src })
    }

    /// `mov %rs, mem`
    pub fn store(&mut self, dst: Addressing, rs: Reg) -> &mut Self {
        self.emit(Instr::Store { dst, rs })
    }

    /// `mov $imm, mem`
    pub fn store_imm(&mut self, dst: Addressing, imm: u32) -> &mut Self {
        self.emit(Instr::StoreI { dst, imm })
    }

    /// one `movs` element (copy `[esi] -> [edi]`, advance both)
    pub fn movs(&mut self, size: MemSize) -> &mut Self {
        self.emit(Instr::Movs { size })
    }

    // --- ALU ----------------------------------------------------------------

    /// `op %rs, %rd`
    pub fn alu_rr(&mut self, op: BinOp, rd: Reg, rs: Reg) -> &mut Self {
        self.emit(Instr::AluRR { op, rd, rs })
    }

    /// `op mem, %rd`
    pub fn alu_rm(&mut self, op: BinOp, rd: Reg, src: Addressing) -> &mut Self {
        self.emit(Instr::AluRM { op, rd, src })
    }

    /// `op %rs, mem`
    pub fn alu_mr(&mut self, op: BinOp, dst: Addressing, rs: Reg) -> &mut Self {
        self.emit(Instr::AluMR { op, dst, rs })
    }

    /// `op $imm, %rd`
    pub fn alu_ri(&mut self, op: SelfOp, rd: Reg) -> &mut Self {
        self.emit(Instr::AluRI { op, rd })
    }

    /// `op $imm, mem`
    pub fn alu_mi(&mut self, op: SelfOp, dst: Addressing) -> &mut Self {
        self.emit(Instr::AluMI { op, dst })
    }

    // --- compares -----------------------------------------------------------

    /// `cmp %rs, %rd`
    pub fn cmp_rr(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.emit(Instr::CmpRR { rd, rs })
    }

    /// `cmp $imm, %rd`
    pub fn cmp_ri(&mut self, rd: Reg, imm: u32) -> &mut Self {
        self.emit(Instr::CmpRI { rd, imm })
    }

    /// `cmp mem, %rd`
    pub fn cmp_rm(&mut self, rd: Reg, src: Addressing) -> &mut Self {
        self.emit(Instr::CmpRM { rd, src })
    }

    // --- misc ----------------------------------------------------------------

    /// `xchg %ra, %rb` (opaque `other` instruction)
    pub fn xchg(&mut self, ra: Reg, rb: Reg) -> &mut Self {
        self.emit(Instr::Xchg { ra, rb })
    }

    /// `push %rs`
    pub fn push(&mut self, rs: Reg) -> &mut Self {
        self.emit(Instr::Push { rs })
    }

    /// `push $imm`
    pub fn push_imm(&mut self, imm: u32) -> &mut Self {
        self.emit(Instr::PushI { imm })
    }

    /// `pop %rd`
    pub fn pop(&mut self, rd: Reg) -> &mut Self {
        self.emit(Instr::Pop { rd })
    }

    // --- control flow ---------------------------------------------------------

    /// `jmp label`
    pub fn jmp(&mut self, target: Label) -> &mut Self {
        self.emit(Instr::Jmp { target })
    }

    /// `jcc label`
    pub fn jcc(&mut self, cond: Cond, target: Label) -> &mut Self {
        self.emit(Instr::Jcc { cond, target })
    }

    /// `jmp *%r`
    pub fn jmp_ind_reg(&mut self, r: Reg) -> &mut Self {
        self.emit(Instr::JmpIndReg { r })
    }

    /// `jmp *mem`
    pub fn jmp_ind_mem(&mut self, src: Addressing) -> &mut Self {
        self.emit(Instr::JmpIndMem { src })
    }

    /// `call label`
    pub fn call(&mut self, target: Label) -> &mut Self {
        self.emit(Instr::Call { target })
    }

    /// `call *%r`
    pub fn call_ind_reg(&mut self, r: Reg) -> &mut Self {
        self.emit(Instr::CallIndReg { r })
    }

    /// `ret`
    pub fn ret(&mut self) -> &mut Self {
        self.emit(Instr::Ret)
    }

    /// Emits a high-level annotation record.
    pub fn annot(&mut self, a: Annotation) -> &mut Self {
        self.emit(Instr::Annot(a))
    }

    /// Stops the machine.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Instr::Halt)
    }

    /// Resolves labels and produces the final [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UnboundLabel`] if any referenced label was never
    /// bound.
    pub fn try_build(&self) -> Result<Program, AsmError> {
        let mut label_targets = vec![usize::MAX; self.next_label as usize];
        for (l, idx) in &self.bound {
            label_targets[*l as usize] = *idx;
        }
        for i in &self.instrs {
            let used = match i {
                Instr::Jmp { target } | Instr::Jcc { target, .. } | Instr::Call { target } => {
                    Some(*target)
                }
                _ => None,
            };
            if let Some(l) = used {
                if label_targets[l.0 as usize] == usize::MAX {
                    return Err(AsmError::UnboundLabel(l.0));
                }
            }
        }
        Ok(Program { base_pc: self.base_pc, instrs: self.instrs.clone(), label_targets })
    }

    /// Resolves labels and produces the final [`Program`].
    ///
    /// # Panics
    ///
    /// Panics on unbound labels; use [`ProgramBuilder::try_build`] to handle
    /// the error.
    pub fn build(&self) -> Program {
        self.try_build().expect("all referenced labels bound")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_and_selfop_semantics() {
        assert_eq!(BinOp::Add.apply(3, 4), 7);
        assert_eq!(BinOp::Sub.apply(3, 4), u32::MAX);
        assert_eq!(BinOp::Xor.apply(0xff, 0x0f), 0xf0);
        assert_eq!(SelfOp::Shr(8).apply(0x1234_5678), 0x0012_3456);
        assert_eq!(SelfOp::Not.apply(0), u32::MAX);
        assert_eq!(SelfOp::Neg.apply(1), u32::MAX);
    }

    #[test]
    fn cond_eval_signed_vs_unsigned() {
        // -1 < 1 signed, but 0xffff_ffff > 1 unsigned.
        assert!(Cond::Lt.eval(u32::MAX, 1));
        assert!(!Cond::B.eval(u32::MAX, 1));
        assert!(Cond::Ae.eval(u32::MAX, 1));
        assert!(Cond::Eq.eval(5, 5));
        assert!(Cond::Ne.eval(5, 6));
        assert!(Cond::Le.eval(5, 5) && Cond::Ge.eval(5, 5));
        assert!(Cond::Gt.eval(6, 5));
    }

    #[test]
    fn labels_resolve() {
        let mut b = ProgramBuilder::new(0x1000);
        let l = b.label();
        b.mov_ri(Reg::Eax, 1);
        b.bind(l);
        b.jmp(l);
        let p = b.build();
        assert_eq!(p.resolve(l), 1);
        assert_eq!(p.pc_of(1), 0x1004);
        assert_eq!(p.index_of_pc(0x1004), Some(1));
        assert_eq!(p.index_of_pc(0x1003), None);
        assert_eq!(p.index_of_pc(0x0fff), None);
        assert_eq!(p.index_of_pc(0x1008), None);
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new(0);
        let l = b.label();
        b.jmp(l);
        assert_eq!(b.try_build().unwrap_err(), AsmError::UnboundLabel(0));
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new(0);
        let l = b.label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn addressing_regs_iterates_base_then_index() {
        let a = Addressing::base_index(Reg::Ebx, Reg::Esi, 4, -8, MemSize::B4);
        let regs: Vec<Reg> = a.regs().collect();
        assert_eq!(regs, vec![Reg::Ebx, Reg::Esi]);
        assert_eq!(a.disp, (-8i32) as u32);
    }
}
