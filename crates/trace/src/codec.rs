//! The compact binary record codec and chunk framing.
//!
//! Two payload codecs share one framing layer and one set of per-field
//! wire transforms:
//!
//! * **Codec 1 (delta)** — the original record-interleaved encoding: a
//!   tag byte, a zigzag pc delta, then a variant-specific payload, with
//!   one shared address-delta stream per frame.
//! * **Codec 2 (predicted)** — the paper's value-predicted log. Each
//!   column (pc, static record shape, addresses, immediates) runs
//!   through a per-frame value predictor; a predictor hit costs one bit
//!   in the column's hit bitmap, and a miss escapes into exactly the
//!   codec-1 delta transform for that field. On loopy workloads nearly
//!   every field hits after its first encounter, compressing the stream
//!   from ~4–6 bytes/record to ~1–2.
//!
//! # Codec 1 record encoding
//!
//! One [`TraceEntry`] encodes as:
//!
//! ```text
//! tag          1 byte   bits 0..6: flattened variant id (0..=25)
//!                       bit 7: entry carries a non-empty addr_regs set
//! pc           varint   zigzag(pc − prev_pc)   (delta stream per chunk)
//! [addr_regs]  1 byte   RegSet bitmap, present iff tag bit 7
//! payload      …        variant-specific, see below
//! ```
//!
//! Varints are LEB128 (7 value bits per byte, high bit = continuation).
//! Memory references share one per-chunk address-delta stream: a `MemRef`
//! encodes as `varint(zigzag(addr − prev_addr) << 2 | size_code)` with
//! size codes 0/1/2 for 1/2/4-byte accesses; address-valued annotation
//! payloads (malloc base, lock word, …) ride the same stream without the
//! size bits. Both delta streams reset at every chunk boundary, so chunks
//! decode independently.
//!
//! Registers encode as their dense index; register pairs pack into one
//! byte (`rs << 4 | rd`). Optional fields are announced by a flags byte.
//!
//! # Codec 2 column encoding
//!
//! The frame payload is four column sections, in order — pc, static,
//! address, value — each a hit bitmap (one bit per slot, LSB-first,
//! zero-padded to a byte) followed by that column's escape stream:
//!
//! ```text
//! pc_bits      ⌈n/8⌉ bytes   per record: predicted-next-pc hit?
//! pc_escapes   …             missed pcs, codec-1 zigzag delta varints
//! static_bits  ⌈n/8⌉ bytes   per record: (code, addr_regs, regs, flags) hit?
//! static_esc   …             missed statics, field-reordered varints
//! addr_mode    1 byte, m>0   escape delta base: 0 global, 1 predicted
//! mem_bits     ⌈m/8⌉ bytes   per address slot: stride-predictor hit?
//! mem_escapes  …             missed slots, codec-1 address-stream varints
//!                            deltaed against the frame's chosen base
//! val_bits     ⌈v/8⌉ bytes   per immediate: last-value hit?
//! val_escapes  …             missed immediates, raw varints
//! ```
//!
//! `m` and `v` are the frame's address-slot and immediate counts, both
//! derivable from the decoded static column. The predictors — a
//! next-pc table chained on the previous pc, last-value tables keyed by
//! pc for statics and immediates, and per-`(pc, operand-slot)` stride
//! tables for addresses — reset at every frame boundary, so frames stay
//! independently decodable and the frame needs no prologue: the escape
//! streams themselves reseed the tables identically on both sides.
//!
//! # Chunk framing
//!
//! A trace file is a 8-byte header (`b"IGMT"`, `u32` LE version) followed
//! by frames. A version-2 frame:
//!
//! ```text
//! records      u32 LE   entries in this chunk (> 0)
//! payload_len  u32 LE   encoded payload bytes (> 0)
//! checksum     u32 LE   FNV-1a-32 over the payload bytes
//! codec        u32 LE   payload codec (1 = delta, 2 = predicted)
//! payload      payload_len bytes
//! ```
//!
//! Version-1 files carry the same header without the codec field
//! (12 bytes, payloads always codec 1); [`TraceReader`] decodes both.
//!
//! A clean EOF at a frame boundary ends the trace; anything else —
//! truncated header or payload, checksum mismatch, zero-record or
//! zero-length frames, trailing payload bytes, out-of-range field
//! encodings, hit bits referencing predictor slots the frame never
//! seeded — is a [`TraceError::Corrupt`] with the file offset. One
//! frame per transport batch keeps capture and replay chunk-for-chunk
//! identical with the live session that produced the file.

use igm_isa::{codes, MemSize, Reg, TraceEntry};
use igm_lba::TraceBatch;
use igm_obs::{Counter, Histogram, MetricsRegistry};
use std::fmt;
use std::io::{self, Read, Write};
use std::time::Instant;

/// The four magic bytes opening every trace file.
pub const MAGIC: [u8; 4] = *b"IGMT";

/// Current format version (16-byte frame headers with a codec field).
pub const FORMAT_VERSION: u32 = 2;

/// The legacy format version (12-byte frame headers, delta payloads).
pub const FORMAT_VERSION_V1: u32 = 1;

/// Upper bound accepted for one frame's payload, so a corrupt length field
/// cannot drive a multi-gigabyte allocation before the checksum catches it.
pub const MAX_PAYLOAD_BYTES: u32 = 64 * 1024 * 1024;

/// Bytes of version-1 frame header preceding every frame payload
/// (`records`, `payload_len`, `checksum`, each `u32` LE).
pub const FRAME_HEADER_BYTES: usize = 12;

/// Bytes of version-2 frame header: the version-1 fields plus a `u32` LE
/// codec identifier.
pub const FRAME_HEADER_BYTES_V2: usize = 16;

/// Payload codec carried in a version-2 frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    /// Per-record delta streams — the format-1 record encoding.
    Delta = 1,
    /// Value-predicted columns: hit bitmaps plus delta-coded escapes.
    Predicted = 2,
}

impl Codec {
    /// The codec's wire identifier (the frame-header field, and the value
    /// negotiated in the `igm-net` HELLO).
    pub fn wire(self) -> u32 {
        self as u32
    }

    /// Parses a wire codec identifier.
    pub fn from_wire(v: u32) -> Option<Codec> {
        match v {
            1 => Some(Codec::Delta),
            2 => Some(Codec::Predicted),
            _ => None,
        }
    }
}

/// Reads the codec field out of a version-2 frame's first bytes, if
/// enough of the header is present and the field is a known codec.
pub fn frame_codec(frame: &[u8]) -> Option<Codec> {
    if frame.len() < FRAME_HEADER_BYTES_V2 {
        return None;
    }
    Codec::from_wire(u32::from_le_bytes(frame[12..16].try_into().unwrap()))
}

/// Errors produced while reading or writing a trace stream.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with [`MAGIC`].
    BadMagic,
    /// The stream's format version is newer than this reader.
    UnsupportedVersion(u32),
    /// Structural damage at `offset` bytes into the stream.
    Corrupt {
        /// Byte offset of the damaged frame.
        offset: u64,
        /// What was wrong.
        reason: &'static str,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic => write!(f, "not an igm trace stream (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace format version {v} (reader speaks 1..={FORMAT_VERSION})"
                )
            }
            TraceError::Corrupt { offset, reason } => {
                write!(f, "corrupt trace stream at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> TraceError {
        TraceError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Primitives.
// ---------------------------------------------------------------------------

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[inline]
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// FNV-1a-32 over `bytes` — cheap, dependency-free, and plenty to catch
/// the torn writes and bit rot the framing guards against (it is not a
/// cryptographic integrity check).
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Per-chunk delta-coder state (both streams reset at chunk boundaries).
#[derive(Debug, Default, Clone, Copy)]
struct CodecState {
    prev_pc: u32,
    prev_addr: u32,
}

/// Decode cursor over one chunk's payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Stream offset of `bytes[0]`, for error reporting.
    base: u64,
}

impl<'a> Cursor<'a> {
    fn corrupt<T>(&self, reason: &'static str) -> Result<T, TraceError> {
        Err(TraceError::Corrupt { offset: self.base + self.pos as u64, reason })
    }

    fn byte(&mut self) -> Result<u8, TraceError> {
        match self.bytes.get(self.pos) {
            Some(&b) => {
                self.pos += 1;
                Ok(b)
            }
            None => self.corrupt("payload ends inside a record"),
        }
    }

    /// One hit bitmap of `nbits` bits (LSB-first, zero-padded to a whole
    /// byte). Padding bits must be zero, so every payload has exactly one
    /// valid encoding.
    fn bitmap(&mut self, nbits: usize) -> Result<&'a [u8], TraceError> {
        let nbytes = nbits.div_ceil(8);
        if self.bytes.len() - self.pos < nbytes {
            return self.corrupt("payload ends inside a hit bitmap");
        }
        let s = &self.bytes[self.pos..self.pos + nbytes];
        self.pos += nbytes;
        if !nbits.is_multiple_of(8) && s[nbytes - 1] >> (nbits % 8) != 0 {
            return self.corrupt("hit bitmap has nonzero padding bits");
        }
        Ok(s)
    }

    fn varint(&mut self) -> Result<u64, TraceError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift == 63 && b > 1 {
                return self.corrupt("varint overflows 64 bits");
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// One register index byte, validated.
    fn reg(&mut self) -> Result<u8, TraceError> {
        let b = self.byte()?;
        if Reg::try_from_index(b as usize).is_none() {
            return self.corrupt("register index out of range");
        }
        Ok(b)
    }

    /// One packed register pair (`rs << 4 | rd`), both nibbles validated.
    fn reg_pair(&mut self) -> Result<u8, TraceError> {
        let b = self.byte()?;
        if Reg::try_from_index((b >> 4) as usize).is_none()
            || Reg::try_from_index((b & 0x0f) as usize).is_none()
        {
            return self.corrupt("register index out of range");
        }
        Ok(b)
    }

    /// One optional-register byte: a register index or [`codes::NO_REG`].
    fn opt_reg(&mut self) -> Result<u8, TraceError> {
        let b = self.byte()?;
        if b != codes::NO_REG && Reg::try_from_index(b as usize).is_none() {
            return self.corrupt("register index out of range");
        }
        Ok(b)
    }

    /// Decodes one pc off the pc delta stream (zigzag varint against the
    /// previous pc) — the one wire transform for the pc field, shared by
    /// codec-1 records and codec-2 escape slots.
    fn pc(&mut self, st: &mut CodecState) -> Result<u32, TraceError> {
        let delta = unzigzag(self.varint()?);
        match u32::try_from(st.prev_pc as i64 + delta) {
            Ok(pc) => {
                st.prev_pc = pc;
                Ok(pc)
            }
            Err(_) => self.corrupt("pc delta leaves the 32-bit address space"),
        }
    }

    /// Decodes one sized memory reference off the shared address stream,
    /// returning the absolute address and its dense size code — exactly
    /// one [`TraceBatch`] `addrs`/`sizes` slot.
    fn mem_parts(&mut self, st: &mut CodecState) -> Result<(u32, u8), TraceError> {
        let v = self.varint()?;
        let size_code = (v & 0x3) as u8;
        if MemSize::from_code(size_code).is_none() {
            return self.corrupt("memory access size code out of range");
        }
        let addr = self.resolve_addr(st, unzigzag(v >> 2))?;
        Ok((addr, size_code))
    }

    fn addr(&mut self, st: &mut CodecState) -> Result<u32, TraceError> {
        let delta = unzigzag(self.varint()?);
        self.resolve_addr(st, delta)
    }

    fn resolve_addr(&self, st: &mut CodecState, delta: i64) -> Result<u32, TraceError> {
        match u32::try_from(st.prev_addr as i64 + delta) {
            Ok(addr) => {
                st.prev_addr = addr;
                Ok(addr)
            }
            Err(_) => self.corrupt("address delta leaves the 32-bit address space"),
        }
    }

    fn u32_varint(&mut self) -> Result<u32, TraceError> {
        match u32::try_from(self.varint()?) {
            Ok(v) => Ok(v),
            Err(_) => self.corrupt("32-bit field encoded with more than 32 bits"),
        }
    }
}

// ---------------------------------------------------------------------------
// Per-field wire transforms (encode side). Each field has exactly one
// encoder here and one decoder on `Cursor`; codec 1 applies them
// per-record, codec 2 applies the same transforms to its escape slots.
// ---------------------------------------------------------------------------

/// Tag bit set when the entry carries a non-empty `addr_regs` set.
const TAG_ADDR_REGS: u8 = 0x80;

fn put_pc(out: &mut Vec<u8>, st: &mut CodecState, pc: u32) {
    put_varint(out, zigzag(pc as i64 - st.prev_pc as i64));
    st.prev_pc = pc;
}

fn put_mem_parts(out: &mut Vec<u8>, st: &mut CodecState, addr: u32, size_code: u8) {
    let delta = zigzag(addr as i64 - st.prev_addr as i64);
    put_varint(out, delta << 2 | size_code as u64);
    st.prev_addr = addr;
}

fn put_addr(out: &mut Vec<u8>, st: &mut CodecState, addr: u32) {
    put_varint(out, zigzag(addr as i64 - st.prev_addr as i64));
    st.prev_addr = addr;
}

// ---------------------------------------------------------------------------
// Record shape.
// ---------------------------------------------------------------------------

/// How many shared-address-stream slots and immediate values a record
/// with this `code`/`flags` owns, as `(sized_mems, plain_addrs, vals)` —
/// the single map from record shape to column slots, used by the codec-2
/// column walks on both sides.
pub(crate) fn stream_shape(code: u8, flags: u8) -> (u8, u8, u8) {
    match code {
        codes::IMM_TO_MEM
        | codes::MEM_SELF
        | codes::REG_TO_MEM
        | codes::DEST_MEM_OP_REG
        | codes::MEM_TO_REG
        | codes::DEST_REG_OP_MEM
        | codes::CTRL_RET
        | codes::ANN_PRINTF => (1, 0, 0),
        codes::MEM_TO_MEM => (2, 0, 0),
        codes::READ_ONLY | codes::CTRL_INDIRECT => (flags & 1, 0, 0),
        codes::OTHER => ((flags & 1) + ((flags >> 1) & 1), 0, 1),
        codes::ANN_MALLOC | codes::ANN_READ_INPUT => (0, 1, 1),
        codes::ANN_FREE | codes::ANN_LOCK | codes::ANN_UNLOCK => (0, 1, 0),
        codes::ANN_SYSCALL => ((flags >> 1) & 1, 0, 0),
        codes::ANN_THREAD_SWITCH | codes::ANN_THREAD_EXIT => (0, 0, 1),
        _ => (0, 0, 0),
    }
}

/// Validates a decoded `(code, regs, flags)` combination against the
/// record grammar — everything the codec-1 per-field decoders enforce
/// structurally, applied to a codec-2 static-column escape before it can
/// seed the predictor table and reach the batch columns.
fn validate_static(code: u8, regs: u8, flags: u8) -> Result<(), &'static str> {
    let reg_ok = |r: u8| Reg::try_from_index(r as usize).is_some();
    let flagless = |flags: u8| -> Result<(), &'static str> {
        if flags != 0 {
            return Err("flags byte set on a flagless record");
        }
        Ok(())
    };
    match code {
        codes::IMM_TO_REG | codes::REG_SELF => {
            if !reg_ok(regs) {
                return Err("register index out of range");
            }
            flagless(flags)
        }
        codes::REG_TO_REG | codes::DEST_REG_OP_REG => {
            if !reg_ok(regs >> 4) || !reg_ok(regs & 0x0f) {
                return Err("register index out of range");
            }
            flagless(flags)
        }
        codes::REG_TO_MEM | codes::DEST_MEM_OP_REG | codes::MEM_TO_REG | codes::DEST_REG_OP_MEM => {
            if !reg_ok(regs) {
                return Err("register index out of range");
            }
            flagless(flags)
        }
        codes::IMM_TO_MEM
        | codes::MEM_SELF
        | codes::MEM_TO_MEM
        | codes::CTRL_DIRECT
        | codes::CTRL_RET
        | codes::ANN_PRINTF
        | codes::ANN_MALLOC
        | codes::ANN_READ_INPUT
        | codes::ANN_FREE
        | codes::ANN_LOCK
        | codes::ANN_UNLOCK
        | codes::ANN_THREAD_SWITCH
        | codes::ANN_THREAD_EXIT => {
            if regs != 0 {
                return Err("register byte set on a registerless record");
            }
            flagless(flags)
        }
        codes::READ_ONLY => {
            if flags > 1 {
                return Err("read_only flags byte out of range");
            }
            Ok(())
        }
        codes::OTHER => {
            if flags > 3 {
                return Err("other flags byte out of range");
            }
            Ok(())
        }
        codes::CTRL_INDIRECT => {
            if flags > 1 {
                return Err("jump target kind out of range");
            }
            if flags == 1 {
                if regs != 0 {
                    return Err("register byte set on a memory-indirect jump");
                }
            } else if !reg_ok(regs) {
                return Err("register index out of range");
            }
            Ok(())
        }
        codes::CTRL_COND => {
            if regs != codes::NO_REG && !reg_ok(regs) {
                return Err("register index out of range");
            }
            flagless(flags)
        }
        codes::ANN_SYSCALL => {
            if flags > 3 {
                return Err("syscall flags byte out of range");
            }
            if flags & 1 != 0 {
                if !reg_ok(regs) {
                    return Err("register index out of range");
                }
            } else if regs != codes::NO_REG {
                return Err("syscall register byte without its flag");
            }
            Ok(())
        }
        _ => Err("unknown record tag"),
    }
}

#[inline]
fn pack_static(code: u8, addr_regs: u8, regs: u8, flags: u8) -> u32 {
    code as u32 | (addr_regs as u32) << 8 | (regs as u32) << 16 | (flags as u32) << 24
}

#[inline]
fn unpack_static(v: u32) -> (u8, u8, u8, u8) {
    (v as u8, (v >> 8) as u8, (v >> 16) as u8, (v >> 24) as u8)
}

/// The wire layout of a static-column escape: the packed word's fields
/// re-ordered so the usually-zero ones sit highest — `code | regs<<5 |
/// flags<<13 | addr_regs<<15`, 23 bits — and the varint stays at one or
/// two bytes for ordinary records.
#[inline]
fn static_escape(packed: u32) -> u32 {
    let (code, addr_regs, regs, flags) = unpack_static(packed);
    code as u32 | (regs as u32) << 5 | (flags as u32) << 13 | (addr_regs as u32) << 15
}

/// Inverts [`static_escape`]; `None` for non-canonical words (set bits
/// past the 23 the layout defines).
#[inline]
fn static_unescape(v: u32) -> Option<u32> {
    if v >> 23 != 0 {
        return None;
    }
    Some(pack_static(
        (v & 0x1f) as u8,
        (v >> 15 & 0xff) as u8,
        (v >> 5 & 0xff) as u8,
        (v >> 13 & 0x3) as u8,
    ))
}

// ---------------------------------------------------------------------------
// Value predictors (codec 2).
// ---------------------------------------------------------------------------

/// log2 of every predictor table's slot count.
const PRED_LOG: u32 = 12;
const PRED_SLOTS: usize = 1 << PRED_LOG;

#[inline]
fn pred_slot(key: u32) -> usize {
    (key.wrapping_mul(0x9E37_79B9) >> (32 - PRED_LOG)) as usize
}

#[derive(Clone, Copy, Default)]
struct ValueSlot {
    gen: u32,
    val: u32,
}

#[derive(Clone, Copy, Default)]
struct StrideSlot {
    gen: u32,
    last: u32,
    stride: u32,
    size: u8,
}

/// The codec-2 predictor tables — a next-pc table chained on the
/// previous pc, last-value tables keyed by pc for the static column and
/// immediates, and per-`(pc, operand-slot)` stride tables for addresses.
///
/// Encoder and decoder each run an identical copy, updated on every slot
/// (hit or miss), so a one-bit "hit" on the wire pins down the field
/// exactly. Tables reset at every frame boundary (cheaply, via a
/// generation tag per slot) to keep frames independently decodable; the
/// struct itself is reusable across frames and streams, and holding one
/// per writer/reader amortizes its ~160 KiB of tables. Hash collisions
/// are harmless — both sides collide identically, costing only hits.
pub struct Predictors {
    /// Frame generation; a slot is live iff its tag matches.
    gen: u32,
    next_pc: Box<[ValueSlot]>,
    statics: Box<[ValueSlot]>,
    addrs: Box<[StrideSlot]>,
    vals: Box<[ValueSlot]>,
    /// Decode scratch (reused across frames so decode stays
    /// allocation-free at steady state).
    scratch_pcs: Vec<u32>,
    scratch_meta: Vec<(u8, u8)>,
    /// Encode scratch for the losing address-escape candidate (the
    /// address column is coded against both delta bases and the smaller
    /// stream wins).
    scratch_esc: Vec<u8>,
}

impl fmt::Debug for Predictors {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Predictors").field("gen", &self.gen).finish_non_exhaustive()
    }
}

impl Default for Predictors {
    fn default() -> Predictors {
        Predictors::new()
    }
}

impl Predictors {
    /// Fresh (all-invalid) predictor tables.
    pub fn new() -> Predictors {
        Predictors {
            gen: 0,
            next_pc: vec![ValueSlot::default(); PRED_SLOTS].into_boxed_slice(),
            statics: vec![ValueSlot::default(); PRED_SLOTS].into_boxed_slice(),
            addrs: vec![StrideSlot::default(); PRED_SLOTS].into_boxed_slice(),
            vals: vec![ValueSlot::default(); PRED_SLOTS].into_boxed_slice(),
            scratch_pcs: Vec::new(),
            scratch_meta: Vec::new(),
            scratch_esc: Vec::new(),
        }
    }

    /// Invalidates every table for a new frame. Bumping the generation
    /// tag is O(1); slots written under older generations read as dead.
    fn begin_frame(&mut self) {
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // Tag wrap: stale slots from generation-0 frames 2^32 ago
            // would read as live. Clear everything and restart.
            self.next_pc.fill(ValueSlot::default());
            self.statics.fill(ValueSlot::default());
            self.addrs.fill(StrideSlot::default());
            self.vals.fill(ValueSlot::default());
            self.gen = 1;
        }
    }

    #[inline]
    fn pc_predict(&self, prev_pc: u32) -> Option<u32> {
        let s = &self.next_pc[pred_slot(prev_pc)];
        (s.gen == self.gen).then_some(s.val)
    }

    #[inline]
    fn pc_update(&mut self, prev_pc: u32, pc: u32) {
        self.next_pc[pred_slot(prev_pc)] = ValueSlot { gen: self.gen, val: pc };
    }

    #[inline]
    fn static_predict(&self, pc: u32) -> Option<u32> {
        let s = &self.statics[pred_slot(pc)];
        (s.gen == self.gen).then_some(s.val)
    }

    #[inline]
    fn static_update(&mut self, pc: u32, packed: u32) {
        self.statics[pred_slot(pc)] = ValueSlot { gen: self.gen, val: packed };
    }

    #[inline]
    fn addr_key(pc: u32, slot: u8) -> u32 {
        pc ^ (slot as u32).wrapping_mul(0x85EB_CA6B)
    }

    #[inline]
    fn addr_predict(&self, pc: u32, slot: u8) -> Option<(u32, u8)> {
        let s = &self.addrs[pred_slot(Self::addr_key(pc, slot))];
        (s.gen == self.gen).then_some((s.last.wrapping_add(s.stride), s.size))
    }

    #[inline]
    fn addr_update(&mut self, pc: u32, slot: u8, addr: u32, size: u8) {
        let s = &mut self.addrs[pred_slot(Self::addr_key(pc, slot))];
        let stride = if s.gen == self.gen { addr.wrapping_sub(s.last) } else { 0 };
        *s = StrideSlot { gen: self.gen, last: addr, stride, size };
    }

    #[inline]
    fn val_predict(&self, pc: u32) -> Option<u32> {
        let s = &self.vals[pred_slot(pc)];
        (s.gen == self.gen).then_some(s.val)
    }

    #[inline]
    fn val_update(&mut self, pc: u32, val: u32) {
        self.vals[pred_slot(pc)] = ValueSlot { gen: self.gen, val };
    }
}

// ---------------------------------------------------------------------------
// Codec 1 record encode/decode.
// ---------------------------------------------------------------------------

/// Encodes one chunk's worth of [`TraceBatch`] columns into `out`. The
/// record tags are the batch's `codes` column (plus the addr-regs bit),
/// the pc and address delta streams are the `pcs` and `addrs` columns
/// re-delta'd, and payload bytes come straight off the `regs`/`flags`
/// columns — the wire format and the columnar layout correspond
/// stream-for-stream, so this is a set of cursor walks, not a per-record
/// re-match of the trace vocabulary.
fn encode_batch(out: &mut Vec<u8>, batch: &TraceBatch) {
    let mut st = CodecState::default();
    let pcs = batch.pcs();
    let rcodes = batch.codes();
    let aregs = batch.addr_regs_bits();
    let regs = batch.reg_bytes();
    let flags = batch.flag_bytes();
    let addrs = batch.addrs();
    let sizes = batch.size_codes();
    let vals = batch.vals();
    let (mut ai, mut vi) = (0usize, 0usize);
    macro_rules! mem {
        () => {{
            put_mem_parts(out, &mut st, addrs[ai], sizes[ai]);
            ai += 1;
        }};
    }
    macro_rules! plain_addr {
        () => {{
            put_addr(out, &mut st, addrs[ai]);
            ai += 1;
        }};
    }
    macro_rules! val {
        () => {{
            let v = vals[vi];
            vi += 1;
            v
        }};
    }
    for i in 0..batch.len() {
        let code = rcodes[i];
        let areg = aregs[i];
        out.push(code | if areg != 0 { TAG_ADDR_REGS } else { 0 });
        put_pc(out, &mut st, pcs[i]);
        if areg != 0 {
            out.push(areg);
        }
        match code {
            codes::IMM_TO_REG | codes::REG_SELF => out.push(regs[i] & 0x0f),
            codes::IMM_TO_MEM | codes::MEM_SELF => mem!(),
            codes::REG_TO_REG | codes::DEST_REG_OP_REG => out.push(regs[i]),
            codes::REG_TO_MEM | codes::DEST_MEM_OP_REG => {
                out.push(regs[i] & 0x0f);
                mem!();
            }
            codes::MEM_TO_REG | codes::DEST_REG_OP_MEM => {
                mem!();
                out.push(regs[i] & 0x0f);
            }
            codes::MEM_TO_MEM => {
                mem!();
                mem!();
            }
            codes::READ_ONLY => {
                out.push(flags[i]);
                out.push(regs[i]);
                if flags[i] & 1 != 0 {
                    mem!();
                }
            }
            codes::OTHER => {
                out.push(flags[i]);
                out.push(regs[i]);
                out.push(val!() as u8);
                if flags[i] & 1 != 0 {
                    mem!();
                }
                if flags[i] & 2 != 0 {
                    mem!();
                }
            }
            codes::CTRL_DIRECT => {}
            codes::CTRL_INDIRECT => {
                if flags[i] & 1 != 0 {
                    out.push(1);
                    mem!();
                } else {
                    out.push(0);
                    out.push(regs[i] & 0x0f);
                }
            }
            codes::CTRL_COND => out.push(regs[i]),
            codes::CTRL_RET | codes::ANN_PRINTF => mem!(),
            codes::ANN_MALLOC | codes::ANN_READ_INPUT => {
                plain_addr!();
                put_varint(out, val!() as u64);
            }
            codes::ANN_FREE | codes::ANN_LOCK | codes::ANN_UNLOCK => plain_addr!(),
            codes::ANN_SYSCALL => {
                out.push(flags[i]);
                if flags[i] & 1 != 0 {
                    out.push(regs[i] & 0x0f);
                }
                if flags[i] & 2 != 0 {
                    mem!();
                }
            }
            codes::ANN_THREAD_SWITCH | codes::ANN_THREAD_EXIT => put_varint(out, val!() as u64),
            c => unreachable!("invalid field code {c} in TraceBatch"),
        }
    }
}

/// Decodes one record from the chunk payload **directly into** `out`'s
/// columns: tag byte → `codes`, pc delta → `pcs`, payload bytes →
/// `regs`/`flags`, the shared address-delta stream → `addrs`/`sizes`,
/// immediates → `vals`. No intermediate `TraceEntry` is materialized; the
/// wire streams and the columns line up one-to-one.
fn decode_record(
    cur: &mut Cursor<'_>,
    st: &mut CodecState,
    out: &mut TraceBatch,
) -> Result<(), TraceError> {
    let tag = cur.byte()?;
    let pc = cur.pc(st)?;
    let addr_regs = if tag & TAG_ADDR_REGS != 0 {
        let bits = cur.byte()?;
        if bits == 0 {
            return cur.corrupt("addr_regs flag set but bitmap empty");
        }
        bits
    } else {
        0
    };
    let code = tag & !TAG_ADDR_REGS;
    let mut regs = 0u8;
    let mut flags = 0u8;
    macro_rules! mem {
        () => {{
            let (addr, size_code) = cur.mem_parts(st)?;
            out.push_raw_addr(addr, size_code);
        }};
    }
    macro_rules! plain_addr {
        () => {{
            let addr = cur.addr(st)?;
            out.push_raw_addr(addr, 2);
        }};
    }
    match code {
        codes::IMM_TO_REG | codes::REG_SELF => regs = cur.reg()?,
        codes::IMM_TO_MEM | codes::MEM_SELF => mem!(),
        codes::REG_TO_REG | codes::DEST_REG_OP_REG => regs = cur.reg_pair()?,
        codes::REG_TO_MEM | codes::DEST_MEM_OP_REG => {
            regs = cur.reg()?;
            mem!();
        }
        codes::MEM_TO_REG | codes::DEST_REG_OP_MEM => {
            mem!();
            regs = cur.reg()?;
        }
        codes::MEM_TO_MEM => {
            mem!();
            mem!();
        }
        codes::READ_ONLY => {
            flags = cur.byte()?;
            if flags > 1 {
                return cur.corrupt("read_only flags byte out of range");
            }
            regs = cur.byte()?;
            if flags & 1 != 0 {
                mem!();
            }
        }
        codes::OTHER => {
            flags = cur.byte()?;
            if flags > 3 {
                return cur.corrupt("other flags byte out of range");
            }
            regs = cur.byte()?;
            out.push_raw_val(cur.byte()? as u32);
            if flags & 1 != 0 {
                mem!();
            }
            if flags & 2 != 0 {
                mem!();
            }
        }
        codes::CTRL_DIRECT => {}
        codes::CTRL_INDIRECT => match cur.byte()? {
            0 => regs = cur.reg()?,
            1 => {
                flags = 1;
                mem!();
            }
            _ => return cur.corrupt("jump target kind out of range"),
        },
        codes::CTRL_COND => regs = cur.opt_reg()?,
        codes::CTRL_RET | codes::ANN_PRINTF => mem!(),
        codes::ANN_MALLOC | codes::ANN_READ_INPUT => {
            plain_addr!();
            out.push_raw_val(cur.u32_varint()?);
        }
        codes::ANN_FREE | codes::ANN_LOCK | codes::ANN_UNLOCK => plain_addr!(),
        codes::ANN_SYSCALL => {
            flags = cur.byte()?;
            if flags > 3 {
                return cur.corrupt("syscall flags byte out of range");
            }
            regs = if flags & 1 != 0 { cur.reg()? } else { codes::NO_REG };
            if flags & 2 != 0 {
                mem!();
            }
        }
        codes::ANN_THREAD_SWITCH | codes::ANN_THREAD_EXIT => out.push_raw_val(cur.u32_varint()?),
        _ => return cur.corrupt("unknown record tag"),
    }
    out.push_raw_record(pc, code, addr_regs, regs, flags);
    Ok(())
}

// ---------------------------------------------------------------------------
// Codec 2 column encode/decode.
// ---------------------------------------------------------------------------

#[inline]
fn bit(bits: &[u8], i: usize) -> bool {
    bits[i >> 3] >> (i & 7) & 1 != 0
}

/// Address-escape delta bases, named by the codec-2 per-frame mode byte
/// (present only when the frame has address slots): escapes delta
/// against the running previous address, or against the missed slot's
/// own prediction. The encoder codes both and ships the smaller.
const ADDR_MODE_GLOBAL: u8 = 0;
const ADDR_MODE_PREDICTED: u8 = 1;

/// Encodes one chunk's worth of [`TraceBatch`] columns through the value
/// predictors into `out` — four column passes, each writing its hit
/// bitmap in place and appending escape bytes behind it. Escapes use the
/// same per-field transforms as codec 1 (and keep the delta-coder state
/// advancing on hits), so each field's wire format is defined in exactly
/// one place.
fn encode_batch_v2(out: &mut Vec<u8>, batch: &TraceBatch, p: &mut Predictors) {
    p.begin_frame();
    let mut st = CodecState::default();
    let n = batch.len();
    let pcs = batch.pcs();
    let rcodes = batch.codes();
    let aregs = batch.addr_regs_bits();
    let regs = batch.reg_bytes();
    let flags = batch.flag_bytes();
    let addrs = batch.addrs();
    let sizes = batch.size_codes();
    let vals = batch.vals();

    // Pc column: next-pc chained prediction, codec-1 delta escapes.
    let bits = out.len();
    out.resize(bits + n.div_ceil(8), 0);
    for (i, &pc) in pcs.iter().enumerate() {
        let prev = st.prev_pc;
        if p.pc_predict(prev) == Some(pc) {
            out[bits + (i >> 3)] |= 1 << (i & 7);
            st.prev_pc = pc;
        } else {
            put_pc(out, &mut st, pc);
        }
        p.pc_update(prev, pc);
    }

    // Static column: (code, addr_regs, regs, flags) last-value keyed by
    // pc; escapes are the field-reordered word as a varint.
    let bits = out.len();
    out.resize(bits + n.div_ceil(8), 0);
    for (i, &pc) in pcs.iter().enumerate() {
        let packed = pack_static(rcodes[i], aregs[i], regs[i], flags[i]);
        if p.static_predict(pc) == Some(packed) {
            out[bits + (i >> 3)] |= 1 << (i & 7);
        } else {
            put_varint(out, static_escape(packed) as u64);
        }
        p.static_update(pc, packed);
    }

    // Address column: per-(pc, operand-slot) stride prediction over the
    // shared address stream; escapes are the codec-1 address varints.
    // Each frame codes its escapes against both delta bases — the running
    // previous address, and the missing slot's own prediction — and ships
    // the smaller stream, named by a mode byte ahead of the bitmap:
    // regular strided code favors the prediction base (a near miss in a
    // tracked region costs a byte or two, not five), pointer-chasing
    // favors the global one.
    let m = addrs.len();
    let mode_at = out.len();
    if m != 0 {
        out.push(ADDR_MODE_GLOBAL);
    }
    let bits = out.len();
    out.resize(bits + m.div_ceil(8), 0);
    let esc_at = out.len();
    let mut pred_esc = std::mem::take(&mut p.scratch_esc);
    pred_esc.clear();
    let mut stp = CodecState::default();
    let mut ai = 0usize;
    for (i, &pc) in pcs.iter().enumerate() {
        let (mems, plains, _) = stream_shape(rcodes[i], flags[i]);
        for j in 0..mems {
            let (addr, size) = (addrs[ai], sizes[ai]);
            let pred = p.addr_predict(pc, j);
            if pred == Some((addr, size)) {
                out[bits + (ai >> 3)] |= 1 << (ai & 7);
                st.prev_addr = addr;
                stp.prev_addr = addr;
            } else {
                put_mem_parts(out, &mut st, addr, size);
                if let Some((pa, _)) = pred {
                    stp.prev_addr = pa;
                }
                put_mem_parts(&mut pred_esc, &mut stp, addr, size);
            }
            p.addr_update(pc, j, addr, size);
            ai += 1;
        }
        if plains != 0 {
            let addr = addrs[ai];
            let pred = p.addr_predict(pc, 0);
            if pred == Some((addr, 2)) {
                out[bits + (ai >> 3)] |= 1 << (ai & 7);
                st.prev_addr = addr;
                stp.prev_addr = addr;
            } else {
                put_addr(out, &mut st, addr);
                if let Some((pa, _)) = pred {
                    stp.prev_addr = pa;
                }
                put_addr(&mut pred_esc, &mut stp, addr);
            }
            p.addr_update(pc, 0, addr, 2);
            ai += 1;
        }
    }
    debug_assert_eq!(ai, m, "batch address column disagrees with the record shapes");
    if m != 0 && pred_esc.len() < out.len() - esc_at {
        out[mode_at] = ADDR_MODE_PREDICTED;
        out.truncate(esc_at);
        out.extend_from_slice(&pred_esc);
    }
    p.scratch_esc = pred_esc;

    // Value column: last-value keyed by pc, raw varint escapes.
    let v = vals.len();
    let bits = out.len();
    out.resize(bits + v.div_ceil(8), 0);
    let mut vi = 0usize;
    for (i, &pc) in pcs.iter().enumerate() {
        let (_, _, nvals) = stream_shape(rcodes[i], flags[i]);
        if nvals != 0 {
            let val = vals[vi];
            if p.val_predict(pc) == Some(val) {
                out[bits + (vi >> 3)] |= 1 << (vi & 7);
            } else {
                put_varint(out, val as u64);
            }
            p.val_update(pc, val);
            vi += 1;
        }
    }
    debug_assert_eq!(vi, v, "batch value column disagrees with the record shapes");
}

/// Decodes one codec-2 frame payload into `out`'s columns — four column
/// phases mirroring [`encode_batch_v2`]. Every hit bit must land on a
/// predictor slot the frame itself already seeded (frames share no state),
/// and only grammar-validated static escapes can seed the tables, so the
/// decoded columns satisfy the same structural invariants codec 1
/// enforces per record.
fn decode_columns_v2(
    records: u32,
    payload: &[u8],
    payload_at: u64,
    out: &mut TraceBatch,
    p: &mut Predictors,
    pcs: &mut Vec<u32>,
    meta: &mut Vec<(u8, u8)>,
) -> Result<(), TraceError> {
    p.begin_frame();
    let n = records as usize;
    let mut cur = Cursor { bytes: payload, pos: 0, base: payload_at };
    let mut st = CodecState::default();

    // Pc column.
    let bits = cur.bitmap(n)?;
    for i in 0..n {
        let prev = st.prev_pc;
        let pc = if bit(bits, i) {
            match p.pc_predict(prev) {
                Some(pc) => {
                    st.prev_pc = pc;
                    pc
                }
                None => return cur.corrupt("pc hit references an unseeded predictor slot"),
            }
        } else {
            cur.pc(&mut st)?
        };
        p.pc_update(prev, pc);
        pcs.push(pc);
    }

    // Static column; the record shapes it yields size the remaining two.
    let bits = cur.bitmap(n)?;
    let mut mem_slots = 0usize;
    let mut val_slots = 0usize;
    for (i, &pc) in pcs.iter().enumerate() {
        let packed = if bit(bits, i) {
            match p.static_predict(pc) {
                Some(v) => v,
                None => return cur.corrupt("static hit references an unseeded predictor slot"),
            }
        } else {
            let v = cur.u32_varint()?;
            let Some(raw) = static_unescape(v) else {
                return cur.corrupt("static escape has nonzero padding bits");
            };
            let (code, _, regs, flags) = unpack_static(raw);
            if let Err(reason) = validate_static(code, regs, flags) {
                return cur.corrupt(reason);
            }
            raw
        };
        p.static_update(pc, packed);
        let (code, addr_regs, regs, flags) = unpack_static(packed);
        let (mems, plains, vals) = stream_shape(code, flags);
        mem_slots += (mems + plains) as usize;
        val_slots += vals as usize;
        meta.push((code, flags));
        out.push_raw_record(pc, code, addr_regs, regs, flags);
    }

    // Address column.
    let pred_base = if mem_slots != 0 {
        match cur.byte()? {
            ADDR_MODE_GLOBAL => false,
            ADDR_MODE_PREDICTED => true,
            _ => return cur.corrupt("unknown address-escape delta base"),
        }
    } else {
        false
    };
    let bits = cur.bitmap(mem_slots)?;
    let mut ai = 0usize;
    for (&pc, &(code, flags)) in pcs.iter().zip(meta.iter()) {
        let (mems, plains, _) = stream_shape(code, flags);
        for j in 0..mems {
            let pred = p.addr_predict(pc, j);
            let (addr, size) = if bit(bits, ai) {
                match pred {
                    Some((a, s)) => {
                        st.prev_addr = a;
                        (a, s)
                    }
                    None => {
                        return cur.corrupt("address hit references an unseeded predictor slot")
                    }
                }
            } else {
                if let Some((pa, _)) = pred.filter(|_| pred_base) {
                    st.prev_addr = pa;
                }
                cur.mem_parts(&mut st)?
            };
            p.addr_update(pc, j, addr, size);
            out.push_raw_addr(addr, size);
            ai += 1;
        }
        if plains != 0 {
            let pred = p.addr_predict(pc, 0);
            let addr = if bit(bits, ai) {
                match pred {
                    Some((a, 2)) => {
                        st.prev_addr = a;
                        a
                    }
                    Some(_) => return cur.corrupt("plain-address hit on a sized predictor slot"),
                    None => {
                        return cur.corrupt("address hit references an unseeded predictor slot")
                    }
                }
            } else {
                if let Some((pa, _)) = pred.filter(|_| pred_base) {
                    st.prev_addr = pa;
                }
                cur.addr(&mut st)?
            };
            p.addr_update(pc, 0, addr, 2);
            out.push_raw_addr(addr, 2);
            ai += 1;
        }
    }

    // Value column.
    let bits = cur.bitmap(val_slots)?;
    let mut vi = 0usize;
    for (&pc, &(code, flags)) in pcs.iter().zip(meta.iter()) {
        let (_, _, nvals) = stream_shape(code, flags);
        if nvals != 0 {
            let val = if bit(bits, vi) {
                match p.val_predict(pc) {
                    Some(v) => v,
                    None => return cur.corrupt("value hit references an unseeded predictor slot"),
                }
            } else {
                cur.u32_varint()?
            };
            if code == codes::OTHER && val > 0xff {
                return cur.corrupt("other-record writes mask exceeds one byte");
            }
            p.val_update(pc, val);
            out.push_raw_val(val);
            vi += 1;
        }
    }

    if cur.pos != payload.len() {
        return Err(TraceError::Corrupt {
            offset: payload_at + cur.pos as u64,
            reason: "frame payload has trailing bytes",
        });
    }
    Ok(())
}

/// Verifies a codec-2 frame payload's checksum and decodes its columns
/// into `out` (appended), borrowing `p`'s scratch buffers for the
/// intermediate pc/shape columns.
fn decode_frame_payload_v2(
    records: u32,
    sum: u32,
    payload: &[u8],
    payload_at: u64,
    out: &mut TraceBatch,
    p: &mut Predictors,
) -> Result<(), TraceError> {
    if checksum(payload) != sum {
        return Err(TraceError::Corrupt { offset: payload_at, reason: "frame checksum mismatch" });
    }
    let mut pcs = std::mem::take(&mut p.scratch_pcs);
    let mut meta = std::mem::take(&mut p.scratch_meta);
    pcs.clear();
    meta.clear();
    let r = decode_columns_v2(records, payload, payload_at, out, p, &mut pcs, &mut meta);
    p.scratch_pcs = pcs;
    p.scratch_meta = meta;
    r
}

// ---------------------------------------------------------------------------
// Single-frame encode/decode (shared by the writer/reader and `igm-net`,
// whose wire protocol carries these frames verbatim).
// ---------------------------------------------------------------------------

/// Appends one complete version-2 frame — header plus encoded payload —
/// for `batch` to `out`, through caller-owned predictor state (reuse one
/// [`Predictors`] per stream to amortize its tables). An empty batch
/// appends nothing (the format has no empty frames). This is the single
/// canonical frame encoder: [`TraceWriter::write_chunk_batch`] writes its
/// output to the stream, and `igm-net` ships it verbatim inside chunk
/// messages.
pub fn encode_frame_with(p: &mut Predictors, codec: Codec, out: &mut Vec<u8>, batch: &TraceBatch) {
    if batch.is_empty() {
        return;
    }
    let start = out.len();
    out.resize(start + FRAME_HEADER_BYTES_V2, 0);
    match codec {
        Codec::Delta => encode_batch(out, batch),
        Codec::Predicted => encode_batch_v2(out, batch, p),
    }
    let records = u32::try_from(batch.len()).expect("batch fits a u32 record count");
    let payload = start + FRAME_HEADER_BYTES_V2;
    let len = u32::try_from(out.len() - payload).expect("frame payload fits a u32 length");
    let sum = checksum(&out[payload..]);
    out[start..start + 4].copy_from_slice(&records.to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&len.to_le_bytes());
    out[start + 8..start + 12].copy_from_slice(&sum.to_le_bytes());
    out[start + 12..start + 16].copy_from_slice(&codec.wire().to_le_bytes());
}

/// Appends one predicted (codec 2) version-2 frame for `batch` to `out`
/// with throwaway predictor state — a convenience over
/// [`encode_frame_with`] for one-shot callers.
pub fn encode_frame(out: &mut Vec<u8>, batch: &TraceBatch) {
    encode_frame_with(&mut Predictors::new(), Codec::Predicted, out, batch);
}

/// Appends one complete version-1 frame (12-byte header, delta payload)
/// for `batch` to `out` — the legacy encoder kept for writing format-1
/// streams.
pub fn encode_frame_v1(out: &mut Vec<u8>, batch: &TraceBatch) {
    if batch.is_empty() {
        return;
    }
    let start = out.len();
    out.resize(start + FRAME_HEADER_BYTES, 0);
    encode_batch(out, batch);
    let records = u32::try_from(batch.len()).expect("batch fits a u32 record count");
    let payload = start + FRAME_HEADER_BYTES;
    let len = u32::try_from(out.len() - payload).expect("frame payload fits a u32 length");
    let sum = checksum(&out[payload..]);
    out[start..start + 4].copy_from_slice(&records.to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&len.to_le_bytes());
    out[start + 8..start + 12].copy_from_slice(&sum.to_le_bytes());
}

/// Validates one frame header's fields (shared by every decode path).
/// `offset` is the header's position in the stream, for error reporting.
pub(crate) fn validate_frame_header(
    records: u32,
    len: u32,
    offset: u64,
    codec: Codec,
) -> Result<(), TraceError> {
    if records == 0 {
        return Err(TraceError::Corrupt { offset, reason: "zero-record frame" });
    }
    if len == 0 {
        return Err(TraceError::Corrupt { offset, reason: "zero-length frame payload" });
    }
    if len > MAX_PAYLOAD_BYTES {
        return Err(TraceError::Corrupt {
            offset,
            reason: "frame payload length exceeds the format bound",
        });
    }
    // A record count inconsistent with the payload length is corruption:
    // every delta record spends at least two bytes (tag + pc varint), and
    // every predicted record spends at least its pc and static hit bits.
    // The checksum covers only the payload, not the header — this check
    // must precede any length-driven allocation, or a flipped count field
    // could drive a multi-gigabyte allocation instead of a typed error.
    let min_len = match codec {
        Codec::Delta => records as u64 * 2,
        Codec::Predicted => (records as u64).div_ceil(8) * 2,
    };
    if min_len > len as u64 {
        return Err(TraceError::Corrupt {
            offset,
            reason: "record count inconsistent with frame payload length",
        });
    }
    Ok(())
}

/// Verifies a codec-1 frame payload's checksum and decodes its records
/// into `out`'s columns (appended; callers clear first if they want a
/// fresh batch). `payload_at` is the payload's stream offset for error
/// reporting.
fn decode_frame_payload(
    records: u32,
    sum: u32,
    payload: &[u8],
    payload_at: u64,
    out: &mut TraceBatch,
) -> Result<(), TraceError> {
    if checksum(payload) != sum {
        return Err(TraceError::Corrupt { offset: payload_at, reason: "frame checksum mismatch" });
    }
    let mut cur = Cursor { bytes: payload, pos: 0, base: payload_at };
    let mut st = CodecState::default();
    for _ in 0..records {
        decode_record(&mut cur, &mut st, out)?;
    }
    if cur.pos != payload.len() {
        return Err(TraceError::Corrupt {
            offset: payload_at + cur.pos as u64,
            reason: "frame payload has trailing bytes",
        });
    }
    Ok(())
}

/// Decodes exactly one complete version-2 frame from the start of `bytes`
/// into `out`'s columns (cleared first), returning the bytes consumed.
/// The frame must be whole and `bytes` must hold nothing else: truncation
/// and trailing bytes are both [`TraceError::Corrupt`]. `stream_offset`
/// is where `bytes[0]` sits in the surrounding stream, for error
/// reporting — the inverse of [`encode_frame_with`], used by `igm-net` to
/// decode the frame carried in one chunk message.
pub fn decode_frame_with(
    p: &mut Predictors,
    bytes: &[u8],
    stream_offset: u64,
    out: &mut TraceBatch,
) -> Result<usize, TraceError> {
    out.clear();
    if bytes.len() < FRAME_HEADER_BYTES_V2 {
        return Err(TraceError::Corrupt {
            offset: stream_offset + bytes.len() as u64,
            reason: "stream ends inside a frame header",
        });
    }
    let records = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    let len = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    let sum = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    let codec = match Codec::from_wire(u32::from_le_bytes(bytes[12..16].try_into().unwrap())) {
        Some(c) => c,
        None => {
            return Err(TraceError::Corrupt {
                offset: stream_offset,
                reason: "unknown codec id in frame header",
            })
        }
    };
    validate_frame_header(records, len, stream_offset, codec)?;
    let payload_at = stream_offset + FRAME_HEADER_BYTES_V2 as u64;
    let total = FRAME_HEADER_BYTES_V2 + len as usize;
    if bytes.len() < total {
        return Err(TraceError::Corrupt {
            offset: stream_offset + bytes.len() as u64,
            reason: "stream ends inside a frame payload",
        });
    }
    if bytes.len() > total {
        return Err(TraceError::Corrupt {
            offset: stream_offset + total as u64,
            reason: "frame payload has trailing bytes",
        });
    }
    let payload = &bytes[FRAME_HEADER_BYTES_V2..total];
    match codec {
        Codec::Delta => decode_frame_payload(records, sum, payload, payload_at, out)?,
        Codec::Predicted => decode_frame_payload_v2(records, sum, payload, payload_at, out, p)?,
    }
    Ok(total)
}

/// Decodes one version-2 frame with throwaway predictor state — a
/// convenience over [`decode_frame_with`] for one-shot callers.
pub fn decode_frame(
    bytes: &[u8],
    stream_offset: u64,
    out: &mut TraceBatch,
) -> Result<usize, TraceError> {
    decode_frame_with(&mut Predictors::new(), bytes, stream_offset, out)
}

/// Decodes exactly one complete version-1 frame (12-byte header, delta
/// payload) from the start of `bytes` — the legacy twin of
/// [`decode_frame`].
pub fn decode_frame_v1(
    bytes: &[u8],
    stream_offset: u64,
    out: &mut TraceBatch,
) -> Result<usize, TraceError> {
    out.clear();
    if bytes.len() < FRAME_HEADER_BYTES {
        return Err(TraceError::Corrupt {
            offset: stream_offset + bytes.len() as u64,
            reason: "stream ends inside a frame header",
        });
    }
    let records = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    let len = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    let sum = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    validate_frame_header(records, len, stream_offset, Codec::Delta)?;
    let payload_at = stream_offset + FRAME_HEADER_BYTES as u64;
    let total = FRAME_HEADER_BYTES + len as usize;
    if bytes.len() < total {
        return Err(TraceError::Corrupt {
            offset: stream_offset + bytes.len() as u64,
            reason: "stream ends inside a frame payload",
        });
    }
    if bytes.len() > total {
        return Err(TraceError::Corrupt {
            offset: stream_offset + total as u64,
            reason: "frame payload has trailing bytes",
        });
    }
    decode_frame_payload(records, sum, &bytes[FRAME_HEADER_BYTES..total], payload_at, out)?;
    Ok(total)
}

// ---------------------------------------------------------------------------
// Codec metrics.
// ---------------------------------------------------------------------------

/// In-memory bytes per record — the denominator the wire format is
/// measured against.
const RAW_RECORD_BYTES: u64 = std::mem::size_of::<TraceEntry>() as u64;

/// Codec instrumentation handles: raw-vs-wire byte counters (their ratio
/// is the live compression factor) and encode/decode latency histograms.
/// Detached by default; [`CodecMetrics::register`] binds them to a shared
/// [`MetricsRegistry`] so they scrape from `/metrics`.
#[derive(Debug, Clone)]
pub struct CodecMetrics {
    raw_bytes: Counter,
    wire_bytes: Counter,
    encode_nanos: Histogram,
    decode_nanos: Histogram,
}

impl CodecMetrics {
    /// Handles bound to nothing: counters count into a private cell and
    /// the histograms are disabled (no clock reads on the hot path).
    pub fn detached() -> CodecMetrics {
        CodecMetrics {
            raw_bytes: Counter::detached(),
            wire_bytes: Counter::detached(),
            encode_nanos: Histogram::disabled(),
            decode_nanos: Histogram::disabled(),
        }
    }

    /// Handles registered on `registry` under the `igm_codec_*` names.
    /// Registration is idempotent: every clone of a registry hands back
    /// handles over the same underlying series.
    pub fn register(registry: &MetricsRegistry) -> CodecMetrics {
        CodecMetrics {
            raw_bytes: registry.counter(
                "igm_codec_raw_bytes_total",
                "In-memory record bytes through the trace codec (28 B/record), both directions",
            ),
            wire_bytes: registry.counter(
                "igm_codec_wire_bytes_total",
                "Encoded frame bytes through the trace codec, both directions",
            ),
            encode_nanos: registry
                .histogram("igm_codec_encode_nanos", "Frame encode latency (nanoseconds)"),
            decode_nanos: registry
                .histogram("igm_codec_decode_nanos", "Frame decode latency (nanoseconds)"),
        }
    }

    /// Starts an encode timing (no clock read when the histogram is
    /// disabled).
    pub fn start_encode(&self) -> Option<Instant> {
        self.encode_nanos.start()
    }

    /// Completes an encode timing started by
    /// [`CodecMetrics::start_encode`].
    pub fn stop_encode(&self, started: Option<Instant>) {
        self.encode_nanos.stop(started);
    }

    /// Starts a decode timing.
    pub fn start_decode(&self) -> Option<Instant> {
        self.decode_nanos.start()
    }

    /// Completes a decode timing started by
    /// [`CodecMetrics::start_decode`].
    pub fn stop_decode(&self, started: Option<Instant>) {
        self.decode_nanos.stop(started);
    }

    /// Accounts one frame's worth of traffic: `records` decoded or
    /// encoded records against `wire` encoded bytes (frame header
    /// included).
    pub fn count_frame(&self, records: u64, wire: u64) {
        self.raw_bytes.add(records * RAW_RECORD_BYTES);
        self.wire_bytes.add(wire);
    }
}

// ---------------------------------------------------------------------------
// Writer / reader.
// ---------------------------------------------------------------------------

/// Streaming encoder: one [`TraceWriter::write_chunk`] call per transport
/// batch produces one frame. The encode staging buffer and predictor
/// tables are reused across chunks.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    w: W,
    buf: Vec<u8>,
    /// Conversion arena for the array-of-structs [`TraceWriter::write_chunk`]
    /// compatibility path (reused across chunks).
    scratch: TraceBatch,
    chunks: u64,
    records: u64,
    /// Frame bytes written after the file header (headers + payloads).
    stream_bytes: u64,
    /// Frame-offset index built as frames are written, when requested via
    /// [`TraceWriter::with_index`] (opt-in: long-lived tee/capture
    /// writers that never read it should not accumulate an entry per
    /// frame forever).
    index: Option<crate::index::TraceIndex>,
    /// Container format version being written (1 or 2).
    version: u32,
    /// Per-frame payload codec (always [`Codec::Delta`] for version 1).
    codec: Codec,
    /// Predictor state, allocated on first predicted frame.
    predictors: Option<Box<Predictors>>,
    metrics: CodecMetrics,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the file header and readies the encoder — a version-2
    /// stream with value-predicted ([`Codec::Predicted`]) frames.
    pub fn new(w: W) -> io::Result<TraceWriter<W>> {
        TraceWriter::with_format(w, FORMAT_VERSION, Codec::Predicted)
    }

    /// Like [`TraceWriter::new`], but with an explicit per-frame payload
    /// codec (a version-2 container may carry delta frames).
    pub fn with_codec(w: W, codec: Codec) -> io::Result<TraceWriter<W>> {
        TraceWriter::with_format(w, FORMAT_VERSION, codec)
    }

    /// Writes a legacy version-1 stream (12-byte frame headers, delta
    /// payloads), for producing traces older readers understand.
    pub fn new_v1(w: W) -> io::Result<TraceWriter<W>> {
        TraceWriter::with_format(w, FORMAT_VERSION_V1, Codec::Delta)
    }

    fn with_format(mut w: W, version: u32, codec: Codec) -> io::Result<TraceWriter<W>> {
        debug_assert!(version == FORMAT_VERSION || codec == Codec::Delta);
        w.write_all(&MAGIC)?;
        w.write_all(&version.to_le_bytes())?;
        Ok(TraceWriter {
            w,
            buf: Vec::new(),
            scratch: TraceBatch::new(),
            chunks: 0,
            records: 0,
            stream_bytes: 0,
            index: None,
            version,
            codec,
            predictors: None,
            metrics: CodecMetrics::detached(),
        })
    }

    /// Like [`TraceWriter::new`], but also builds the frame directory
    /// *and* the per-frame posting lists as frames are written
    /// ([`TraceWriter::index`]) — byte-identical to what
    /// [`crate::index::TraceIndex::scan_records`] would rebuild from the
    /// finished stream (the directory half alone matches the header-only
    /// [`crate::index::TraceIndex::scan`]).
    pub fn with_index(w: W) -> io::Result<TraceWriter<W>> {
        let mut writer = TraceWriter::new(w)?;
        writer.index = Some(crate::index::TraceIndex::new());
        Ok(writer)
    }

    /// Binds this writer's codec instrumentation (byte counters, encode
    /// latency histogram) to `registry`.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.metrics = CodecMetrics::register(registry);
    }

    /// Encodes one columnar [`TraceBatch`] as one frame — the canonical
    /// encoder: the batch's columns run through the frame codec straight
    /// onto the wire ([`encode_frame_with`]). An empty batch writes
    /// nothing (the format has no empty frames).
    pub fn write_chunk_batch(&mut self, batch: &TraceBatch) -> io::Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        self.buf.clear();
        let started = self.metrics.start_encode();
        if self.version == FORMAT_VERSION_V1 {
            encode_frame_v1(&mut self.buf, batch);
        } else {
            let p = self.predictors.get_or_insert_with(|| Box::new(Predictors::new()));
            encode_frame_with(p, self.codec, &mut self.buf, batch);
        }
        self.metrics.stop_encode(started);
        self.w.write_all(&self.buf)?;
        self.metrics.count_frame(batch.len() as u64, self.buf.len() as u64);
        if let Some(index) = self.index.as_mut() {
            index.push_frame_batch(8 + self.stream_bytes, batch);
        }
        self.chunks += 1;
        self.records += batch.len() as u64;
        self.stream_bytes += self.buf.len() as u64;
        Ok(())
    }

    /// Encodes an array-of-structs `batch` as one frame (compatibility
    /// wrapper: scatters the records into a reused column arena and
    /// encodes that, so there is exactly one encoder).
    pub fn write_chunk(&mut self, batch: &[TraceEntry]) -> io::Result<()> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.extend_entries(batch.iter().copied());
        let r = self.write_chunk_batch(&scratch);
        self.scratch = scratch;
        r
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.w.flush()?;
        Ok(self.w)
    }

    /// Frames written so far.
    pub fn chunks(&self) -> u64 {
        self.chunks
    }

    /// Records encoded so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Encoded bytes written after the file header, frame headers included
    /// — the numerator of the bytes-per-record metric.
    pub fn stream_bytes(&self) -> u64 {
        self.stream_bytes
    }

    /// The container format version being written.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The per-frame payload codec being written.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// The frame-offset index accumulated so far (`None` unless the
    /// writer was opened with [`TraceWriter::with_index`]) — one entry
    /// per frame written, byte-identical to what
    /// [`crate::index::TraceIndex::scan`] rebuilds from the finished
    /// stream. Save it as a sidecar ([`crate::index::TraceIndex::save`])
    /// to enable seeking replays.
    pub fn index(&self) -> Option<&crate::index::TraceIndex> {
        self.index.as_ref()
    }

    /// Takes ownership of the accumulated index (leaving `None`), for
    /// writers whose sink is consumed by [`TraceWriter::finish`] but
    /// whose index must outlive it — the tee'd ingest lanes save their
    /// sidecar this way at lane retirement.
    pub fn take_index(&mut self) -> Option<crate::index::TraceIndex> {
        self.index.take()
    }
}

/// Streaming decoder over any [`Read`] — speaks both format versions, so
/// traces recorded before the predicted codec still replay.
///
/// [`TraceReader::read_chunk_into`] decodes one frame into a caller-owned,
/// reusable buffer — the file-sourced twin of the runtime's batch-grain
/// ingest path.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    r: R,
    buf: Vec<u8>,
    /// Conversion arena for the array-of-structs
    /// [`TraceReader::read_chunk_into`] compatibility path.
    scratch: TraceBatch,
    offset: u64,
    chunks: u64,
    records: u64,
    /// Container format version read from the file header (1 or 2).
    version: u32,
    /// Predictor state, allocated on the first predicted frame.
    predictors: Option<Box<Predictors>>,
    metrics: CodecMetrics,
}

impl<R: Read> TraceReader<R> {
    /// Validates the file header and readies the decoder.
    pub fn new(mut r: R) -> Result<TraceReader<R>, TraceError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic).map_err(|e| match e.kind() {
            io::ErrorKind::UnexpectedEof => TraceError::BadMagic,
            _ => TraceError::Io(e),
        })?;
        if magic != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let mut ver = [0u8; 4];
        r.read_exact(&mut ver).map_err(|e| match e.kind() {
            io::ErrorKind::UnexpectedEof => TraceError::BadMagic,
            _ => TraceError::Io(e),
        })?;
        let version = u32::from_le_bytes(ver);
        if version != FORMAT_VERSION_V1 && version != FORMAT_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        Ok(TraceReader {
            r,
            buf: Vec::new(),
            scratch: TraceBatch::new(),
            offset: 8,
            chunks: 0,
            records: 0,
            version,
            predictors: None,
            metrics: CodecMetrics::detached(),
        })
    }

    /// Binds this reader's codec instrumentation (byte counters, decode
    /// latency histogram) to `registry`.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.metrics = CodecMetrics::register(registry);
    }

    /// The container format version read from the file header.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Decodes the next frame **directly into** `out`'s columns (cleared
    /// first) — the canonical decoder: no intermediate `Vec<TraceEntry>`
    /// is built, the frame's wire streams land in the batch's columns
    /// one-to-one. Returns `false` on a clean end of stream, `true` when
    /// `out` holds a chunk.
    pub fn read_chunk_into_batch(&mut self, out: &mut TraceBatch) -> Result<bool, TraceError> {
        out.clear();
        let hlen = if self.version == FORMAT_VERSION_V1 {
            FRAME_HEADER_BYTES
        } else {
            FRAME_HEADER_BYTES_V2
        };
        let mut header = [0u8; FRAME_HEADER_BYTES_V2];
        match read_exact_or_eof(&mut self.r, &mut header[..hlen]) {
            Ok(0) => return Ok(false),
            Ok(n) if n < hlen => {
                return Err(TraceError::Corrupt {
                    offset: self.offset + n as u64,
                    reason: "stream ends inside a frame header",
                })
            }
            Ok(_) => {}
            Err(e) => return Err(TraceError::Io(e)),
        }
        let records = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let len = u32::from_le_bytes(header[4..8].try_into().unwrap());
        let sum = u32::from_le_bytes(header[8..12].try_into().unwrap());
        let codec = if self.version == FORMAT_VERSION_V1 {
            Codec::Delta
        } else {
            match Codec::from_wire(u32::from_le_bytes(header[12..16].try_into().unwrap())) {
                Some(c) => c,
                None => {
                    return Err(TraceError::Corrupt {
                        offset: self.offset,
                        reason: "unknown codec id in frame header",
                    })
                }
            }
        };
        validate_frame_header(records, len, self.offset, codec)?;
        let payload_at = self.offset + hlen as u64;
        self.buf.resize(len as usize, 0);
        match read_exact_or_eof(&mut self.r, &mut self.buf) {
            Ok(n) if n < len as usize => {
                return Err(TraceError::Corrupt {
                    offset: payload_at + n as u64,
                    reason: "stream ends inside a frame payload",
                })
            }
            Ok(_) => {}
            Err(e) => return Err(TraceError::Io(e)),
        }
        let started = self.metrics.start_decode();
        match codec {
            Codec::Delta => decode_frame_payload(records, sum, &self.buf, payload_at, out)?,
            Codec::Predicted => {
                let p = self.predictors.get_or_insert_with(|| Box::new(Predictors::new()));
                decode_frame_payload_v2(records, sum, &self.buf, payload_at, out, p)?;
            }
        }
        self.metrics.stop_decode(started);
        self.metrics.count_frame(records as u64, (hlen + len as usize) as u64);
        self.offset = payload_at + len as u64;
        self.chunks += 1;
        self.records += records as u64;
        Ok(true)
    }

    /// Decodes the next frame into an array-of-structs buffer
    /// (compatibility wrapper over
    /// [`TraceReader::read_chunk_into_batch`]: the columns are decoded
    /// once, then viewed back out as entries).
    pub fn read_chunk_into(&mut self, out: &mut Vec<TraceEntry>) -> Result<bool, TraceError> {
        out.clear();
        let mut scratch = std::mem::take(&mut self.scratch);
        let r = self.read_chunk_into_batch(&mut scratch);
        if let Ok(true) = r {
            out.extend(scratch.iter());
        }
        self.scratch = scratch;
        r
    }

    /// Decodes the whole remaining stream, chunk structure flattened.
    pub fn read_all(&mut self) -> Result<Vec<TraceEntry>, TraceError> {
        let mut all = Vec::new();
        let mut chunk = Vec::new();
        while self.read_chunk_into(&mut chunk)? {
            all.extend_from_slice(&chunk);
        }
        Ok(all)
    }

    /// Frames decoded so far.
    pub fn chunks(&self) -> u64 {
        self.chunks
    }

    /// Records decoded so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Byte offset the next frame header will be read at (8 right after
    /// construction: the file header) — the offset
    /// [`crate::index::TraceIndex`] entries store for that frame.
    pub fn offset(&self) -> u64 {
        self.offset
    }
}

impl<R: Read + io::Seek> TraceReader<R> {
    /// Repositions the reader at the frame described by `entry` (an
    /// [`IndexEntry`](crate::index::IndexEntry) from a
    /// [`TraceIndex`](crate::index::TraceIndex)), so the next
    /// [`TraceReader::read_chunk_into_batch`] decodes that frame — no
    /// prefix decoding. Frames decode independently (delta state and
    /// predictor tables both reset at frame boundaries), so any frame is
    /// a valid entry point.
    pub fn seek_to_frame(&mut self, entry: &crate::index::IndexEntry) -> Result<(), TraceError> {
        self.r.seek(io::SeekFrom::Start(entry.offset)).map_err(TraceError::Io)?;
        self.offset = entry.offset;
        Ok(())
    }
}

/// Like `read_exact`, but distinguishes "no bytes at all" (clean EOF,
/// returns 0) and "some but not enough" (returns the short count) from
/// I/O errors.
pub(crate) fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Convenience: encodes `trace` into an in-memory buffer, one frame per
/// `chunk_bytes`-sized transport batch ([`igm_lba::chunks`]).
pub fn encode_to_vec(trace: impl IntoIterator<Item = TraceEntry>, chunk_bytes: u32) -> Vec<u8> {
    let mut w = TraceWriter::new(Vec::new()).expect("writing to a Vec cannot fail");
    let mut chunker = igm_lba::chunks(trace, chunk_bytes);
    let mut batch = TraceBatch::new();
    while chunker.next_into_batch(&mut batch) {
        w.write_chunk_batch(&batch).expect("writing to a Vec cannot fail");
    }
    w.finish().expect("flushing a Vec cannot fail")
}

/// Convenience: decodes a whole in-memory trace stream.
pub fn decode_from_slice(bytes: &[u8]) -> Result<Vec<TraceEntry>, TraceError> {
    TraceReader::new(bytes)?.read_all()
}
