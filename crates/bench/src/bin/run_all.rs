//! Runs every experiment binary in the paper's presentation order
//! (Figures 2/12 statistics, Figure 10, Figure 11, Figure 13, Figure 14).
//!
//! Equivalent to invoking `fig10`, `fig11`, `fig12_table`, `fig13` and
//! `fig14` in sequence; scale with the `N` environment variable.

use std::process::Command;

fn main() {
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("exe directory");
    for bin in ["fig10", "fig11", "fig12_table", "fig13", "fig14"] {
        println!("\n################ {bin} ################\n");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
}
