//! Trace-file emission and consumption for the synthetic generators.
//!
//! A generated workload is deterministic, but regenerating it couples
//! every consumer to the generator's code (and its cost). These helpers
//! turn any benchmark into a durable `igm-trace` artifact — record once,
//! then replay it into any lifeguard, pool, or accelerator configuration
//! — and read such artifacts back as plain record streams.

use crate::Benchmark;
use igm_isa::TraceEntry;
use igm_lba::{chunks, TraceBatch};
use igm_trace::{TraceError, TraceReader, TraceWriter};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// What one emission produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceFileSummary {
    /// Records encoded.
    pub records: u64,
    /// Frames (transport chunks) written.
    pub chunks: u64,
    /// Encoded stream bytes after the file header (frame headers
    /// included) — divide by `records` for the bytes/record metric.
    pub encoded_bytes: u64,
}

impl TraceFileSummary {
    /// Encoded bytes per record.
    pub fn bytes_per_record(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.encoded_bytes as f64 / self.records as f64
        }
    }
}

/// Encodes `trace` into `sink`, one frame per `chunk_bytes`-sized
/// transport batch.
pub fn write_trace<W: Write>(
    trace: impl IntoIterator<Item = TraceEntry>,
    chunk_bytes: u32,
    sink: W,
) -> Result<TraceFileSummary, TraceError> {
    let mut writer = TraceWriter::new(sink)?;
    let mut chunker = chunks(trace, chunk_bytes);
    let mut batch = TraceBatch::new();
    while chunker.next_into_batch(&mut batch) {
        writer.write_chunk_batch(&batch)?;
    }
    let summary = TraceFileSummary {
        records: writer.records(),
        chunks: writer.chunks(),
        encoded_bytes: writer.stream_bytes(),
    };
    writer.finish()?.flush()?;
    Ok(summary)
}

/// Decodes a whole recorded trace from `source`.
pub fn read_trace<R: Read>(source: R) -> Result<Vec<TraceEntry>, TraceError> {
    TraceReader::new(source)?.read_all()
}

impl Benchmark {
    /// Records `n` generated entries to the trace file at `path`,
    /// chunked at `chunk_bytes`.
    ///
    /// # Example
    ///
    /// ```no_run
    /// use igm_workload::Benchmark;
    ///
    /// let summary = Benchmark::Gzip.record_trace_file("gzip.igmt", 50_000, 16 * 1024).unwrap();
    /// assert_eq!(summary.records, 50_000);
    /// ```
    pub fn record_trace_file(
        self,
        path: impl AsRef<Path>,
        n: u64,
        chunk_bytes: u32,
    ) -> Result<TraceFileSummary, TraceError> {
        let file = File::create(path).map_err(TraceError::Io)?;
        write_trace(self.trace(n), chunk_bytes, BufWriter::new(file))
    }

    /// Reads back a trace file and verifies it replays the generator
    /// exactly — recorded artifacts must be indistinguishable from the
    /// live stream.
    pub fn load_trace_file(path: impl AsRef<Path>) -> Result<Vec<TraceEntry>, TraceError> {
        let file = File::open(path).map_err(TraceError::Io)?;
        read_trace(BufReader::new(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitted_file_replays_the_generator_exactly() {
        let mut bytes = Vec::new();
        let summary = write_trace(Benchmark::Gzip.trace(5_000), 4096, &mut bytes).unwrap();
        assert_eq!(summary.records, 5_000);
        assert!(summary.chunks > 1);
        let live: Vec<TraceEntry> = Benchmark::Gzip.trace(5_000).collect();
        assert_eq!(read_trace(&bytes[..]).unwrap(), live);
    }

    #[test]
    fn encoding_beats_the_in_memory_representation() {
        for bench in [Benchmark::Gzip, Benchmark::Mcf, Benchmark::Gcc] {
            let mut bytes = Vec::new();
            let summary = write_trace(bench.trace(20_000), 16 * 1024, &mut bytes).unwrap();
            let in_memory = std::mem::size_of::<TraceEntry>() as f64;
            assert!(
                summary.bytes_per_record() < in_memory,
                "{bench}: {:.2} B/record not below the {in_memory} B in-memory baseline",
                summary.bytes_per_record()
            );
        }
    }
}
