//! Offline API-compatible shim for the `criterion` crate.
//!
//! Provides the surface used by this workspace's benches: [`Criterion`],
//! [`Criterion::benchmark_group`], `bench_function`, [`Throughput`],
//! [`black_box`] and the [`criterion_group!`]/[`criterion_main!`] macros.
//! Each benchmark runs a short warm-up followed by a fixed measurement
//! window and prints mean time per iteration (plus derived element
//! throughput when configured) — no statistics, no reports.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Declared per-iteration workload size, for derived throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n{name}");
        BenchmarkGroup { _parent: self, throughput: None, sample_size: 20 }
    }

    /// Runs a stand-alone benchmark function.
    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        run_one(name.as_ref(), None, 20, f);
        self
    }
}

/// A named group sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration workload size.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Adjusts the measurement iteration budget.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(name.as_ref(), self.throughput, self.sample_size, f);
        self
    }

    /// Ends the group (formatting no-op).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `routine`.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(
    name: &str,
    throughput: Option<Throughput>,
    samples: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    // Warm-up: one iteration to page everything in.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    // Aim for ~samples iterations but cap total measured time near 2s.
    let budget = Duration::from_secs(2);
    let fit = (budget.as_nanos() / per_iter.as_nanos().max(1)) as u64;
    let iters = (samples as u64).min(fit.max(1)).max(1);
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    let mean_ns = b.elapsed.as_nanos() as f64 / iters as f64;
    let extra = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.1} Melem/s)", n as f64 / mean_ns * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.1} MB/s)", n as f64 / mean_ns * 1e3)
        }
        None => String::new(),
    };
    println!("  {name:<40} {mean_ns:>14.0} ns/iter{extra}");
}

/// Groups benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(10));
        g.sample_size(3);
        let mut ran = 0u64;
        g.bench_function("counting", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran > 0);
    }
}
