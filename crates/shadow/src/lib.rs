//! Lifeguard metadata (shadow memory) organizations.
//!
//! Instruction-grain lifeguards keep *metadata* ("shadow values") for every
//! byte or word of the monitored application's address space. The paper's
//! §6.1 surveys two organizations (Figure 6):
//!
//! * the **one-level** design — a single contiguous region addressed by
//!   scale-and-offset ([`OneLevelShadow`]); simple but viable only for
//!   metadata smaller than the data and wasteful for sparse address spaces;
//! * the **two-level** design — a page-table-like level-1 index of lazily
//!   allocated level-2 chunks ([`TwoLevelShadow`]); flexible and
//!   space-efficient, and the baseline configuration of the paper.
//!
//! The address arithmetic of the two-level design is captured by
//! [`ShadowLayout`], which is exactly the configuration loaded into the
//! Metadata-TLB by `lma_config` (paper Figure 9) — both the software walk
//! and the hardware translation are derived from it, which is what the
//! M-TLB correctness property tests exploit.
//!
//! Shadow structures live in the *lifeguard's* (simulated) virtual address
//! space: every level-1 table slot and level-2 chunk has a stable metadata
//! virtual address, so the timing model can replay lifeguard metadata
//! accesses against a cache hierarchy.

pub mod layout;
pub mod one_level;
pub mod regmeta;
pub mod sizing;
pub mod two_level;

pub use layout::ShadowLayout;
pub use one_level::OneLevelShadow;
pub use regmeta::RegMeta;
pub use sizing::{choose_level1_bits, footprint_pages, SizingPolicy};
pub use two_level::TwoLevelShadow;

/// Base of the simulated lifeguard-space region holding the level-1 table.
pub const LEVEL1_TABLE_BASE: u32 = 0x1000_0000;

/// Base of the simulated lifeguard-space region from which level-2 chunks
/// are allocated.
pub const CHUNK_REGION_BASE: u32 = 0x2000_0000;
