//! The lake's end-to-end contract: bitmap queries answered from sidecars
//! alone are property-tested equal to the full-replay filter for every
//! lifeguard kind, neighborhoods decode exactly the requested window,
//! sidecars heal byte-identically, violation record ids join back to
//! their trace, and the `/lake/*` routes serve (and reject) correctly.

use igm_isa::{Annotation, MemRef, OpClass, Reg, TraceEntry};
use igm_lake::{LakeError, LakeQuery, LakeRoutes, TraceLake};
use igm_lba::TraceBatch;
use igm_lifeguards::LifeguardKind;
use igm_obs::{EventKind, MetricsRegistry, StatsServer};
use igm_runtime::{MonitorPool, PoolConfig, SessionConfig};
use igm_span::{tenant_id, trace_id, RecordId};
use igm_trace::{capture_to_lake, op_class, Dim, TraceReader};
use igm_workload::Benchmark;
use proptest::prelude::*;
use std::fs::File;
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

use igm_lake::query::{execute, matches_entry};

/// Records per captured tenant in the shared fixture.
const N: u64 = 3_000;

/// One tenant per lifeguard kind — the property must hold for all five.
const TENANTS: [(LifeguardKind, Benchmark); 5] = [
    (LifeguardKind::AddrCheck, Benchmark::Gzip),
    (LifeguardKind::MemCheck, Benchmark::Mcf),
    (LifeguardKind::TaintCheck, Benchmark::Parser),
    (LifeguardKind::TaintCheckDetailed, Benchmark::Crafty),
    (LifeguardKind::LockSet, Benchmark::Vpr),
];

struct Fixture {
    lake: Arc<TraceLake>,
    /// Per tenant: `(stem, fully decoded records in seq order)` — the
    /// full-replay baseline the bitmap planner is checked against.
    decoded: Vec<(String, Vec<TraceEntry>)>,
}

fn stem_of(kind: LifeguardKind, bench: Benchmark) -> String {
    format!("{kind:?}-{}", bench.name()).to_lowercase()
}

fn decode_all(path: &Path) -> Vec<TraceEntry> {
    let mut reader = TraceReader::new(BufReader::new(File::open(path).unwrap())).unwrap();
    let mut out = Vec::new();
    let mut batch = TraceBatch::new();
    while reader.read_chunk_into_batch(&mut batch).unwrap() {
        out.extend(batch.iter());
    }
    out
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("igm-lake-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let pool = MonitorPool::new(PoolConfig::with_workers(2));
        for (kind, bench) in TENANTS {
            let cfg = SessionConfig::new(stem_of(kind, bench), kind)
                .synthetic()
                .premark(&bench.profile().premark_regions());
            let mut cap = capture_to_lake(&pool, cfg, &dir).unwrap();
            cap.stream(bench.trace(N)).unwrap();
            cap.finish().unwrap();
        }
        pool.shutdown();
        let lake = Arc::new(TraceLake::open(&dir).unwrap());
        assert_eq!(lake.traces().len(), TENANTS.len());
        assert!(lake.skipped().is_empty(), "all artifacts catalog cleanly");
        assert!(
            lake.traces().iter().all(|t| !t.rebuilt),
            "capture_to_lake leaves writer-built sidecars the lake loads as-is"
        );
        let decoded = lake
            .traces()
            .iter()
            .map(|t| {
                let entries = decode_all(&t.path);
                assert_eq!(entries.len() as u64, t.index.total_records());
                (t.stem.clone(), entries)
            })
            .collect();
        Fixture { lake, decoded }
    })
}

/// Builds a query anchored at a real record (so include terms hit) with
/// optional raw-key op/site terms (which may miss entirely — the planner
/// and the scalar filter must agree on that too) and a seq window.
fn build_query(
    entries: &[TraceEntry],
    anchor: usize,
    use_pc: bool,
    use_page: bool,
    op_term: Option<(u32, bool)>,
    site_term: Option<u32>,
    window: Option<(u64, u64)>,
) -> LakeQuery {
    let mut q = LakeQuery::new();
    let a = &entries[anchor % entries.len()];
    if use_pc {
        q = q.pc(a.pc);
    }
    if use_page {
        // First data address at or after the anchor, if any record has one.
        let addr = entries[anchor % entries.len()..].iter().chain(entries.iter()).find_map(|e| {
            let mut first = None;
            e.op.for_each_addr(|a| {
                if first.is_none() {
                    first = Some(a);
                }
            });
            first
        });
        if let Some(addr) = addr {
            q = q.page(addr);
        }
    }
    if let Some((class, negate)) = op_term {
        q = if negate { q.exclude(Dim::OpClass, class) } else { q.include(Dim::OpClass, class) };
    }
    if let Some(kind) = site_term {
        q = q.include(Dim::Site, kind);
    }
    if let Some((start, len)) = window {
        q = q.seq_range(start..start + len.max(1));
    }
    q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The acceptance property: for every lifeguard's trace, a random
    /// conjunctive query evaluated by bitmap algebra over the sidecar
    /// returns exactly the records the scalar filter finds in a full
    /// payload decode — same seqs, same count, same coordinates.
    #[test]
    fn bitmap_query_equals_full_replay_filter(
        anchor in 0usize..(N as usize),
        flags in (any::<bool>(), any::<bool>()),
        op_term in proptest::option::of((0u32..op_class::COUNT, any::<bool>())),
        site_term in proptest::option::of(0u32..igm_trace::site::COUNT),
        window in proptest::option::of((0u64..N, 1u64..N / 2)),
    ) {
        let fx = fixture();
        for (stem, entries) in &fx.decoded {
            let q = build_query(entries, anchor, flags.0, flags.1, op_term, site_term, window);
            let hits = fx.lake.query(Some(stem), &q, usize::MAX).unwrap();
            let expected: Vec<u64> = entries
                .iter()
                .enumerate()
                .filter(|(seq, e)| matches_entry(&q, *seq as u64, e))
                .map(|(seq, _)| seq as u64)
                .collect();
            let got: Vec<u64> = hits.hits.iter().map(|id| id.seq).collect();
            prop_assert_eq!(&got, &expected, "tenant {} query {:?}", stem, q);
            prop_assert_eq!(hits.matched, expected.len() as u64);
            prop_assert!(!hits.truncated);
            let t = fx.lake.by_stem(stem).unwrap();
            prop_assert!(hits.hits.iter().all(|id| id.tenant == t.tenant && id.trace == t.trace));
            prop_assert_eq!(
                hits.frames_visited + hits.frames_skipped,
                t.index.frames(),
                "every frame is either planned away or evaluated"
            );
        }
    }
}

#[test]
fn unfiltered_query_matches_everything_and_respects_limit() {
    let fx = fixture();
    let all = fx.lake.query(None, &LakeQuery::new(), 7).unwrap();
    assert_eq!(all.matched, TENANTS.len() as u64 * N);
    assert_eq!(all.traces, TENANTS.len());
    assert_eq!(all.hits.len(), 7);
    assert!(all.truncated);
}

#[test]
fn execute_appends_across_traces() {
    let fx = fixture();
    // The catalog's multi-trace aggregation is just repeated appends.
    let q = LakeQuery::new().include(Dim::OpClass, op_class::STORE);
    let mut manual = igm_lake::LakeHits::default();
    for t in fx.lake.traces() {
        execute(&t.index, t.tenant, t.trace, &q, usize::MAX, &mut manual);
    }
    let combined = fx.lake.query(None, &q, usize::MAX).unwrap();
    assert_eq!(manual.matched, combined.matched);
    assert_eq!(manual.hits, combined.hits);
}

#[test]
fn neighborhood_decodes_exactly_the_window() {
    let fx = fixture();
    let t = &fx.lake.traces()[0];
    let entries = &fx.decoded.iter().find(|(s, _)| *s == t.stem).unwrap().1;
    for seq in [0, 1, N / 2, N - 2, N - 1] {
        for k in [0u64, 3, 9] {
            let id = RecordId::new(t.tenant, t.trace, seq);
            let got = fx.lake.neighborhood(id, k).unwrap();
            let start = seq.saturating_sub(k);
            let end = (seq + k + 1).min(N);
            assert_eq!(got.len() as u64, end - start, "seq={seq} k={k}");
            for (s, e) in &got {
                assert_eq!(*e, entries[*s as usize], "seq={s}");
            }
            assert_eq!(got.first().unwrap().0, start);
            assert_eq!(got.last().unwrap().0, end - 1);
        }
    }
}

#[test]
fn unknown_tenants_and_records_are_typed_errors() {
    let fx = fixture();
    match fx.lake.query(Some("no-such-tenant"), &LakeQuery::new(), 1) {
        Err(LakeError::UnknownTenant(t)) => assert_eq!(t, "no-such-tenant"),
        other => panic!("expected UnknownTenant, got {other:?}"),
    }
    match fx.lake.neighborhood(RecordId::new(1, 2, 3), 1) {
        Err(LakeError::UnknownRecord(id)) => assert_eq!(id, RecordId::new(1, 2, 3)),
        other => panic!("expected UnknownRecord, got {other:?}"),
    }
    // Right coordinates, seq past the end of the trace.
    let t = &fx.lake.traces()[0];
    let past = RecordId::new(t.tenant, t.trace, N);
    match fx.lake.neighborhood(past, 1) {
        Err(LakeError::UnknownRecord(id)) => assert_eq!(id.seq, N),
        other => panic!("expected UnknownRecord, got {other:?}"),
    }
}

#[test]
fn missing_or_damaged_sidecars_heal_byte_identically() {
    let dir = std::env::temp_dir().join(format!("igm-lake-heal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let pool = MonitorPool::new(PoolConfig::with_workers(1));
    let cfg = SessionConfig::new("healme", LifeguardKind::AddrCheck)
        .synthetic()
        .premark(&Benchmark::Gzip.profile().premark_regions());
    let mut cap = capture_to_lake(&pool, cfg, &dir).unwrap();
    cap.stream(Benchmark::Gzip.trace(2_000)).unwrap();
    cap.finish().unwrap();
    pool.shutdown();

    let sidecar: PathBuf = dir.join("healme.igmx");
    let original = std::fs::read(&sidecar).unwrap();

    // Missing sidecar: the lake rebuilds it by offline scan and the
    // rebuilt bytes equal the writer-inline ones.
    std::fs::remove_file(&sidecar).unwrap();
    let lake = TraceLake::open(&dir).unwrap();
    assert!(lake.traces()[0].rebuilt);
    assert_eq!(std::fs::read(&sidecar).unwrap(), original, "offline rebuild is byte-identical");

    // Truncated (corrupt) sidecar: same healing path.
    std::fs::write(&sidecar, &original[..original.len() / 2]).unwrap();
    let lake = TraceLake::open(&dir).unwrap();
    assert!(lake.traces()[0].rebuilt);
    assert_eq!(std::fs::read(&sidecar).unwrap(), original);

    // Intact sidecar: loaded as-is, not rebuilt.
    let lake = TraceLake::open(&dir).unwrap();
    assert!(!lake.traces()[0].rebuilt);
    assert_eq!(lake.traces()[0].index.total_records(), 2_000);
}

#[test]
fn violation_record_ids_join_the_lake() {
    let dir = std::env::temp_dir().join(format!("igm-lake-victim-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let pool = MonitorPool::new(PoolConfig::with_workers(1));
    let cfg = SessionConfig::new("victim", LifeguardKind::AddrCheck);
    let mut cap = capture_to_lake(&pool, cfg, &dir).unwrap();
    // Allocate 64 bytes, then load one word past the end: one violation
    // at the second record (seq 1).
    cap.send_batch(vec![
        TraceEntry::annot(0x10, Annotation::Malloc { base: 0x9000, size: 64 }),
        TraceEntry::op(0x14, OpClass::MemToReg { src: MemRef::word(0x9040), rd: Reg::Eax }),
    ])
    .unwrap();
    let (report, _) = cap.finish().unwrap();
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violation_records.len(), 1);
    let id = report.violation_records[0].expect("captured sessions attribute violations");
    assert_eq!(id.tenant, tenant_id("victim"));
    assert_eq!(id.trace, trace_id("victim"));
    assert!(id.is_durable());
    assert_eq!(id.seq, 1, "the out-of-bounds load is the trace's second record");

    // The event ring carries the same coordinates (the /events.json join).
    let events = pool.events().since(0);
    let event_id = events
        .events
        .iter()
        .find_map(|e| match &e.kind {
            EventKind::Violation { record, .. } => Some(*record),
            _ => None,
        })
        .expect("a violation event was recorded");
    assert_eq!(event_id, Some(id));
    pool.shutdown();

    // And the id seeks straight back into the lake: the focused record
    // is the violating load.
    let lake = TraceLake::open(&dir).unwrap();
    let hood = lake.neighborhood(id, 0).unwrap();
    assert_eq!(hood.len(), 1);
    assert_eq!(hood[0].0, id.seq);
    assert_eq!(hood[0].1.pc, 0x14);
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    let status =
        out.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("HTTP status line");
    let body = out.split("\r\n\r\n").nth(1).unwrap_or("").to_owned();
    (status, body)
}

#[test]
fn lake_routes_serve_catalog_query_and_neighborhood() {
    let fx = fixture();
    let registry = Arc::new(MetricsRegistry::new());
    let routes = LakeRoutes::new(Arc::clone(&fx.lake), &registry);
    let server = StatsServer::serve_routes(
        "127.0.0.1:0",
        Arc::clone(&registry),
        None,
        vec![Arc::new(routes)],
    )
    .unwrap();
    let addr = server.local_addr();
    let stem = &fx.lake.traces()[0].stem;

    let (status, body) = http_get(addr, "/lake/traces.json");
    assert_eq!(status, 200);
    assert!(body.contains(&format!("\"stem\": \"{stem}\"")));
    assert!(body.contains(&format!("\"records\": {N}")));

    let (status, body) = http_get(addr, &format!("/lake/query?tenant={stem}&op=store&limit=5"));
    assert_eq!(status, 200);
    assert!(body.contains("\"matched\": ") || body.contains("\"matched\":"));
    let baseline = fx
        .lake
        .query(Some(stem), &LakeQuery::new().include(Dim::OpClass, op_class::STORE), 5)
        .unwrap();
    assert!(body.contains(&format!("\"matched\": {}", baseline.matched)));
    assert!(body.contains(&baseline.hits[0].to_string()));

    let (status, body) = http_get(addr, &format!("/lake/query?tenant={stem}&around=5&k=2"));
    assert_eq!(status, 200);
    assert!(body.contains("\"count\": 5"), "±2 around seq 5 is 5 records: {body}");
    assert!(body.contains("\"focus\": true"));

    // Full record-id addressing, no tenant parameter needed.
    let t = &fx.lake.traces()[0];
    let rid = RecordId::new(t.tenant, t.trace, 0);
    let (status, body) = http_get(addr, &format!("/lake/query?around={rid}&k=1"));
    assert_eq!(status, 200);
    assert!(body.contains("\"count\": 2"), "k=1 at the trace head is 2 records: {body}");

    // Typed rejections: bad term, unknown parameter, unknown tenant,
    // unknown record, malformed escape (caught before the handler).
    let cases = [
        ("/lake/query?op=bogus", 400, "bad_term"),
        ("/lake/query?tenant=x&pcs=1", 400, "unknown_param"),
        ("/lake/query?around=zz:1:0", 400, "bad_record_id"),
        ("/lake/query?around=7", 400, "bad_record_id"),
        ("/lake/query?tenant=no-such&pc=0x1000", 404, "unknown_tenant"),
        ("/lake/query?around=deadbeef:1:0", 404, "unknown_record"),
        ("/lake/traces.json?x=%zz", 400, "bad_escape"),
        ("/lake/traces.json?x=1", 400, "unknown_param"),
    ];
    for (path, want_status, want_kind) in cases {
        let (status, body) = http_get(addr, path);
        assert_eq!(status, want_status, "{path}: {body}");
        assert!(body.contains(want_kind), "{path}: {body}");
    }

    // The metrics family observed the traffic.
    let (_, metrics) = http_get(addr, "/metrics");
    assert!(metrics.contains(&format!("igm_lake_traces {}", TENANTS.len())));
    assert!(metrics.contains(&format!("igm_lake_indexed_records {}", TENANTS.len() as u64 * N)));
    assert!(metrics.contains("igm_lake_queries_total"));
    let mut server = server;
    server.stop();
}

#[test]
fn replay_around_reports_the_window() {
    let fx = fixture();
    let t = &fx.lake.traces()[0];
    let id = RecordId::new(t.tenant, t.trace, N / 2);
    let pool = MonitorPool::new(PoolConfig::with_workers(1));
    let cfg = SessionConfig::new("inspect", LifeguardKind::AddrCheck).synthetic();
    let report = fx.lake.replay_around(&pool, cfg, id, 8).unwrap();
    assert_eq!(report.records, 17, "±8 around the midpoint is 17 records");
    pool.shutdown();
}
