//! Idempotent Filters (paper §5).
//!
//! A small, lifeguard-configurable cache of recently observed checking
//! events. A hit means the identical check already ran and its metadata has
//! not changed since, so the event is redundant and is discarded. The
//! lifeguard controls, through the ETCT (see [`igm_lba::IfEventConfig`]):
//!
//! * which event types are cacheable (checking-only events);
//! * the check-categorization (CC) value grouping event types that perform
//!   the same check (AddrCheck uses one CC for loads and stores; LockSet
//!   must keep them apart);
//! * which record fields form the cache-line key;
//! * which event types invalidate the whole filter (e.g. `malloc`/`free`)
//!   or just the matching entry.
//!
//! The hardware is a set-associative cache with LRU replacement, indexed by
//! a hash of the whole line (paper §5); the paper finds 32 entries at 4-way
//! associativity already capture most of the benefit (Figure 13).

use igm_lba::{Event, IfEventConfig};
use std::fmt;

/// Geometry of the filter cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IfGeometry {
    /// Total number of entries.
    pub entries: usize,
    /// Associativity; `0` means fully associative.
    pub ways: usize,
}

impl IfGeometry {
    /// The paper's simulated configuration: 32 entries, fully associative
    /// (§7.1).
    pub fn isca08() -> IfGeometry {
        IfGeometry { entries: 32, ways: 0 }
    }

    /// A set-associative geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `ways` divides `entries` and both are powers of two.
    pub fn set_associative(entries: usize, ways: usize) -> IfGeometry {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        assert!(ways.is_power_of_two() && ways <= entries, "invalid associativity");
        IfGeometry { entries, ways }
    }

    /// A fully associative geometry.
    pub fn fully_associative(entries: usize) -> IfGeometry {
        assert!(entries > 0);
        IfGeometry { entries, ways: 0 }
    }

    fn resolved_ways(&self) -> usize {
        if self.ways == 0 {
            self.entries
        } else {
            self.ways
        }
    }

    fn sets(&self) -> usize {
        self.entries / self.resolved_ways()
    }
}

impl fmt::Display for IfGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ways == 0 {
            write!(f, "{} entries, fully associative", self.entries)
        } else {
            write!(f, "{} entries, {}-way", self.entries, self.ways)
        }
    }
}

/// Outcome of filtering one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IfOutcome {
    /// The event is redundant; discard it.
    Filtered,
    /// The event must be delivered to the lifeguard.
    Deliver,
}

/// Filter statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IfStats {
    /// Cacheable events looked up.
    pub lookups: u64,
    /// Lookups that hit (events filtered).
    pub hits: u64,
    /// Lines inserted.
    pub inserts: u64,
    /// Whole-filter invalidations.
    pub invalidate_all: u64,
    /// Matching-entry invalidations that removed a line.
    pub invalidate_match: u64,
}

impl IfStats {
    /// Fraction of cacheable events filtered.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// A cache line: the CC value plus the selected record-field values
/// (unselected fields store as `None` and do not distinguish lines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct LineKey {
    cc: u8,
    addr: Option<u32>,
    size: Option<u8>,
    pc: Option<u32>,
    reg: Option<u8>,
}

impl LineKey {
    fn build(pc: u32, ev: &Event, cfg: &IfEventConfig) -> LineKey {
        let mref = ev.addr_field();
        LineKey {
            cc: cfg.cc,
            addr: cfg.fields.addr.then(|| mref.map_or(0, |m| m.addr)),
            size: cfg.fields.size.then(|| mref.map_or(0, |m| m.size.bytes() as u8)),
            pc: cfg.fields.pc.then_some(pc),
            reg: cfg.fields.reg.then(|| ev.reg_field().map_or(0xff, |r| r.index() as u8)),
        }
    }

    fn hash(&self) -> u64 {
        // FNV-1a over the packed fields: a stand-in for the hardware's
        // hash-of-the-entire-line indexing.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        mix(self.cc as u64);
        mix(self.addr.map_or(u64::MAX, |v| v as u64));
        mix(self.size.map_or(u64::MAX, |v| v as u64));
        mix(self.pc.map_or(u64::MAX, |v| v as u64));
        mix(self.reg.map_or(u64::MAX, |v| v as u64));
        // Finalizer: FNV's low bits index the (few) sets, so avalanche
        // them (splitmix64 tail).
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^ (h >> 31)
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    key: LineKey,
    last_used: u64,
}

/// The Idempotent Filter hardware.
///
/// # Example
///
/// ```
/// use igm_core::{IdempotentFilter, IfGeometry, IfOutcome};
/// use igm_lba::{Event, IfEventConfig};
/// use igm_isa::MemRef;
///
/// let mut f = IdempotentFilter::new(IfGeometry::isca08());
/// let cfg = IfEventConfig::cacheable_addr(0);
/// let ev = Event::MemRead(MemRef::word(0x9000));
/// assert_eq!(f.process(0x1000, &ev, &cfg), IfOutcome::Deliver); // first time
/// assert_eq!(f.process(0x1004, &ev, &cfg), IfOutcome::Filtered); // redundant
/// ```
#[derive(Debug, Clone)]
pub struct IdempotentFilter {
    geometry: IfGeometry,
    sets: Vec<Vec<Option<Line>>>,
    tick: u64,
    stats: IfStats,
}

impl IdempotentFilter {
    /// Creates an empty filter.
    pub fn new(geometry: IfGeometry) -> IdempotentFilter {
        let sets = vec![vec![None; geometry.resolved_ways()]; geometry.sets()];
        IdempotentFilter { geometry, sets, tick: 0, stats: IfStats::default() }
    }

    /// The configured geometry.
    pub fn geometry(&self) -> IfGeometry {
        self.geometry
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &IfStats {
        &self.stats
    }

    /// Empties the filter (whole-cache invalidation).
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.fill(None);
        }
    }

    fn set_index(&self, key: &LineKey) -> usize {
        (key.hash() % self.sets.len() as u64) as usize
    }

    /// Runs one event through the filter with its ETCT configuration.
    ///
    /// Invalidation happens first (an updating event must evict stale
    /// checks even if it is itself cacheable under a different CC), then
    /// the lookup/insert.
    pub fn process(&mut self, pc: u32, ev: &Event, cfg: &IfEventConfig) -> IfOutcome {
        self.tick += 1;
        if cfg.invalidate_all {
            self.stats.invalidate_all += 1;
            self.clear();
        }
        let key = LineKey::build(pc, ev, cfg);
        if cfg.invalidate_match {
            let si = self.set_index(&key);
            for way in &mut self.sets[si] {
                if way.map(|l| l.key) == Some(key) {
                    *way = None;
                    self.stats.invalidate_match += 1;
                }
            }
        }
        if !cfg.cacheable {
            return IfOutcome::Deliver;
        }
        self.stats.lookups += 1;
        let si = self.set_index(&key);
        let tick = self.tick;
        let set = &mut self.sets[si];
        // Hit?
        for line in set.iter_mut().flatten() {
            if line.key == key {
                line.last_used = tick;
                self.stats.hits += 1;
                return IfOutcome::Filtered;
            }
        }
        // Miss: insert with LRU replacement.
        self.stats.inserts += 1;
        let victim = set
            .iter_mut()
            .min_by_key(|w| w.map_or(0, |l| l.last_used))
            .expect("sets are non-empty");
        *victim = Some(Line { key, last_used: tick });
        IfOutcome::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igm_isa::{MemRef, MemSize, Reg};
    use igm_lba::{CheckKind, FieldSelect, MetaSource};

    fn read(addr: u32) -> Event {
        Event::MemRead(MemRef::word(addr))
    }

    fn write(addr: u32) -> Event {
        Event::MemWrite(MemRef::word(addr))
    }

    fn cfg_addr(cc: u8) -> IfEventConfig {
        IfEventConfig::cacheable_addr(cc)
    }

    #[test]
    fn repeated_checks_are_filtered() {
        let mut f = IdempotentFilter::new(IfGeometry::isca08());
        assert_eq!(f.process(0, &read(0x100), &cfg_addr(0)), IfOutcome::Deliver);
        assert_eq!(f.process(4, &read(0x100), &cfg_addr(0)), IfOutcome::Filtered);
        assert_eq!(f.process(8, &read(0x100), &cfg_addr(0)), IfOutcome::Filtered);
        assert_eq!(f.stats().hits, 2);
        assert!((f.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn shared_cc_merges_loads_and_stores() {
        // AddrCheck style: loads and stores with the same CC are the same
        // check.
        let mut f = IdempotentFilter::new(IfGeometry::isca08());
        assert_eq!(f.process(0, &read(0x100), &cfg_addr(0)), IfOutcome::Deliver);
        assert_eq!(f.process(4, &write(0x100), &cfg_addr(0)), IfOutcome::Filtered);
    }

    #[test]
    fn distinct_cc_separates_loads_and_stores() {
        // LockSet style: loads and stores must be treated separately.
        let mut f = IdempotentFilter::new(IfGeometry::isca08());
        assert_eq!(f.process(0, &read(0x100), &cfg_addr(1)), IfOutcome::Deliver);
        assert_eq!(f.process(4, &write(0x100), &cfg_addr(2)), IfOutcome::Deliver);
        assert_eq!(f.process(8, &write(0x100), &cfg_addr(2)), IfOutcome::Filtered);
    }

    #[test]
    fn different_addresses_or_sizes_do_not_alias() {
        let mut f = IdempotentFilter::new(IfGeometry::isca08());
        assert_eq!(f.process(0, &read(0x100), &cfg_addr(0)), IfOutcome::Deliver);
        assert_eq!(f.process(0, &read(0x104), &cfg_addr(0)), IfOutcome::Deliver);
        let halfword = Event::MemRead(MemRef::new(0x100, MemSize::B2));
        assert_eq!(f.process(0, &halfword, &cfg_addr(0)), IfOutcome::Deliver);
    }

    #[test]
    fn invalidate_all_flushes() {
        let mut f = IdempotentFilter::new(IfGeometry::isca08());
        f.process(0, &read(0x100), &cfg_addr(0));
        let inval = IfEventConfig::invalidates_all();
        let malloc = Event::Annot(igm_isa::Annotation::Malloc { base: 0x100, size: 8 });
        assert_eq!(f.process(0, &malloc, &inval), IfOutcome::Deliver);
        assert_eq!(f.process(0, &read(0x100), &cfg_addr(0)), IfOutcome::Deliver);
        assert_eq!(f.stats().invalidate_all, 1);
    }

    #[test]
    fn invalidate_match_evicts_only_matching_entry() {
        let mut f = IdempotentFilter::new(IfGeometry::isca08());
        f.process(0, &read(0x100), &cfg_addr(0));
        f.process(0, &read(0x200), &cfg_addr(0));
        // A store that invalidates the (cc=0, addr, size) key at 0x100.
        let inval = IfEventConfig::invalidates_match(0, FieldSelect::ADDR_SIZE);
        assert_eq!(f.process(0, &write(0x100), &inval), IfOutcome::Deliver);
        assert_eq!(f.stats().invalidate_match, 1);
        // 0x100 must re-check; 0x200 is still cached.
        assert_eq!(f.process(0, &read(0x100), &cfg_addr(0)), IfOutcome::Deliver);
        assert_eq!(f.process(0, &read(0x200), &cfg_addr(0)), IfOutcome::Filtered);
    }

    #[test]
    fn non_cacheable_events_always_deliver() {
        let mut f = IdempotentFilter::new(IfGeometry::isca08());
        let cfg = IfEventConfig::default();
        for _ in 0..3 {
            assert_eq!(f.process(0, &read(0x100), &cfg), IfOutcome::Deliver);
        }
        assert_eq!(f.stats().lookups, 0);
    }

    #[test]
    fn lru_evicts_oldest_in_fully_associative_filter() {
        let mut f = IdempotentFilter::new(IfGeometry::fully_associative(2));
        f.process(0, &read(0x100), &cfg_addr(0));
        f.process(0, &read(0x200), &cfg_addr(0));
        // Touch 0x100 so 0x200 becomes LRU.
        assert_eq!(f.process(0, &read(0x100), &cfg_addr(0)), IfOutcome::Filtered);
        // Insert a third line: evicts 0x200.
        f.process(0, &read(0x300), &cfg_addr(0));
        assert_eq!(f.process(0, &read(0x100), &cfg_addr(0)), IfOutcome::Filtered);
        assert_eq!(f.process(0, &read(0x200), &cfg_addr(0)), IfOutcome::Deliver);
    }

    #[test]
    fn set_associative_capacity_behaviour() {
        // 1-way (direct-mapped) with 4 sets: conflicting keys in the same
        // set evict each other even though the cache is not full.
        let mut f = IdempotentFilter::new(IfGeometry::set_associative(4, 1));
        let mut delivered = 0;
        for i in 0..64u32 {
            if f.process(0, &read(i * 4), &cfg_addr(0)) == IfOutcome::Deliver {
                delivered += 1;
            }
        }
        assert_eq!(delivered, 64); // cold pass: everything delivered
                                   // Second identical pass: a direct-mapped 4-entry filter cannot hold
                                   // 64 distinct lines, so most still deliver.
        let mut filtered = 0;
        for i in 0..64u32 {
            if f.process(0, &read(i * 4), &cfg_addr(0)) == IfOutcome::Filtered {
                filtered += 1;
            }
        }
        assert!(filtered <= 4);
    }

    #[test]
    fn reg_keyed_checks() {
        let mut f = IdempotentFilter::new(IfGeometry::isca08());
        let cfg = IfEventConfig::cacheable_reg(5);
        let ck = |r: Reg| Event::Check { kind: CheckKind::AddrCompute, source: MetaSource::Reg(r) };
        assert_eq!(f.process(0, &ck(Reg::Esi), &cfg), IfOutcome::Deliver);
        assert_eq!(f.process(0, &ck(Reg::Esi), &cfg), IfOutcome::Filtered);
        assert_eq!(f.process(0, &ck(Reg::Edi), &cfg), IfOutcome::Deliver);
    }

    #[test]
    fn pc_field_distinguishes_sites_when_selected() {
        let mut f = IdempotentFilter::new(IfGeometry::isca08());
        let cfg = IfEventConfig {
            cacheable: true,
            cc: 0,
            fields: FieldSelect { addr: true, size: true, pc: true, reg: false },
            ..Default::default()
        };
        assert_eq!(f.process(0x10, &read(0x100), &cfg), IfOutcome::Deliver);
        assert_eq!(f.process(0x20, &read(0x100), &cfg), IfOutcome::Deliver);
        assert_eq!(f.process(0x10, &read(0x100), &cfg), IfOutcome::Filtered);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let _ = IfGeometry::set_associative(48, 4);
    }

    #[test]
    fn geometry_display() {
        assert_eq!(IfGeometry::isca08().to_string(), "32 entries, fully associative");
        assert_eq!(IfGeometry::set_associative(64, 4).to_string(), "64 entries, 4-way");
    }
}
