//! Per-frame inverted posting lists — the payload of the `IGMX` v2
//! sidecar that turns a trace file into a queryable artifact.
//!
//! For every frame, four dimensions are extracted from the batch
//! columns and inverted into posting lists over *frame-local* record
//! indices:
//!
//! | dim | key | meaning |
//! |-----|-----|---------|
//! | [`Dim::PcBucket`]  | `pc >> 6`    | 64-byte code bucket the record's pc falls in |
//! | [`Dim::OpClass`]   | [`op_class`] | coarse memory-effect class (load/store/update/compute/ctrl/annot) |
//! | [`Dim::AddrPage`]  | `addr >> 12` | 4 KiB page touched by any of the record's address slots |
//! | [`Dim::Site`]      | [`site`]     | sparse violation-relevant site kind (free, indirect jump, syscall, …) |
//!
//! Each posting's index set is stored in the smallest of four
//! roaring-style container encodings, chosen per posting:
//!
//! - **Runs** — strided runs `(gap, len-1[, step-1])` in varints. The
//!   generalization from roaring's plain runs to *strided* runs is what
//!   makes loop-structured traces cheap: a loop body executing `n`
//!   iterations puts each of its record shapes at an arithmetic
//!   progression of positions, and one strided run covers the whole
//!   progression in ~3–5 bytes.
//! - **Array** — plain varint gap deltas, for small irregular sets.
//! - **Bitset** — `⌈records/8⌉` bytes, for dense irregular sets.
//! - **Periodic-XOR** — a period `P` plus the positions where the
//!   membership bitmap differs from itself shifted by `P`. Loop bodies
//!   put a key at *several* interleaved arithmetic progressions (one
//!   per occurrence inside the body), which defeats sequential run
//!   extraction; the periodic XOR cancels all phases of one period at
//!   once, leaving only the loop's perturbations.
//!
//! Frames hold at most a few thousand records, so a frame *is* the
//! natural roaring block: container indices are frame-local and the
//! frame directory (`IndexEntry.first_record`) provides the high bits.
//! Extraction is deterministic over batch columns, so an index built
//! inline by the writer and one rebuilt by decoding the finished stream
//! are byte-identical — the property `TraceIndex` save/scan tests pin.

use igm_lba::TraceBatch;

/// A query dimension of the posting index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Dim {
    /// 64-byte pc bucket (`pc >> 6`).
    PcBucket = 0,
    /// Coarse opcode class (see [`op_class`]).
    OpClass = 1,
    /// 4 KiB address page (`addr >> 12`) over every address slot.
    AddrPage = 2,
    /// Violation-relevant site kind (see [`site`]).
    Site = 3,
}

impl Dim {
    /// Every dimension, in wire order.
    pub const ALL: [Dim; 4] = [Dim::PcBucket, Dim::OpClass, Dim::AddrPage, Dim::Site];

    /// Wire id.
    #[inline]
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Parses a wire id.
    pub fn from_u8(v: u8) -> Option<Dim> {
        match v {
            0 => Some(Dim::PcBucket),
            1 => Some(Dim::OpClass),
            2 => Some(Dim::AddrPage),
            3 => Some(Dim::Site),
            _ => None,
        }
    }

    /// Stable lowercase label (query params, JSON export).
    pub fn name(self) -> &'static str {
        match self {
            Dim::PcBucket => "pc",
            Dim::OpClass => "op",
            Dim::AddrPage => "page",
            Dim::Site => "site",
        }
    }
}

/// Bits a pc is shifted right by to form its [`Dim::PcBucket`] key.
pub const PC_BUCKET_SHIFT: u32 = 6;

/// Bits an address is shifted right by to form its [`Dim::AddrPage`] key.
pub const PAGE_SHIFT: u32 = 12;

/// The coarse opcode classes of [`Dim::OpClass`], grouped by memory
/// effect — coarse on purpose: six keys keep the posting sets long and
/// run-compressible where per-opcode keys would shatter them.
pub mod op_class {
    use igm_isa::codes;

    /// Reads memory, writes none (loads, read-only ops).
    pub const LOAD: u32 = 0;
    /// Writes memory, reads none.
    pub const STORE: u32 = 1;
    /// Reads and writes memory (read-modify-write, mem↔mem, `Other`).
    pub const UPDATE: u32 = 2;
    /// Touches registers only.
    pub const COMPUTE: u32 = 3;
    /// Control transfer (branches, jumps, returns).
    pub const CTRL: u32 = 4;
    /// High-level annotation records (malloc/free/lock/syscall/…).
    pub const ANNOT: u32 = 5;

    /// Number of classes (valid keys are `0..COUNT`).
    pub const COUNT: u32 = 6;

    /// The class a field code belongs to.
    pub fn of(code: u8) -> u32 {
        match code {
            codes::MEM_TO_REG | codes::DEST_REG_OP_MEM | codes::READ_ONLY => LOAD,
            codes::IMM_TO_MEM | codes::REG_TO_MEM => STORE,
            codes::MEM_SELF | codes::DEST_MEM_OP_REG | codes::MEM_TO_MEM | codes::OTHER => UPDATE,
            codes::IMM_TO_REG | codes::REG_SELF | codes::REG_TO_REG | codes::DEST_REG_OP_REG => {
                COMPUTE
            }
            codes::CTRL_DIRECT | codes::CTRL_INDIRECT | codes::CTRL_COND | codes::CTRL_RET => CTRL,
            _ => ANNOT,
        }
    }

    /// Stable lowercase label.
    pub fn name(class: u32) -> &'static str {
        match class {
            LOAD => "load",
            STORE => "store",
            UPDATE => "update",
            COMPUTE => "compute",
            CTRL => "ctrl",
            ANNOT => "annot",
            _ => "?",
        }
    }

    /// Parses a label back to its key.
    pub fn parse(s: &str) -> Option<u32> {
        match s {
            "load" => Some(LOAD),
            "store" => Some(STORE),
            "update" => Some(UPDATE),
            "compute" => Some(COMPUTE),
            "ctrl" => Some(CTRL),
            "annot" => Some(ANNOT),
            _ => None,
        }
    }
}

/// The sparse site kinds of [`Dim::Site`] — the record shapes lifeguard
/// violations anchor to (allocation lifetime events, taint sinks,
/// control-transfer targets). Most records have no site, which is what
/// keeps this dimension nearly free.
pub mod site {
    use igm_isa::codes;

    /// `malloc` annotation.
    pub const ALLOC: u32 = 0;
    /// `free` annotation (double/invalid-free site).
    pub const FREE: u32 = 1;
    /// `lock` annotation.
    pub const LOCK: u32 = 2;
    /// `unlock` annotation.
    pub const UNLOCK: u32 = 3;
    /// Tainted-input annotation.
    pub const INPUT: u32 = 4;
    /// Syscall annotation (taint sink).
    pub const SYSCALL: u32 = 5;
    /// Printf-format annotation (taint sink).
    pub const PRINTF: u32 = 6;
    /// Indirect control transfer (taint sink / CFI site).
    pub const JUMP: u32 = 7;
    /// Return (stack-slot control transfer).
    pub const RET: u32 = 8;
    /// Thread switch/exit annotation.
    pub const THREAD: u32 = 9;

    /// Number of site kinds (valid keys are `0..COUNT`).
    pub const COUNT: u32 = 10;

    /// The site kind a field code anchors, if any.
    pub fn of(code: u8) -> Option<u32> {
        match code {
            codes::ANN_MALLOC => Some(ALLOC),
            codes::ANN_FREE => Some(FREE),
            codes::ANN_LOCK => Some(LOCK),
            codes::ANN_UNLOCK => Some(UNLOCK),
            codes::ANN_READ_INPUT => Some(INPUT),
            codes::ANN_SYSCALL => Some(SYSCALL),
            codes::ANN_PRINTF => Some(PRINTF),
            codes::CTRL_INDIRECT => Some(JUMP),
            codes::CTRL_RET => Some(RET),
            codes::ANN_THREAD_SWITCH | codes::ANN_THREAD_EXIT => Some(THREAD),
            _ => None,
        }
    }

    /// Stable lowercase label.
    pub fn name(kind: u32) -> &'static str {
        match kind {
            ALLOC => "alloc",
            FREE => "free",
            LOCK => "lock",
            UNLOCK => "unlock",
            INPUT => "input",
            SYSCALL => "syscall",
            PRINTF => "printf",
            JUMP => "jump",
            RET => "ret",
            THREAD => "thread",
            _ => "?",
        }
    }

    /// Parses a label back to its key.
    pub fn parse(s: &str) -> Option<u32> {
        match s {
            "alloc" => Some(ALLOC),
            "free" => Some(FREE),
            "lock" => Some(LOCK),
            "unlock" => Some(UNLOCK),
            "input" => Some(INPUT),
            "syscall" => Some(SYSCALL),
            "printf" => Some(PRINTF),
            "jump" => Some(JUMP),
            "ret" => Some(RET),
            "thread" => Some(THREAD),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Varints (self-contained LEB128; posting bodies are their own format).
// ---------------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn get_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let b = *bytes.get(*pos)?;
        *pos += 1;
        if shift >= 63 && b > 1 {
            return None;
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

// ---------------------------------------------------------------------------
// Containers.
// ---------------------------------------------------------------------------

/// Container encodings. Size ties break toward the lowest-numbered
/// kind that is not [`KIND_PXOR`] (runs, array, bitset decode without a
/// reconstruction pass).
const KIND_RUNS: u8 = 0;
const KIND_ARRAY: u8 = 1;
const KIND_BITSET: u8 = 2;
/// Periodic-XOR: `varint(P)` then varint gaps of the positions where
/// the membership bitmap differs from itself shifted right by `P`
/// (positions `< P` diff against zero). Loop-structured traces put a
/// dimension key at the same offsets of every iteration, so the diff
/// set degenerates to the loop's *perturbations* — this is the
/// container that keeps dense periodic dimensions (op class, hot
/// pages) at a few hundredths of a byte per record.
const KIND_PXOR: u8 = 3;

/// Longest period the periodic-XOR probe considers.
const MAX_PERIOD: u32 = 4096;

/// Encodes `sorted` as a periodic-XOR body, if a plausible period
/// exists. Candidate periods come from a lag histogram over a prefix
/// of the set (recurring element distances at small lags); the best
/// candidate is the one with the fewest diff positions, ties toward
/// the shorter period — fully deterministic, so writer-inline and
/// offline-scan index builds stay byte-identical.
fn build_pxor(sorted: &[u32], records: u32) -> Option<Vec<u8>> {
    if sorted.len() < 8 || records < 16 {
        return None;
    }
    let m = sorted.len().min(512);
    let mut lags: Vec<u32> = Vec::new();
    for k in 1..=8usize.min(m - 1) {
        for i in 0..m - k {
            let d = sorted[i + k] - sorted[i];
            if d > 0 && d <= MAX_PERIOD && d < records {
                lags.push(d);
            }
        }
    }
    lags.sort_unstable();
    let mut cands: Vec<(u32, u32)> = Vec::new();
    let mut j = 0usize;
    while j < lags.len() {
        let p = lags[j];
        let mut c = 0u32;
        while j < lags.len() && lags[j] == p {
            c += 1;
            j += 1;
        }
        cands.push((c, p));
    }
    cands.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    cands.truncate(4);
    if cands.is_empty() {
        return None;
    }

    // Membership probes: a materialized bitset pays off only for dense
    // sets — small ones (the common case in entropy-heavy frames) do
    // better with binary search than with a ⌈records/8⌉-byte alloc.
    let bits = if sorted.len() >= 256 {
        let mut bits = vec![0u8; records.div_ceil(8) as usize];
        for &v in sorted {
            bits[(v >> 3) as usize] |= 1 << (v & 7);
        }
        bits
    } else {
        Vec::new()
    };
    let get = |i: u32| {
        if bits.is_empty() {
            sorted.binary_search(&i).is_ok() as u8
        } else {
            bits[(i >> 3) as usize] >> (i & 7) & 1
        }
    };

    let mut best: Option<(Vec<u32>, u32)> = None;
    for &(_, p) in &cands {
        // A diff position has `bit[i] != bit[i-p]`, so one of the two
        // bits is set: i ∈ S ∪ (S+p). Merging those two sorted streams
        // visits exactly the candidate positions in order — same diff
        // list as a full 0..records scan at O(|S|) cost.
        let mut diffs = Vec::new();
        let (mut a, mut b) = (0usize, 0usize);
        loop {
            let ia = sorted.get(a).copied().unwrap_or(u32::MAX);
            let ib = match sorted.get(b) {
                Some(&v) if v + p < records => v + p,
                _ => u32::MAX,
            };
            let i = ia.min(ib);
            if i == u32::MAX {
                break;
            }
            let prev = if i >= p { get(i - p) } else { 0 };
            if get(i) ^ prev == 1 {
                diffs.push(i);
            }
            a += (ia == i) as usize;
            b += (ib == i) as usize;
        }
        let better = match &best {
            None => true,
            Some((b, bp)) => diffs.len() < b.len() || (diffs.len() == b.len() && p < *bp),
        };
        if better {
            best = Some((diffs, p));
        }
    }
    let (diffs, p) = best?;
    let mut body = Vec::new();
    put_varint(&mut body, p as u64);
    let mut prev_plus_one = 0u32;
    for &v in &diffs {
        put_varint(&mut body, (v - prev_plus_one) as u64);
        prev_plus_one = v + 1;
    }
    Some(body)
}

/// Reconstructs a periodic-XOR body into a plain bitset of
/// `⌈records/8⌉` bytes. `None` on any malformed byte.
fn decode_pxor(body: &[u8], records: u32) -> Option<Vec<u8>> {
    let mut pos = 0usize;
    let p = get_varint(body, &mut pos)?;
    if p == 0 || p > MAX_PERIOD as u64 || p >= records as u64 {
        return None;
    }
    let p = p as u32;
    let mut diffs = Vec::new();
    let mut next_min = 0u64;
    while pos < body.len() {
        let gap = get_varint(body, &mut pos)?;
        let v = next_min.checked_add(gap)?;
        if v >= records as u64 {
            return None;
        }
        diffs.push(v as u32);
        next_min = v + 1;
    }
    let mut bits = vec![0u8; records.div_ceil(8) as usize];
    let mut di = 0usize;
    for i in 0..records {
        let prev = if i >= p { bits[((i - p) >> 3) as usize] >> ((i - p) & 7) & 1 } else { 0 };
        let d = if diffs.get(di) == Some(&i) {
            di += 1;
            1
        } else {
            0
        };
        if prev ^ d == 1 {
            bits[(i >> 3) as usize] |= 1 << (i & 7);
        }
    }
    Some(bits)
}

/// One posting: the set of frame-local record indices matching a
/// `(dim, key)` pair, held in its smallest container encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Posting {
    /// The dimension.
    pub dim: Dim,
    /// The dimension key (pc bucket, class, page number, site kind).
    pub key: u32,
    /// Number of indices in the set.
    pub cardinality: u32,
    kind: u8,
    /// Record count of the owning frame — needed to bound the
    /// periodic-XOR reconstruction; known externally, so never wired.
    records: u32,
    body: Vec<u8>,
}

impl Posting {
    /// Builds a posting from a sorted, duplicate-free index list by
    /// encoding every candidate container and keeping the smallest
    /// (deterministic: ties break toward runs, then array, then
    /// periodic-XOR, then bitset).
    fn build(dim: Dim, key: u32, sorted: &[u32], records: u32) -> Posting {
        debug_assert!(sorted.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(sorted.last().is_none_or(|&v| v < records));

        // Strided runs: a run needs at least three same-step terms
        // (pairs cost as much as two singletons and can split a longer
        // run behind them).
        let mut runs = Vec::new();
        let mut next_min = 0u32;
        let mut k = 0usize;
        while k < sorted.len() {
            let (step, len) = if k + 2 < sorted.len()
                && sorted[k + 1] - sorted[k] == sorted[k + 2] - sorted[k + 1]
            {
                let step = sorted[k + 1] - sorted[k];
                let mut len = 3usize;
                while k + len < sorted.len() && sorted[k + len] - sorted[k + len - 1] == step {
                    len += 1;
                }
                (step, len)
            } else {
                (1, 1)
            };
            let start = sorted[k];
            put_varint(&mut runs, (start - next_min) as u64);
            put_varint(&mut runs, (len - 1) as u64);
            if len > 1 {
                put_varint(&mut runs, (step - 1) as u64);
            }
            next_min = start + step * (len as u32 - 1) + 1;
            k += len;
        }

        let mut array = Vec::new();
        let mut prev_plus_one = 0u32;
        for &v in sorted {
            put_varint(&mut array, (v - prev_plus_one) as u64);
            prev_plus_one = v + 1;
        }

        let pxor = build_pxor(sorted, records);

        let bitset_len = records.div_ceil(8) as usize;
        let pxor_len = pxor.as_ref().map_or(usize::MAX, |b| b.len());
        let best = runs.len().min(array.len()).min(pxor_len).min(bitset_len);
        let (kind, body) = if runs.len() == best {
            (KIND_RUNS, runs)
        } else if array.len() == best {
            (KIND_ARRAY, array)
        } else if pxor_len == best {
            (KIND_PXOR, pxor.unwrap())
        } else {
            let mut bits = vec![0u8; bitset_len];
            for &v in sorted {
                bits[(v >> 3) as usize] |= 1 << (v & 7);
            }
            (KIND_BITSET, bits)
        };
        Posting { dim, key, cardinality: sorted.len() as u32, kind, records, body }
    }

    /// Encoded container body size in bytes (the per-posting header is
    /// accounted separately by [`FramePostings::encode`]).
    pub fn body_len(&self) -> usize {
        self.body.len()
    }

    /// The container kind's lowercase label (`"runs"`, `"array"`,
    /// `"bitset"`, `"pxor"`).
    pub fn container_kind(&self) -> &'static str {
        match self.kind {
            KIND_RUNS => "runs",
            KIND_ARRAY => "array",
            KIND_PXOR => "pxor",
            _ => "bitset",
        }
    }

    /// Iterates the frame-local indices in ascending order.
    pub fn iter(&self) -> PostingIter<'_> {
        // Periodic-XOR needs a reconstruction pass; materialize it as an
        // owned bitset and iterate that.
        let (kind, owned, malformed) = if self.kind == KIND_PXOR {
            match decode_pxor(&self.body, self.records) {
                Some(bits) => (KIND_BITSET, Some(bits), false),
                None => (KIND_BITSET, None, true),
            }
        } else {
            (self.kind, None, false)
        };
        PostingIter {
            kind,
            body: &self.body,
            owned,
            malformed,
            pos: 0,
            next_min: 0,
            run_next: 0,
            run_step: 0,
            run_left: 0,
            emitted: 0,
            cardinality: self.cardinality,
        }
    }

    /// Decodes and validates a container body: every index strictly
    /// ascending, below `records`, and exactly `cardinality` of them.
    fn validate(&self, records: u32) -> Result<(), &'static str> {
        let mut prev: Option<u32> = None;
        let mut n = 0u32;
        for v in self.iter() {
            let v = v.ok_or("malformed posting container")?;
            if v >= records {
                return Err("posting index past frame records");
            }
            if prev.is_some_and(|p| p >= v) {
                return Err("posting indices not strictly ascending");
            }
            prev = Some(v);
            n += 1;
        }
        if n != self.cardinality {
            return Err("posting cardinality mismatch");
        }
        Ok(())
    }
}

/// Iterator over a [`Posting`]'s frame-local indices. Yields
/// `Some(index)` per element; `None` as an item means the container
/// bytes are malformed (only possible on hand-corrupted sidecars —
/// [`FramePostings::decode`] validates eagerly, so postings obtained
/// from a loaded index never yield it).
#[derive(Debug)]
pub struct PostingIter<'a> {
    kind: u8,
    body: &'a [u8],
    /// Materialized bitset for periodic-XOR containers.
    owned: Option<Vec<u8>>,
    malformed: bool,
    pos: usize,
    next_min: u32,
    run_next: u32,
    run_step: u32,
    run_left: u32,
    emitted: u32,
    cardinality: u32,
}

impl Iterator for PostingIter<'_> {
    type Item = Option<u32>;

    fn next(&mut self) -> Option<Option<u32>> {
        if self.malformed {
            self.malformed = false;
            self.emitted = self.cardinality;
            return Some(None);
        }
        if self.emitted >= self.cardinality {
            return None;
        }
        let item = match self.kind {
            KIND_RUNS => {
                if self.run_left > 0 {
                    let v = self.run_next;
                    self.run_left -= 1;
                    self.run_next = v.wrapping_add(self.run_step);
                    self.next_min = v.wrapping_add(1);
                    Some(v)
                } else {
                    (|| {
                        let gap = get_varint(self.body, &mut self.pos)?;
                        let len_m1 = get_varint(self.body, &mut self.pos)?;
                        let step = if len_m1 > 0 {
                            get_varint(self.body, &mut self.pos)?.checked_add(1)?
                        } else {
                            1
                        };
                        let start = (self.next_min as u64).checked_add(gap)?;
                        if start > u32::MAX as u64
                            || step > u32::MAX as u64
                            || len_m1 >= u32::MAX as u64
                        {
                            return None;
                        }
                        self.run_left = len_m1 as u32;
                        self.run_step = step as u32;
                        self.run_next = (start as u32).wrapping_add(step as u32);
                        self.next_min = start as u32 + 1;
                        Some(start as u32)
                    })()
                }
            }
            KIND_ARRAY => (|| {
                let gap = get_varint(self.body, &mut self.pos)?;
                let v = (self.next_min as u64).checked_add(gap)?;
                if v > u32::MAX as u64 {
                    return None;
                }
                self.next_min = v as u32 + 1;
                Some(v as u32)
            })(),
            _ => {
                // Bitset: scan forward from next_min for the next set bit.
                let bits = self.owned.as_deref().unwrap_or(self.body);
                let mut v = self.next_min;
                loop {
                    let byte = match bits.get((v >> 3) as usize) {
                        Some(&b) => b,
                        None => break None,
                    };
                    if byte >> (v & 7) == 0 {
                        v = (v & !7) + 8;
                        continue;
                    }
                    if byte & (1 << (v & 7)) != 0 {
                        self.next_min = v + 1;
                        break Some(v);
                    }
                    v += 1;
                }
            }
        };
        if item.is_none() {
            // Malformed: stop after reporting once.
            self.emitted = self.cardinality;
            return Some(None);
        }
        self.emitted += 1;
        Some(item)
    }
}

// ---------------------------------------------------------------------------
// Per-frame posting sets.
// ---------------------------------------------------------------------------

/// All postings of one frame, sorted by `(dim, key)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FramePostings {
    postings: Vec<Posting>,
}

impl FramePostings {
    /// Extracts the four dimensions from a batch's columns and inverts
    /// them into postings. Deterministic over column content: the
    /// writer building inline and an offline decode-scan of the
    /// finished stream produce identical postings.
    pub fn from_batch(batch: &TraceBatch) -> FramePostings {
        let records = batch.len() as u32;
        // The narrow dimensions get one accumulator per key; the wide
        // ones (pc buckets, address pages) collect packed `key:index`
        // pairs and sort once — far cheaper than a per-record ordered
        // map over thousands of keys, and just as deterministic.
        let mut ops: Vec<Vec<u32>> = vec![Vec::new(); op_class::COUNT as usize];
        let mut sites: Vec<Vec<u32>> = vec![Vec::new(); site::COUNT as usize];
        let mut pc_pairs: Vec<u64> = Vec::with_capacity(batch.len());
        let mut page_pairs: Vec<u64> = Vec::new();
        let pack = |key: u32, i: u32| (key as u64) << 32 | i as u64;
        let codes = batch.codes();
        let flags = batch.flag_bytes();
        let addrs = batch.addrs();
        let mut ai = 0usize;
        for i in 0..batch.len() {
            let code = codes[i];
            pc_pairs.push(pack(batch.pcs()[i] >> PC_BUCKET_SHIFT, i as u32));
            ops[op_class::of(code) as usize].push(i as u32);
            if let Some(kind) = site::of(code) {
                sites[kind as usize].push(i as u32);
            }
            let (mems, plains, _vals) = crate::codec::stream_shape(code, flags[i]);
            for _ in 0..(mems + plains) {
                page_pairs.push(pack(addrs[ai] >> PAGE_SHIFT, i as u32));
                ai += 1;
            }
        }
        debug_assert_eq!(ai, addrs.len(), "stream_shape must consume the whole addr stream");
        pc_pairs.sort_unstable();
        page_pairs.sort_unstable();
        page_pairs.dedup(); // one record can touch the same page twice

        // Emit in (dim wire id, key) order — identical to the ordered
        // map this replaces.
        let mut postings = Vec::new();
        let grouped = |dim: Dim, pairs: &[u64], out: &mut Vec<Posting>| {
            let mut start = 0usize;
            while start < pairs.len() {
                let key = (pairs[start] >> 32) as u32;
                let mut end = start;
                let mut set = Vec::new();
                while end < pairs.len() && (pairs[end] >> 32) as u32 == key {
                    set.push(pairs[end] as u32);
                    end += 1;
                }
                out.push(Posting::build(dim, key, &set, records));
                start = end;
            }
        };
        grouped(Dim::PcBucket, &pc_pairs, &mut postings);
        for (key, set) in ops.iter().enumerate().filter(|(_, s)| !s.is_empty()) {
            postings.push(Posting::build(Dim::OpClass, key as u32, set, records));
        }
        grouped(Dim::AddrPage, &page_pairs, &mut postings);
        for (key, set) in sites.iter().enumerate().filter(|(_, s)| !s.is_empty()) {
            postings.push(Posting::build(Dim::Site, key as u32, set, records));
        }
        FramePostings { postings }
    }

    /// The postings, sorted by `(dim, key)`.
    pub fn postings(&self) -> &[Posting] {
        &self.postings
    }

    /// The posting for `(dim, key)`, if any record of the frame matched.
    pub fn get(&self, dim: Dim, key: u32) -> Option<&Posting> {
        let probe = (dim.as_u8(), key);
        self.postings
            .binary_search_by_key(&probe, |p| (p.dim.as_u8(), p.key))
            .ok()
            .map(|i| &self.postings[i])
    }

    /// Iterates the distinct keys present for one dimension.
    pub fn keys(&self, dim: Dim) -> impl Iterator<Item = &Posting> {
        self.postings.iter().filter(move |p| p.dim == dim)
    }

    /// Appends this frame's wire encoding: `varint(n)`, then per posting
    /// `dim u8, varint(key), varint(cardinality), kind u8,
    /// varint(body_len), body`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.postings.len() as u64);
        for p in &self.postings {
            out.push(p.dim.as_u8());
            put_varint(out, p.key as u64);
            put_varint(out, p.cardinality as u64);
            out.push(p.kind);
            put_varint(out, p.body.len() as u64);
            out.extend_from_slice(&p.body);
        }
    }

    /// Decodes and validates one frame's postings from `bytes` at
    /// `*pos`, for a frame of `records` records. Validation is eager
    /// (every container fully iterated), so postings from a loaded
    /// sidecar are structurally sound by construction.
    pub fn decode(
        bytes: &[u8],
        pos: &mut usize,
        records: u32,
    ) -> Result<FramePostings, &'static str> {
        let n = get_varint(bytes, pos).ok_or("posting section truncated")?;
        if n > bytes.len() as u64 {
            return Err("posting count larger than section");
        }
        let mut postings = Vec::with_capacity(n as usize);
        let mut prev: Option<(u8, u32)> = None;
        for _ in 0..n {
            let dim_b = *bytes.get(*pos).ok_or("posting section truncated")?;
            *pos += 1;
            let dim = Dim::from_u8(dim_b).ok_or("unknown posting dimension")?;
            let key = get_varint(bytes, pos).ok_or("posting section truncated")?;
            if key > u32::MAX as u64 {
                return Err("posting key out of range");
            }
            let cardinality = get_varint(bytes, pos).ok_or("posting section truncated")?;
            if cardinality == 0 || cardinality > records as u64 {
                return Err("posting cardinality out of range");
            }
            let kind = *bytes.get(*pos).ok_or("posting section truncated")?;
            *pos += 1;
            if kind > KIND_PXOR {
                return Err("unknown posting container kind");
            }
            let len = get_varint(bytes, pos).ok_or("posting section truncated")?;
            let end = pos.checked_add(len as usize).ok_or("posting body length overflow")?;
            if len > bytes.len() as u64 || end > bytes.len() {
                return Err("posting body past section end");
            }
            let body = bytes[*pos..end].to_vec();
            *pos = end;
            if prev.is_some_and(|p| p >= (dim_b, key as u32)) {
                return Err("postings not sorted by (dim, key)");
            }
            prev = Some((dim_b, key as u32));
            let p = Posting {
                dim,
                key: key as u32,
                cardinality: cardinality as u32,
                kind,
                records,
                body,
            };
            p.validate(records)?;
            postings.push(p);
        }
        Ok(FramePostings { postings })
    }

    /// Total encoded size of every container body plus per-posting
    /// headers, in bytes — the index-overhead numerator.
    pub fn encoded_len(&self) -> usize {
        let mut out = Vec::new();
        self.encode(&mut out);
        out.len()
    }
}

// ---------------------------------------------------------------------------
// Frame-local bit sets for query evaluation.
// ---------------------------------------------------------------------------

/// A dense mutable bit set over one frame's records — the evaluation
/// scratch the query planner ORs postings into and ANDs across
/// dimensions. At most a few thousand records per frame, so this is a
/// few hundred bytes of stack-friendly scratch, reused frame to frame.
#[derive(Debug, Clone, Default)]
pub struct FrameSet {
    words: Vec<u64>,
    records: u32,
}

impl FrameSet {
    /// An empty set over `records` records.
    pub fn empty(records: u32) -> FrameSet {
        FrameSet { words: vec![0; records.div_ceil(64) as usize], records }
    }

    /// Resets to the empty set over `records` records, reusing storage.
    pub fn reset(&mut self, records: u32) {
        self.words.clear();
        self.words.resize(records.div_ceil(64) as usize, 0);
        self.records = records;
    }

    /// Sets every bit in `[0, records)`.
    pub fn fill(&mut self) {
        for w in &mut self.words {
            *w = u64::MAX;
        }
        self.trim();
    }

    /// ORs a posting's indices in.
    pub fn or_posting(&mut self, p: &Posting) {
        for v in p.iter().flatten() {
            if v < self.records {
                self.words[(v >> 6) as usize] |= 1 << (v & 63);
            }
        }
    }

    /// Intersects with `other` (`records` must match).
    pub fn and_assign(&mut self, other: &FrameSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Complements in place (within `[0, records)`).
    pub fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.trim();
    }

    /// Clears bits outside a `[lo, hi)` frame-local range.
    pub fn clamp_range(&mut self, lo: u32, hi: u32) {
        for v in 0..self.records {
            if v < lo || v >= hi {
                self.words[(v >> 6) as usize] &= !(1 << (v & 63));
            }
        }
    }

    /// Number of set bits.
    pub fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros();
                bits &= bits - 1;
                Some(wi as u32 * 64 + b)
            })
        })
    }

    fn trim(&mut self) {
        let tail = self.records % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igm_lba::TraceBatch;
    use igm_workload::Benchmark;

    fn roundtrip(sorted: &[u32], records: u32) {
        let p = Posting::build(Dim::PcBucket, 7, sorted, records);
        let got: Vec<u32> = p.iter().map(|v| v.expect("well-formed")).collect();
        assert_eq!(got, sorted, "container {} mangled the set", p.container_kind());
        p.validate(records).unwrap();
        // Wire roundtrip through a frame section.
        let fp = FramePostings { postings: vec![p] };
        let mut bytes = Vec::new();
        fp.encode(&mut bytes);
        let mut pos = 0;
        let back = FramePostings::decode(&bytes, &mut pos, records).unwrap();
        assert_eq!(back, fp);
        assert_eq!(pos, bytes.len());
    }

    #[test]
    fn containers_roundtrip_shapes() {
        roundtrip(&[0], 1);
        roundtrip(&[5], 100);
        roundtrip(&(0..100).collect::<Vec<_>>(), 100); // pure run
        roundtrip(&(0..500).map(|i| i * 7).collect::<Vec<_>>(), 3500); // strided
        roundtrip(&[0, 3, 4, 9, 11, 12, 40, 41, 42, 43, 44, 99], 100); // mixed
        roundtrip(&(0..256).map(|i| i * 2).collect::<Vec<_>>(), 512); // even bits
                                                                      // Dense irregular (bitset likely wins).
        let dense: Vec<u32> = (0..400).filter(|i| i % 17 != 3 && i % 5 != 1).collect();
        roundtrip(&dense, 400);
    }

    #[test]
    fn loop_shapes_compress_to_runs_or_pxor() {
        // A loop body of 10 records repeated 200 times: each record
        // shape sits at an arithmetic progression. Periodic-XOR stores
        // just the period and one bootstrap position.
        let set: Vec<u32> = (0..200u32).map(|i| i * 10 + 3).collect();
        let p = Posting::build(Dim::OpClass, 0, &set, 2000);
        assert_eq!(p.container_kind(), "pxor");
        assert!(p.body_len() <= 3, "period + bootstrap should be ~2 bytes, got {}", p.body_len());
        assert_eq!(p.iter().map(|v| v.unwrap()).collect::<Vec<_>>(), set);
        // A single run anchored near zero is still cheapest as a
        // strided run (no bootstrap gap to pay off).
        let set: Vec<u32> = (0..100u32).map(|i| i * 3).collect();
        let p = Posting::build(Dim::PcBucket, 0, &set, 2000);
        assert_eq!(p.container_kind(), "runs");
        assert!(p.body_len() <= 3, "one strided run should be 3 bytes, got {}", p.body_len());
    }

    #[test]
    fn periodic_xor_compresses_interleaved_phases() {
        // Two interleaved arithmetic progressions of the same period
        // defeat sequential run extraction (the stride alternates), but
        // the periodic XOR cancels both phases at once. A dropped
        // element mid-stream stays a local perturbation.
        let mut set: Vec<u32> = (0..300u32).flat_map(|i| [i * 7 + 1, i * 7 + 4]).collect();
        set.retain(|&v| v != 7 * 100 + 4);
        let p = Posting::build(Dim::AddrPage, 9, &set, 2100);
        assert_eq!(p.container_kind(), "pxor");
        assert!(p.body_len() <= 8, "two phases + a perturbation, got {}", p.body_len());
        assert_eq!(p.iter().map(|v| v.unwrap()).collect::<Vec<_>>(), set);
        p.validate(2100).unwrap();
        // Wire roundtrip preserves the container choice.
        let fp = FramePostings { postings: vec![p] };
        let mut bytes = Vec::new();
        fp.encode(&mut bytes);
        let mut pos = 0;
        assert_eq!(FramePostings::decode(&bytes, &mut pos, 2100).unwrap(), fp);
    }

    #[test]
    fn from_batch_inverts_every_dimension() {
        let mut batch = TraceBatch::new();
        batch.extend_entries(Benchmark::Gzip.trace(2_000));
        let fp = FramePostings::from_batch(&batch);
        // Every record appears exactly once in the op-class dimension.
        let total: u32 = fp.keys(Dim::OpClass).map(|p| p.cardinality).sum();
        assert_eq!(total, batch.len() as u32);
        // Same for pc buckets.
        let total: u32 = fp.keys(Dim::PcBucket).map(|p| p.cardinality).sum();
        assert_eq!(total, batch.len() as u32);
        // Membership agrees with a scalar re-derivation for one posting.
        let some_page = fp.keys(Dim::AddrPage).next().expect("gzip touches memory");
        let key = some_page.key;
        let mut expect = Vec::new();
        for (i, e) in batch.iter().enumerate() {
            let mut pages = Vec::new();
            e.op.for_each_addr(|a| pages.push(a >> PAGE_SHIFT));
            if pages.contains(&key) {
                expect.push(i as u32);
            }
        }
        let got: Vec<u32> = some_page.iter().map(|v| v.unwrap()).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn frame_set_ops() {
        let mut a = FrameSet::empty(130);
        let p = Posting::build(Dim::PcBucket, 0, &[0, 64, 129], 130);
        a.or_posting(&p);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
        assert_eq!(a.count(), 3);
        let mut b = FrameSet::empty(130);
        b.fill();
        assert_eq!(b.count(), 130);
        b.and_assign(&a);
        assert_eq!(b.count(), 3);
        a.not_assign();
        assert_eq!(a.count(), 127);
        assert!(!a.iter().any(|v| v == 0 || v == 64 || v == 129));
        let mut c = FrameSet::empty(130);
        c.fill();
        c.clamp_range(10, 20);
        assert_eq!(c.iter().collect::<Vec<_>>(), (10..20).collect::<Vec<_>>());
    }
}
