//! The paper's contribution: three hardware accelerators for
//! instruction-grain lifeguards, composed into the LBA event-dispatch
//! pipeline.
//!
//! * [`it`] — **Inheritance Tracking** (paper §4): a per-register table that
//!   tracks *which memory address a register's metadata inherits from* under
//!   unary propagation, absorbing most register-borne propagation events in
//!   hardware and delivering only memory-metadata updates (and, for
//!   MemCheck-style lifeguards, eager source checks) to software.
//! * [`filter`] — **Idempotent Filters** (paper §5): a small
//!   lifeguard-configurable cache of recently observed checking events;
//!   hits are redundant checks and are discarded before reaching software.
//! * [`mtlb`] — the **Metadata-TLB** and `LMA` instruction (paper §6): a
//!   user-space software-managed TLB translating application addresses to
//!   metadata addresses in one cycle.
//! * [`dispatch`] — the event-dispatch pipeline gluing record extraction,
//!   the ETCT, IT and IF together (the dashed boxes of the paper's
//!   Figure 3).
//! * [`config`] — per-experiment accelerator configurations
//!   ([`AccelConfig`]) matching the BASE / LMA / LMA+IT / LMA+IF /
//!   LMA+IT+IF bars of the paper's Figure 11.
//!
//! # Soundness contract
//!
//! Every event the accelerators *filter* is one whose delivery could not
//! have changed lifeguard-visible state:
//!
//! * IT only absorbs register-to-register inheritance whose metadata effect
//!   it replays exactly on later materialization (write-after-read conflicts
//!   are detected with the aligned-word bitmap scheme of Figure 5 and
//!   materialized *before* the conflicting store's event is delivered);
//! * IF only filters events the lifeguard declared checking-only, and is
//!   invalidated according to the lifeguard's declared policy;
//! * the M-TLB never filters anything — it accelerates translation and is
//!   kept coherent by software (`lma_config` flushes).
//!
//! These properties are exercised by the property-based tests in each
//! module and by the cross-lifeguard oracle tests in the workspace `tests/`
//! directory.

pub mod config;
pub mod dispatch;
pub mod filter;
pub mod it;
pub mod mtlb;

pub use config::{AccelConfig, Technique};
pub use dispatch::{DispatchPipeline, DispatchStats};
pub use filter::{IdempotentFilter, IfGeometry, IfOutcome, IfStats};
pub use it::{InheritanceTracker, ItConfig, ItState, ItStats};
pub use mtlb::{LmaFault, MetadataTlb, MtlbStats};
