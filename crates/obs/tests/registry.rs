//! Registry correctness under concurrency, plus a proptest pinning the
//! log₂ bucket-boundary assignment.

use igm_obs::{bucket_index, bucket_upper_bound, EventKind, MetricsRegistry, HISTOGRAM_BUCKETS};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

/// Many writer threads hammer one counter, one gauge and one histogram
/// while a reader snapshots continuously: every snapshot must be monotone
/// in the counter, internally consistent in the histogram (count == Σ
/// buckets by construction, sum ≥ what the buckets imply is impossible to
/// check exactly — but sum must also be monotone), and the final totals
/// must be exact.
#[test]
fn hammer_snapshots_monotone_and_consistent() {
    const WRITERS: usize = 8;
    const OPS: u64 = 50_000;

    let registry = Arc::new(MetricsRegistry::new());
    let counter = registry.counter("igm_hammer_total", "hammered counter");
    let gauge = registry.gauge("igm_hammer_gauge", "hammered gauge");
    let hist = registry.histogram("igm_hammer_nanos", "hammered histogram");
    let done = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            // Each clone claims its own counter stripe.
            let counter = counter.clone();
            let gauge = gauge.clone();
            let hist = hist.clone();
            thread::spawn(move || {
                for i in 0..OPS {
                    counter.add(1);
                    gauge.add(1);
                    gauge.sub(1);
                    // Spread observations across many buckets.
                    hist.record((w as u64 + 1) << (i % 20));
                }
            })
        })
        .collect();

    let reader = {
        let registry = Arc::clone(&registry);
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let mut last_count = 0u64;
            let mut last_sum = 0u64;
            let mut snapshots = 0u64;
            while !done.load(Ordering::Acquire) {
                let snap = registry.snapshot();
                let c = snap.counter_value("igm_hammer_total").unwrap();
                assert!(c >= last_count, "counter went backwards: {last_count} -> {c}");
                last_count = c;

                let h = snap.histogram_sample("igm_hammer_nanos", None).unwrap();
                // count() is Σ buckets by construction; assert the
                // invariant the ISSUE names explicitly anyway.
                assert_eq!(h.hist.count(), h.hist.buckets.iter().sum::<u64>());
                assert!(h.hist.sum >= last_sum, "histogram sum went backwards");
                last_sum = h.hist.sum;
                snapshots += 1;
            }
            snapshots
        })
    };

    for w in writers {
        w.join().unwrap();
    }
    done.store(true, Ordering::Release);
    let snapshots = reader.join().unwrap();
    assert!(snapshots > 0);

    let total = (WRITERS as u64) * OPS;
    let snap = registry.snapshot();
    assert_eq!(snap.counter_value("igm_hammer_total"), Some(total));
    assert_eq!(snap.gauge_value("igm_hammer_gauge"), Some(0));
    let h = snap.histogram_sample("igm_hammer_nanos", None).unwrap();
    assert_eq!(h.hist.count(), total);
}

/// Registration is idempotent on (name, labels): a second request shares
/// the same core, different labels get a different one.
#[test]
fn registration_is_idempotent_per_labels() {
    let registry = MetricsRegistry::new();
    let a = registry.counter_with("igm_twice_total", "help", &[("kind", "x")]);
    let b = registry.counter_with("igm_twice_total", "help", &[("kind", "x")]);
    let c = registry.counter_with("igm_twice_total", "help", &[("kind", "y")]);
    a.add(2);
    b.add(3);
    c.add(10);
    let snap = registry.snapshot();
    let values: Vec<u64> =
        snap.counters.iter().filter(|s| s.name == "igm_twice_total").map(|s| s.value).collect();
    assert_eq!(values, vec![5, 10]);
}

/// Timers-off registries keep counters and gauges live but drop every
/// histogram observation without calling `Instant::now()`.
#[test]
fn timers_off_disables_histograms_only() {
    let registry = MetricsRegistry::with_timers(false);
    assert!(!registry.timers_enabled());
    let counter = registry.counter("igm_c_total", "counter");
    let hist = registry.histogram("igm_h_nanos", "histogram");
    counter.add(5);
    assert!(hist.start().is_none());
    hist.record(123);
    hist.stop(None);
    let snap = registry.snapshot();
    assert_eq!(snap.counter_value("igm_c_total"), Some(5));
    assert_eq!(snap.histogram_sample("igm_h_nanos", None).unwrap().hist.count(), 0);
}

/// The event ring rides along in the registry and the exporters render it.
#[test]
fn events_through_registry() {
    let registry = MetricsRegistry::new();
    registry.events().record(EventKind::HandshakeReject {
        peer: "10.0.0.9:1234".into(),
        reason: "bad magic".into(),
    });
    let snap = registry.events().since(0);
    assert_eq!(snap.events.len(), 1);
    let json = snap.to_json();
    assert!(json.contains("\"handshake_reject\""));
    assert!(json.contains("\"bad magic\""));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Pin the log₂ bucket assignment: every value lands in the unique
    /// bucket whose bounds contain it, and boundaries are exact
    /// (2^k - 1 in bucket k, 2^k in bucket k+1).
    #[test]
    fn bucket_assignment_matches_bounds(v in 0u64..=u64::MAX) {
        let i = bucket_index(v);
        prop_assert!(i < HISTOGRAM_BUCKETS);
        prop_assert!(v <= bucket_upper_bound(i));
        if i > 0 {
            prop_assert!(v > bucket_upper_bound(i - 1));
        } else {
            prop_assert_eq!(v, 0);
        }
    }

    /// Boundary pins at each power of two.
    #[test]
    fn bucket_boundaries_exact(k in 0u32..64) {
        let pow = 1u64 << k;
        prop_assert_eq!(bucket_index(pow), k as usize + 1);
        prop_assert_eq!(bucket_index(pow - 1), if k == 0 { 0 } else { k as usize });
        prop_assert_eq!(bucket_upper_bound(k as usize + 1), if k == 63 { u64::MAX } else { (pow << 1) - 1 });
    }
}
