//! Log-Based Architecture (LBA) substrate.
//!
//! LBA (paper §3) captures a log record for every instruction retired by the
//! monitored application, compresses it, ships it through a buffer in the
//! shared on-chip cache, and redelivers it as one or more *events* to the
//! lifeguard running on another core. This crate provides:
//!
//! * [`record`] — the compressed-record size model used for log-buffer
//!   occupancy accounting.
//! * [`buffer`] — the bounded producer/consumer [`buffer::LogBuffer`].
//! * [`event`] — the event vocabulary delivered to lifeguards (propagation
//!   events, memory-access check events, source-check events, annotations)
//!   and the record→events extraction ("event mux" in the paper's Figure 1).
//! * [`etct`] — the event type configuration table, including the Idempotent
//!   Filter configuration fields the paper adds to it (§5).
//!
//! The hardware accelerators themselves (Inheritance Tracking, Idempotent
//! Filters, Metadata-TLB) live in the `igm-core` crate; they plug in between
//! event extraction and handler dispatch.

pub mod buffer;
pub mod etct;
pub mod event;
pub mod record;

pub use buffer::LogBuffer;
pub use etct::{Etct, EtctEntry, FieldSelect, IfEventConfig};
pub use event::{
    extract_batch, extract_events, CheckKind, DeliveredEvent, Event, EventBuf, EventType,
    MetaSource, NUM_EVENT_TYPES,
};
pub use record::{
    batch_bytes, chunks, compressed_size, Chunks, ANNOTATION_RECORD_BYTES, INSTR_RECORD_BYTES,
};
