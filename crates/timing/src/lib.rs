//! Cycle-level timing substrate (paper Table 2).
//!
//! Models the dual-core LBA system: two in-order scalar cores with private
//! 16 KB L1 caches and a shared 512 KB L2, a 200-cycle main memory, and the
//! 64 KB in-L2 log buffer coupling the application (producer) core to the
//! lifeguard (consumer) core. The co-simulation ([`CoSim`]) computes, per
//! log record, when the producer retires it and when the consumer finishes
//! its handlers, respecting buffer capacity (full → producer stalls; empty
//! → consumer idles) and the system-call drain rule (the application stalls
//! at kernel entries until the lifeguard catches up — LBA's fault-
//! containment requirement, §3).
//!
//! The *slowdown* reported by every experiment is monitored producer finish
//! time divided by the same trace's stand-alone finish time, which is what
//! the paper's Figures 10–11 plot.

pub mod cache;
pub mod config;
pub mod cosim;
pub mod params;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use config::SystemConfig;
pub use cosim::{CoSim, TimingReport};
