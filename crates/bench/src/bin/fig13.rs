//! Figure 13: IT and IF filtering with trace-driven (PIN-style) analysis.
//!
//! (a) percentage of propagation events removed by Inheritance Tracking,
//!     per SPEC benchmark;
//! (b) percentage of check events removed by Idempotent Filters versus
//!     filter entries and associativity, loads and stores combined
//!     (AddrCheck-style);
//! (c) the same with separate load/store categories (LockSet-style).

use igm_bench::run_scale;
use igm_core::ItConfig;
use igm_profiling::{if_sweep, it_reduction, CcMode};
use igm_workload::Benchmark;

fn main() {
    let n = run_scale();
    println!("=== Figure 13(a): IT-reduced propagation events (paper: 35.8%-82.0%) ===");
    for b in Benchmark::ALL {
        let r = it_reduction(b.trace(n), ItConfig::taint_style());
        println!("{:<8} {:>5.1}%", b.name(), r * 100.0);
    }

    let entries = [8usize, 16, 32, 64, 128, 256];
    let ways = [0usize, 16, 8, 4, 2, 1];
    for (mode, label) in [
        (CcMode::Combined, "Figure 13(b): combined loads+stores (AddrCheck-style)"),
        (CcMode::Separate, "Figure 13(c): separate loads/stores (LockSet-style)"),
    ] {
        println!("\n=== {label}: IF-reduced check events, avg over benchmarks ===");
        print!("{:<12}", "entries:");
        for e in entries {
            print!("{e:>8}");
        }
        println!();
        for &w in &ways {
            let wl = if w == 0 { "full".to_owned() } else { format!("{w}-way") };
            print!("{wl:<12}");
            for &e in &entries {
                if w > e {
                    print!("{:>8}", "-");
                    continue;
                }
                // Average over benchmarks, as the paper plots.
                let mut acc = 0.0;
                for b in Benchmark::ALL {
                    let pts = if_sweep(|| b.trace(n), &[e], &[w], mode);
                    acc += pts[0].2;
                }
                print!("{:>7.1}%", acc / Benchmark::ALL.len() as f64 * 100.0);
            }
            println!();
        }
    }
    println!("\n(paper: curves rise from ~20-30% at 8 entries to ~65-75% at 256;");
    println!(" 4 or more ways works as well as fully associative)");
}
