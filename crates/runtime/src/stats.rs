//! Aggregated runtime statistics and per-session reports.

use crate::pool::SessionId;
use crate::spsc::ChannelStatsSnapshot;
use igm_core::DispatchStats;
use igm_lifeguards::{LifeguardKind, Violation};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Pool-wide monotonic counters (lives behind an `Arc`, updated by the
/// workers with relaxed atomics — the hot path never takes a lock for
/// accounting).
#[derive(Debug)]
pub struct PoolStats {
    pub(crate) records: AtomicU64,
    pub(crate) events_delivered: AtomicU64,
    pub(crate) violations: AtomicU64,
    pub(crate) sessions_opened: AtomicU64,
    pub(crate) sessions_closed: AtomicU64,
    pub(crate) epoch_jobs: AtomicU64,
    pub(crate) steals: AtomicU64,
    started: Instant,
}

impl Default for PoolStats {
    fn default() -> PoolStats {
        PoolStats {
            records: AtomicU64::new(0),
            events_delivered: AtomicU64::new(0),
            violations: AtomicU64::new(0),
            sessions_opened: AtomicU64::new(0),
            sessions_closed: AtomicU64::new(0),
            epoch_jobs: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            started: Instant::now(),
        }
    }
}

impl PoolStats {
    pub(crate) fn snapshot(&self) -> PoolStatsSnapshot {
        PoolStatsSnapshot {
            records: self.records.load(Ordering::Relaxed),
            events_delivered: self.events_delivered.load(Ordering::Relaxed),
            violations: self.violations.load(Ordering::Relaxed),
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            sessions_closed: self.sessions_closed.load(Ordering::Relaxed),
            epoch_jobs: self.epoch_jobs.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            uptime: self.started.elapsed(),
        }
    }
}

/// A point-in-time view of a pool's aggregate counters.
#[derive(Debug, Clone, Copy)]
pub struct PoolStatsSnapshot {
    /// Records processed across all sessions and epoch jobs.
    pub records: u64,
    /// Events delivered to lifeguard handlers (finalized sessions and epoch
    /// jobs; open sessions contribute on close).
    pub events_delivered: u64,
    /// Violations reported.
    pub violations: u64,
    /// Sessions ever opened.
    pub sessions_opened: u64,
    /// Sessions finalized.
    pub sessions_closed: u64,
    /// Epoch jobs executed.
    pub epoch_jobs: u64,
    /// Sessions migrated between workers by the work-stealing scheduler
    /// (each steal transfers the session's pending batches *and* its shadow
    /// shard to the thief).
    pub steals: u64,
    /// Time since the pool started.
    pub uptime: Duration,
}

impl PoolStatsSnapshot {
    /// Aggregate records per second since the pool started.
    pub fn records_per_sec(&self) -> f64 {
        let secs = self.uptime.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.records as f64 / secs
        }
    }
}

/// Everything one finished tenant session produced.
#[derive(Debug)]
pub struct SessionReport {
    /// Pool-wide session id.
    pub id: SessionId,
    /// Tenant label.
    pub name: String,
    /// Which lifeguard monitored the tenant.
    pub lifeguard: LifeguardKind,
    /// Records processed.
    pub records: u64,
    /// Dispatch pipeline counters.
    pub dispatch: DispatchStats,
    /// Violations reported, in trace order.
    pub violations: Vec<Violation>,
    /// Final lifeguard metadata footprint in bytes.
    pub metadata_bytes: u64,
    /// Log-channel transport counters (stalls, peak occupancy, depth).
    pub channel: ChannelStatsSnapshot,
    /// Wall-clock session duration (open → finalize).
    pub wall: Duration,
}

impl SessionReport {
    /// Records per wall-clock second for this session.
    pub fn records_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.records as f64 / secs
        }
    }

    /// One formatted row for [`stats_table`].
    pub fn table_row(&self) -> String {
        format!(
            "{:<10} {:<28} {:>10} {:>12.0} {:>7} {:>8} {:>10}",
            self.name,
            self.lifeguard.name(),
            self.records,
            self.records_per_sec(),
            self.violations.len(),
            self.channel.stall_events,
            self.channel.peak_bytes,
        )
    }
}

/// Renders finished sessions as the aggregated stats table the examples
/// print.
pub fn stats_table(reports: &[SessionReport]) -> String {
    let mut out = format!(
        "{:<10} {:<28} {:>10} {:>12} {:>7} {:>8} {:>10}\n",
        "tenant", "lifeguard", "records", "records/s", "viols", "stalls", "peak B"
    );
    for r in reports {
        out.push_str(&r.table_row());
        out.push('\n');
    }
    let records: u64 = reports.iter().map(|r| r.records).sum();
    let viols: usize = reports.iter().map(|r| r.violations.len()).sum();
    out.push_str(&format!("total      {records} records, {viols} violations\n"));
    out
}
