//! Live observability, end to end over loopback.
//!
//! The acceptance bar for `igm-obs`: while a `MonitorPool` and an
//! `IngestServer` are running, the pool's `StatsServer` must serve
//! Prometheus and JSON snapshots over plain HTTP — and once the run
//! settles, the scraped counters must agree exactly with the final
//! `NetServerReport` and `PoolStatsSnapshot`, because they are views over
//! the same registry.

use igm::lifeguards::LifeguardKind;
use igm::net::{IngestServer, NetServerConfig, TraceForwarder};
use igm::runtime::{MonitorPool, PoolConfig, SessionConfig};
use igm::workload::Benchmark;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

const N: u64 = 10_000;

/// One HTTP/1.1 GET, returning (status line, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("stats endpoint reachable");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
        .expect("request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response");
    let status = response.lines().next().unwrap_or_default().to_owned();
    let body_at = response.find("\r\n\r\n").expect("header terminator") + 4;
    (status, response[body_at..].to_owned())
}

/// The value of an unlabeled counter in a Prometheus exposition body.
fn scraped_counter(body: &str, name: &str) -> u64 {
    let line = body
        .lines()
        .find(|l| l.split([' ', '{']).next() == Some(name) && !l.starts_with('#'))
        .unwrap_or_else(|| panic!("{name} not in the scrape"));
    line.rsplit(' ').next().unwrap().parse().unwrap_or_else(|e| panic!("{name}: {e}"))
}

#[test]
fn live_scrape_matches_the_final_reports() {
    let pool = MonitorPool::new(PoolConfig::with_workers(2));
    let mut stats_srv = pool.serve_stats("127.0.0.1:0").expect("stats endpoint");
    let stats_addr = stats_srv.local_addr();

    // While the pool is live (before, during and after the ingest run),
    // the endpoint serves all three content types.
    let (status, metrics) = http_get(stats_addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    assert!(metrics.contains("igm_pool_records_total"), "counters registered at pool creation");
    let (status, json) = http_get(stats_addr, "/stats.json");
    assert!(status.contains("200"), "{status}");
    assert!(json.contains("\"counters\""), "JSON snapshot shape");

    let server = IngestServer::bind("127.0.0.1:0", &pool, NetServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let tenants =
        [(Benchmark::Gzip, LifeguardKind::AddrCheck), (Benchmark::Mcf, LifeguardKind::TaintCheck)];
    let clients: Vec<_> = tenants
        .into_iter()
        .map(|(bench, kind)| {
            std::thread::spawn(move || {
                let cfg = SessionConfig::new(bench.name(), kind)
                    .synthetic()
                    .premark(&bench.profile().premark_regions());
                let mut fwd = TraceForwarder::connect(addr, &cfg).unwrap();
                fwd.stream(bench.trace(N)).unwrap();
                fwd.finish().unwrap()
            })
        })
        .collect();

    // Scrape concurrently with the serving loop: the endpoint must answer
    // while accept/handshake/ingest and the workers are all running.
    let live = std::thread::spawn(move || http_get(stats_addr, "/metrics"));
    let report = server.serve_connections(clients.len());
    let (live_status, live_body) = live.join().unwrap();
    assert!(live_status.contains("200"), "mid-run scrape must succeed: {live_status}");
    assert!(live_body.contains("igm_dispatch_batch_nanos_bucket"), "histograms exported live");
    for c in clients {
        c.join().unwrap();
    }

    // Settled: scraped counters == the run's own reports, exactly.
    assert_eq!(report.accepted, 2);
    assert!(report.ingest.errors.is_empty(), "{:?}", report.ingest.errors);
    let stats = pool.stats();
    let (_, body) = http_get(stats_addr, "/metrics");
    assert_eq!(scraped_counter(&body, "igm_pool_records_total"), stats.records);
    assert_eq!(scraped_counter(&body, "igm_pool_records_total"), report.ingest.records());
    assert_eq!(scraped_counter(&body, "igm_pool_violations_total"), stats.violations);
    assert_eq!(scraped_counter(&body, "igm_pool_sessions_opened_total"), stats.sessions_opened);
    assert_eq!(scraped_counter(&body, "igm_pool_sessions_closed_total"), stats.sessions_closed);
    assert_eq!(scraped_counter(&body, "igm_net_accepted_total"), report.accepted as u64);
    assert_eq!(scraped_counter(&body, "igm_net_rejected_total"), report.rejected.len() as u64);
    assert_eq!(
        scraped_counter(&body, "igm_ingest_lanes_opened_total"),
        report.ingest.lanes.len() as u64
    );
    assert_eq!(scraped_counter(&body, "igm_ingest_lane_failures_total"), 0);

    // The JSON endpoints agree with the text one.
    let (_, json) = http_get(stats_addr, "/stats.json");
    assert!(
        json.contains(&format!(
            "{{\"name\": \"igm_pool_records_total\", \"labels\": {{}}, \"value\": {}}}",
            stats.records
        )),
        "JSON snapshot carries the same counter value"
    );
    let (_, events) = http_get(stats_addr, "/events.json");
    assert!(events.contains("\"kind\": \"session_open\""), "lifecycle events drain over HTTP");
    assert!(events.contains("\"kind\": \"session_close\""));

    // 404 for unknown paths; the endpoint survives to answer again.
    let (status, _) = http_get(stats_addr, "/nope");
    assert!(status.contains("404"), "{status}");
    let (status, _) = http_get(stats_addr, "/metrics");
    assert!(status.contains("200"), "{status}");

    stats_srv.stop();
    pool.shutdown();
}
