//! # igm-trace — the monitored-event stream as a first-class artifact
//!
//! The paper's log-based architecture rests on a *compressed instruction
//! log* captured by hardware and shipped to the lifeguard core. Until this
//! crate, the repo's logs were transient: every workload lived as an
//! in-memory `Vec<TraceEntry>` pushed through a blocking channel and gone
//! when the run ended. `igm-trace` makes the stream durable, multiplexable
//! and replayable — the way IPU-style introspection units and
//! FireGuard-style fabrics treat the monitored-event stream as a
//! serialized artifact in its own right. Three layers:
//!
//! * [`codec`] — a compact binary encoding of the trace record stream:
//!   per-frame value predictors (next-pc, last-value and stride tables)
//!   emit one hit *bit* per predicted field, with LEB128 delta-coded
//!   escapes for the misses, one framed + checksummed chunk per
//!   transport batch (the paper's log-compression stack). The wire
//!   streams correspond one-to-one with the columnar
//!   [`igm_lba::TraceBatch`] layout: [`TraceWriter::write_chunk_batch`]
//!   encodes straight from the columns and
//!   [`TraceReader::read_chunk_into_batch`] decodes straight into them —
//!   no intermediate `Vec<TraceEntry>` on either side (the entry-slice
//!   APIs remain as thin conversion wrappers). Typical generated
//!   workloads encode to ~1–1.5 bytes/record, ~20× under the in-memory
//!   `size_of::<TraceEntry>()`, and legacy delta-coded (format 1) files
//!   still replay.
//! * [`capture`] — [`CaptureSession`] tees a live pool session's batches
//!   into a trace file; [`replay_file`]/[`replay_reader`] feed a recorded
//!   file back through a fresh [`igm_runtime::MonitorPool`] session and
//!   reproduce the live run's violations and dispatch stats exactly.
//! * [`index`] — [`TraceIndex`]: a sidecar frame-offset directory (built
//!   by the writer on request, or by a header-only scan) that lets
//!   [`replay_window`] seek straight to a record-range window without
//!   decoding the prefix.
//! * [`ingest`] — [`Ingestor`]: **one** OS thread multiplexing many
//!   tenant [`TraceSource`]s (in-memory generators, trace files,
//!   readiness-polled pipes, `igm-net` sockets) into pool sessions via
//!   non-blocking sends, with per-source backpressure staging and
//!   fairness accounting — replacing the one-blocking-thread-per-tenant
//!   ingestion pattern. Any lane can be teed to a trace sink
//!   ([`Ingestor::add_source_teed`]), so piped and remote tenants leave
//!   on-disk artifacts too.
//!
//! Any scenario becomes reproducible from an artifact: record it once
//! (capture, or [`codec::encode_to_vec`] from a generator), then replay
//! it into any lifeguard, pool size, or accelerator configuration.

pub mod capture;
pub mod codec;
pub mod index;
pub mod ingest;
pub mod postings;

pub use capture::{
    capture_to_file, capture_to_lake, lake_stem, replay_file, replay_reader, replay_window,
    CaptureError, CaptureSession,
};
pub use codec::{
    checksum, decode_frame, decode_frame_v1, decode_frame_with, decode_from_slice, encode_frame,
    encode_frame_v1, encode_frame_with, encode_to_vec, frame_codec, Codec, CodecMetrics,
    Predictors, TraceError, TraceReader, TraceWriter, FORMAT_VERSION, FORMAT_VERSION_V1,
    FRAME_HEADER_BYTES, FRAME_HEADER_BYTES_V2, MAGIC, MAX_PAYLOAD_BYTES,
};
pub use index::{IndexEntry, TraceIndex, INDEX_MAGIC, INDEX_VERSION, INDEX_VERSION_V2};
pub use ingest::{
    batch_pipe, FileSource, IngestConfig, IngestReport, Ingestor, IterSource, LanePoll, LaneStats,
    PassOutcome, PipeSender, PipeSource, SourceStatus, TraceSource,
};
pub use postings::{
    op_class, site, Dim, FramePostings, FrameSet, Posting, PAGE_SHIFT, PC_BUCKET_SHIFT,
};
