//! Inheritance Tracking (paper §4).
//!
//! Instead of propagating metadata *values* in hardware (which fixes the
//! metadata format and semantics), the IT table tracks metadata
//! *inheritance*: each general-purpose register is in one of three states —
//!
//! * **clean** — the register's metadata is the lifeguard's "clean" value
//!   (untainted / initialized);
//! * **addr a** — the register's metadata equals the metadata of memory
//!   range `a` (lazy evaluation; the metadata itself was never read);
//! * **in lifeguard** — the register's metadata is maintained by lifeguard
//!   software.
//!
//! Unary propagation (copies and immediate-operand computations) updates
//! this table without delivering anything. Non-unary operations produce
//! clean results (the §4.2 unary assumption), optionally after delivering
//! eager source checks (MemCheck property (a)). Write-after-read conflicts —
//! a store to an address some register currently inherits from — are
//! detected with the two-aligned-word byte-bitmap scheme of Figure 5 and
//! resolved by materializing the register's metadata in software *before*
//! the store's event.

use igm_isa::{MemRef, OpClass, Reg, NUM_REGS};
use igm_lba::{CheckKind, DeliveredEvent, Event, MetaSource};

/// Per-register inheritance state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ItState {
    /// Metadata is the lifeguard's clean value.
    #[default]
    Clean,
    /// Metadata equals the metadata of this memory range.
    Addr(MemRef),
    /// Metadata is maintained by lifeguard software.
    InLifeguard,
}

/// Lifeguard-selected IT policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItConfig {
    /// Deliver eager checks for possibly-unclean sources of non-unary
    /// operations (MemCheck satisfies the paper's property (a): an unclean
    /// source of a non-unary operation is an error, so it must be checked
    /// when the destination is cleaned). TaintCheck satisfies property (b)
    /// and sets this to `false`: non-unary results are silently clean.
    pub nonunary_check: bool,
    /// The §4.3 optimization: a binary operation whose register source is
    /// known clean leaves the destination's metadata untouched ("do
    /// nothing"), which follows generic propagation exactly.
    pub clean_rs_do_nothing: bool,
    /// Detect write-after-read conflicts (must stay `true` for soundness;
    /// exposed for the ablation benchmarks only).
    pub conflict_detection: bool,
}

impl Default for ItConfig {
    fn default() -> ItConfig {
        ItConfig { nonunary_check: false, clean_rs_do_nothing: true, conflict_detection: true }
    }
}

impl ItConfig {
    /// The TaintCheck-style configuration (silent cleaning of non-unary
    /// results).
    pub fn taint_style() -> ItConfig {
        ItConfig::default()
    }

    /// The MemCheck-style configuration (eager source checks on non-unary
    /// operations).
    pub fn memcheck_style() -> ItConfig {
        ItConfig { nonunary_check: true, ..ItConfig::default() }
    }
}

/// Event counters exposed by the tracker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ItStats {
    /// Propagation events entering the tracker.
    pub prop_in: u64,
    /// Propagation events absorbed entirely in hardware.
    pub prop_filtered: u64,
    /// Propagation events delivered to software (possibly transformed).
    pub prop_delivered: u64,
    /// Extra materialization events delivered due to write-after-read
    /// conflicts.
    pub conflict_events: u64,
    /// Extra materialization events delivered when flushing for `other`
    /// instructions or annotations.
    pub flush_events: u64,
    /// Eager non-unary source checks generated (MemCheck style).
    pub nonunary_checks: u64,
    /// Register-source check events entering the tracker.
    pub check_in: u64,
    /// Register-source checks discarded because the register was clean.
    pub check_filtered: u64,
    /// Register-source checks rewritten to memory sources.
    pub check_rewritten: u64,
}

impl ItStats {
    /// Fraction of incoming propagation events absorbed by the tracker.
    pub fn prop_reduction(&self) -> f64 {
        if self.prop_in == 0 {
            0.0
        } else {
            self.prop_filtered as f64 / self.prop_in as f64
        }
    }
}

/// The two 4-byte-aligned address words plus byte bitmaps used for conflict
/// detection (the four rightmost IT-table columns in Figure 5). Access
/// sizes are at most 4 bytes, so a reference spans at most two aligned
/// words.
fn aligned_bitmaps(m: MemRef) -> [(u32, u8); 2] {
    let w0 = m.addr & !3;
    let start = m.addr & 3;
    let len = m.size.bytes();
    let in_w0 = (4 - start).min(len);
    let bits0 = (((1u16 << in_w0) - 1) as u8) << start;
    let rem = len - in_w0;
    let bits1 = ((1u16 << rem) - 1) as u8;
    [(w0, bits0), (w0.wrapping_add(4), bits1)]
}

/// Whether two references overlap according to the aligned-bitmap hardware
/// comparison.
fn bitmaps_overlap(a: MemRef, b: MemRef) -> bool {
    let pa = aligned_bitmaps(a);
    let pb = aligned_bitmaps(b);
    pa.iter().any(|(wa, ba)| *ba != 0 && pb.iter().any(|(wb, bb)| wa == wb && (ba & bb) != 0))
}

/// The unary Inheritance Tracking hardware (Figure 5).
///
/// # Example
///
/// ```
/// use igm_core::{InheritanceTracker, ItConfig, ItState};
/// use igm_isa::{MemRef, OpClass, Reg};
/// use igm_lba::Event;
///
/// let mut it = InheritanceTracker::new(ItConfig::taint_style());
/// let mut out = Vec::new();
/// // mov A, %eax  — absorbed; %eax now inherits from A.
/// it.process(0x1000, Event::Prop(OpClass::MemToReg {
///     src: MemRef::word(0x9000), rd: Reg::Eax }), &mut out);
/// assert!(out.is_empty());
/// assert_eq!(it.state(Reg::Eax), ItState::Addr(MemRef::word(0x9000)));
/// ```
#[derive(Debug, Clone)]
pub struct InheritanceTracker {
    cfg: ItConfig,
    table: [ItState; NUM_REGS],
    stats: ItStats,
}

impl InheritanceTracker {
    /// Creates a tracker with all registers clean.
    pub fn new(cfg: ItConfig) -> InheritanceTracker {
        InheritanceTracker { cfg, table: [ItState::Clean; NUM_REGS], stats: ItStats::default() }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ItConfig {
        &self.cfg
    }

    /// Current state of a register.
    pub fn state(&self, r: Reg) -> ItState {
        self.table[r.index()]
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &ItStats {
        &self.stats
    }

    fn set(&mut self, r: Reg, s: ItState) {
        self.table[r.index()] = s;
    }

    fn deliver(&mut self, pc: u32, ev: Event, out: &mut Vec<DeliveredEvent>) {
        self.stats.prop_delivered += 1;
        out.push(DeliveredEvent::new(pc, ev));
    }

    /// Materializes every register inheriting from a range overlapping
    /// `store` (the write-after-read conflict rule), delivering the
    /// corresponding `mem_to_reg` events *before* the store's own event.
    fn resolve_conflicts(&mut self, pc: u32, store: MemRef, out: &mut Vec<DeliveredEvent>) {
        if !self.cfg.conflict_detection {
            return;
        }
        for i in 0..NUM_REGS {
            if let ItState::Addr(a) = self.table[i] {
                if bitmaps_overlap(a, store) {
                    let r = Reg::from_index(i);
                    self.stats.conflict_events += 1;
                    out.push(DeliveredEvent::new(
                        pc,
                        Event::Prop(OpClass::MemToReg { src: a, rd: r }),
                    ));
                    self.set(r, ItState::InLifeguard);
                }
            }
        }
    }

    /// Materializes one register's metadata into software and marks it
    /// in-lifeguard; used when flushing for `other` events and annotations.
    fn flush_reg(&mut self, pc: u32, r: Reg, out: &mut Vec<DeliveredEvent>) {
        match self.state(r) {
            ItState::InLifeguard => {}
            ItState::Clean => {
                self.stats.flush_events += 1;
                out.push(DeliveredEvent::new(pc, Event::Prop(OpClass::ImmToReg { rd: r })));
                self.set(r, ItState::InLifeguard);
            }
            ItState::Addr(a) => {
                self.stats.flush_events += 1;
                out.push(DeliveredEvent::new(pc, Event::Prop(OpClass::MemToReg { src: a, rd: r })));
                self.set(r, ItState::InLifeguard);
            }
        }
    }

    /// Flushes every register to the in-lifeguard state (used on annotation
    /// records, whose handlers may rewrite arbitrary metadata).
    pub fn flush_all(&mut self, pc: u32, out: &mut Vec<DeliveredEvent>) {
        for r in Reg::ALL {
            self.flush_reg(pc, r, out);
        }
    }

    /// Delivers an eager non-unary source check if the source register may
    /// be unclean (MemCheck property (a)).
    fn check_source_reg(&mut self, pc: u32, r: Reg, out: &mut Vec<DeliveredEvent>) {
        if !self.cfg.nonunary_check {
            return;
        }
        let source = match self.state(r) {
            ItState::Clean => return,
            ItState::Addr(a) => MetaSource::Mem(a),
            ItState::InLifeguard => MetaSource::Reg(r),
        };
        self.stats.nonunary_checks += 1;
        out.push(DeliveredEvent::new(pc, Event::Check { kind: CheckKind::NonUnaryInput, source }));
    }

    /// Delivers an eager non-unary source check for a memory source.
    fn check_source_mem(&mut self, pc: u32, m: MemRef, out: &mut Vec<DeliveredEvent>) {
        if !self.cfg.nonunary_check {
            return;
        }
        self.stats.nonunary_checks += 1;
        out.push(DeliveredEvent::new(
            pc,
            Event::Check { kind: CheckKind::NonUnaryInput, source: MetaSource::Mem(m) },
        ));
    }

    /// Runs one event through the tracker, appending everything that must
    /// reach the lifeguard to `out`.
    ///
    /// Propagation events follow the Figure 5 state-transition-and-action
    /// table. Register-source check events are resolved through the table:
    /// clean registers pass trivially (the check is discarded), inheriting
    /// registers are rewritten to the inherited memory source, in-lifeguard
    /// registers pass through unchanged. All other events pass through
    /// unchanged (annotations should be routed to [`Self::flush_all`] by the
    /// dispatch pipeline *before* delivery).
    pub fn process(&mut self, pc: u32, ev: Event, out: &mut Vec<DeliveredEvent>) {
        match ev {
            Event::Prop(op) => self.process_prop(pc, op, out),
            Event::Check { kind, source: MetaSource::Reg(r) } => {
                self.stats.check_in += 1;
                match self.state(r) {
                    ItState::Clean => {
                        self.stats.check_filtered += 1;
                    }
                    ItState::Addr(a) => {
                        self.stats.check_rewritten += 1;
                        out.push(DeliveredEvent::new(
                            pc,
                            Event::Check { kind, source: MetaSource::Mem(a) },
                        ));
                    }
                    ItState::InLifeguard => {
                        out.push(DeliveredEvent::new(pc, ev));
                    }
                }
            }
            other => out.push(DeliveredEvent::new(pc, other)),
        }
    }

    fn process_prop(&mut self, pc: u32, op: OpClass, out: &mut Vec<DeliveredEvent>) {
        self.stats.prop_in += 1;
        let filtered_before = out.len();
        match op {
            OpClass::ImmToReg { rd } => {
                self.set(rd, ItState::Clean);
            }
            OpClass::ImmToMem { dst } => {
                self.resolve_conflicts(pc, dst, out);
                self.deliver(pc, Event::Prop(OpClass::ImmToMem { dst }), out);
            }
            OpClass::RegSelf { .. } | OpClass::ReadOnly { .. } => {
                // Unary computation on the register itself (or a pure
                // flag-setter): metadata unchanged.
            }
            OpClass::MemSelf { .. } => {
                // Unary computation on the memory location itself: metadata
                // unchanged, so no conflict either.
            }
            OpClass::RegToReg { rs, rd } => match self.state(rs) {
                ItState::Clean => self.set(rd, ItState::Clean),
                ItState::Addr(a) => self.set(rd, ItState::Addr(a)),
                ItState::InLifeguard => {
                    self.deliver(pc, Event::Prop(OpClass::RegToReg { rs, rd }), out);
                    self.set(rd, ItState::InLifeguard);
                }
            },
            OpClass::RegToMem { rs, dst } => {
                // Conflict resolution first: it may materialize %rs itself,
                // changing the state we dispatch on.
                self.resolve_conflicts(pc, dst, out);
                match self.state(rs) {
                    ItState::Clean => self.deliver(pc, Event::Prop(OpClass::ImmToMem { dst }), out),
                    ItState::Addr(a) => {
                        self.deliver(pc, Event::Prop(OpClass::MemToMem { src: a, dst }), out)
                    }
                    ItState::InLifeguard => {
                        self.deliver(pc, Event::Prop(OpClass::RegToMem { rs, dst }), out)
                    }
                }
            }
            OpClass::MemToReg { src, rd } => {
                self.set(rd, ItState::Addr(src));
            }
            OpClass::MemToMem { src, dst } => {
                self.resolve_conflicts(pc, dst, out);
                self.deliver(pc, Event::Prop(OpClass::MemToMem { src, dst }), out);
            }
            OpClass::DestRegOpReg { rs, rd } => {
                if self.state(rs) == ItState::Clean && self.cfg.clean_rs_do_nothing {
                    // dest = combine(clean, dest) = dest: nothing changes.
                } else {
                    self.check_source_reg(pc, rs, out);
                    self.check_source_reg(pc, rd, out);
                    self.set(rd, ItState::Clean);
                }
            }
            OpClass::DestRegOpMem { src, rd } => {
                // The memory source's metadata is unknown to the hardware,
                // so the clean-%rs optimization cannot apply.
                self.check_source_mem(pc, src, out);
                self.check_source_reg(pc, rd, out);
                self.set(rd, ItState::Clean);
            }
            OpClass::DestMemOpReg { rs, dst } => {
                if self.state(rs) == ItState::Clean && self.cfg.clean_rs_do_nothing {
                    // dest metadata = combine(clean, dest) = dest: no change,
                    // hence no conflict and no delivery.
                } else {
                    self.check_source_reg(pc, rs, out);
                    self.check_source_mem(pc, dst, out);
                    self.resolve_conflicts(pc, dst, out);
                    // The destination's metadata becomes clean: a clean
                    // store, exactly an imm_to_mem for the lifeguard.
                    self.deliver(pc, Event::Prop(OpClass::ImmToMem { dst }), out);
                }
            }
            OpClass::Other { reads, writes, mem_write, .. } => {
                for r in reads.union(writes).iter() {
                    self.flush_reg(pc, r, out);
                }
                if let Some(mw) = mem_write {
                    self.resolve_conflicts(pc, mw, out);
                }
                self.deliver(pc, Event::Prop(op), out);
            }
        }
        if out.len() == filtered_before {
            self.stats.prop_filtered += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igm_isa::{MemSize, RegSet};

    fn mem(addr: u32) -> MemRef {
        MemRef::word(addr)
    }

    fn run(it: &mut InheritanceTracker, pc: u32, ev: Event) -> Vec<Event> {
        let mut out = Vec::new();
        it.process(pc, ev, &mut out);
        out.into_iter().map(|d| d.event).collect()
    }

    /// Replays the paper's Figure 4 instruction sequence and checks both the
    /// IT states and the two delivered events it reports.
    #[test]
    fn figure4_sequence() {
        let a = mem(0xa0);
        let b = mem(0xb0);
        let c = mem(0xc0);
        let d = mem(0xd0);
        let e = mem(0xe0);
        let f = mem(0xf0);
        let (eax, ecx) = (Reg::Eax, Reg::Ecx);
        let mut it = InheritanceTracker::new(ItConfig::taint_style());
        let mut delivered = Vec::new();

        // (1) mov A, %eax          mem_to_reg   -> IT(%eax)=addr(A)
        delivered.extend(run(&mut it, 1, Event::Prop(OpClass::MemToReg { src: a, rd: eax })));
        assert_eq!(it.state(eax), ItState::Addr(a));
        // (2) add B, %eax          dest_reg_op_mem -> IT(%eax)=clear
        delivered.extend(run(&mut it, 2, Event::Prop(OpClass::DestRegOpMem { src: b, rd: eax })));
        assert_eq!(it.state(eax), ItState::Clean);
        // (3) shr 8, %eax          reg_self -> nothing
        delivered.extend(run(&mut it, 3, Event::Prop(OpClass::RegSelf { rd: eax })));
        // (4) mov C, %ecx          mem_to_reg -> IT(%ecx)=addr(C)
        delivered.extend(run(&mut it, 4, Event::Prop(OpClass::MemToReg { src: c, rd: ecx })));
        assert_eq!(it.state(ecx), ItState::Addr(c));
        // (5) and 0xff, %ecx       reg_self -> nothing (state kept!)
        delivered.extend(run(&mut it, 5, Event::Prop(OpClass::RegSelf { rd: ecx })));
        assert_eq!(it.state(ecx), ItState::Addr(c));
        // (6) sub %ecx, %eax       dest_reg_op_reg, %ecx unclean -> IT(%eax)=clear
        delivered.extend(run(&mut it, 6, Event::Prop(OpClass::DestRegOpReg { rs: ecx, rd: eax })));
        assert_eq!(it.state(eax), ItState::Clean);
        // (7) mov %eax, D          reg_to_mem with clean %eax -> imm_to_mem(D)
        delivered.extend(run(&mut it, 7, Event::Prop(OpClass::RegToMem { rs: eax, dst: d })));
        // (8) mov E, %eax          mem_to_reg -> IT(%eax)=addr(E)
        delivered.extend(run(&mut it, 8, Event::Prop(OpClass::MemToReg { src: e, rd: eax })));
        assert_eq!(it.state(eax), ItState::Addr(e));
        // (9) mov %eax, F          reg_to_mem -> mem_to_mem(E -> F)
        delivered.extend(run(&mut it, 9, Event::Prop(OpClass::RegToMem { rs: eax, dst: f })));

        // "IT reduces the number of delivered events from seven to two."
        assert_eq!(
            delivered,
            vec![
                Event::Prop(OpClass::ImmToMem { dst: d }),
                Event::Prop(OpClass::MemToMem { src: e, dst: f }),
            ]
        );
        assert_eq!(it.stats().prop_in, 9);
        assert_eq!(it.stats().prop_delivered, 2);
        assert_eq!(it.stats().prop_filtered, 7);
    }

    #[test]
    fn imm_to_reg_cleans() {
        let mut it = InheritanceTracker::new(ItConfig::taint_style());
        it.set(Reg::Eax, ItState::Addr(mem(0x10)));
        let evs = run(&mut it, 0, Event::Prop(OpClass::ImmToReg { rd: Reg::Eax }));
        assert!(evs.is_empty());
        assert_eq!(it.state(Reg::Eax), ItState::Clean);
    }

    #[test]
    fn reg_to_reg_copies_all_three_states() {
        let mut it = InheritanceTracker::new(ItConfig::taint_style());
        // Clean source.
        let evs = run(&mut it, 0, Event::Prop(OpClass::RegToReg { rs: Reg::Eax, rd: Reg::Ecx }));
        assert!(evs.is_empty());
        assert_eq!(it.state(Reg::Ecx), ItState::Clean);
        // Addr source.
        it.set(Reg::Eax, ItState::Addr(mem(0x40)));
        let evs = run(&mut it, 0, Event::Prop(OpClass::RegToReg { rs: Reg::Eax, rd: Reg::Ecx }));
        assert!(evs.is_empty());
        assert_eq!(it.state(Reg::Ecx), ItState::Addr(mem(0x40)));
        // In-lifeguard source must be delivered.
        it.set(Reg::Edx, ItState::InLifeguard);
        let evs = run(&mut it, 0, Event::Prop(OpClass::RegToReg { rs: Reg::Edx, rd: Reg::Ebx }));
        assert_eq!(evs, vec![Event::Prop(OpClass::RegToReg { rs: Reg::Edx, rd: Reg::Ebx })]);
        assert_eq!(it.state(Reg::Ebx), ItState::InLifeguard);
    }

    #[test]
    fn reg_to_mem_transforms_by_source_state() {
        let d = mem(0xd0);
        let mut it = InheritanceTracker::new(ItConfig::taint_style());
        // In-lifeguard source passes through unchanged.
        it.set(Reg::Eax, ItState::InLifeguard);
        let evs = run(&mut it, 0, Event::Prop(OpClass::RegToMem { rs: Reg::Eax, dst: d }));
        assert_eq!(evs, vec![Event::Prop(OpClass::RegToMem { rs: Reg::Eax, dst: d })]);
    }

    #[test]
    fn write_after_read_conflict_materializes_register_first() {
        let a = mem(0xa0);
        let mut it = InheritanceTracker::new(ItConfig::taint_style());
        // %eax inherits from A.
        run(&mut it, 1, Event::Prop(OpClass::MemToReg { src: a, rd: Reg::Eax }));
        // Store to A: must deliver mem_to_reg(A, %eax) *before* imm_to_mem(A).
        let evs = run(&mut it, 2, Event::Prop(OpClass::ImmToMem { dst: a }));
        assert_eq!(
            evs,
            vec![
                Event::Prop(OpClass::MemToReg { src: a, rd: Reg::Eax }),
                Event::Prop(OpClass::ImmToMem { dst: a }),
            ]
        );
        assert_eq!(it.state(Reg::Eax), ItState::InLifeguard);
        assert_eq!(it.stats().conflict_events, 1);
    }

    #[test]
    fn conflict_detects_partial_overlap() {
        let mut it = InheritanceTracker::new(ItConfig::taint_style());
        // %eax inherits from the 4 bytes at 0xa2 (unaligned).
        let a = MemRef::new(0xa2, MemSize::B4);
        run(&mut it, 1, Event::Prop(OpClass::MemToReg { src: a, rd: Reg::Eax }));
        // A 1-byte store at 0xa5 overlaps (bytes a2..a6).
        let evs =
            run(&mut it, 2, Event::Prop(OpClass::ImmToMem { dst: MemRef::new(0xa5, MemSize::B1) }));
        assert_eq!(evs.len(), 2);
        assert_eq!(it.stats().conflict_events, 1);
        // A 1-byte store at 0xa6 does not overlap.
        let mut it = InheritanceTracker::new(ItConfig::taint_style());
        run(&mut it, 1, Event::Prop(OpClass::MemToReg { src: a, rd: Reg::Eax }));
        let evs =
            run(&mut it, 2, Event::Prop(OpClass::ImmToMem { dst: MemRef::new(0xa6, MemSize::B1) }));
        assert_eq!(evs.len(), 1);
        assert_eq!(it.state(Reg::Eax), ItState::Addr(a));
    }

    #[test]
    fn store_of_register_to_its_own_source_materializes_correctly() {
        // mov A, %eax; mov %eax, A-overlapping store.
        let a = mem(0xa0);
        let mut it = InheritanceTracker::new(ItConfig::taint_style());
        run(&mut it, 1, Event::Prop(OpClass::MemToReg { src: a, rd: Reg::Eax }));
        let evs = run(&mut it, 2, Event::Prop(OpClass::RegToMem { rs: Reg::Eax, dst: a }));
        // Conflict materializes %eax, then the store is delivered as
        // reg_to_mem (the register is now in-lifeguard).
        assert_eq!(
            evs,
            vec![
                Event::Prop(OpClass::MemToReg { src: a, rd: Reg::Eax }),
                Event::Prop(OpClass::RegToMem { rs: Reg::Eax, dst: a }),
            ]
        );
    }

    #[test]
    fn clean_rs_do_nothing_preserves_dest_inheritance() {
        let a = mem(0xa0);
        let mut it = InheritanceTracker::new(ItConfig::taint_style());
        run(&mut it, 1, Event::Prop(OpClass::MemToReg { src: a, rd: Reg::Eax }));
        // add %ecx, %eax with clean %ecx: generic propagation leaves %eax's
        // metadata = metadata(A); the optimization keeps the inheritance.
        let evs =
            run(&mut it, 2, Event::Prop(OpClass::DestRegOpReg { rs: Reg::Ecx, rd: Reg::Eax }));
        assert!(evs.is_empty());
        assert_eq!(it.state(Reg::Eax), ItState::Addr(a));
    }

    #[test]
    fn clean_rs_do_nothing_disabled_cleans_dest() {
        let a = mem(0xa0);
        let cfg = ItConfig { clean_rs_do_nothing: false, ..ItConfig::taint_style() };
        let mut it = InheritanceTracker::new(cfg);
        run(&mut it, 1, Event::Prop(OpClass::MemToReg { src: a, rd: Reg::Eax }));
        run(&mut it, 2, Event::Prop(OpClass::DestRegOpReg { rs: Reg::Ecx, rd: Reg::Eax }));
        assert_eq!(it.state(Reg::Eax), ItState::Clean);
    }

    #[test]
    fn memcheck_style_delivers_eager_source_checks() {
        let a = mem(0xa0);
        let b = mem(0xb0);
        let mut it = InheritanceTracker::new(ItConfig::memcheck_style());
        run(&mut it, 1, Event::Prop(OpClass::MemToReg { src: a, rd: Reg::Eax }));
        // add B, %eax: both the memory source B and the inherited source A
        // must be checked before cleaning the destination.
        let evs = run(&mut it, 2, Event::Prop(OpClass::DestRegOpMem { src: b, rd: Reg::Eax }));
        assert_eq!(
            evs,
            vec![
                Event::Check { kind: CheckKind::NonUnaryInput, source: MetaSource::Mem(b) },
                Event::Check { kind: CheckKind::NonUnaryInput, source: MetaSource::Mem(a) },
            ]
        );
        assert_eq!(it.state(Reg::Eax), ItState::Clean);
        assert_eq!(it.stats().nonunary_checks, 2);
    }

    #[test]
    fn dest_mem_op_reg_with_unclean_source_cleans_memory() {
        let a = mem(0xa0);
        let d = mem(0xd0);
        let mut it = InheritanceTracker::new(ItConfig::taint_style());
        run(&mut it, 1, Event::Prop(OpClass::MemToReg { src: a, rd: Reg::Eax }));
        let evs = run(&mut it, 2, Event::Prop(OpClass::DestMemOpReg { rs: Reg::Eax, dst: d }));
        assert_eq!(evs, vec![Event::Prop(OpClass::ImmToMem { dst: d })]);
    }

    #[test]
    fn dest_mem_op_reg_with_clean_source_does_nothing() {
        let d = mem(0xd0);
        let mut it = InheritanceTracker::new(ItConfig::taint_style());
        let evs = run(&mut it, 2, Event::Prop(OpClass::DestMemOpReg { rs: Reg::Eax, dst: d }));
        assert!(evs.is_empty());
    }

    #[test]
    fn other_flushes_relevant_registers_then_delivers() {
        let a = mem(0xa0);
        let mut it = InheritanceTracker::new(ItConfig::taint_style());
        run(&mut it, 1, Event::Prop(OpClass::MemToReg { src: a, rd: Reg::Eax }));
        let other = OpClass::Other {
            reads: RegSet::from_regs([Reg::Eax, Reg::Ecx]),
            writes: RegSet::from_regs([Reg::Ecx]),
            mem_read: None,
            mem_write: None,
        };
        let evs = run(&mut it, 2, Event::Prop(other));
        assert_eq!(
            evs,
            vec![
                Event::Prop(OpClass::MemToReg { src: a, rd: Reg::Eax }),
                Event::Prop(OpClass::ImmToReg { rd: Reg::Ecx }),
                Event::Prop(other),
            ]
        );
        assert_eq!(it.state(Reg::Eax), ItState::InLifeguard);
        assert_eq!(it.state(Reg::Ecx), ItState::InLifeguard);
        // Untouched registers keep their state.
        assert_eq!(it.state(Reg::Ebx), ItState::Clean);
        assert_eq!(it.stats().flush_events, 2);
    }

    #[test]
    fn check_events_resolve_through_table() {
        let a = mem(0xa0);
        let mut it = InheritanceTracker::new(ItConfig::taint_style());
        // Clean register: check discarded.
        let evs = run(
            &mut it,
            0,
            Event::Check { kind: CheckKind::JumpTarget, source: MetaSource::Reg(Reg::Eax) },
        );
        assert!(evs.is_empty());
        // Inheriting register: rewritten to the memory source.
        run(&mut it, 1, Event::Prop(OpClass::MemToReg { src: a, rd: Reg::Eax }));
        let evs = run(
            &mut it,
            2,
            Event::Check { kind: CheckKind::JumpTarget, source: MetaSource::Reg(Reg::Eax) },
        );
        assert_eq!(
            evs,
            vec![Event::Check { kind: CheckKind::JumpTarget, source: MetaSource::Mem(a) }]
        );
        // In-lifeguard register: passes through.
        it.set(Reg::Ecx, ItState::InLifeguard);
        let evs = run(
            &mut it,
            3,
            Event::Check { kind: CheckKind::SyscallArg, source: MetaSource::Reg(Reg::Ecx) },
        );
        assert_eq!(
            evs,
            vec![Event::Check { kind: CheckKind::SyscallArg, source: MetaSource::Reg(Reg::Ecx) }]
        );
        assert_eq!(it.stats().check_in, 3);
        assert_eq!(it.stats().check_filtered, 1);
        assert_eq!(it.stats().check_rewritten, 1);
    }

    #[test]
    fn mem_source_checks_pass_through() {
        let mut it = InheritanceTracker::new(ItConfig::taint_style());
        let ev = Event::Check { kind: CheckKind::FormatString, source: MetaSource::Mem(mem(0x40)) };
        let evs = run(&mut it, 0, ev);
        assert_eq!(evs, vec![ev]);
    }

    #[test]
    fn non_prop_events_pass_through() {
        let mut it = InheritanceTracker::new(ItConfig::taint_style());
        let ev = Event::MemRead(mem(0x40));
        assert_eq!(run(&mut it, 0, ev), vec![ev]);
    }

    #[test]
    fn flush_all_materializes_everything() {
        let mut it = InheritanceTracker::new(ItConfig::taint_style());
        it.set(Reg::Eax, ItState::Addr(mem(0x10)));
        it.set(Reg::Ecx, ItState::InLifeguard);
        let mut out = Vec::new();
        it.flush_all(0, &mut out);
        // 7 registers flushed (ecx already in lifeguard).
        assert_eq!(out.len(), 7);
        for r in Reg::ALL {
            assert_eq!(it.state(r), ItState::InLifeguard);
        }
    }

    #[test]
    fn aligned_bitmap_matches_interval_overlap_exhaustively() {
        // Exhaustive check over a small window: the hardware bitmap
        // comparison must equal exact interval overlap for sizes 1/2/4.
        let sizes = [MemSize::B1, MemSize::B2, MemSize::B4];
        for &sa in &sizes {
            for &sb in &sizes {
                for a in 0u32..16 {
                    for b in 0u32..16 {
                        let ra = MemRef::new(100 + a, sa);
                        let rb = MemRef::new(100 + b, sb);
                        assert_eq!(
                            bitmaps_overlap(ra, rb),
                            ra.overlaps(rb),
                            "mismatch for {ra} vs {rb}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn prop_reduction_statistic() {
        let mut it = InheritanceTracker::new(ItConfig::taint_style());
        assert_eq!(it.stats().prop_reduction(), 0.0);
        run(&mut it, 0, Event::Prop(OpClass::ImmToReg { rd: Reg::Eax }));
        run(&mut it, 0, Event::Prop(OpClass::ImmToMem { dst: mem(0x40) }));
        assert!((it.stats().prop_reduction() - 0.5).abs() < 1e-9);
    }
}
