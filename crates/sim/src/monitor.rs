//! Functional (untimed) monitoring of real machine traces.
//!
//! [`Monitor`] wires a concrete lifeguard to the dispatch pipeline without
//! the timing model — the configuration used by the examples and the
//! bug-detection tests, where what matters is *what* is detected, not how
//! fast. The generic parameter keeps the concrete lifeguard accessible
//! (e.g. [`igm_lifeguards::TaintCheckDetailed::taint_trail`]).

use igm_core::{AccelConfig, DispatchPipeline, DispatchStats};
use igm_isa::TraceEntry;
use igm_lba::{EventBuf, TraceBatch};
use igm_lifeguards::{CostSink, Lifeguard, Violation};

/// Records per dispatch batch in [`Monitor::observe_all`].
const OBSERVE_BATCH_RECORDS: usize = 1_024;

/// A lifeguard attached to a dispatch pipeline.
#[derive(Debug)]
pub struct Monitor<L: Lifeguard> {
    lifeguard: L,
    pipeline: DispatchPipeline,
    cost: CostSink,
    events: EventBuf,
    /// Column conversion arena for the entry-slice compatibility paths.
    batch: TraceBatch,
}

impl<L: Lifeguard> Monitor<L> {
    /// Attaches `lifeguard` under `accel` (masked by the lifeguard's
    /// Figure 2 applicability row).
    pub fn new(lifeguard: L, accel: &AccelConfig) -> Monitor<L> {
        let masked = lifeguard.kind().mask_config(accel);
        let pipeline = DispatchPipeline::new(lifeguard.etct(), &masked);
        Monitor {
            lifeguard,
            pipeline,
            cost: CostSink::new(),
            events: EventBuf::new(),
            batch: TraceBatch::new(),
        }
    }

    /// Observes a whole columnar [`TraceBatch`] on the hot path: one
    /// column-sweep pipeline pass, one handler pass, staging buffers
    /// reused across calls.
    pub fn observe_trace_batch(&mut self, batch: &TraceBatch) {
        self.pipeline.dispatch_batch(batch, &mut self.events);
        self.cost.clear();
        self.lifeguard.handle_batch(self.events.events(), &mut self.cost);
    }

    /// Observes a whole chunk of retired-instruction records held as an
    /// entry slice (compatibility path: the records are scattered into a
    /// reused column arena first).
    pub fn observe_batch(&mut self, entries: &[TraceEntry]) {
        let mut batch = std::mem::take(&mut self.batch);
        batch.clear();
        batch.extend_entries(entries.iter().copied());
        self.observe_trace_batch(&batch);
        self.batch = batch;
    }

    /// Observes one retired-instruction record.
    pub fn observe(&mut self, entry: &TraceEntry) {
        self.observe_batch(std::slice::from_ref(entry));
    }

    /// Observes a whole trace, buffering it column-first at
    /// [`OBSERVE_BATCH_RECORDS`] grain.
    pub fn observe_all<I: IntoIterator<Item = TraceEntry>>(&mut self, trace: I) {
        let mut buf = std::mem::take(&mut self.batch);
        buf.clear();
        for e in trace {
            buf.push(&e);
            if buf.len() == OBSERVE_BATCH_RECORDS {
                self.observe_trace_batch(&buf);
                buf.clear();
            }
        }
        if !buf.is_empty() {
            self.observe_trace_batch(&buf);
        }
        self.batch = buf;
    }

    /// Observes a recorded trace stream ([`igm_trace`] format), decoding
    /// each frame straight into a reusable column arena and dispatching it
    /// as one batch — the captured chunk structure is preserved, so a
    /// recorded artifact monitors exactly like the live stream it teed.
    /// Returns the number of records observed.
    pub fn observe_reader<R: std::io::Read>(
        &mut self,
        reader: &mut igm_trace::TraceReader<R>,
    ) -> Result<u64, igm_trace::TraceError> {
        let mut chunk = TraceBatch::new();
        let mut records = 0u64;
        while reader.read_chunk_into_batch(&mut chunk)? {
            records += chunk.len() as u64;
            self.observe_trace_batch(&chunk);
        }
        Ok(records)
    }

    /// The monitored lifeguard.
    pub fn lifeguard(&self) -> &L {
        &self.lifeguard
    }

    /// Mutable access to the lifeguard (pre-marking regions, draining
    /// violations).
    pub fn lifeguard_mut(&mut self) -> &mut L {
        &mut self.lifeguard
    }

    /// Violations reported so far.
    pub fn violations(&self) -> &[Violation] {
        self.lifeguard.violations()
    }

    /// Pipeline counters.
    pub fn dispatch_stats(&self) -> &DispatchStats {
        self.pipeline.stats()
    }

    /// Recovers the lifeguard.
    pub fn into_lifeguard(self) -> L {
        self.lifeguard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igm_core::ItConfig;
    use igm_isa::asm::{Addressing, ProgramBuilder};
    use igm_isa::{Annotation, Machine, MemSize, Reg};
    use igm_lifeguards::TaintCheck;

    /// End-to-end: machine executes a program that jumps through a tainted
    /// pointer; TaintCheck under the full pipeline catches it.
    #[test]
    fn machine_trace_through_monitor_detects_hijack() {
        let mut p = ProgramBuilder::new(0x0804_8000);
        p.annot(Annotation::ReadInput { base: 0x9000, len: 4 });
        p.load(Reg::Eax, Addressing::abs(0x9000, MemSize::B4));
        p.jmp_ind_reg(Reg::Eax);
        p.halt();
        let mut m = Machine::new(p.build());
        m.feed_input(&0x0804_800cu32.to_le_bytes()); // target: the halt
        m.run().unwrap();

        for accel in [AccelConfig::baseline(), AccelConfig::full(ItConfig::taint_style())] {
            let mut mon = Monitor::new(TaintCheck::new(&accel), &accel);
            mon.observe_all(m.trace().iter().copied());
            assert_eq!(
                mon.violations().len(),
                1,
                "accel {}: tainted jump must be flagged",
                accel.label()
            );
        }
    }

    #[test]
    fn acceleration_does_not_change_verdicts_on_clean_code() {
        let mut p = ProgramBuilder::new(0x0804_8000);
        p.mov_ri(Reg::Eax, 0x1234);
        p.store(Addressing::abs(0x9000, MemSize::B4), Reg::Eax);
        p.load(Reg::Ecx, Addressing::abs(0x9000, MemSize::B4));
        p.halt();
        let mut m = Machine::new(p.build());
        m.run().unwrap();
        for accel in [AccelConfig::baseline(), AccelConfig::full(ItConfig::taint_style())] {
            let mut mon = Monitor::new(TaintCheck::new(&accel), &accel);
            mon.observe_all(m.trace().iter().copied());
            assert!(mon.violations().is_empty());
        }
    }
}
