//! The server-side socket lane: a readiness-polled
//! [`TraceSource`](igm_trace::TraceSource) over one client connection.

use crate::wire::{
    self, lane_error, Fill, FinStats, MsgBuf, NetError, MSG_HEADER_BYTES, NET_VERSION,
    SPAN_PREFIX_BYTES,
};
use igm_lba::TraceBatch;
use igm_runtime::ChannelStatsSnapshot;
use igm_span::{FlightRecorder, FrameTag, Stage, Track};
use igm_trace::{
    decode_frame_with, frame_codec, Codec, CodecMetrics, LanePoll, Predictors, SourceStatus,
    TraceError, TraceSource,
};
use std::io::{self, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// Wire-credit bytes granted per compressed-model byte of log-channel
/// room. The channel accounts occupancy in the paper's compressed-record
/// model (1 B per instruction record); predicted frames run ~1–2 B per
/// record but legacy delta frames reach ~6, so an unscaled grant would
/// under-fill the channel several-fold and throttle a healthy producer.
/// The scale errs high — the channel's own byte-accounted refusal (the
/// staged-batch backstop) still bounds server memory when the estimate is
/// generous.
const MODEL_TO_WIRE_SCALE: u64 = 8;

/// Bytes read from the socket per scheduling poll, so one fast client
/// cannot pin the ingest thread inside a single lane turn.
const READ_BUDGET_PER_POLL: usize = 256 * 1024;

/// One accepted connection, adapted to the ingest front-end: chunk
/// messages decode (via the shared codec) into the lane's batch arena;
/// credit grants ride back on the same socket, sized from the tenant's
/// log-channel occupancy ([`TraceSource::transport_feedback`]); `FIN`
/// retires the lane cleanly after a `FIN_ACK`. All socket traffic is
/// nonblocking: the source reports [`SourceStatus::Pending`] instead of
/// ever stalling the shared ingest thread.
pub struct NetSource {
    stream: TcpStream,
    inbuf: MsgBuf,
    /// Credit/FIN_ACK bytes not yet accepted by the (nonblocking) socket.
    outbox: Vec<u8>,
    out_sent: usize,
    /// Target outstanding-credit window in wire bytes.
    window: u64,
    /// Cumulative credit granted (the initial `WELCOME` included).
    granted: u64,
    /// Cumulative chunk payload bytes received.
    received: u64,
    chunks: u64,
    records: u64,
    fin: Option<FinStats>,
    /// A write-side failure noticed during feedback, surfaced on the next
    /// poll (polls are the lane's error channel).
    deferred_error: Option<NetError>,
    /// The trace codec the `HELLO` negotiated; every chunk frame must
    /// carry it.
    codec: Codec,
    /// Decoder predictor tables, persistent across this lane's frames.
    predictors: Box<Predictors>,
    /// Shared codec byte counters / decode-latency histogram.
    metrics: CodecMetrics,
    /// The negotiated protocol version. Chunks on a
    /// ≥[`NET_VERSION`]-lane open with the span-provenance prefix; a v2
    /// lane's chunks are bare frames.
    wire_version: u32,
    /// The pool's flight recorder plus this lane's claimed ring, when
    /// spans are on: sampled frames get a `server_ingest` stage stamped
    /// over the decode window.
    spans: Option<(Arc<FlightRecorder>, usize)>,
    /// The last delivered chunk's span tag, held for the ingest lane to
    /// claim via [`TraceSource::take_span_tag`] and pin to the batch it
    /// sends into the pool.
    pending_tag: Option<FrameTag>,
}

impl NetSource {
    /// Adapts an accepted, handshaken connection. `inbuf` carries any
    /// bytes the handshake reader buffered past the `HELLO`; the `WELCOME`
    /// (granting `window` initial credit bytes) is queued for the first
    /// poll's flush.
    pub(crate) fn new(
        stream: TcpStream,
        window: u64,
        inbuf: MsgBuf,
        codec: Codec,
        metrics: CodecMetrics,
        wire_version: u32,
        recorder: Option<Arc<FlightRecorder>>,
    ) -> io::Result<NetSource> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        // A v2 lane carries no tags, so claiming a ring would only waste
        // one; span stamping needs both the recorder and a v3 peer.
        let spans = match recorder {
            Some(rec) if wire_version >= NET_VERSION => {
                let ring = rec.ring_handle();
                Some((rec, ring))
            }
            _ => None,
        };
        Ok(NetSource {
            stream,
            inbuf,
            outbox: wire::welcome_message(window),
            out_sent: 0,
            window,
            granted: window,
            received: 0,
            chunks: 0,
            records: 0,
            fin: None,
            deferred_error: None,
            codec,
            predictors: Box::new(Predictors::new()),
            metrics,
            wire_version,
            spans,
            pending_tag: None,
        })
    }

    /// Chunk messages decoded so far.
    pub fn chunks(&self) -> u64 {
        self.chunks
    }

    /// Records decoded so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Pushes as much of the outbox as the socket will take.
    fn flush_outbox(&mut self) -> Result<(), NetError> {
        while self.out_sent < self.outbox.len() {
            match self.stream.write(&self.outbox[self.out_sent..]) {
                Ok(0) => return Err(NetError::Disconnected("socket closed while granting credit")),
                Ok(n) => self.out_sent += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(NetError::Io(e)),
            }
        }
        self.outbox.clear();
        self.out_sent = 0;
        Ok(())
    }

    fn outbox_drained(&self) -> bool {
        self.out_sent >= self.outbox.len()
    }

    fn fail(&self, e: NetError) -> TraceError {
        lane_error(e, self.inbuf.stream_pos())
    }

    /// The poll body, in [`NetError`] terms (mapped by the trait impl).
    fn poll(&mut self, out: &mut TraceBatch) -> Result<SourceStatus, NetError> {
        if let Some(e) = self.deferred_error.take() {
            return Err(e);
        }
        loop {
            self.flush_outbox()?;
            if let Some((ty, range)) = self.inbuf.peek_message()? {
                match ty {
                    wire::msg::CHUNK if self.fin.is_none() => {
                        let payload_at = self.inbuf.stream_pos() + MSG_HEADER_BYTES as u64;
                        let payload = self.inbuf.bytes(range.clone());
                        // Credit is accounted in whole chunk payload bytes
                        // (span prefix included), matching the client's
                        // ledger.
                        let payload_bytes = payload.len() as u64;
                        let (tag, frame, frame_at) = if self.wire_version >= NET_VERSION {
                            if payload.len() < SPAN_PREFIX_BYTES {
                                return Err(NetError::Malformed(
                                    "chunk shorter than the span prefix",
                                ));
                            }
                            (
                                wire::decode_span_prefix(&payload[..SPAN_PREFIX_BYTES])?,
                                &payload[SPAN_PREFIX_BYTES..],
                                payload_at + SPAN_PREFIX_BYTES as u64,
                            )
                        } else {
                            (None, payload, payload_at)
                        };
                        if frame_codec(frame) != Some(self.codec) {
                            return Err(NetError::Malformed(
                                "chunk codec disagrees with the negotiated codec",
                            ));
                        }
                        let span_start = match (&self.spans, tag) {
                            (Some((rec, _)), Some(_)) => Some(rec.now()),
                            _ => None,
                        };
                        let started = self.metrics.start_decode();
                        decode_frame_with(&mut self.predictors, frame, frame_at, out)?;
                        self.metrics.stop_decode(started);
                        self.metrics.count_frame(out.len() as u64, frame.len() as u64);
                        if let (Some((rec, ring)), Some(tag), Some(t0)) =
                            (&self.spans, tag, span_start)
                        {
                            rec.record(
                                *ring,
                                Stage::ServerIngest,
                                Track::Lane(tag.flow),
                                tag,
                                t0,
                                rec.now(),
                            );
                            self.pending_tag = Some(tag);
                        }
                        self.received += payload_bytes;
                        self.chunks += 1;
                        self.records += out.len() as u64;
                        self.inbuf.consume(range.end);
                        return Ok(LanePoll::Delivered.into());
                    }
                    wire::msg::CHUNK => return Err(NetError::Malformed("chunk message after FIN")),
                    wire::msg::FIN => {
                        let stats = wire::decode_fin(self.inbuf.bytes(range.clone()))?;
                        if stats.records != self.records {
                            return Err(NetError::Malformed(
                                "FIN record count disagrees with received records",
                            ));
                        }
                        self.fin = Some(stats);
                        self.inbuf.consume(range.end);
                        let ack = wire::fin_ack_message(self.records);
                        self.outbox.extend_from_slice(&ack);
                        continue;
                    }
                    wire::msg::HELLO => {
                        return Err(NetError::Malformed("second handshake on an open lane"))
                    }
                    _ => return Err(NetError::Malformed("unexpected message type from client")),
                }
            }
            if self.fin.is_some() {
                if self.inbuf.has_buffered() {
                    return Err(NetError::Malformed("data after FIN"));
                }
                // Retire only after the FIN_ACK left the socket.
                self.flush_outbox()?;
                let poll = if self.outbox_drained() { LanePoll::Closed } else { LanePoll::Idle };
                return Ok(poll.into());
            }
            match self.inbuf.fill_from(&mut self.stream, READ_BUDGET_PER_POLL)? {
                Fill::Bytes(_) => continue,
                Fill::WouldBlock => return Ok(LanePoll::Idle.into()),
                Fill::Eof => {
                    return Err(NetError::Disconnected(if self.inbuf.has_buffered() {
                        "connection closed inside a message"
                    } else {
                        "connection closed before FIN"
                    }))
                }
            }
        }
    }
}

impl TraceSource for NetSource {
    fn next_batch(&mut self, out: &mut TraceBatch) -> Result<SourceStatus, TraceError> {
        out.clear();
        self.poll(out).map_err(|e| self.fail(e))
    }

    fn wants_transport_feedback(&self) -> bool {
        true
    }

    /// The last delivered chunk's wire span tag: the ingest lane pins it
    /// to the batch it sends into the pool, so the server-side
    /// `channel_wait`/`dispatch` stages chain under the *origin's*
    /// flow/seq.
    fn take_span_tag(&mut self) -> Option<FrameTag> {
        self.pending_tag.take()
    }

    /// The occupancy → credit hookup: the lane's log-channel drain state
    /// arrives once per scheduling turn, and the grant keeps the client's
    /// outstanding credit tracking `min(window, room)` — a full channel
    /// (slow lifeguard) freezes the grants, so the remote producer
    /// throttles instead of ballooning server memory.
    fn transport_feedback(&mut self, occupancy: &ChannelStatsSnapshot, capacity_bytes: u32) {
        if self.fin.is_some() || self.deferred_error.is_some() {
            return;
        }
        let room = capacity_bytes.saturating_sub(occupancy.used_bytes) as u64;
        let target = self.window.min(room * MODEL_TO_WIRE_SCALE);
        let outstanding = self.granted.saturating_sub(self.received);
        let grant = target.saturating_sub(outstanding);
        // Batch small grants (quarter-window quantum) so a draining
        // channel does not turn into a credit message per record; an empty
        // allowance is always refilled immediately, whatever its size.
        if grant > 0 && (outstanding == 0 || grant >= self.window / 4) {
            self.granted += grant;
            let msg = wire::credit_message(grant);
            self.outbox.extend_from_slice(&msg);
        }
        if let Err(e) = self.flush_outbox() {
            self.deferred_error = Some(e);
        }
    }
}
