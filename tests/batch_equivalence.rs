//! Batch-grain dispatch must be a pure refactor of per-record dispatch:
//! for every lifeguard and accelerator configuration, columnar
//! `dispatch_batch` over arbitrary chunkings of a generated trace — each
//! chunk scattered into a `TraceBatch` — yields the identical delivered
//! event sequence, identical `DispatchStats`, identical handler costs and
//! identical violations as record-at-a-time `dispatch` (the PR 2 AoS
//! path). The same property run also pins the `TraceBatch` round trip:
//! `from_entries` → view iterator is the identity on every chunk.

use igm::accel::{AccelConfig, DispatchPipeline, ItConfig};
use igm::isa::{Annotation, CtrlOp, JumpTarget, MemRef, MemSize, Reg, TraceEntry};
use igm::lba::{DeliveredEvent, EventBuf, TraceBatch};
use igm::lifeguards::{CostSink, Lifeguard, LifeguardKind};
use proptest::prelude::*;

const HEAP: u32 = 0x9000_0000;

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..8).prop_map(|i| {
        [Reg::Eax, Reg::Ecx, Reg::Edx, Reg::Ebx, Reg::Esp, Reg::Ebp, Reg::Esi, Reg::Edi][i as usize]
    })
}

fn mem() -> impl Strategy<Value = MemRef> {
    // A small, reusing address pool (so the IF actually filters) over a
    // region the trace itself mallocs, mixing access sizes.
    (0u32..0x100, prop_oneof![Just(MemSize::B1), Just(MemSize::B4)])
        .prop_map(|(off, size)| MemRef::new(HEAP + 4 * off, size))
}

fn entry() -> impl Strategy<Value = TraceEntry> {
    let op = prop_oneof![
        reg().prop_map(|rd| OpClassW(igm::isa::OpClass::ImmToReg { rd })),
        mem().prop_map(|dst| OpClassW(igm::isa::OpClass::ImmToMem { dst })),
        (reg(), reg()).prop_map(|(rs, rd)| OpClassW(igm::isa::OpClass::RegToReg { rs, rd })),
        (reg(), mem()).prop_map(|(rs, dst)| OpClassW(igm::isa::OpClass::RegToMem { rs, dst })),
        (mem(), reg()).prop_map(|(src, rd)| OpClassW(igm::isa::OpClass::MemToReg { src, rd })),
        (mem(), mem()).prop_map(|(src, dst)| OpClassW(igm::isa::OpClass::MemToMem { src, dst })),
        (reg(), reg()).prop_map(|(rs, rd)| OpClassW(igm::isa::OpClass::DestRegOpReg { rs, rd })),
        (mem(), reg()).prop_map(|(src, rd)| OpClassW(igm::isa::OpClass::DestRegOpMem { src, rd })),
        (reg(), mem()).prop_map(|(rs, dst)| OpClassW(igm::isa::OpClass::DestMemOpReg { rs, dst })),
        mem().prop_map(|dst| OpClassW(igm::isa::OpClass::MemSelf { dst })),
    ];
    let annot = prop_oneof![
        (0u32..0x80).prop_map(|o| Annotation::Malloc { base: HEAP + 8 * o, size: 64 }),
        (0u32..0x80).prop_map(|o| Annotation::Free { base: HEAP + 8 * o }),
        (0u32..0x40).prop_map(|o| Annotation::ReadInput { base: HEAP + 16 * o, len: 8 }),
        (1u32..4).prop_map(|t| Annotation::Lock { lock: 0x100 + t }),
        (1u32..4).prop_map(|t| Annotation::Unlock { lock: 0x100 + t }),
        (0u32..3).prop_map(|t| Annotation::ThreadSwitch { tid: t }),
    ];
    let ctrl = prop_oneof![
        Just(CtrlOp::Direct),
        proptest::option::of(reg()).prop_map(|input| CtrlOp::CondBranch { input }),
        reg().prop_map(|r| CtrlOp::Indirect { target: JumpTarget::Reg(r) }),
        mem().prop_map(|m| CtrlOp::Indirect { target: JumpTarget::Mem(m) }),
    ];
    prop_oneof![
        8 => op.prop_map(|OpClassW(o)| EntryKind::Op(o)),
        1 => annot.prop_map(EntryKind::Annot),
        1 => ctrl.prop_map(EntryKind::Ctrl),
    ]
    .prop_map(|k| match k {
        EntryKind::Op(o) => TraceEntry::op(0x1000, o),
        EntryKind::Annot(a) => TraceEntry::annot(0x1000, a),
        EntryKind::Ctrl(c) => TraceEntry::ctrl(0x1000, c),
    })
}

// Local wrappers so the strategy arms share one Debug-able value type.
#[derive(Debug)]
struct OpClassW(igm::isa::OpClass);
#[derive(Debug)]
enum EntryKind {
    Op(igm::isa::OpClass),
    Annot(Annotation),
    Ctrl(CtrlOp),
}

/// Gives each record a distinct pc (some IF configurations key on pc).
fn with_pcs(mut trace: Vec<TraceEntry>) -> Vec<TraceEntry> {
    for (i, e) in trace.iter_mut().enumerate() {
        e.pc = 0x1000 + 4 * i as u32;
    }
    trace
}

fn accel_configs() -> [AccelConfig; 3] {
    [AccelConfig::baseline(), AccelConfig::lma_if(), AccelConfig::full(ItConfig::taint_style())]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dispatch_batch_equals_n_dispatch_calls(
        raw_trace in proptest::collection::vec(entry(), 1..240),
        chunk in 1usize..40,
    ) {
        let trace = with_pcs(raw_trace);
        for kind in LifeguardKind::ALL {
            for accel in accel_configs() {
                let masked = kind.mask_config(&accel);

                // Reference: record-at-a-time dispatch + per-event handling.
                let mut ref_lifeguard = kind.build_any(&accel);
                let mut ref_pipeline = DispatchPipeline::new(ref_lifeguard.etct(), &masked);
                let mut ref_cost = CostSink::new();
                let mut ref_delivered: Vec<DeliveredEvent> = Vec::new();
                for e in &trace {
                    let mut record_events = Vec::new();
                    ref_pipeline.dispatch(e, |d| record_events.push(d));
                    for d in &record_events {
                        ref_lifeguard.handle(d, &mut ref_cost);
                    }
                    ref_delivered.extend(record_events);
                }

                // Batched: the same trace in `chunk`-record columnar
                // batches through the hot path, pipeline state carrying
                // across batches.
                let mut lifeguard = kind.build_any(&accel);
                let mut pipeline = DispatchPipeline::new(lifeguard.etct(), &masked);
                let mut cost = CostSink::new();
                let mut events = EventBuf::new();
                let mut delivered: Vec<DeliveredEvent> = Vec::new();
                let mut columns = TraceBatch::new();
                for batch in trace.chunks(chunk) {
                    columns.clear();
                    columns.extend_entries(batch.iter().copied());
                    // SoA round trip is the identity on every chunk.
                    prop_assert_eq!(&columns.to_entries()[..], batch);
                    pipeline.dispatch_batch(&columns, &mut events);
                    prop_assert_eq!(events.records(), batch.len());
                    lifeguard.handle_batch(events.events(), &mut cost);
                    delivered.extend(events.events().iter().copied());
                }

                prop_assert_eq!(
                    &delivered, &ref_delivered,
                    "{} / {}: delivered sequence diverged", kind, accel.label()
                );
                prop_assert_eq!(
                    pipeline.stats(), ref_pipeline.stats(),
                    "{} / {}: DispatchStats diverged", kind, accel.label()
                );
                prop_assert_eq!(
                    lifeguard.violations(), ref_lifeguard.violations(),
                    "{} / {}: violations diverged", kind, accel.label()
                );
                prop_assert_eq!(
                    cost.instrs(), ref_cost.instrs(),
                    "{} / {}: handler instruction cost diverged", kind, accel.label()
                );
                prop_assert_eq!(
                    cost.mem_vas(), ref_cost.mem_vas(),
                    "{} / {}: handler metadata references diverged", kind, accel.label()
                );
            }
        }
    }
}
