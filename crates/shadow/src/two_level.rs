//! The two-level shadow memory (paper Figure 6, right).
//!
//! A level-1 table indexed by the high bits of the application address holds
//! pointers to lazily-allocated level-2 chunks of metadata elements. Every
//! structure has a stable *metadata virtual address* in the simulated
//! lifeguard address space so the timing model can replay lifeguard memory
//! traffic: the level-1 table lives at [`crate::LEVEL1_TABLE_BASE`] and
//! chunks are bump-allocated from [`crate::CHUNK_REGION_BASE`].

use crate::layout::ShadowLayout;
use crate::{CHUNK_REGION_BASE, LEVEL1_TABLE_BASE};

#[derive(Debug, Clone)]
struct Chunk {
    base_va: u32,
    data: Box<[u8]>,
}

/// A two-level shadow map.
///
/// # Example
///
/// ```
/// use igm_shadow::{ShadowLayout, TwoLevelShadow};
/// use igm_shadow::layout::ElemSize;
///
/// // TaintCheck: 2 taint bits per application byte.
/// let mut shadow = TwoLevelShadow::new(ShadowLayout::taintcheck_fig7(), 0);
/// shadow.packed_set(0xb3fb_703a, 0b11);
/// assert_eq!(shadow.packed_get(0xb3fb_703a), 0b11);
/// assert_eq!(shadow.packed_get(0xb3fb_703b), 0b00); // neighbour untouched
/// ```
#[derive(Debug, Clone)]
pub struct TwoLevelShadow {
    layout: ShadowLayout,
    default_byte: u8,
    chunks: Vec<Option<Chunk>>,
    next_chunk_va: u32,
}

impl TwoLevelShadow {
    /// Creates an empty shadow map; unallocated metadata reads as
    /// `default_byte` repeated.
    pub fn new(layout: ShadowLayout, default_byte: u8) -> TwoLevelShadow {
        TwoLevelShadow {
            layout,
            default_byte,
            chunks: vec![None; layout.level1_entries() as usize],
            next_chunk_va: CHUNK_REGION_BASE,
        }
    }

    /// The geometry of this map.
    pub fn layout(&self) -> &ShadowLayout {
        &self.layout
    }

    /// Metadata virtual address of the level-1 table slot consulted when
    /// software-translating `app_addr` (the memory reference charged to the
    /// two-level walk).
    pub fn l1_entry_va(&self, app_addr: u32) -> u32 {
        LEVEL1_TABLE_BASE + self.layout.l1_index(app_addr) * 4
    }

    /// Base metadata virtual address of the chunk covering `app_addr`,
    /// allocating the chunk on first touch. This is the value an M-TLB miss
    /// handler obtains from the level-1 table and inserts with `lma_fill`.
    pub fn chunk_base_va(&mut self, app_addr: u32) -> u32 {
        self.ensure_chunk(app_addr).base_va
    }

    /// Base metadata virtual address of the chunk covering `app_addr`, or
    /// `None` if it has never been touched.
    pub fn chunk_base_va_if_present(&self, app_addr: u32) -> Option<u32> {
        self.chunks[self.layout.l1_index(app_addr) as usize].as_ref().map(|c| c.base_va)
    }

    /// Metadata virtual address of the element covering `app_addr`
    /// (allocates the chunk on first touch). Equals the result of the
    /// hardware `lma` instruction.
    pub fn elem_va(&mut self, app_addr: u32) -> u32 {
        self.chunk_base_va(app_addr) + self.layout.elem_offset_in_chunk(app_addr)
    }

    fn ensure_chunk(&mut self, app_addr: u32) -> &mut Chunk {
        let idx = self.layout.l1_index(app_addr) as usize;
        if self.chunks[idx].is_none() {
            let bytes = self.layout.chunk_bytes() as usize;
            let chunk = Chunk {
                base_va: self.next_chunk_va,
                data: vec![self.default_byte; bytes].into_boxed_slice(),
            };
            // Chunks are laid out back-to-back in lifeguard space.
            self.next_chunk_va = self.next_chunk_va.wrapping_add(self.layout.chunk_bytes());
            self.chunks[idx] = Some(chunk);
        }
        self.chunks[idx].as_mut().expect("just ensured")
    }

    /// Borrows the metadata element covering `app_addr`, if its chunk is
    /// allocated.
    pub fn elem(&self, app_addr: u32) -> Option<&[u8]> {
        let chunk = self.chunks[self.layout.l1_index(app_addr) as usize].as_ref()?;
        let off = self.layout.elem_offset_in_chunk(app_addr) as usize;
        Some(&chunk.data[off..off + self.layout.elem_size().bytes() as usize])
    }

    /// Mutably borrows (allocating on demand) the element covering
    /// `app_addr`.
    pub fn elem_mut(&mut self, app_addr: u32) -> &mut [u8] {
        let off = self.layout.elem_offset_in_chunk(app_addr) as usize;
        let size = self.layout.elem_size().bytes() as usize;
        let chunk = self.ensure_chunk(app_addr);
        &mut chunk.data[off..off + size]
    }

    /// Reads the element covering `app_addr` as a little-endian integer,
    /// zero-extended to 64 bits. Unallocated chunks read as the default
    /// byte repeated.
    pub fn elem_u64(&self, app_addr: u32) -> u64 {
        match self.elem(app_addr) {
            Some(bytes) => {
                let mut v = 0u64;
                for (i, b) in bytes.iter().enumerate() {
                    v |= (*b as u64) << (8 * i);
                }
                v
            }
            None => {
                let mut v = 0u64;
                for i in 0..self.layout.elem_size().bytes() {
                    v |= (self.default_byte as u64) << (8 * i);
                }
                v
            }
        }
    }

    /// Writes the element covering `app_addr` from a little-endian integer.
    pub fn set_elem_u64(&mut self, app_addr: u32, v: u64) {
        for (i, b) in self.elem_mut(app_addr).iter_mut().enumerate() {
            *b = (v >> (8 * i)) as u8;
        }
    }

    /// Reads the element covering `app_addr` as a `u32` (convenience for
    /// 4-byte elements, e.g. LockSet records).
    pub fn elem_u32(&self, app_addr: u32) -> u32 {
        self.elem_u64(app_addr) as u32
    }

    /// Writes the element covering `app_addr` from a `u32`.
    pub fn set_elem_u32(&mut self, app_addr: u32, v: u32) {
        self.set_elem_u64(app_addr, v as u64);
    }

    fn packed_geometry(&self, app_addr: u32) -> (u32, u32, u8) {
        let bits = self.layout.bits_per_app_byte();
        debug_assert!(
            matches!(bits, 1 | 2 | 4 | 8),
            "packed accessors require 1/2/4/8 metadata bits per application byte"
        );
        let bit_off = self.layout.offset_in_elem(app_addr) * bits;
        let byte = bit_off / 8;
        let shift = bit_off % 8;
        let mask = ((1u16 << bits) - 1) as u8;
        (byte, shift, mask)
    }

    /// Reads the per-application-byte packed metadata value for `app_addr`
    /// (layouts with 1, 2, 4 or 8 metadata bits per application byte).
    pub fn packed_get(&self, app_addr: u32) -> u8 {
        let (byte, shift, mask) = self.packed_geometry(app_addr);
        let elem_byte = match self.elem(app_addr) {
            Some(bytes) => bytes[byte as usize],
            None => self.default_byte,
        };
        (elem_byte >> shift) & mask
    }

    /// Writes the per-application-byte packed metadata value for `app_addr`.
    pub fn packed_set(&mut self, app_addr: u32, v: u8) {
        let (byte, shift, mask) = self.packed_geometry(app_addr);
        let elem = self.elem_mut(app_addr);
        let b = &mut elem[byte as usize];
        *b = (*b & !(mask << shift)) | ((v & mask) << shift);
    }

    /// Sets the packed metadata of every application byte in
    /// `[start, start+len)` to `v`.
    pub fn packed_set_range(&mut self, start: u32, len: u32, v: u8) {
        for i in 0..len {
            self.packed_set(start.wrapping_add(i), v);
        }
    }

    /// Whether every application byte in `[start, start+len)` has packed
    /// metadata equal to `v`.
    pub fn packed_all(&self, start: u32, len: u32, v: u8) -> bool {
        (0..len).all(|i| self.packed_get(start.wrapping_add(i)) == v)
    }

    /// Whether any application byte in `[start, start+len)` has packed
    /// metadata equal to `v`.
    pub fn packed_any(&self, start: u32, len: u32, v: u8) -> bool {
        (0..len).any(|i| self.packed_get(start.wrapping_add(i)) == v)
    }

    /// Number of level-2 chunks currently allocated.
    pub fn allocated_chunks(&self) -> u32 {
        self.chunks.iter().filter(|c| c.is_some()).count() as u32
    }

    /// Total metadata bytes currently allocated (chunks only; the level-1
    /// table adds `4 * level1_entries()` bytes).
    pub fn metadata_bytes(&self) -> u64 {
        self.allocated_chunks() as u64 * self.layout.chunk_bytes() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::ElemSize;

    fn taint_shadow() -> TwoLevelShadow {
        TwoLevelShadow::new(ShadowLayout::taintcheck_fig7(), 0)
    }

    #[test]
    fn packed_round_trip_neighbouring_bytes() {
        let mut s = taint_shadow();
        // Four app bytes share one element byte (2 bits each).
        for i in 0..4u32 {
            s.packed_set(0x1000_0000 + i, (i as u8) & 0b11);
        }
        for i in 0..4u32 {
            assert_eq!(s.packed_get(0x1000_0000 + i), (i as u8) & 0b11);
        }
        // They all landed in a single element byte.
        assert_eq!(s.elem(0x1000_0000).unwrap()[0], 0b11_10_01_00);
    }

    #[test]
    fn default_byte_visible_before_allocation() {
        let s = TwoLevelShadow::new(ShadowLayout::taintcheck_fig7(), 0xff);
        assert_eq!(s.packed_get(0xdead_beef), 0b11);
        assert_eq!(s.allocated_chunks(), 0);
        assert_eq!(s.elem_u64(0xdead_beef), 0xff);
    }

    #[test]
    fn chunk_allocation_is_lazy_and_stable() {
        let mut s = taint_shadow();
        assert_eq!(s.allocated_chunks(), 0);
        let va1 = s.elem_va(0x0804_8000);
        assert_eq!(s.allocated_chunks(), 1);
        let va2 = s.elem_va(0x0804_8004);
        assert_eq!(va2, va1 + 1); // next word's element is the next byte
        let va3 = s.elem_va(0xbfff_0000); // far away -> second chunk
        assert_eq!(s.allocated_chunks(), 2);
        assert_ne!(s.layout().l1_index(0x0804_8000), s.layout().l1_index(0xbfff_0000));
        // Re-translation is stable.
        assert_eq!(s.elem_va(0x0804_8000), va1);
        assert_eq!(s.elem_va(0xbfff_0000), va3);
    }

    #[test]
    fn l1_entry_va_is_table_slot() {
        let s = taint_shadow();
        let addr = 0xb3fb_703a;
        assert_eq!(s.l1_entry_va(addr), crate::LEVEL1_TABLE_BASE + 0xb3fb * 4);
    }

    #[test]
    fn elem_va_matches_fig9_arithmetic() {
        let mut s = taint_shadow();
        let addr = 0xb3fb_703a;
        let chunk = s.chunk_base_va(addr);
        assert_eq!(s.elem_va(addr), chunk + 0x1c0e);
    }

    #[test]
    fn range_helpers() {
        let mut s = taint_shadow();
        s.packed_set_range(0x9000, 16, 0b01);
        assert!(s.packed_all(0x9000, 16, 0b01));
        assert!(!s.packed_all(0x8fff, 17, 0b01));
        assert!(s.packed_any(0x8ff0, 17, 0b01));
        assert!(!s.packed_any(0x8ff0, 16, 0b01));
    }

    #[test]
    fn u32_element_round_trip() {
        // LockSet-style: 4-byte records per 4-byte word.
        let layout = ShadowLayout::for_coverage(16, 4, ElemSize::B4).unwrap();
        let mut s = TwoLevelShadow::new(layout, 0);
        s.set_elem_u32(0x9004, 0xdead_beef);
        assert_eq!(s.elem_u32(0x9004), 0xdead_beef);
        assert_eq!(s.elem_u32(0x9005), 0xdead_beef); // same word
        assert_eq!(s.elem_u32(0x9008), 0); // next word
    }

    #[test]
    fn u64_element_round_trip() {
        // Detailed-TaintCheck-style: 8-byte records per 4-byte word.
        let layout = ShadowLayout::for_coverage(16, 4, ElemSize::B8).unwrap();
        let mut s = TwoLevelShadow::new(layout, 0);
        s.set_elem_u64(0x9000, 0x1122_3344_5566_7788);
        assert_eq!(s.elem_u64(0x9000), 0x1122_3344_5566_7788);
        let bytes = s.elem(0x9000).unwrap();
        assert_eq!(bytes[0], 0x88); // little-endian
        assert_eq!(bytes[7], 0x11);
    }

    #[test]
    fn one_bit_per_byte_layout() {
        // AddrCheck: 1 bit per app byte, 8 app bytes per element byte.
        let layout = ShadowLayout::for_coverage(16, 8, ElemSize::B1).unwrap();
        let mut s = TwoLevelShadow::new(layout, 0);
        s.packed_set(0x9003, 1);
        assert_eq!(s.packed_get(0x9003), 1);
        assert_eq!(s.packed_get(0x9002), 0);
        assert_eq!(s.packed_get(0x9004), 0);
        assert_eq!(s.elem(0x9000).unwrap()[0], 0b0000_1000);
    }

    #[test]
    fn metadata_accounting() {
        let mut s = taint_shadow();
        s.packed_set(0, 1);
        s.packed_set(0xffff_ffff, 1);
        assert_eq!(s.allocated_chunks(), 2);
        assert_eq!(s.metadata_bytes(), 2 * 16 * 1024);
    }
}
