//! The single-threaded trace generator engine.
//!
//! [`TraceGen`] is an iterator of [`TraceEntry`]s. It repeatedly samples an
//! idiom from the profile's weighted mix and emits one structurally
//! realistic burst (a loop body replayed over stable program counters, with
//! disciplined register roles and well-formed stack/heap behaviour),
//! interleaving wrapper-library annotations (malloc/free, system calls,
//! untrusted-input reads) at the profile's rates.
//!
//! Generated traces are *well-behaved*: every heap access falls inside a
//! live allocation and every conditional branch tests a value the burst
//! itself produced, so none of the lifeguards reports violations on them —
//! matching the paper's setup, where the monitored SPEC programs are
//! correct and lifeguard overhead is pure checking cost. (Bug-detection is
//! exercised by the `examples/` programs instead.)
//!
//! The harness is expected to pre-mark the global, stack and mmap regions
//! (and, for MemCheck, the heap's *initialized* bits) as program-load-time
//! state; see [`Profile::premark_regions`] — this mirrors how
//! Valgrind-family tools treat loader-established segments.

use crate::layout::{CODE_BASE, GLOBALS_BASE, HEAP_BASE, MMAP_BASE, STACK_TOP};
use crate::profile::{Idiom, Profile};
use igm_isa::{Annotation, CtrlOp, MemRef, MemSize, OpClass, Reg, RegSet, TraceEntry, TraceOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};

/// Stack region size pre-marked accessible (grows down from
/// [`STACK_TOP`]).
pub const STACK_BYTES: u32 = 1024 * 1024;

impl Profile {
    /// Regions established by the loader before main() runs: the harness
    /// marks them accessible (and initialized) in the lifeguards.
    pub fn premark_regions(&self) -> Vec<(u32, u32)> {
        let mut v = vec![(GLOBALS_BASE, self.global_bytes), (STACK_TOP - STACK_BYTES, STACK_BYTES)];
        if self.mmap_bytes > 0 {
            v.push((MMAP_BASE, self.mmap_bytes));
        }
        v
    }

    /// The heap region blocks are carved from (for heap-wide pre-marking of
    /// MemCheck's initialized bits under synthetic workloads; see module
    /// docs).
    pub fn heap_region(&self) -> (u32, u32) {
        (HEAP_BASE, self.heap_bytes)
    }
}

#[derive(Debug, Clone, Copy)]
struct Block {
    base: u32,
    size: u32,
}

/// Deterministic single-threaded trace generator.
#[derive(Debug)]
pub struct TraceGen {
    rng: StdRng,
    profile: Profile,
    target: u64,
    emitted: u64,
    queue: VecDeque<TraceEntry>,
    /// Live heap blocks.
    live: Vec<Block>,
    /// Most-recently-used live-block indices (the hot set; real programs
    /// concentrate accesses on a few active objects, which is what gives
    /// them their L1 hit rates and the Idempotent Filter its reuse).
    mru: Vec<usize>,
    /// Recycled blocks awaiting reuse.
    freelist: Vec<Block>,
    heap_next: u32,
    stack_ptr: u32,
    code_bases: HashMap<Idiom, u32>,
    code_next: u32,
    /// Round-robin counter for frame-slot traffic.
    frame_rr: u32,
    /// Long-lived per-idiom buffers with wrap-around cursors (sliding
    /// windows, tables): (block, cursor in words).
    arenas: HashMap<(Idiom, u8), (Block, u32)>,
    /// Current node index of the pointer-chase cursor.
    chase_cursor: u32,
    /// Fractional annotation accumulators.
    acc_malloc: f64,
    acc_syscall: f64,
    acc_input: f64,
    started: bool,
}

impl TraceGen {
    /// Creates a generator for `profile` emitting exactly `target` records,
    /// seeded deterministically by `seed`.
    pub fn new(profile: Profile, target: u64, seed: u64) -> TraceGen {
        TraceGen {
            rng: StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            profile,
            target,
            emitted: 0,
            queue: VecDeque::with_capacity(512),
            live: Vec::new(),
            mru: Vec::new(),
            freelist: Vec::new(),
            heap_next: HEAP_BASE,
            stack_ptr: STACK_TOP,
            code_bases: HashMap::new(),
            code_next: CODE_BASE,
            frame_rr: 0,
            arenas: HashMap::new(),
            chase_cursor: 0,
            acc_malloc: 0.0,
            acc_syscall: 0.0,
            acc_input: 0.0,
            started: false,
        }
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    // --- low-level emission helpers ---------------------------------------

    fn code_base(&mut self, idiom: Idiom) -> u32 {
        if let Some(b) = self.code_bases.get(&idiom) {
            return *b;
        }
        let b = self.code_next;
        self.code_next += 1024; // 256 instruction slots per idiom
        self.code_bases.insert(idiom, b);
        b
    }

    fn op(&mut self, pc: u32, op: OpClass, addr_regs: RegSet) {
        self.queue.push_back(TraceEntry { pc, op: TraceOp::Op(op), addr_regs });
    }

    fn ctrl(&mut self, pc: u32, c: CtrlOp) {
        self.queue.push_back(TraceEntry::ctrl(pc, c));
    }

    fn annot(&mut self, a: Annotation) {
        self.queue.push_back(TraceEntry::annot(self.code_next, a));
    }

    // --- heap model ---------------------------------------------------------

    fn block_size(&mut self) -> u32 {
        let mean = self.profile.mean_block;
        // Sizes between mean/2 and 2*mean, word aligned.
        self.rng.gen_range(mean / 2..mean * 2).max(64) & !3
    }

    fn heap_limit(&self) -> u32 {
        HEAP_BASE + self.profile.heap_bytes
    }

    fn emit_malloc(&mut self) {
        let size = self.block_size();
        let block = if !self.freelist.is_empty() && self.rng.gen_bool(0.5) {
            let idx = self.rng.gen_range(0..self.freelist.len());
            let b = self.freelist.swap_remove(idx);
            Block { base: b.base, size: b.size }
        } else if self.heap_next + size <= self.heap_limit() {
            let b = Block { base: self.heap_next, size };
            self.heap_next += size;
            b
        } else if let Some(b) = self.freelist.pop() {
            b
        } else {
            // Heap exhausted with everything live: recycle the oldest block.
            let b = self.live.remove(0);
            self.annot(Annotation::Free { base: b.base });
            b
        };
        self.annot(Annotation::Malloc { base: block.base, size: block.size });
        self.live.push(block);
    }

    fn emit_free(&mut self) {
        if self.live.len() <= 2 {
            return;
        }
        let idx = self.rng.gen_range(0..self.live.len());
        // Long-lived buffers (arenas) stay allocated.
        if self.arenas.values().any(|(a, _)| a.base == self.live[idx].base) {
            return;
        }
        let b = self.live.swap_remove(idx);
        // The freed slot's index now names the swapped-in block; the MRU
        // list is only a heuristic, so simply drop stale entries.
        self.mru.retain(|i| *i < self.live.len() && *i != idx);
        self.annot(Annotation::Free { base: b.base });
        self.freelist.push(b);
    }

    fn touch_mru(&mut self, idx: usize) {
        self.mru.retain(|i| *i != idx);
        self.mru.insert(0, idx);
        self.mru.truncate(4);
    }

    fn pick_block(&mut self) -> Block {
        if self.live.is_empty() {
            self.emit_malloc();
        }
        // 96% of selections stay on the hot (recently used) objects —
        // roughly the object-reuse concentration that gives SPEC int codes
        // their ~1.5 CPI on a 16 KB L1 / 512 KB L2 hierarchy.
        let idx = if !self.mru.is_empty() && self.rng.gen_bool(0.992) {
            self.mru[self.rng.gen_range(0..self.mru.len())]
        } else {
            self.rng.gen_range(0..self.live.len())
        };
        self.touch_mru(idx);
        self.live[idx]
    }

    /// A word-aligned reference of `len` words inside a (hot-biased) live
    /// block. Spans usually start at the block head — programs walk their
    /// buffers from the front — with occasional random offsets.
    fn block_span(&mut self, words: u32) -> (u32, u32) {
        let b = self.pick_block();
        let avail = (b.size / 4).max(1);
        let words = words.min(avail);
        let max_start = avail - words;
        let start = if max_start == 0 || self.rng.gen_bool(0.7) {
            0
        } else {
            self.rng.gen_range(0..=max_start)
        };
        (b.base + start * 4, words)
    }

    fn hot_global(&mut self) -> u32 {
        let slot = self.rng.gen_range(0..self.profile.hot_globals.max(1));
        GLOBALS_BASE + slot * 4
    }

    fn cold_global(&mut self) -> u32 {
        let words = self.profile.global_bytes / 4;
        GLOBALS_BASE + self.rng.gen_range(0..words) * 4
    }

    /// Claims (or rarely rotates) the idiom's `slot`-th long-lived buffer
    /// and advances its cursor by `advance` words, wrapping. Returns the
    /// block and the pre-advance cursor. Real programs keep their working
    /// buffers for long phases; rotation models phase changes.
    fn arena(&mut self, idiom: Idiom, slot: u8, advance: u32) -> (Block, u32) {
        let rotate = self.rng.gen_bool(0.002);
        let key = (idiom, slot);
        if rotate || !self.arenas.contains_key(&key) {
            let b = self.pick_block();
            self.arenas.insert(key, (b, 0));
        }
        let (b, cur) = self.arenas[&key];
        let words = (b.size / 4).max(1);
        self.arenas.insert(key, (b, (cur + advance) % words));
        (b, cur % words)
    }

    /// One frame-slot access (spill or reload). Compiled IA32 code touches
    /// its stack frame constantly — eight architectural registers force
    /// spills — and those few hot slots are what give real programs both
    /// their L1 hit rates and the Idempotent Filter's redundancy.
    fn frame_touch(&mut self, pc: u32) {
        self.frame_rr = self.frame_rr.wrapping_add(1);
        let slot = MemRef::word(self.stack_ptr - 8 - 4 * (self.frame_rr % 6));
        if self.frame_rr.is_multiple_of(2) {
            self.op(
                pc,
                OpClass::RegToMem { rs: Reg::Edx, dst: slot },
                RegSet::from_regs([Reg::Esp]),
            );
        } else {
            self.op(
                pc,
                OpClass::MemToReg { src: slot, rd: Reg::Edx },
                RegSet::from_regs([Reg::Esp]),
            );
        }
    }

    // --- idiom bursts ---------------------------------------------------------

    fn burst_array_scan(&mut self) -> u64 {
        let pc0 = self.code_base(Idiom::ArrayScan);
        let iters = self.rng.gen_range(8u32..24);
        let (block, cur) = self.arena(Idiom::ArrayScan, 0, iters);
        let words = (block.size / 4).max(1);
        let write_pass = self.rng.gen_bool(0.3);
        self.op(pc0, OpClass::ImmToReg { rd: Reg::Ebx }, RegSet::EMPTY);
        self.op(pc0 + 4, OpClass::ImmToReg { rd: Reg::Ecx }, RegSet::EMPTY);
        self.op(pc0 + 8, OpClass::ImmToReg { rd: Reg::Edx }, RegSet::EMPTY);
        let body = pc0 + 12;
        for i in 0..iters {
            let m = MemRef::word(block.base + ((cur + i) % words) * 4);
            let regs = RegSet::from_regs([Reg::Ebx, Reg::Ecx]);
            if write_pass {
                self.op(body, OpClass::RegToMem { rs: Reg::Edx, dst: m }, regs);
            } else {
                self.op(body, OpClass::MemToReg { src: m, rd: Reg::Eax }, regs);
                self.op(
                    body + 4,
                    OpClass::DestRegOpReg { rs: Reg::Eax, rd: Reg::Edx },
                    RegSet::EMPTY,
                );
                if i % 4 == 3 {
                    // Running result spilled back (loop-carried state).
                    self.op(body + 6, OpClass::RegToMem { rs: Reg::Edx, dst: m }, regs);
                }
            }
            self.frame_touch(body + 8);
            self.op(body + 12, OpClass::RegSelf { rd: Reg::Ecx }, RegSet::EMPTY);
            self.op(
                body + 16,
                OpClass::ReadOnly { src: None, reads: RegSet::from_regs([Reg::Ecx]) },
                RegSet::EMPTY,
            );
            self.ctrl(body + 20, CtrlOp::CondBranch { input: Some(Reg::Ecx) });
        }
        3 + iters as u64 * if write_pass { 4 } else { 5 }
    }

    fn burst_table_lookup(&mut self) -> u64 {
        let pc0 = self.code_base(Idiom::TableLookup);
        let iters = self.rng.gen_range(8u32..32);
        let (input_blk, in_cur) = self.arena(Idiom::TableLookup, 0, iters);
        let in_words = (input_blk.size / 4).max(1);
        let (table_blk, _) = self.arena(Idiom::TableLookup, 1, 0);
        let table = table_blk.base;
        let table_words = (table_blk.size / 4).clamp(1, 256);
        self.op(pc0, OpClass::ImmToReg { rd: Reg::Esi }, RegSet::EMPTY);
        self.op(pc0 + 4, OpClass::ImmToReg { rd: Reg::Ebx }, RegSet::EMPTY);
        let body = pc0 + 8;
        for i in 0..iters {
            // Load the next input element (sometimes byte-granular, as in
            // real compressors).
            let size = if self.rng.gen_bool(0.3) { MemSize::B1 } else { MemSize::B4 };
            let src = MemRef::new(input_blk.base + ((in_cur + i) % in_words) * 4, size);
            self.op(body, OpClass::MemToReg { src, rd: Reg::Eax }, RegSet::from_regs([Reg::Esi]));
            // Mask it into an index.
            self.op(body + 4, OpClass::RegSelf { rd: Reg::Eax }, RegSet::EMPTY);
            // Data-dependent table access: symbol frequencies are skewed
            // (Huffman-style), so hot entries dominate.
            let r = self.rng.gen_range(0..table_words);
            let slot = table + (r * r / table_words.max(1)) * 4;
            self.op(
                body + 8,
                OpClass::DestRegOpMem { src: MemRef::word(slot), rd: Reg::Edx },
                RegSet::from_regs([Reg::Ebx, Reg::Eax]),
            );
            // Usually store the output.
            if self.rng.gen_bool(0.6) {
                let (out, _) = self.block_span(1);
                self.op(
                    body + 12,
                    OpClass::RegToMem { rs: Reg::Edx, dst: MemRef::word(out) },
                    RegSet::from_regs([Reg::Edi]),
                );
            }
            self.frame_touch(body + 16);
        }
        2 + iters as u64 * 4
    }

    fn burst_hot_loop(&mut self) -> u64 {
        let pc0 = self.code_base(Idiom::HotLoop);
        let iters = self.rng.gen_range(8u32..32);
        self.op(pc0, OpClass::ImmToReg { rd: Reg::Ecx }, RegSet::EMPTY);
        self.op(pc0 + 4, OpClass::ImmToReg { rd: Reg::Eax }, RegSet::EMPTY);
        self.op(pc0 + 8, OpClass::ImmToReg { rd: Reg::Edx }, RegSet::EMPTY);
        let body = pc0 + 12;
        let mut count = 3u64;
        for i in 0..iters {
            self.op(body, OpClass::DestRegOpReg { rs: Reg::Eax, rd: Reg::Edx }, RegSet::EMPTY);
            self.op(body + 4, OpClass::RegSelf { rd: Reg::Eax }, RegSet::EMPTY);
            self.op(body + 8, OpClass::RegToReg { rs: Reg::Edx, rd: Reg::Ebx }, RegSet::EMPTY);
            self.op(body + 12, OpClass::DestRegOpReg { rs: Reg::Ebx, rd: Reg::Eax }, RegSet::EMPTY);
            count += 4;
            {
                let g = self.hot_global();
                self.op(
                    body + 16,
                    OpClass::MemToReg { src: MemRef::word(g), rd: Reg::Esi },
                    RegSet::EMPTY,
                );
                count += 1;
            }
            if i % 4 == 3 {
                let g = self.hot_global();
                self.op(
                    body + 20,
                    OpClass::RegToMem { rs: Reg::Edx, dst: MemRef::word(g) },
                    RegSet::EMPTY,
                );
                count += 1;
            }
            self.op(body + 24, OpClass::RegSelf { rd: Reg::Ecx }, RegSet::EMPTY);
            self.op(
                body + 28,
                OpClass::ReadOnly { src: None, reads: RegSet::from_regs([Reg::Ecx]) },
                RegSet::EMPTY,
            );
            self.ctrl(body + 32, CtrlOp::CondBranch { input: Some(Reg::Ecx) });
            count += 3;
        }
        count
    }

    fn burst_stack_frame(&mut self) -> u64 {
        let pc0 = self.code_base(Idiom::StackFrame);
        let call_pc = pc0;
        let callee = pc0 + 64;
        let mut count = 0u64;
        // call: return-address store + transfer.
        self.stack_ptr -= 4;
        let ret_slot = MemRef::word(self.stack_ptr);
        self.op(call_pc, OpClass::ImmToMem { dst: ret_slot }, RegSet::from_regs([Reg::Esp]));
        self.ctrl(call_pc, CtrlOp::Direct);
        count += 1;
        // push %ebp
        self.stack_ptr -= 4;
        self.op(
            callee,
            OpClass::RegToMem { rs: Reg::Ebp, dst: MemRef::word(self.stack_ptr) },
            RegSet::from_regs([Reg::Esp]),
        );
        // mov %esp, %ebp
        self.op(callee + 4, OpClass::RegToReg { rs: Reg::Esp, rd: Reg::Ebp }, RegSet::EMPTY);
        count += 2;
        let frame = self.stack_ptr;
        let locals = self.rng.gen_range(2u32..6);
        self.stack_ptr -= locals * 4 + 8;
        // Store locals.
        self.op(callee + 8, OpClass::ImmToReg { rd: Reg::Eax }, RegSet::EMPTY);
        count += 1;
        for k in 0..locals {
            let slot = MemRef::word(frame - 4 - k * 4);
            self.op(
                callee + 12 + k * 4,
                OpClass::RegToMem { rs: Reg::Eax, dst: slot },
                RegSet::from_regs([Reg::Ebp]),
            );
            count += 1;
        }
        // Compute over locals.
        let work = self.rng.gen_range(2u32..8);
        for k in 0..work {
            let slot = MemRef::word(frame - 4 - (k % locals) * 4);
            self.op(
                callee + 40 + k * 8,
                OpClass::MemToReg { src: slot, rd: Reg::Edx },
                RegSet::from_regs([Reg::Ebp]),
            );
            self.op(
                callee + 44 + k * 8,
                OpClass::DestRegOpReg { rs: Reg::Edx, rd: Reg::Eax },
                RegSet::EMPTY,
            );
            count += 2;
        }
        // Epilogue: pop %ebp; ret.
        self.stack_ptr = frame;
        self.op(
            callee + 120,
            OpClass::MemToReg { src: MemRef::word(self.stack_ptr), rd: Reg::Ebp },
            RegSet::from_regs([Reg::Esp]),
        );
        self.stack_ptr += 4;
        self.ctrl(callee + 124, CtrlOp::Ret { slot: MemRef::word(self.stack_ptr) });
        self.stack_ptr += 4;
        count += 2;
        count
    }

    fn burst_spill_reload(&mut self) -> u64 {
        let pc0 = self.code_base(Idiom::SpillReload);
        let slot = MemRef::word(self.stack_ptr - 8 - 4 * self.rng.gen_range(0u32..4));
        self.op(pc0, OpClass::ImmToReg { rd: Reg::Esi }, RegSet::EMPTY);
        self.op(
            pc0 + 4,
            OpClass::RegToMem { rs: Reg::Esi, dst: slot },
            RegSet::from_regs([Reg::Esp]),
        );
        let work = self.rng.gen_range(2u32..6);
        for k in 0..work {
            self.op(
                pc0 + 8 + k * 4,
                OpClass::DestRegOpReg { rs: Reg::Eax, rd: Reg::Esi },
                RegSet::EMPTY,
            );
        }
        self.op(
            pc0 + 40,
            OpClass::MemToReg { src: slot, rd: Reg::Esi },
            RegSet::from_regs([Reg::Esp]),
        );
        3 + work as u64
    }

    fn burst_string_copy(&mut self) -> u64 {
        // LZ77-style match copy: destination advances through a sliding
        // window; the source is a short back-reference into recently
        // written data — the reuse structure of real compressors.
        let pc0 = self.code_base(Idiom::StringCopy);
        let words = self.rng.gen_range(4u32..24);
        let (window, cur) = self.arena(Idiom::StringCopy, 0, words);
        let win_words = (window.size / 4).max(8);
        // Match distances are heavily skewed toward recent data.
        let distance = if self.rng.gen_bool(0.7) {
            self.rng.gen_range(1..win_words.min(16))
        } else {
            self.rng.gen_range(1..win_words.min(256))
        };
        self.op(pc0, OpClass::ImmToReg { rd: Reg::Esi }, RegSet::EMPTY);
        self.op(pc0 + 4, OpClass::ImmToReg { rd: Reg::Edi }, RegSet::EMPTY);
        let body = pc0 + 8;
        for i in 0..words {
            let dst_w = (cur + i) % win_words;
            let src_w = (dst_w + win_words - distance) % win_words;
            self.op(
                body,
                OpClass::MemToMem {
                    src: MemRef::word(window.base + src_w * 4),
                    dst: MemRef::word(window.base + dst_w * 4),
                },
                RegSet::from_regs([Reg::Esi, Reg::Edi]),
            );
            if i % 4 == 3 {
                self.frame_touch(body + 4);
            }
        }
        2 + words as u64
    }

    fn burst_pointer_chase(&mut self) -> u64 {
        let pc0 = self.code_base(Idiom::PointerChase);
        let (region_base, region_bytes) = if self.profile.mmap_bytes > 0 {
            (MMAP_BASE, self.profile.mmap_bytes)
        } else {
            (HEAP_BASE, self.profile.heap_bytes)
        };
        let nodes = (region_bytes / 16).max(8);
        // Graph traversal = short spatial runs (a few adjacent arcs/nodes)
        // separated by jumps to random positions: the producer misses on
        // nearly every run (memory-bound), while the lifeguard's 8x-denser
        // metadata reuses its cache lines across runs — the effect behind
        // the paper's "negligible overhead for mcf" observation.
        let iters = self.rng.gen_range(8u32..32);
        self.op(pc0, OpClass::ImmToReg { rd: Reg::Ebx }, RegSet::EMPTY);
        let body = pc0 + 4;
        let mut count = 1u64;
        // A small set of pivot nodes (tree roots, current basis arcs) is
        // revisited constantly between runs, as in the network simplex.
        let pivots: [u32; 4] = std::array::from_fn(|k| {
            self.rng.gen_range(0..nodes.min(64)) + (k as u32) * (nodes / 64).max(1)
        });
        for i in 0..iters {
            let node = if i % 3 == 2 {
                region_base + (pivots[(i as usize / 3) % 4] % nodes) * 16
            } else {
                if i % 4 == 0 {
                    // Jump to a new run.
                    self.chase_cursor = self.rng.gen_range(0..nodes);
                } else {
                    self.chase_cursor = (self.chase_cursor + 1) % nodes;
                }
                region_base + self.chase_cursor * 16
            };
            // Load the next pointer: %ebx now inherits from memory, so the
            // following address computation exercises the IT check path.
            self.op(
                body,
                OpClass::MemToReg { src: MemRef::word(node), rd: Reg::Ebx },
                RegSet::from_regs([Reg::Ebx]),
            );
            // Touch the node's payload.
            self.op(
                body + 4,
                OpClass::DestRegOpMem { src: MemRef::word(node + 4), rd: Reg::Edx },
                RegSet::from_regs([Reg::Ebx]),
            );
            if self.rng.gen_bool(0.2) {
                self.op(
                    body + 8,
                    OpClass::RegToMem { rs: Reg::Edx, dst: MemRef::word(node + 8) },
                    RegSet::from_regs([Reg::Ebx]),
                );
                count += 1;
            }
            self.op(
                body + 12,
                OpClass::ReadOnly { src: None, reads: RegSet::from_regs([Reg::Edx]) },
                RegSet::EMPTY,
            );
            self.ctrl(body + 16, CtrlOp::CondBranch { input: Some(Reg::Edx) });
            count += 4;
        }
        count
    }

    fn burst_branchy(&mut self) -> u64 {
        let pc0 = self.code_base(Idiom::BranchyCode);
        let iters = self.rng.gen_range(6u32..24);
        self.op(pc0, OpClass::ImmToReg { rd: Reg::Eax }, RegSet::EMPTY);
        self.op(pc0 + 4, OpClass::ImmToReg { rd: Reg::Ecx }, RegSet::EMPTY);
        let body = pc0 + 8;
        let mut count = 2u64;
        for i in 0..iters {
            // Mix of register moves and loads feeding compares.
            match i % 3 {
                0 => self.op(body, OpClass::RegToReg { rs: Reg::Eax, rd: Reg::Edx }, RegSet::EMPTY),
                1 => {
                    // Mostly hot globals; a cold straggler now and then.
                    let g = if self.rng.gen_bool(0.98) {
                        self.hot_global()
                    } else {
                        self.cold_global()
                    };
                    self.op(
                        body,
                        OpClass::MemToReg { src: MemRef::word(g), rd: Reg::Edx },
                        RegSet::EMPTY,
                    );
                }
                _ => {
                    let slot = MemRef::word(self.stack_ptr - 4 - 4 * (i % 8));
                    self.op(
                        body,
                        OpClass::MemToReg { src: slot, rd: Reg::Edx },
                        RegSet::from_regs([Reg::Esp]),
                    );
                }
            }
            self.op(body + 4, OpClass::DestRegOpReg { rs: Reg::Ecx, rd: Reg::Edx }, RegSet::EMPTY);
            if i % 2 == 0 {
                self.frame_touch(body + 8);
                count += 1;
            }
            self.op(
                body + 12,
                OpClass::ReadOnly { src: None, reads: RegSet::from_regs([Reg::Edx]) },
                RegSet::EMPTY,
            );
            self.ctrl(body + 16, CtrlOp::CondBranch { input: Some(Reg::Edx) });
            count += 4;
        }
        count
    }

    fn burst_global_update(&mut self) -> u64 {
        let pc0 = self.code_base(Idiom::GlobalUpdate);
        let iters = self.rng.gen_range(4u32..12);
        self.op(pc0, OpClass::ImmToReg { rd: Reg::Eax }, RegSet::EMPTY);
        let body = pc0 + 4;
        for i in 0..iters {
            let g = MemRef::word(self.hot_global());
            if i % 2 == 0 {
                // incl mem
                self.op(body, OpClass::MemSelf { dst: g }, RegSet::EMPTY);
            } else {
                // add %eax, mem
                self.op(body + 4, OpClass::DestMemOpReg { rs: Reg::Eax, dst: g }, RegSet::EMPTY);
            }
        }
        1 + iters as u64
    }

    fn burst_opaque(&mut self) -> u64 {
        let pc0 = self.code_base(Idiom::OpaqueOp);
        self.op(pc0, OpClass::ImmToReg { rd: Reg::Eax }, RegSet::EMPTY);
        self.op(pc0 + 4, OpClass::ImmToReg { rd: Reg::Ecx }, RegSet::EMPTY);
        let set = RegSet::from_regs([Reg::Eax, Reg::Ecx]);
        self.op(
            pc0 + 8,
            OpClass::Other { reads: set, writes: set, mem_read: None, mem_write: None },
            RegSet::EMPTY,
        );
        3
    }

    fn emit_idiom(&mut self, idiom: Idiom) -> u64 {
        match idiom {
            Idiom::ArrayScan => self.burst_array_scan(),
            Idiom::TableLookup => self.burst_table_lookup(),
            Idiom::HotLoop => self.burst_hot_loop(),
            Idiom::StackFrame => self.burst_stack_frame(),
            Idiom::SpillReload => self.burst_spill_reload(),
            Idiom::StringCopy => self.burst_string_copy(),
            Idiom::PointerChase => self.burst_pointer_chase(),
            Idiom::BranchyCode => self.burst_branchy(),
            Idiom::GlobalUpdate => self.burst_global_update(),
            Idiom::OpaqueOp => self.burst_opaque(),
        }
    }

    fn pick_idiom(&mut self) -> Idiom {
        let total = self.profile.total_weight();
        let mut roll = self.rng.gen_range(0..total);
        for (idiom, w) in &self.profile.idioms {
            if roll < *w {
                return *idiom;
            }
            roll -= w;
        }
        unreachable!("weights sum to total")
    }

    fn emit_annotations(&mut self, instrs: u64) {
        let k = instrs as f64 / 1000.0;
        self.acc_malloc += k * self.profile.malloc_per_kinstr;
        self.acc_syscall += k * self.profile.syscall_per_kinstr;
        self.acc_input += k * self.profile.input_per_kinstr;
        while self.acc_malloc >= 1.0 {
            self.acc_malloc -= 1.0;
            // Keep the live population roughly steady.
            if self.live.len() > 8 && self.rng.gen_bool(0.5) {
                self.emit_free();
            } else {
                self.emit_malloc();
            }
        }
        while self.acc_syscall >= 1.0 {
            self.acc_syscall -= 1.0;
            // The argument register is freshly set (clean) at the call site.
            let pc = self.code_next;
            self.op(pc, OpClass::ImmToReg { rd: Reg::Ebx }, RegSet::EMPTY);
            let arg_mem = if self.rng.gen_bool(0.5) {
                let (a, _) = self.block_span(1);
                Some(MemRef::word(a))
            } else {
                None
            };
            self.annot(Annotation::Syscall { arg_reg: Some(Reg::Ebx), arg_mem });
        }
        while self.acc_input >= 1.0 {
            self.acc_input -= 1.0;
            let b = self.pick_block();
            let len = b.size.min(1024);
            self.annot(Annotation::ReadInput { base: b.base, len });
        }
    }

    fn bootstrap(&mut self) {
        // The already-running program owns an initial heap population.
        let blocks = (self.profile.heap_bytes / self.profile.mean_block / 2).clamp(4, 384);
        for _ in 0..blocks {
            self.emit_malloc();
        }
    }

    fn refill(&mut self) {
        if !self.started {
            self.started = true;
            self.bootstrap();
            return;
        }
        let idiom = self.pick_idiom();
        let instrs = self.emit_idiom(idiom);
        self.emit_annotations(instrs);
    }
}

impl Iterator for TraceGen {
    type Item = TraceEntry;

    fn next(&mut self) -> Option<TraceEntry> {
        if self.emitted >= self.target {
            return None;
        }
        while self.queue.is_empty() {
            self.refill();
        }
        self.emitted += 1;
        self.queue.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;
    use std::collections::HashSet;

    #[test]
    fn emits_exactly_target_records() {
        for n in [1u64, 100, 12_345] {
            let count = Benchmark::Gcc.trace(n).count();
            assert_eq!(count as u64, n);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a: Vec<_> = Benchmark::Vortex.trace(20_000).collect();
        let b: Vec<_> = Benchmark::Vortex.trace(20_000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_benchmarks_differ() {
        let a: Vec<_> = Benchmark::Mcf.trace(5_000).collect();
        let b: Vec<_> = Benchmark::Crafty.trace(5_000).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn heap_accesses_stay_inside_live_blocks() {
        // Track malloc/free and verify every heap data access lands in a
        // live block (the well-behavedness contract).
        let mut live: Vec<(u32, u32)> = Vec::new();
        for e in Benchmark::Parser.trace(200_000) {
            match e.op {
                TraceOp::Annot(Annotation::Malloc { base, size }) => live.push((base, size)),
                TraceOp::Annot(Annotation::Free { base }) => {
                    let idx = live.iter().position(|(b, _)| *b == base).expect("free of live");
                    live.swap_remove(idx);
                }
                _ => {
                    for m in [e.mem_read(), e.mem_write()].into_iter().flatten() {
                        if (HEAP_BASE..MMAP_BASE).contains(&m.addr) {
                            assert!(
                                live.iter().any(|(b, s)| m.addr >= *b && m.end() <= b + s),
                                "access {m} outside live heap blocks at record {e:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn stack_accesses_stay_in_premarked_region() {
        for e in Benchmark::Gcc.trace(100_000) {
            for m in [e.mem_read(), e.mem_write()].into_iter().flatten() {
                if m.addr >= MMAP_BASE + Benchmark::Gcc.profile().mmap_bytes {
                    assert!(
                        m.addr >= STACK_TOP - STACK_BYTES && m.end() <= STACK_TOP,
                        "stack access {m} out of range"
                    );
                }
            }
        }
    }

    #[test]
    fn mcf_touches_many_pages_others_fewer() {
        let pages = |b: Benchmark| -> usize {
            let mut s = HashSet::new();
            for e in b.trace(150_000) {
                for m in [e.mem_read(), e.mem_write()].into_iter().flatten() {
                    s.insert(m.addr >> 12);
                }
            }
            s.len()
        };
        let mcf = pages(Benchmark::Mcf);
        let crafty = pages(Benchmark::Crafty);
        assert!(mcf > crafty * 4, "mcf footprint ({mcf} pages) must dwarf crafty ({crafty} pages)");
    }

    #[test]
    fn annotations_present_at_expected_rates() {
        let mut mallocs = 0u32;
        let mut inputs = 0u32;
        for e in Benchmark::Gzip.trace(300_000) {
            match e.op {
                TraceOp::Annot(Annotation::Malloc { .. }) => mallocs += 1,
                TraceOp::Annot(Annotation::ReadInput { .. }) => inputs += 1,
                _ => {}
            }
        }
        assert!(mallocs > 0);
        // gzip reads input heavily: ~0.08/kinstr => ~24 over 300k.
        assert!(inputs >= 10, "expected input reads, got {inputs}");
    }

    #[test]
    fn premark_regions_cover_globals_and_stack() {
        let p = Benchmark::Mcf.profile();
        let regions = p.premark_regions();
        assert!(regions.iter().any(|(b, _)| *b == GLOBALS_BASE));
        assert!(regions.iter().any(|(b, l)| *b + *l == STACK_TOP));
        assert!(regions.iter().any(|(b, _)| *b == MMAP_BASE));
    }

    #[test]
    fn event_mix_covers_all_idiom_classes() {
        let mut kinds = HashSet::new();
        for b in [Benchmark::Gcc, Benchmark::Gzip] {
            for e in b.trace(100_000) {
                if let TraceOp::Op(op) = e.op {
                    kinds.insert(op.mnemonic());
                }
            }
        }
        for k in [
            "imm_to_reg",
            "mem_to_reg",
            "reg_to_mem",
            "dest_reg_op_reg",
            "read_only",
            "mem_to_mem",
            "other",
            "mem_self",
        ] {
            assert!(kinds.contains(k), "missing {k} in gcc+gzip mix: {kinds:?}");
        }
    }
}
