//! Figure 10: per-benchmark slowdowns for the five lifeguards, LBA
//! baseline versus LBA optimized (all applicable techniques).
//!
//! Also prints the Table 2 system parameters as the header and the §7.2
//! headline (overhead reduction factor, residual overhead band) as the
//! footer.

use igm_bench::{average_slowdown, run_scale, run_suite};
use igm_lifeguards::LifeguardKind;
use igm_sim::SimConfig;
use igm_timing::SystemConfig;

fn main() {
    let n = run_scale();
    println!("=== Figure 10: lifeguard slowdowns, LBA baseline vs optimized ===");
    println!("System (Table 2): {}", SystemConfig::isca08().describe());
    println!("Records per run: {n}\n");

    let mut reductions = Vec::new();
    let mut residuals = Vec::new();

    for kind in LifeguardKind::ALL {
        println!("--- {} ---", kind.name());
        let base = run_suite(&SimConfig::baseline(kind), n);
        let opt = run_suite(&SimConfig::optimized(kind), n);
        println!("{:<10} {:>10} {:>10}", "benchmark", "baseline", "optimized");
        for (b, o) in base.iter().zip(&opt) {
            println!(
                "{:<10} {:>9.2}x {:>9.2}x",
                b.benchmark.as_deref().unwrap_or("-"),
                b.slowdown(),
                o.slowdown()
            );
        }
        let (ab, ao) = (average_slowdown(&base), average_slowdown(&opt));
        println!("{:<10} {ab:>9.2}x {ao:>9.2}x\n", "Avg");
        reductions.push(ab / ao);
        if kind != LifeguardKind::MemCheck {
            residuals.push(ao - 1.0);
        }
    }

    let rmin = reductions.iter().cloned().fold(f64::MAX, f64::min);
    let rmax = reductions.iter().cloned().fold(0.0, f64::max);
    let omin = residuals.iter().cloned().fold(f64::MAX, f64::min);
    let omax = residuals.iter().cloned().fold(0.0, f64::max);
    println!("=== §7.2 headline ===");
    println!("Overhead reduction over LBA baseline: {rmin:.1}-{rmax:.1}x  (paper: 2-3x)");
    println!(
        "Residual overhead, all lifeguards but MemCheck: {:.0}%-{:.0}%  (paper: 2%-51%)",
        omin * 100.0,
        omax * 100.0
    );
}
