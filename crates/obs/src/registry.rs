//! The lock-free metrics registry: striped counters, gauges and
//! log₂-bucketed histograms behind cheap cloneable handles.
//!
//! Registration (naming a metric, attaching labels) takes a mutex — it
//! happens once, at pool/server construction. The *record* path never
//! does: a [`Counter`] add is one relaxed `fetch_add` on a cache-padded
//! stripe chosen per handle clone (so per-worker handle clones never
//! contend), a [`Gauge`] update is one atomic, and a [`Histogram`] record
//! is two relaxed `fetch_add`s on a fixed-size bucket array. Nothing on
//! the record path allocates, locks, or branches on anything but one
//! predictable `enabled` test — the same discipline the repo's
//! `tests/alloc_free.rs` enforces for dispatch.
//!
//! Histograms use log₂ bucketing: value `v > 0` lands in bucket
//! `64 - v.leading_zeros()`, i.e. bucket `i` covers `[2^(i-1), 2^i)`;
//! bucket 0 holds exact zeros. 65 buckets cover the full `u64` range with
//! no configuration and no allocation, which is all a nanosecond latency
//! distribution needs (bucket resolution is a constant factor of 2).

use crate::events::EventRing;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Stripes per counter. Handle clones round-robin over them, so up to
/// this many workers increment disjoint cache lines.
pub const COUNTER_STRIPES: usize = 16;

/// The workspace version baked into every scrape (`igm_build_info`).
pub const BUILD_VERSION: &str = env!("CARGO_PKG_VERSION");

/// A git-ish build revision: set `IGM_BUILD_REVISION` at compile time
/// (e.g. `IGM_BUILD_REVISION=$(git rev-parse --short HEAD) cargo build`)
/// to stamp scrapes with the exact tree; defaults to `"dev"`.
pub const BUILD_REVISION: &str = match option_env!("IGM_BUILD_REVISION") {
    Some(rev) => rev,
    None => "dev",
};

/// Histogram bucket count: bucket 0 for zero, buckets 1..=64 for each
/// power-of-two range of `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// One cache line per stripe so two workers' counters never false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct Stripe(AtomicU64);

#[derive(Debug)]
struct CounterCore {
    stripes: [Stripe; COUNTER_STRIPES],
    /// Next stripe a handle clone claims.
    next: AtomicUsize,
}

impl Default for CounterCore {
    fn default() -> CounterCore {
        CounterCore { stripes: Default::default(), next: AtomicUsize::new(1) }
    }
}

impl CounterCore {
    fn sum(&self) -> u64 {
        self.stripes.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// A monotone counter handle. Cloning claims the next stripe, so handing
/// each worker its own clone shards the hot increments across cache
/// lines; all clones fold into one value at snapshot time.
#[derive(Debug)]
pub struct Counter {
    core: Arc<CounterCore>,
    stripe: usize,
}

impl Clone for Counter {
    fn clone(&self) -> Counter {
        let stripe = self.core.next.fetch_add(1, Ordering::Relaxed) % COUNTER_STRIPES;
        Counter { core: Arc::clone(&self.core), stripe }
    }
}

impl Counter {
    fn new(core: Arc<CounterCore>) -> Counter {
        Counter { core, stripe: 0 }
    }

    /// A counter attached to no registry: fully functional, but appears in
    /// no snapshot. The default observer for instrumentable paths that are
    /// not wired to a registry.
    pub fn detached() -> Counter {
        Counter::new(Arc::default())
    }

    /// Adds `n` (one relaxed `fetch_add` on this handle's stripe).
    #[inline]
    pub fn add(&self, n: u64) {
        self.core.stripes[self.stripe].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across every stripe. Monotone: each stripe only ever
    /// grows, so two sequential reads can never observe a decrease.
    pub fn value(&self) -> u64 {
        self.core.sum()
    }
}

#[derive(Debug, Default)]
struct GaugeCore(AtomicI64);

/// An up/down gauge handle (live occupancy, open sessions, …).
#[derive(Debug, Clone)]
pub struct Gauge {
    core: Arc<GaugeCore>,
}

impl Gauge {
    /// A gauge attached to no registry: fully functional, but appears in
    /// no snapshot (see [`Counter::detached`]).
    pub fn detached() -> Gauge {
        Gauge { core: Arc::default() }
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.core.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Subtracts `delta`.
    #[inline]
    pub fn sub(&self, delta: i64) {
        self.core.0.fetch_sub(delta, Ordering::Relaxed);
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, value: i64) {
        self.core.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.core.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    /// From the registry's timer switch: a disabled histogram's `record`
    /// is a no-op and [`Histogram::start`] skips the `Instant::now()` —
    /// which is what the bench's registry-disabled overhead run measures.
    enabled: bool,
}

impl HistogramCore {
    fn new(enabled: bool) -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            enabled,
        }
    }
}

/// The log₂ bucket a value lands in: 0 for zero, else
/// `64 - leading_zeros` (bucket `i` covers `[2^(i-1), 2^i)`).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The inclusive upper bound of bucket `i` (`2^i - 1`; bucket 0 → 0,
/// bucket 64 → `u64::MAX`).
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    debug_assert!(i < HISTOGRAM_BUCKETS);
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A fixed-size log₂ histogram handle (latency distributions in
/// nanoseconds, sizes in bytes — any `u64`).
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// A detached, permanently disabled histogram: every operation is a
    /// no-op and it appears in no snapshot. The default observer for
    /// paths that can be instrumented but are not attached to a registry.
    pub fn disabled() -> Histogram {
        Histogram { core: Arc::new(HistogramCore::new(false)) }
    }

    /// Whether records are being kept (the registry's timer switch).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.core.enabled
    }

    /// Records one observation: two relaxed `fetch_add`s, no locks, no
    /// allocation. No-op when disabled.
    #[inline]
    pub fn record(&self, value: u64) {
        if !self.core.enabled {
            return;
        }
        self.core.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Starts a latency measurement; `None` (and no `Instant::now()`
    /// call) when the histogram is disabled. Pair with
    /// [`Histogram::stop`].
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.core.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Records the nanoseconds elapsed since [`Histogram::start`]
    /// (no-op for a `None` start).
    #[inline]
    pub fn stop(&self, started: Option<Instant>) {
        if let Some(t0) = started {
            self.record(t0.elapsed().as_nanos() as u64);
        }
    }

    /// Point-in-time bucket/sum view.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> =
            self.core.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        HistogramSnapshot { buckets, sum: self.core.sum.load(Ordering::Relaxed) }
    }
}

/// A point-in-time histogram view. The observation count is *derived*
/// from the buckets (`count() == ` Σ buckets by construction), so a
/// snapshot taken mid-hammer is always internally consistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts ([`HISTOGRAM_BUCKETS`] entries;
    /// bucket `i` spans `(bucket_upper_bound(i-1), bucket_upper_bound(i)]`).
    pub buckets: Vec<u64>,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total observations (Σ buckets).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` (in `[0, 1]`) —
    /// a conservative (≤ factor-2) estimate, which is all log₂ buckets
    /// can promise. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }
}

/// What kind of metric a registration produced.
#[derive(Debug, Clone)]
enum Handle {
    Counter(Arc<CounterCore>),
    Gauge(Arc<GaugeCore>),
    Histogram(Arc<HistogramCore>),
}

#[derive(Debug)]
struct Registered {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    handle: Handle,
}

/// The process-wide metric directory.
///
/// One registry is shared by everything that should land on one stats
/// endpoint — the pool, the ingest front-end, the net server, a client
/// forwarder. Registration is idempotent on `(name, labels)`: two
/// subsystems asking for the same counter share one core, so a second
/// pool on the same registry accumulates into the same totals.
///
/// # Example
///
/// ```
/// use igm_obs::MetricsRegistry;
///
/// let reg = MetricsRegistry::new();
/// let records = reg.counter("igm_records_total", "records processed");
/// let latency = reg.histogram("igm_batch_nanos", "per-batch latency");
/// records.add(3);
/// latency.record(700);
/// let snap = reg.snapshot();
/// assert_eq!(snap.counter_value("igm_records_total"), Some(3));
/// assert!(snap.to_prometheus().contains("igm_records_total 3"));
/// ```
pub struct MetricsRegistry {
    metrics: Mutex<Vec<Registered>>,
    timers: bool,
    events: EventRing,
    started: Instant,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("metrics", &self.metrics.lock().unwrap().len())
            .field("timers", &self.timers)
            .finish()
    }
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// A registry with latency timers enabled (the normal mode).
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::with_timers(true)
    }

    /// A registry with the timer switch set explicitly. With timers off,
    /// every histogram it hands out is a no-op and [`Histogram::start`]
    /// never calls `Instant::now()` — counters and gauges still work, so
    /// runtime stats stay correct while the latency instrumentation
    /// vanishes (the bench's `metrics_overhead` comparison point).
    pub fn with_timers(timers: bool) -> MetricsRegistry {
        MetricsRegistry {
            metrics: Mutex::new(Vec::new()),
            timers,
            events: EventRing::new(EventRing::DEFAULT_CAPACITY),
            started: Instant::now(),
        }
    }

    /// Whether histograms record (see [`MetricsRegistry::with_timers`]).
    pub fn timers_enabled(&self) -> bool {
        self.timers
    }

    /// The registry's structured lifecycle-event ring, served by the same
    /// stats endpoint as the metrics.
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    /// Nanoseconds since the registry was created.
    pub fn uptime_nanos(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        let mut metrics = self.metrics.lock().unwrap();
        if let Some(existing) = metrics.iter().find(|m| {
            m.name == name
                && m.labels.len() == labels.len()
                && m.labels.iter().zip(labels).all(|(a, b)| a.0 == b.0 && a.1 == b.1)
        }) {
            return existing.handle.clone();
        }
        let handle = make();
        metrics.push(Registered {
            name: name.to_owned(),
            help: help.to_owned(),
            labels: labels.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect(),
            handle: handle.clone(),
        });
        handle
    }

    /// Registers (or finds) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or finds) a labeled counter.
    ///
    /// # Panics
    ///
    /// Panics if `(name, labels)` is already registered as a different
    /// metric type.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, labels, || Handle::Counter(Arc::default())) {
            Handle::Counter(core) => Counter::new(core),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Registers (or finds) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or finds) a labeled gauge.
    ///
    /// # Panics
    ///
    /// Panics on a metric-type mismatch (see [`MetricsRegistry::counter_with`]).
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, labels, || Handle::Gauge(Arc::default())) {
            Handle::Gauge(core) => Gauge { core },
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Registers (or finds) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Registers (or finds) a labeled histogram (disabled when the
    /// registry's timer switch is off).
    ///
    /// # Panics
    ///
    /// Panics on a metric-type mismatch (see [`MetricsRegistry::counter_with`]).
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        let timers = self.timers;
        match self.register(name, help, labels, || {
            Handle::Histogram(Arc::new(HistogramCore::new(timers)))
        }) {
            Handle::Histogram(core) => Histogram { core },
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// A typed point-in-time view of every registered metric, in
    /// registration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.lock().unwrap();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for m in metrics.iter() {
            let (name, help, labels) = (m.name.clone(), m.help.clone(), m.labels.clone());
            match &m.handle {
                Handle::Counter(core) => {
                    counters.push(CounterSample { name, help, labels, value: core.sum() })
                }
                Handle::Gauge(core) => gauges.push(GaugeSample {
                    name,
                    help,
                    labels,
                    value: core.0.load(Ordering::Relaxed),
                }),
                Handle::Histogram(core) => histograms.push(HistogramSample {
                    name,
                    help,
                    labels,
                    hist: Histogram { core: Arc::clone(core) }.snapshot(),
                }),
            }
        }
        MetricsSnapshot {
            uptime_nanos: self.uptime_nanos(),
            build_version: BUILD_VERSION.to_owned(),
            build_revision: BUILD_REVISION.to_owned(),
            counters,
            gauges,
            histograms,
        }
    }
}

/// One counter's sampled value.
#[derive(Debug, Clone)]
pub struct CounterSample {
    /// Metric name (`igm_pool_records_total`, …).
    pub name: String,
    /// One-line meaning.
    pub help: String,
    /// Label pairs, possibly empty.
    pub labels: Vec<(String, String)>,
    /// Sampled total.
    pub value: u64,
}

/// One gauge's sampled value.
#[derive(Debug, Clone)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// One-line meaning.
    pub help: String,
    /// Label pairs, possibly empty.
    pub labels: Vec<(String, String)>,
    /// Sampled value.
    pub value: i64,
}

/// One histogram's sampled distribution.
#[derive(Debug, Clone)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// One-line meaning.
    pub help: String,
    /// Label pairs, possibly empty.
    pub labels: Vec<(String, String)>,
    /// The bucket/sum view.
    pub hist: HistogramSnapshot,
}

/// A typed aggregation of every metric in a registry at one instant —
/// what the exporters ([`MetricsSnapshot::to_json`],
/// [`MetricsSnapshot::to_prometheus`]) and the stats endpoint serve.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Nanoseconds since the registry was created.
    pub uptime_nanos: u64,
    /// Package version ([`BUILD_VERSION`]) — the `igm_build_info`
    /// `version` label, so scrapes are self-describing.
    pub build_version: String,
    /// Build revision ([`BUILD_REVISION`]) — the `igm_build_info`
    /// `revision` label.
    pub build_revision: String,
    /// Counters, in registration order.
    pub counters: Vec<CounterSample>,
    /// Gauges, in registration order.
    pub gauges: Vec<GaugeSample>,
    /// Histograms, in registration order.
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// The value of the (first) counter named `name`, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// The value of the (first) gauge named `name`, if registered.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The (first) histogram sample matching `name` and, when given, a
    /// label pair.
    pub fn histogram_sample(
        &self,
        name: &str,
        label: Option<(&str, &str)>,
    ) -> Option<&HistogramSample> {
        self.histograms.iter().find(|h| {
            h.name == name
                && label.is_none_or(|(k, v)| h.labels.iter().any(|(lk, lv)| lk == k && lv == v))
        })
    }
}
