//! Steady-state monitoring of a batch performs **no heap allocation** on
//! the dispatch path. This binary installs a counting global allocator;
//! after one warm-up pass over a batch (which sizes the staging buffers,
//! faults in shadow chunks and warms accelerator state), re-dispatching and
//! re-handling the same batch must leave the allocation counter untouched —
//! extraction arena, post-IT buffer, delivered-event buffer and handler
//! cost sink are all reused. Both dispatch front doors are covered: the
//! columnar `dispatch_batch` over a `TraceBatch` and the array-of-structs
//! `dispatch_batch_entries` compatibility path.

use igm::accel::{AccelConfig, DispatchPipeline, ItConfig};
use igm::isa::{MemRef, OpClass, Reg, TraceEntry};
use igm::lba::{EventBuf, TraceBatch};
use igm::lifeguards::{CostSink, Lifeguard, LifeguardKind};
use igm::runtime::{EpochConfig, MonitorPool, PipelineMode, PoolConfig, SessionConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The two tests below share one process-wide allocation counter, so they
/// must not run concurrently (each would observe the other's allocations).
static SERIAL: Mutex<()> = Mutex::new(());

/// Counts every allocation-path entry (alloc, alloc_zeroed, realloc).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

const HEAP: u32 = 0x9000_0000;

/// A steady-state batch: stores then loads over a premarked region plus
/// register traffic — every event class of the hot path, no rare-path
/// records (malloc/free record-list updates are allowed to allocate).
fn steady_batch(n: u32) -> Vec<TraceEntry> {
    let mut batch = Vec::with_capacity(n as usize);
    for i in 0..n {
        let pc = 0x1000 + 4 * i;
        let addr = HEAP + 4 * (i % 0x200);
        batch.push(match i % 6 {
            0 => TraceEntry::op(pc, OpClass::ImmToMem { dst: MemRef::word(addr) }),
            1 => TraceEntry::op(pc, OpClass::MemToReg { src: MemRef::word(addr), rd: Reg::Eax }),
            2 => TraceEntry::op(pc, OpClass::RegToReg { rs: Reg::Eax, rd: Reg::Ecx }),
            3 => TraceEntry::op(pc, OpClass::RegToMem { rs: Reg::Ecx, dst: MemRef::word(addr) }),
            4 => {
                TraceEntry::op(pc, OpClass::DestRegOpMem { src: MemRef::word(addr), rd: Reg::Edx })
            }
            _ => TraceEntry::op(pc, OpClass::ImmToReg { rd: Reg::Ebx }),
        });
    }
    batch
}

#[test]
fn steady_state_columnar_dispatch_allocates_nothing() {
    let _serial = SERIAL.lock().unwrap();
    let batch = TraceBatch::from_entries(&steady_batch(2_048));
    for kind in LifeguardKind::ALL {
        for accel in [AccelConfig::baseline(), AccelConfig::full(ItConfig::taint_style())] {
            let masked = kind.mask_config(&accel);
            let mut lifeguard = kind.build_any(&accel);
            lifeguard.premark_region(HEAP, 0x1000);
            let mut pipeline = DispatchPipeline::new(lifeguard.etct(), &masked);
            let mut cost = CostSink::new();
            let mut events = EventBuf::new();

            // Warm-up: size the arenas, fault in shadow chunks, warm the
            // M-TLB/IF state. Two passes so capacity growth settles.
            for _ in 0..2 {
                pipeline.dispatch_batch(&batch, &mut events);
                cost.clear();
                lifeguard.handle_batch(events.events(), &mut cost);
            }
            let violations = lifeguard.take_violations();
            assert!(
                violations.is_empty(),
                "{kind}: steady-state batch must be clean, got {:?}",
                violations.first()
            );

            // Measured steady-state pass: the whole batch through the
            // column sweeps → IT → ETCT → IF → handlers, zero allocations.
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            pipeline.dispatch_batch(&batch, &mut events);
            cost.clear();
            lifeguard.handle_batch(events.events(), &mut cost);
            let after = ALLOCATIONS.load(Ordering::Relaxed);
            assert_eq!(
                after - before,
                0,
                "{kind} / {}: {} allocation(s) on the steady-state columnar dispatch path",
                accel.label(),
                after - before
            );
            assert!(!events.is_empty(), "{kind}: events must actually flow");
        }
    }
}

/// The batch can also be *built* allocation-free at steady state: clearing
/// a warm arena and re-scattering the same records must not touch the
/// allocator (column capacity is retained), and the AoS compatibility
/// dispatch stays zero-alloc too.
#[test]
fn steady_state_batch_build_and_aos_dispatch_allocate_nothing() {
    let _serial = SERIAL.lock().unwrap();
    let entries = steady_batch(2_048);
    let kind = LifeguardKind::AddrCheck;
    let accel = AccelConfig::baseline();
    let mut lifeguard = kind.build_any(&accel);
    lifeguard.premark_region(HEAP, 0x1000);
    let mut pipeline = DispatchPipeline::new(lifeguard.etct(), &kind.mask_config(&accel));
    let mut cost = CostSink::new();
    let mut events = EventBuf::new();
    let mut batch = TraceBatch::new();

    for _ in 0..2 {
        batch.clear();
        batch.extend_entries(entries.iter().copied());
        pipeline.dispatch_batch(&batch, &mut events);
        cost.clear();
        lifeguard.handle_batch(events.events(), &mut cost);
        pipeline.dispatch_batch_entries(&entries, &mut events);
        cost.clear();
        lifeguard.handle_batch(events.events(), &mut cost);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    batch.clear();
    batch.extend_entries(entries.iter().copied());
    pipeline.dispatch_batch(&batch, &mut events);
    cost.clear();
    lifeguard.handle_batch(events.events(), &mut cost);
    pipeline.dispatch_batch_entries(&entries, &mut events);
    cost.clear();
    lifeguard.handle_batch(events.events(), &mut cost);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "batch refill + AoS dispatch must be allocation-free");
}

/// Intra-session epoch pipelining keeps the arena discipline end to end:
/// every `TraceBatch` a pipelined epoch job drains rides back through its
/// `EpochResult` into the session channel's spare pool, so the producer
/// refills recycled arenas instead of building fresh ones. A threaded
/// pool run cannot be literally zero-alloc (epoch jobs, mpsc nodes and
/// violation vectors allocate per *epoch*), but it must amortize: after
/// a warm-up stretch, streaming another `N` records through the
/// always-pipelined path has to cost well under one allocation per
/// record — without recycling, rebuilding each batch's column arenas
/// alone would blow through that bound.
#[test]
fn pipelined_epochs_recycle_batch_arenas() {
    let _serial = SERIAL.lock().unwrap();
    let entries = steady_batch(256);
    let pool = MonitorPool::new(PoolConfig {
        workers: 2,
        pipeline: PipelineMode::Always,
        epoch: EpochConfig::Fixed(1_024),
        ..PoolConfig::default()
    });
    let session = pool.open_session(
        SessionConfig::new("hot", LifeguardKind::AddrCheck).premark(&[(HEAP, 0x1000)]),
    );

    // Warm-up: circulate enough arenas for the channel, the epoch
    // accumulator and the in-flight jobs, and settle column capacities.
    for _ in 0..64 {
        session.send_batch(entries.clone()).unwrap();
    }
    let chunks = 256u64;
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..chunks {
        session.send_batch(entries.clone()).unwrap();
    }
    let report = session.finish();
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(report.violations.is_empty(), "steady batch must be clean");
    assert!(pool.stats().epoch_jobs > 0, "the pipelined path must actually ship epochs");
    let allocs = after - before;
    let records = chunks * entries.len() as u64;
    assert!(
        allocs < records / 8,
        "pipelined steady state allocated {allocs} times for {records} records — \
         drained arenas are not being recycled"
    );
    pool.shutdown();
}

/// The observability layer keeps the same discipline: a dispatch pass
/// wrapped in registry instrumentation — histogram start/stop timing,
/// counter adds, gauge occupancy updates, an explicit `record`, and span
/// flight-recorder stage writes (the seqlock ring is fixed slots, so
/// recording a sampled frame's stages is pure stores) — stays
/// zero-allocation. (Registration and recorder construction are
/// setup-path; they happen before the measured window, exactly as
/// `MonitorPool::new` registers before any record flows.)
#[test]
fn instrumented_dispatch_stays_allocation_free() {
    let _serial = SERIAL.lock().unwrap();
    let registry = igm::obs::MetricsRegistry::new();
    let records = registry.counter("igm_records_total", "records dispatched");
    let occupancy = registry.gauge("igm_occupancy_bytes", "live queue bytes");
    let dispatch = registry.histogram("igm_dispatch_batch_nanos", "one batch through dispatch");
    let queue = registry.histogram("igm_queue_latency_nanos", "send to drain");
    let recorder = igm::span::FlightRecorder::new(igm::span::SpanConfig::default());
    let ring = recorder.ring_handle();
    let flow = igm::span::alloc_flow();
    let sampler = recorder.sampler();

    let entries = steady_batch(2_048);
    let batch = TraceBatch::from_entries(&entries);
    let kind = LifeguardKind::TaintCheck;
    let accel = AccelConfig::full(ItConfig::taint_style());
    let mut lifeguard = kind.build_any(&accel);
    lifeguard.premark_region(HEAP, 0x1000);
    let mut pipeline = DispatchPipeline::new(lifeguard.etct(), &kind.mask_config(&accel));
    let mut cost = CostSink::new();
    let mut events = EventBuf::new();

    for _ in 0..2 {
        pipeline.dispatch_batch(&batch, &mut events);
        cost.clear();
        lifeguard.handle_batch(events.events(), &mut cost);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    occupancy.add(batch.len() as i64);
    let queued = queue.start();
    // The span hot path: one sampling branch, then stage records into the
    // fixed-slot seqlock ring around the dispatch.
    let tag = sampler
        .sample()
        .then_some(igm::span::FrameTag { flow, seq: 0 })
        .expect("the first frame of a flow is always sampled");
    let picked_up = recorder.now();
    let t0 = dispatch.start();
    pipeline.dispatch_batch(&batch, &mut events);
    cost.clear();
    lifeguard.handle_batch(events.events(), &mut cost);
    dispatch.stop(t0);
    recorder.record(
        ring,
        igm::span::Stage::Dispatch,
        igm::span::Track::Worker(0),
        tag,
        picked_up,
        recorder.now(),
    );
    queue.stop(queued);
    records.add(batch.len() as u64);
    occupancy.sub(batch.len() as i64);
    queue.record(37);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "{} allocation(s) on the instrumented steady-state dispatch path",
        after - before
    );
    assert_eq!(records.value(), batch.len() as u64);
    assert_eq!(occupancy.value(), 0);
    let snap = registry.snapshot();
    let h = snap.histogram_sample("igm_dispatch_batch_nanos", None).expect("registered");
    assert_eq!(h.hist.count(), 1, "the measured pass was timed");
    let chain = recorder.chain(tag);
    assert_eq!(chain.len(), 1, "the dispatch stage landed in the ring");
    assert_eq!(chain[0].stage, igm::span::Stage::Dispatch);
}
