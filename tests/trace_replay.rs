//! Replay determinism and multiplexed ingest, end to end.
//!
//! The acceptance bar for the trace subsystem: replaying a captured trace
//! file through a `MonitorPool` must yield violations and `DispatchStats`
//! identical to the live run that produced it, for all five lifeguards —
//! and a single-thread `Ingestor` must drive many concurrent tenant
//! sources to the same results as dedicated producer threads.

use igm::isa::{Annotation, CtrlOp, JumpTarget, MemRef, OpClass, Reg, TraceEntry};
use igm::lifeguards::LifeguardKind;
use igm::runtime::{MonitorPool, PoolConfig, SessionConfig};
use igm::trace::{
    batch_pipe, replay_reader, CaptureSession, FileSource, IngestConfig, Ingestor, IterSource,
    TraceReader,
};
use igm::workload::{Benchmark, MtBenchmark};

/// A short buggy epilogue appended to a clean generated trace so replay
/// equality is asserted over *non-empty* violation sets: an out-of-bounds
/// heap read (AddrCheck, MemCheck) and a control transfer through a
/// tainted pointer (both TaintChecks).
fn buggy_epilogue() -> Vec<TraceEntry> {
    vec![
        TraceEntry::annot(0x9100_0000, Annotation::Malloc { base: 0x0a00_0000, size: 64 }),
        TraceEntry::annot(0x9100_0004, Annotation::ReadInput { base: 0x0a00_0000, len: 4 }),
        // One byte past the allocation.
        TraceEntry::op(
            0x9100_0008,
            OpClass::MemToReg { src: MemRef::word(0x0a00_0040), rd: Reg::Edx },
        ),
        // Load the untrusted word and jump through it.
        TraceEntry::op(
            0x9100_000c,
            OpClass::MemToReg { src: MemRef::word(0x0a00_0000), rd: Reg::Eax },
        ),
        TraceEntry::ctrl(0x9100_0010, CtrlOp::Indirect { target: JumpTarget::Reg(Reg::Eax) }),
        TraceEntry::annot(0x9100_0014, Annotation::Free { base: 0x0a00_0000 }),
    ]
}

fn session_cfg(kind: LifeguardKind, name: &str) -> SessionConfig {
    let premark = match kind {
        LifeguardKind::LockSet => MtBenchmark::Zchaff.trace(1).premark_regions(),
        _ => Benchmark::Gzip.profile().premark_regions(),
    };
    SessionConfig::new(name, kind).synthetic().premark(&premark)
}

fn workload_for(kind: LifeguardKind, n: u64) -> Vec<TraceEntry> {
    match kind {
        LifeguardKind::LockSet => MtBenchmark::Zchaff.trace(n).collect(),
        _ => {
            let mut trace: Vec<TraceEntry> = Benchmark::Gzip.trace(n).collect();
            trace.extend(buggy_epilogue());
            trace
        }
    }
}

#[test]
fn replay_reproduces_live_runs_for_all_five_lifeguards() {
    const N: u64 = 20_000;
    let pool = MonitorPool::new(PoolConfig::with_workers(4));
    for kind in [
        LifeguardKind::AddrCheck,
        LifeguardKind::MemCheck,
        LifeguardKind::TaintCheck,
        LifeguardKind::TaintCheckDetailed,
        LifeguardKind::LockSet,
    ] {
        let cfg = session_cfg(kind, kind.name());
        let trace = workload_for(kind, N);

        // Live run, teed to an in-memory trace file.
        let mut capture = CaptureSession::new(&pool, cfg.clone(), Vec::new()).unwrap();
        capture.stream(trace.iter().copied()).unwrap();
        let (live, bytes) = capture.finish().unwrap();
        assert_eq!(live.records, trace.len() as u64);
        if !matches!(kind, LifeguardKind::LockSet) {
            assert!(
                !live.violations.is_empty(),
                "{kind:?}: the buggy epilogue must trip the lifeguard live"
            );
        }

        // Replay the artifact through a fresh session: identical results.
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let replayed = replay_reader(&pool, cfg, &mut reader).unwrap();
        assert_eq!(replayed.records, live.records, "{kind:?}: record counts diverge");
        assert_eq!(replayed.violations, live.violations, "{kind:?}: violations diverge");
        assert_eq!(replayed.dispatch, live.dispatch, "{kind:?}: dispatch stats diverge");
    }
    pool.shutdown();
}

#[test]
fn single_thread_ingestor_multiplexes_many_sources() {
    const N: u64 = 8_000;
    const TENANTS: [Benchmark; 8] = [
        Benchmark::Bzip2,
        Benchmark::Crafty,
        Benchmark::Gap,
        Benchmark::Gcc,
        Benchmark::Gzip,
        Benchmark::Mcf,
        Benchmark::Twolf,
        Benchmark::Vpr,
    ];
    let pool = MonitorPool::new(PoolConfig::with_workers(4));
    let mut ingestor = Ingestor::with_config(
        &pool,
        IngestConfig { batches_per_turn: 2, ..IngestConfig::default() },
    );

    // A mixed source population: in-memory generators, a recorded trace
    // file, and a readiness-polled pipe fed by an external producer.
    let recorded = igm::trace::encode_to_vec(TENANTS[0].trace(N), 4096);
    let (pipe_tx, pipe_rx) = batch_pipe(4);
    let feeder = std::thread::spawn(move || {
        for batch in igm::lba::chunks(TENANTS[1].trace(N), 4096) {
            if pipe_tx.send(batch).is_err() {
                return;
            }
        }
    });
    ingestor.add_source(
        session_cfg(LifeguardKind::AddrCheck, "recorded"),
        FileSource::new(TraceReader::new(std::io::Cursor::new(recorded)).unwrap()),
    );
    ingestor.add_source(session_cfg(LifeguardKind::TaintCheck, "piped"), pipe_rx);
    for bench in &TENANTS[2..] {
        let kind = if (*bench as usize).is_multiple_of(2) {
            LifeguardKind::AddrCheck
        } else {
            LifeguardKind::TaintCheck
        };
        ingestor.add_source(
            SessionConfig::new(bench.name(), kind)
                .synthetic()
                .premark(&bench.profile().premark_regions()),
            IterSource::new(bench.trace(N), 4096),
        );
    }
    assert_eq!(ingestor.lanes(), 8);

    // One OS thread drives all eight tenants to completion.
    let report = ingestor.run();
    feeder.join().unwrap();

    assert_eq!(report.sessions.len(), 8);
    assert!(report.errors.is_empty(), "clean sources: {:?}", report.errors);
    assert_eq!(report.records(), 8 * N);
    for session in &report.sessions {
        assert_eq!(session.records, N, "tenant {} lost records", session.name);
        assert!(session.violations.is_empty(), "clean workloads only");
    }
    for (name, lane) in &report.lanes {
        assert!(lane.turns > 0, "lane {name} was never scheduled");
        assert_eq!(lane.records, N, "lane {name} accounting diverges");
    }
    pool.shutdown();
}

#[test]
fn tee_at_ingest_leaves_replayable_artifacts_for_piped_lanes() {
    const N: u64 = 7_000;
    let pool = MonitorPool::new(PoolConfig::with_workers(2));
    let mut ingestor = Ingestor::new(&pool);

    // Two teed lanes: an in-memory generator (with the buggy epilogue, so
    // the replay equality is over non-empty violations) and a
    // readiness-polled pipe — the lane kinds that previously left no
    // artifact.
    let gen_sink = std::env::temp_dir().join(format!("igm_tee_gen_{}.igmt", std::process::id()));
    let pipe_sink = std::env::temp_dir().join(format!("igm_tee_pipe_{}.igmt", std::process::id()));
    let trace = workload_for(LifeguardKind::AddrCheck, N);
    ingestor
        .add_source_teed(
            session_cfg(LifeguardKind::AddrCheck, "generated"),
            IterSource::new(trace, 4096),
            std::fs::File::create(&gen_sink).unwrap(),
        )
        .unwrap();
    let (pipe_tx, pipe_rx) = batch_pipe(4);
    let feeder = std::thread::spawn(move || {
        for batch in igm::lba::chunks(Benchmark::Mcf.trace(N), 4096) {
            if pipe_tx.send(batch).is_err() {
                return;
            }
        }
    });
    ingestor
        .add_source_teed(
            SessionConfig::new("piped", LifeguardKind::TaintCheck)
                .synthetic()
                .premark(&Benchmark::Mcf.profile().premark_regions()),
            pipe_rx,
            std::fs::File::create(&pipe_sink).unwrap(),
        )
        .unwrap();

    let report = ingestor.run();
    feeder.join().unwrap();
    assert!(report.errors.is_empty(), "{:?}", report.errors);

    // Each artifact replays to results identical to its live lane.
    for (name, sink, cfg) in [
        ("generated", &gen_sink, session_cfg(LifeguardKind::AddrCheck, "generated-replay")),
        (
            "piped",
            &pipe_sink,
            SessionConfig::new("piped-replay", LifeguardKind::TaintCheck)
                .synthetic()
                .premark(&Benchmark::Mcf.profile().premark_regions()),
        ),
    ] {
        let live = report.sessions.iter().find(|s| s.name == name).unwrap();
        let replayed = igm::trace::replay_file(&pool, cfg, sink).unwrap();
        assert_eq!(replayed.records, live.records, "{name}: record counts diverge");
        assert_eq!(replayed.violations, live.violations, "{name}: violations diverge");
        assert_eq!(replayed.dispatch, live.dispatch, "{name}: dispatch stats diverge");
        std::fs::remove_file(sink).unwrap();
    }
    let generated = report.sessions.iter().find(|s| s.name == "generated").unwrap();
    assert!(!generated.violations.is_empty(), "epilogue must trip AddrCheck");
    pool.shutdown();
}

#[test]
fn ingestor_contains_a_corrupt_source_to_its_lane() {
    let pool = MonitorPool::new(PoolConfig::with_workers(2));
    let mut ingestor = Ingestor::new(&pool);

    // A trace whose second frame is corrupted.
    let mut bytes = igm::trace::encode_to_vec(Benchmark::Gzip.trace(6_000), 2048);
    let idx = bytes.len() - 3;
    bytes[idx] ^= 0xff;
    ingestor.add_source(
        session_cfg(LifeguardKind::AddrCheck, "corrupt"),
        FileSource::new(TraceReader::new(std::io::Cursor::new(bytes)).unwrap()),
    );
    ingestor.add_source(
        session_cfg(LifeguardKind::AddrCheck, "healthy"),
        IterSource::new(Benchmark::Mcf.trace(5_000), 4096),
    );

    let report = ingestor.run();
    assert_eq!(report.errors.len(), 1, "exactly the corrupt lane errors");
    assert_eq!(report.errors[0].0, "corrupt");
    // Both lanes still finalized; the healthy one is complete.
    assert_eq!(report.sessions.len(), 2);
    let healthy = report.sessions.iter().find(|s| s.name == "healthy").unwrap();
    assert_eq!(healthy.records, 5_000);
    let corrupt = report.sessions.iter().find(|s| s.name == "corrupt").unwrap();
    assert!(corrupt.records < 6_000, "the corrupt lane stops at the damaged frame");
    pool.shutdown();
}
