//! The bounded SPSC log channel: the software analogue of LBA's in-cache
//! log buffer, generalized from one core pair to arbitrary producer and
//! consumer threads.
//!
//! Semantics mirror [`igm_lba::buffer::LogBuffer`]: capacity is accounted in
//! *compressed record bytes* ([`igm_lba::compressed_size`]), and a producer
//! that finds the buffer full **stalls** — exactly the condition the timing
//! model charges as [`igm_timing::TimingReport::producer_stall_cycles`]
//! (`igm-timing`). Here the stall is a real blocked thread; the channel
//! counts stall events and stalled wall-clock nanoseconds so the runtime's
//! stats stay comparable with the co-simulator's stall accounting.
//!
//! Records travel in *batches* (chunks produced by [`igm_lba::chunks`]):
//! the producer publishes a whole batch under one lock acquisition, which is
//! the transport analogue of the hardware writing compressed records a
//! cache line at a time.

use igm_lba::TraceBatch;
use igm_obs::{Gauge, Histogram};
use igm_span::FrameTag;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Registry handles a channel reports into: send→drain queue latency per
/// batch and live buffered bytes. A pool hands every session channel
/// clones of the same pair, so the gauge aggregates live occupancy across
/// the pool's channels. The default is fully detached (no registry).
#[derive(Debug, Clone)]
pub(crate) struct ChannelObs {
    /// `igm_channel_queue_latency_nanos`: publish → drain per batch.
    pub(crate) queue_latency: Histogram,
    /// `igm_channel_occupancy_bytes`: live compressed bytes buffered.
    pub(crate) occupancy_bytes: Gauge,
}

impl Default for ChannelObs {
    fn default() -> ChannelObs {
        ChannelObs { queue_latency: Histogram::disabled(), occupancy_bytes: Gauge::detached() }
    }
}

/// Error returned when sending into a channel whose consumer is gone. The
/// rejected batch is handed back to the caller (boxed: the error path is
/// cold, and the nine-column arena would otherwise dominate the size of
/// every `Result` on the send path).
#[derive(Debug, PartialEq, Eq)]
pub struct SendError(pub Box<TraceBatch>);

/// Monotonic counters shared by both endpoints (read via
/// [`ChannelStatsSnapshot`]).
#[derive(Debug, Default)]
struct ChannelCounters {
    pushed_records: AtomicU64,
    pushed_batches: AtomicU64,
    stall_events: AtomicU64,
    stall_nanos: AtomicU64,
    refused_sends: AtomicU64,
    peak_bytes: AtomicU32,
    used_bytes: AtomicU32,
    depth_batches: AtomicUsize,
}

/// A point-in-time view of a channel's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStatsSnapshot {
    /// Records accepted so far.
    pub pushed_records: u64,
    /// Batches accepted so far.
    pub pushed_batches: u64,
    /// Sends that blocked on a full buffer (the producer-stall condition of
    /// the timing model).
    pub stall_events: u64,
    /// Total wall-clock nanoseconds producers spent stalled.
    pub stall_nanos: u64,
    /// Non-blocking sends ([`LogProducer::try_send_batch`]) refused by a
    /// full buffer — the backpressure signal of the multiplexed ingest
    /// path, where a refusal defers one source instead of blocking a
    /// thread.
    pub refused_sends: u64,
    /// High-water mark of byte occupancy.
    pub peak_bytes: u32,
    /// Bytes currently buffered.
    pub used_bytes: u32,
    /// Batches currently buffered (the queue depth).
    pub depth_batches: usize,
}

#[derive(Debug)]
struct Inner {
    /// Each batch travels with its publish timestamp (`None` when neither
    /// queue latency nor a span tag asks for one), so the drain side can
    /// report send→drain latency — and stamp the span `channel_wait`
    /// stage — without a second clock read on the send side, plus the
    /// frame's span tag (`None` for unsampled frames: the tag rides the
    /// queue for free either way).
    queue: VecDeque<(TraceBatch, Option<Instant>, Option<FrameTag>)>,
    used_bytes: u32,
    producer_closed: bool,
    consumer_closed: bool,
}

#[derive(Debug)]
struct Shared {
    capacity_bytes: u32,
    inner: Mutex<Inner>,
    not_full: Condvar,
    not_empty: Condvar,
    counters: ChannelCounters,
    /// Drained batch arenas handed back by the consumer for the producer
    /// side to refill (bounded; see [`SPARE_ARENAS`]). Keeps steady-state
    /// streaming allocation-free: column capacity circulates through the
    /// channel instead of being reallocated per chunk.
    spares: Mutex<Vec<TraceBatch>>,
    obs: ChannelObs,
}

/// Upper bound on recycled batch arenas parked on a channel.
const SPARE_ARENAS: usize = 8;

impl Shared {
    fn snapshot(&self) -> ChannelStatsSnapshot {
        let c = &self.counters;
        ChannelStatsSnapshot {
            pushed_records: c.pushed_records.load(Ordering::Relaxed),
            pushed_batches: c.pushed_batches.load(Ordering::Relaxed),
            stall_events: c.stall_events.load(Ordering::Relaxed),
            stall_nanos: c.stall_nanos.load(Ordering::Relaxed),
            refused_sends: c.refused_sends.load(Ordering::Relaxed),
            peak_bytes: c.peak_bytes.load(Ordering::Relaxed),
            used_bytes: c.used_bytes.load(Ordering::Relaxed),
            depth_batches: c.depth_batches.load(Ordering::Relaxed),
        }
    }
}

/// Creates a bounded SPSC log channel holding up to `capacity_bytes` of
/// compressed records.
///
/// # Panics
///
/// Panics if `capacity_bytes` is zero.
///
/// # Example
///
/// ```
/// use igm_isa::{OpClass, Reg, TraceEntry};
/// use igm_runtime::log_channel;
///
/// let (tx, rx) = log_channel(1024);
/// let rec = TraceEntry::op(0x1000, OpClass::ImmToReg { rd: Reg::Eax });
/// tx.send_batch(vec![rec; 8]).unwrap();
/// drop(tx); // close
/// assert_eq!(rx.recv_batch().unwrap().len(), 8);
/// assert!(rx.recv_batch().is_none());
/// ```
pub fn log_channel(capacity_bytes: u32) -> (LogProducer, LogConsumer) {
    log_channel_with(capacity_bytes, ChannelObs::default())
}

/// [`log_channel`] with registry handles attached (how the pool wires
/// every session channel onto its metrics registry).
pub(crate) fn log_channel_with(capacity_bytes: u32, obs: ChannelObs) -> (LogProducer, LogConsumer) {
    assert!(capacity_bytes > 0, "log channel capacity must be positive");
    let shared = Arc::new(Shared {
        capacity_bytes,
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            used_bytes: 0,
            producer_closed: false,
            consumer_closed: false,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        counters: ChannelCounters::default(),
        spares: Mutex::new(Vec::new()),
        obs,
    });
    (LogProducer { shared: Arc::clone(&shared) }, LogConsumer { shared })
}

/// The application-core endpoint. Not `Clone`: single producer.
#[derive(Debug)]
pub struct LogProducer {
    shared: Arc<Shared>,
}

impl LogProducer {
    /// Publishes one batch, blocking while the buffer is full (producer
    /// stall). A batch larger than the whole capacity is admitted once the
    /// buffer drains empty, so progress is always possible. Fails only when
    /// the consumer endpoint is gone.
    pub fn send_batch(&self, batch: impl Into<TraceBatch>) -> Result<(), SendError> {
        self.send_batch_tagged(batch, None)
    }

    /// [`LogProducer::send_batch`] carrying the frame's span tag alongside
    /// the batch (`None` for unsampled frames). The tag rides the queue
    /// and comes back out of [`LogConsumer::try_recv_batch_tagged`] so the
    /// drain side can stamp the frame's `channel_wait` span without any
    /// side table.
    pub fn send_batch_tagged(
        &self,
        batch: impl Into<TraceBatch>,
        tag: Option<FrameTag>,
    ) -> Result<(), SendError> {
        let batch = batch.into();
        if batch.is_empty() {
            return Ok(());
        }
        let bytes = batch.compressed_bytes();
        let mut inner = self.shared.inner.lock().unwrap();
        if inner.consumer_closed {
            return Err(SendError(Box::new(batch)));
        }
        if inner.used_bytes + bytes > self.shared.capacity_bytes && !inner.queue.is_empty() {
            // Producer stall: the log buffer is full.
            let start = Instant::now();
            self.shared.counters.stall_events.fetch_add(1, Ordering::Relaxed);
            while inner.used_bytes + bytes > self.shared.capacity_bytes
                && !inner.queue.is_empty()
                && !inner.consumer_closed
            {
                inner = self.shared.not_full.wait(inner).unwrap();
            }
            self.shared
                .counters
                .stall_nanos
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            if inner.consumer_closed {
                return Err(SendError(Box::new(batch)));
            }
        }
        self.publish(inner, batch, bytes, tag);
        Ok(())
    }

    /// Publishes one batch without blocking. Returns `Ok(None)` on
    /// success, `Ok(Some(batch))` — handing the batch back — when the
    /// buffer is full (the caller decides when to retry; the refusal is
    /// counted as [`ChannelStatsSnapshot::refused_sends`]), and `Err` when
    /// the consumer endpoint is gone. Like [`LogProducer::send_batch`], a
    /// batch larger than the whole capacity is admitted once the buffer is
    /// empty, so progress is always possible.
    pub fn try_send_batch(
        &self,
        batch: impl Into<TraceBatch>,
    ) -> Result<Option<TraceBatch>, SendError> {
        self.try_send_batch_tagged(batch, None)
    }

    /// [`LogProducer::try_send_batch`] carrying the frame's span tag
    /// alongside the batch (`None` for unsampled frames). When the send is
    /// refused the caller keeps both the batch and the tag for the retry.
    pub fn try_send_batch_tagged(
        &self,
        batch: impl Into<TraceBatch>,
        tag: Option<FrameTag>,
    ) -> Result<Option<TraceBatch>, SendError> {
        let batch = batch.into();
        if batch.is_empty() {
            return Ok(None);
        }
        let bytes = batch.compressed_bytes();
        let inner = self.shared.inner.lock().unwrap();
        if inner.consumer_closed {
            return Err(SendError(Box::new(batch)));
        }
        if inner.used_bytes + bytes > self.shared.capacity_bytes && !inner.queue.is_empty() {
            self.shared.counters.refused_sends.fetch_add(1, Ordering::Relaxed);
            return Ok(Some(batch));
        }
        self.publish(inner, batch, bytes, tag);
        Ok(None)
    }

    /// The shared enqueue-and-account tail of both send paths: admits
    /// `batch` (size pre-computed as `bytes`) under the held lock, updates
    /// every occupancy/throughput counter, and wakes the consumer.
    fn publish(
        &self,
        mut inner: std::sync::MutexGuard<'_, Inner>,
        batch: TraceBatch,
        bytes: u32,
        tag: Option<FrameTag>,
    ) {
        inner.used_bytes += bytes;
        let c = &self.shared.counters;
        c.used_bytes.store(inner.used_bytes, Ordering::Relaxed);
        c.peak_bytes.fetch_max(inner.used_bytes, Ordering::Relaxed);
        c.pushed_records.fetch_add(batch.len() as u64, Ordering::Relaxed);
        c.pushed_batches.fetch_add(1, Ordering::Relaxed);
        self.shared.obs.occupancy_bytes.add(bytes as i64);
        // `start()` is `None` (no clock read) when queue-latency recording
        // is off — but a tagged (sampled) frame always gets a timestamp,
        // because its `channel_wait` span needs the publish instant. Tagged
        // frames are the sampled minority, so the extra clock read stays
        // off the common path.
        let published =
            self.shared.obs.queue_latency.start().or_else(|| tag.map(|_| Instant::now()));
        inner.queue.push_back((batch, published, tag));
        c.depth_batches.store(inner.queue.len(), Ordering::Relaxed);
        drop(inner);
        self.shared.not_empty.notify_one();
    }

    /// Current counters.
    pub fn stats(&self) -> ChannelStatsSnapshot {
        self.shared.snapshot()
    }

    /// Pops a recycled batch arena the consumer handed back (empty, column
    /// capacity intact), or a fresh one when none is parked. Producers that
    /// refill spares instead of allocating keep the steady-state transport
    /// allocation-free.
    pub fn spare(&self) -> TraceBatch {
        self.shared.spares.lock().unwrap().pop().unwrap_or_default()
    }
}

impl Drop for LogProducer {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.producer_closed = true;
        drop(inner);
        self.shared.not_empty.notify_all();
    }
}

/// The lifeguard-core endpoint. Not `Clone`: single consumer.
#[derive(Debug)]
pub struct LogConsumer {
    shared: Arc<Shared>,
}

impl LogConsumer {
    fn take(&self, inner: &mut Inner) -> Option<(TraceBatch, Option<Instant>, Option<FrameTag>)> {
        let (batch, published, tag) = inner.queue.pop_front()?;
        let bytes = batch.compressed_bytes();
        inner.used_bytes -= bytes;
        let c = &self.shared.counters;
        c.used_bytes.store(inner.used_bytes, Ordering::Relaxed);
        c.depth_batches.store(inner.queue.len(), Ordering::Relaxed);
        self.shared.obs.occupancy_bytes.sub(bytes as i64);
        self.shared.obs.queue_latency.stop(published);
        Some((batch, published, tag))
    }

    /// Removes the oldest batch without blocking.
    pub fn try_recv_batch(&self) -> Option<TraceBatch> {
        self.try_recv_batch_tagged().map(|(batch, _, _)| batch)
    }

    /// Removes the oldest batch without blocking, along with its publish
    /// instant and span tag (both `None` unless the frame is sampled or
    /// queue-latency timing is on) — the pool's pump drains through this
    /// so it can stamp `channel_wait` for sampled frames.
    pub fn try_recv_batch_tagged(&self) -> Option<(TraceBatch, Option<Instant>, Option<FrameTag>)> {
        let mut inner = self.shared.inner.lock().unwrap();
        let taken = self.take(&mut inner)?;
        drop(inner);
        self.shared.not_full.notify_one();
        Some(taken)
    }

    /// Removes the oldest batch, blocking while the channel is empty.
    /// Returns `None` once the producer is gone and the buffer drained.
    pub fn recv_batch(&self) -> Option<TraceBatch> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if let Some((batch, _, _)) = self.take(&mut inner) {
                drop(inner);
                self.shared.not_full.notify_one();
                return Some(batch);
            }
            if inner.producer_closed {
                return None;
            }
            inner = self.shared.not_empty.wait(inner).unwrap();
        }
    }

    /// Whether the producer is gone and every batch has been consumed.
    pub fn is_drained(&self) -> bool {
        let inner = self.shared.inner.lock().unwrap();
        inner.producer_closed && inner.queue.is_empty()
    }

    /// Batches currently buffered, from the lock-free counter mirror — the
    /// scheduler's steal heuristic probes this without touching the channel
    /// lock (the value may be momentarily stale, which stealing tolerates:
    /// a wrong guess costs one empty `try_recv_batch`).
    pub fn pending_batches(&self) -> usize {
        self.shared.counters.depth_batches.load(Ordering::Relaxed)
    }

    /// Live compressed bytes buffered, from the lock-free counter mirror
    /// (same staleness caveat as [`LogConsumer::pending_batches`]). With
    /// [`LogConsumer::capacity_bytes`] this is the occupancy signal the
    /// pool's hot-session detector reads per pump turn.
    pub fn used_bytes(&self) -> u32 {
        self.shared.counters.used_bytes.load(Ordering::Relaxed)
    }

    /// The channel's configured capacity in compressed-record bytes.
    pub fn capacity_bytes(&self) -> u32 {
        self.shared.capacity_bytes
    }

    /// Current counters.
    pub fn stats(&self) -> ChannelStatsSnapshot {
        self.shared.snapshot()
    }

    /// Hands a drained batch arena back for the producer side to refill
    /// (cleared here; dropped instead once [`SPARE_ARENAS`] are already
    /// parked).
    pub fn recycle(&self, mut batch: TraceBatch) {
        let mut spares = self.shared.spares.lock().unwrap();
        if spares.len() < SPARE_ARENAS {
            batch.clear();
            spares.push(batch);
        }
    }
}

impl Drop for LogConsumer {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.consumer_closed = true;
        // The discarded batches leave the pool-wide occupancy gauge too.
        self.shared.obs.occupancy_bytes.sub(inner.used_bytes as i64);
        // Release buffered batches so a blocked producer can observe the
        // closure rather than waiting for room that will never appear.
        inner.queue.clear();
        inner.used_bytes = 0;
        // Keep the shared counters truthful for stats read after closure.
        self.shared.counters.used_bytes.store(0, Ordering::Relaxed);
        self.shared.counters.depth_batches.store(0, Ordering::Relaxed);
        drop(inner);
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igm_isa::{OpClass, Reg, TraceEntry};

    fn rec(pc: u32) -> TraceEntry {
        TraceEntry::op(pc, OpClass::ImmToReg { rd: Reg::Eax })
    }

    #[test]
    fn backpressure_blocks_until_drained() {
        let (tx, rx) = log_channel(8);
        tx.send_batch((0..8).map(rec).collect::<Vec<_>>()).unwrap(); // exactly full
        let producer = std::thread::spawn(move || {
            tx.send_batch((8..12).map(rec).collect::<Vec<_>>()).unwrap();
            tx.stats().stall_events
        });
        // Give the producer time to hit the stall path.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.recv_batch().unwrap().len(), 8);
        let stalls = producer.join().unwrap();
        assert_eq!(stalls, 1, "second send must have stalled");
        assert_eq!(rx.recv_batch().unwrap().len(), 4);
        let s = rx.stats();
        assert!(s.stall_nanos > 0);
        assert!(s.peak_bytes <= 8);
        assert_eq!(s.pushed_records, 12);
    }

    #[test]
    fn consumer_drop_unblocks_producer() {
        let (tx, rx) = log_channel(4);
        tx.send_batch((0..4).map(rec).collect::<Vec<_>>()).unwrap();
        let producer =
            std::thread::spawn(move || tx.send_batch((4..8).map(rec).collect::<Vec<_>>()));
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        let err = producer.join().unwrap().unwrap_err();
        assert_eq!(err.0.len(), 4, "rejected batch is returned");
    }

    #[test]
    fn try_send_refuses_when_full_and_hands_batch_back() {
        let (tx, rx) = log_channel(8);
        assert_eq!(tx.try_send_batch((0..8).map(rec).collect::<Vec<_>>()), Ok(None));
        // Full: the batch comes back instead of blocking.
        let refused = tx.try_send_batch((8..12).map(rec).collect::<Vec<_>>()).unwrap();
        assert_eq!(refused.as_ref().map(TraceBatch::len), Some(4));
        assert_eq!(tx.stats().refused_sends, 1);
        assert_eq!(tx.stats().stall_events, 0, "refusal is not a stall");
        // Drain, then the retry succeeds.
        assert_eq!(rx.recv_batch().unwrap().len(), 8);
        assert_eq!(tx.try_send_batch(refused.unwrap()), Ok(None));
        assert_eq!(rx.recv_batch().unwrap().len(), 4);
        // Closed consumer: error, batch returned.
        drop(rx);
        let err = tx.try_send_batch(vec![rec(1)]).unwrap_err();
        assert_eq!(err.0.len(), 1);
    }

    #[test]
    fn span_tags_ride_the_queue_in_order() {
        let (tx, rx) = log_channel(1024);
        tx.send_batch_tagged(vec![rec(1)], Some(FrameTag { flow: 7, seq: 0 })).unwrap();
        tx.send_batch(vec![rec(2)]).unwrap();
        tx.send_batch_tagged(vec![rec(3)], Some(FrameTag { flow: 7, seq: 2 })).unwrap();
        let (_, published, tag) = rx.try_recv_batch_tagged().unwrap();
        assert_eq!(tag, Some(FrameTag { flow: 7, seq: 0 }));
        assert!(published.is_some(), "a tagged frame always carries its publish instant");
        let (_, published, tag) = rx.try_recv_batch_tagged().unwrap();
        assert_eq!(tag, None);
        assert!(published.is_none(), "untagged + timers off: no clock read");
        let (_, _, tag) = rx.try_recv_batch_tagged().unwrap();
        assert_eq!(tag, Some(FrameTag { flow: 7, seq: 2 }));
        assert!(rx.try_recv_batch_tagged().is_none());
    }

    #[test]
    fn oversized_batch_is_admitted_when_empty() {
        let (tx, rx) = log_channel(2);
        tx.send_batch((0..10).map(rec).collect::<Vec<_>>()).unwrap();
        assert_eq!(rx.recv_batch().unwrap().len(), 10);
    }

    #[test]
    fn drained_reports_closure() {
        let (tx, rx) = log_channel(16);
        tx.send_batch(vec![rec(1)]).unwrap();
        assert!(!rx.is_drained());
        drop(tx);
        assert!(!rx.is_drained(), "a batch is still queued");
        assert!(rx.recv_batch().is_some());
        assert!(rx.is_drained());
        assert!(rx.recv_batch().is_none());
    }
}
