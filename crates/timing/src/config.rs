//! Whole-system configuration (paper Table 2).

use crate::cache::CacheConfig;

/// The simulated dual-core LBA system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemConfig {
    /// Private instruction L1 (per core).
    pub l1i: CacheConfig,
    /// Private data L1 (per core).
    pub l1d: CacheConfig,
    /// Shared L2.
    pub l2: CacheConfig,
    /// Main-memory latency in cycles.
    pub mem_latency: u32,
    /// Log buffer capacity in bytes.
    pub log_buffer_bytes: u32,
}

impl SystemConfig {
    /// The paper's simulation setup (Table 2): 16 KB 2-way L1s, 512 KB
    /// 8-way shared L2 (10-cycle), 200-cycle memory, 64 KB log buffer.
    pub fn isca08() -> SystemConfig {
        SystemConfig {
            l1i: CacheConfig::isca08_l1(),
            l1d: CacheConfig::isca08_l1(),
            l2: CacheConfig::isca08_l2(),
            mem_latency: 200,
            log_buffer_bytes: 64 * 1024,
        }
    }

    /// Renders the Table 2 parameter block for experiment headers.
    pub fn describe(&self) -> String {
        format!(
            "Private L1I {}KB {}-way {}B {}cyc | Private L1D {}KB {}-way {}B {}cyc | \
             Shared L2 {}KB {}-way {}B {}cyc | Mem {}cyc | Log buffer {}KB",
            self.l1i.size_bytes / 1024,
            self.l1i.ways,
            self.l1i.line_bytes,
            self.l1i.latency,
            self.l1d.size_bytes / 1024,
            self.l1d.ways,
            self.l1d.line_bytes,
            self.l1d.latency,
            self.l2.size_bytes / 1024,
            self.l2.ways,
            self.l2.line_bytes,
            self.l2.latency,
            self.mem_latency,
            self.log_buffer_bytes / 1024,
        )
    }
}

impl Default for SystemConfig {
    fn default() -> SystemConfig {
        SystemConfig::isca08()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isca08_matches_table2() {
        let c = SystemConfig::isca08();
        assert_eq!(c.l1d.size_bytes, 16 * 1024);
        assert_eq!(c.l1d.ways, 2);
        assert_eq!(c.l2.size_bytes, 512 * 1024);
        assert_eq!(c.l2.ways, 8);
        assert_eq!(c.l2.latency, 10);
        assert_eq!(c.mem_latency, 200);
        assert_eq!(c.log_buffer_bytes, 64 * 1024);
    }

    #[test]
    fn describe_mentions_key_parameters() {
        let d = SystemConfig::isca08().describe();
        assert!(d.contains("512KB") && d.contains("200cyc") && d.contains("64KB"));
    }
}
