//! The multi-tenant ingest server: one OS thread accepting, handshaking
//! and multiplexing every remote tenant through the shared
//! [`Ingestor`](igm_trace::Ingestor).

use crate::source::NetSource;
use crate::wire::{self, Fill, MsgBuf, NetError};
use igm_obs::{Counter, EventKind, EventRing};
use igm_runtime::MonitorPool;
use igm_span::FlightRecorder;
use igm_trace::{Codec, CodecMetrics, IngestConfig, IngestReport, Ingestor, TraceError};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Per-connection credit window in wire (frame) bytes: the initial
    /// `WELCOME` grant and the target outstanding allowance. Bounds the
    /// server's per-lane buffering to roughly this plus one frame.
    pub credit_window: u32,
    /// How long a connection may take to deliver its `HELLO` before it is
    /// rejected (keeps a stuck peer from occupying a pending slot
    /// forever; the accept loop itself never blocks on it).
    pub handshake_timeout: Duration,
    /// Scheduling parameters of the underlying multiplexed ingest loop.
    pub ingest: IngestConfig,
    /// Tee-at-ingest: when set, every accepted lane's record stream is
    /// also captured to `<dir>/<tenant>.igmt` (standard trace frames, one
    /// per wire chunk), so remote tenants leave on-disk artifacts exactly
    /// like local capture sessions.
    pub tee_dir: Option<PathBuf>,
}

impl Default for NetServerConfig {
    fn default() -> NetServerConfig {
        NetServerConfig {
            credit_window: 256 * 1024,
            handshake_timeout: Duration::from_secs(5),
            ingest: IngestConfig::default(),
            tee_dir: None,
        }
    }
}

/// Everything one serving run produced.
#[derive(Debug)]
pub struct NetServerReport {
    /// The multiplexed ingest report: per-tenant session reports
    /// (violations, dispatch stats, channel counters) and per-lane
    /// fairness/backpressure stats, exactly as a local ingest run yields
    /// them. Lanes that failed mid-stream (disconnect, corrupt frame)
    /// appear in its `errors`, finalized with what they had published.
    pub ingest: IngestReport,
    /// Connections rejected before a lane existed (bad magic, version
    /// mismatch, malformed or timed-out handshakes): peer address and
    /// refusal.
    pub rejected: Vec<(String, NetError)>,
    /// Connections accepted into lanes.
    pub accepted: usize,
}

/// A connection that has not completed its handshake yet.
struct Pending {
    stream: TcpStream,
    peer: String,
    inbuf: MsgBuf,
    deadline: Instant,
}

enum HandshakeStep {
    /// Still waiting for bytes.
    Wait,
    /// `HELLO` accepted: the tenant's session spec, the trace codec its
    /// chunk frames will carry, and the negotiated protocol version (the
    /// lane speaks the client's version — a v2 lane's chunks carry no
    /// span prefix).
    Ready(igm_runtime::SessionConfig, Codec, u32),
    /// Connection refused.
    Fail(NetError),
}

impl Pending {
    fn step(&mut self) -> HandshakeStep {
        match self.inbuf.fill_from(&mut self.stream, 16 * 1024) {
            Ok(Fill::Bytes(_)) | Ok(Fill::WouldBlock) => {}
            Ok(Fill::Eof) => {
                return HandshakeStep::Fail(NetError::Disconnected(
                    "connection closed during the handshake",
                ))
            }
            Err(e) => return HandshakeStep::Fail(NetError::Io(e)),
        }
        match self.inbuf.peek_message() {
            Err(e) => HandshakeStep::Fail(e),
            Ok(Some((ty, range))) if ty == wire::msg::HELLO => {
                let decoded = wire::decode_hello(self.inbuf.bytes(range.clone()));
                match decoded {
                    Ok((cfg, codec, version)) => {
                        self.inbuf.consume(range.end);
                        HandshakeStep::Ready(cfg, codec, version)
                    }
                    Err(e) => HandshakeStep::Fail(e),
                }
            }
            Ok(Some(_)) => HandshakeStep::Fail(NetError::Malformed("first message is not a HELLO")),
            Ok(None) if Instant::now() >= self.deadline => HandshakeStep::Fail(NetError::Io(
                io::Error::new(io::ErrorKind::TimedOut, "handshake timed out"),
            )),
            Ok(None) => HandshakeStep::Wait,
        }
    }

    /// Best-effort `ERROR` reply before dropping a rejected connection
    /// (the socket is nonblocking; a peer that will not read simply
    /// misses the courtesy).
    fn refuse(mut self, e: &NetError) {
        let reason = e.to_string();
        let _ = self.stream.write(&wire::error_message(&reason));
    }
}

/// The cross-host ingest front-end: accepts N tenant connections from one
/// thread and plugs each into the shared multiplexed [`Ingestor`] as a
/// readiness-polled socket lane — one OS thread still drives every remote
/// tenant, with the same fairness bounds, per-lane backpressure staging
/// and [`LaneStats`](igm_trace::LaneStats) accounting as local pipe
/// lanes.
///
/// # Example (loopback)
///
/// ```
/// use igm_lifeguards::LifeguardKind;
/// use igm_net::{IngestServer, NetServerConfig, TraceForwarder};
/// use igm_runtime::{MonitorPool, PoolConfig, SessionConfig};
/// use igm_workload::Benchmark;
///
/// let pool = MonitorPool::new(PoolConfig::with_workers(2));
/// let server = IngestServer::bind("127.0.0.1:0", &pool, NetServerConfig::default()).unwrap();
/// let addr = server.local_addr().unwrap();
/// let client = std::thread::spawn(move || {
///     let cfg = SessionConfig::new("gzip", LifeguardKind::AddrCheck)
///         .synthetic()
///         .premark(&Benchmark::Gzip.profile().premark_regions());
///     let mut fwd = TraceForwarder::connect(addr, &cfg).unwrap();
///     fwd.stream(Benchmark::Gzip.trace(2_000)).unwrap();
///     fwd.finish().unwrap()
/// });
/// let report = server.serve_connections(1);
/// let sent = client.join().unwrap();
/// assert_eq!(sent.server_records, 2_000);
/// assert_eq!(report.ingest.records(), 2_000);
/// pool.shutdown();
/// ```
pub struct IngestServer<'p> {
    listener: TcpListener,
    cfg: NetServerConfig,
    ingestor: Ingestor<'p>,
    pending: Vec<Pending>,
    rejected: Vec<(String, NetError)>,
    accepted: usize,
    /// Sanitized tee artifact names already handed out this run, so two
    /// tenants with the same (or sanitize-colliding) name cannot write
    /// the same file concurrently.
    tee_names: std::collections::HashMap<String, usize>,
    /// `igm_net_accepted_total` on the pool's registry.
    obs_accepted: Counter,
    /// `igm_net_rejected_total`.
    obs_rejected: Counter,
    /// The registry's event ring: every refusal is narrated there as a
    /// `handshake_reject` with the peer address and reason.
    events: EventRing,
    /// Shared `igm_codec_*` counters/histograms on the pool's registry;
    /// every admitted lane's decoder clones these handles.
    codec_metrics: CodecMetrics,
    /// The pool's span flight recorder, when spans are on: every admitted
    /// v3 lane claims its own ring and stamps `server_ingest` stages for
    /// sampled frames.
    recorder: Option<Arc<FlightRecorder>>,
}

impl<'p> IngestServer<'p> {
    /// Binds the listening socket and readies the multiplexed front-end
    /// over `pool`. Bind to port 0 to let the OS pick
    /// ([`IngestServer::local_addr`] reports it).
    pub fn bind(
        addr: impl ToSocketAddrs,
        pool: &'p MonitorPool,
        cfg: NetServerConfig,
    ) -> io::Result<IngestServer<'p>> {
        assert!(cfg.credit_window > 0, "a zero credit window would deadlock every client");
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let ingestor = Ingestor::with_config(pool, cfg.ingest.clone());
        let metrics = pool.metrics();
        Ok(IngestServer {
            listener,
            cfg,
            ingestor,
            pending: Vec::new(),
            rejected: Vec::new(),
            accepted: 0,
            tee_names: std::collections::HashMap::new(),
            obs_accepted: metrics
                .counter("igm_net_accepted_total", "Remote connections admitted as ingest lanes"),
            obs_rejected: metrics
                .counter("igm_net_rejected_total", "Connections refused before a lane existed"),
            events: metrics.events().clone(),
            codec_metrics: CodecMetrics::register(metrics),
            recorder: pool.recorder().cloned(),
        })
    }

    /// The bound listening address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves exactly `connections` handshake resolutions — accepted
    /// lanes plus rejections — then drives every accepted lane to
    /// completion and returns the combined report. Accepting, handshaking,
    /// credit flow and record multiplexing all run on the calling thread.
    pub fn serve_connections(mut self, connections: usize) -> NetServerReport {
        loop {
            let mut progress = false;
            let resolved = self.accepted + self.rejected.len() + self.pending.len();
            if resolved < connections {
                match self.listener.accept() {
                    Ok((stream, peer)) => {
                        if stream.set_nonblocking(true).is_ok() {
                            self.pending.push(Pending {
                                stream,
                                peer: peer.to_string(),
                                inbuf: MsgBuf::new(),
                                deadline: Instant::now() + self.cfg.handshake_timeout,
                            });
                        } else {
                            self.reject(
                                peer.to_string(),
                                NetError::Malformed("could not make the socket nonblocking"),
                            );
                        }
                        progress = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(e) => {
                        // A failed accept consumes one slot so a dying
                        // listener cannot wedge the loop.
                        self.reject("<accept>".to_owned(), NetError::Io(e));
                        progress = true;
                    }
                }
            }
            progress |= self.pump_handshakes();
            let pass = self.ingestor.pass();
            progress |= pass.progress;
            let resolved = self.accepted + self.rejected.len();
            if resolved >= connections && self.pending.is_empty() && pass.open == 0 {
                break;
            }
            if !progress {
                std::thread::sleep(self.ingestor.idle_backoff());
            }
        }
        NetServerReport {
            ingest: self.ingestor.finish(),
            rejected: self.rejected,
            accepted: self.accepted,
        }
    }

    /// Steps every pending handshake; registers completed ones as lanes.
    fn pump_handshakes(&mut self) -> bool {
        let mut progress = false;
        let mut i = 0;
        while i < self.pending.len() {
            match self.pending[i].step() {
                HandshakeStep::Wait => i += 1,
                HandshakeStep::Ready(session_cfg, codec, version) => {
                    let conn = self.pending.swap_remove(i);
                    progress = true;
                    match self.admit(conn, session_cfg, codec, version) {
                        Ok(()) => {
                            self.accepted += 1;
                            self.obs_accepted.inc();
                        }
                        Err((peer, e)) => self.reject(peer, e),
                    }
                }
                HandshakeStep::Fail(e) => {
                    let conn = self.pending.swap_remove(i);
                    progress = true;
                    let peer = conn.peer.clone();
                    conn.refuse(&e);
                    self.reject(peer, e);
                }
            }
        }
        progress
    }

    /// Records one pre-lane refusal: counter, event-ring narration, report
    /// entry.
    fn reject(&mut self, peer: String, e: NetError) {
        self.obs_rejected.inc();
        self.events
            .record(EventKind::HandshakeReject { peer: peer.clone(), reason: e.to_string() });
        self.rejected.push((peer, e));
    }

    /// Plugs a handshaken connection into the ingest front-end (teed to a
    /// trace file when configured).
    fn admit(
        &mut self,
        conn: Pending,
        mut session_cfg: igm_runtime::SessionConfig,
        codec: Codec,
        version: u32,
    ) -> Result<(), (String, NetError)> {
        let peer = conn.peer;
        let source = NetSource::new(
            conn.stream,
            self.cfg.credit_window as u64,
            conn.inbuf,
            codec,
            self.codec_metrics.clone(),
            version,
            self.recorder.clone(),
        )
        .map_err(|e| (peer.clone(), NetError::Io(e)))?;
        match &self.cfg.tee_dir {
            Some(dir) => {
                // Disambiguate repeated (or sanitize-colliding) tenant
                // names within this run: "gzip.igmt", "gzip-2.igmt", … —
                // two concurrent lanes must never interleave frames into
                // one artifact.
                let base = sanitize(&session_cfg.name);
                let uses = self.tee_names.entry(base.clone()).or_insert(0);
                *uses += 1;
                let stem = if *uses == 1 { base } else { format!("{base}-{uses}") };
                // The artifact stem is the lane's durable trace identity:
                // violations this session attributes carry RecordIds that
                // a TraceLake over the tee directory can seek back into.
                session_cfg.trace = igm_span::trace_id(&stem);
                let path = dir.join(format!("{stem}.igmt"));
                let sidecar = dir.join(format!("{stem}.igmx"));
                let sink = File::create(&path)
                    .map(BufWriter::new)
                    .map_err(|e| (peer.clone(), NetError::Io(e)))?;
                self.ingestor
                    .add_source_teed_indexed(session_cfg, source, sink, sidecar)
                    .map_err(|e: TraceError| (peer.clone(), NetError::Trace(e)))?;
            }
            None => self.ingestor.add_source(session_cfg, source),
        }
        Ok(())
    }
}

/// Restricts a tenant name to filesystem-safe characters for the teed
/// artifact's filename.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') { c } else { '_' })
        .collect()
}
