//! Runtime throughput scaling: records/sec through the `MonitorPool` for
//! 1, 2, 4 and 8 workers × {AddrCheck, TaintCheck}, eight concurrent tenant
//! sessions each. Emits `BENCH_throughput.json` so future changes have a
//! perf trajectory to compare against.
//!
//! ```sh
//! cargo run --release -p igm-bench --bin throughput   # N=50000 by default
//! N=200000 cargo run --release -p igm-bench --bin throughput
//! ```

use igm_lifeguards::LifeguardKind;
use igm_runtime::{MonitorPool, PoolConfig, SessionConfig};
use igm_workload::Benchmark;
use std::time::Instant;

const TENANTS: [Benchmark; 8] = [
    Benchmark::Bzip2,
    Benchmark::Crafty,
    Benchmark::Gap,
    Benchmark::Gcc,
    Benchmark::Gzip,
    Benchmark::Mcf,
    Benchmark::Twolf,
    Benchmark::Vpr,
];

/// Records per tenant per run (`N` env var, default 50k).
fn run_scale() -> u64 {
    std::env::var("N").ok().and_then(|v| v.parse().ok()).unwrap_or(50_000)
}

/// Streams all eight tenants through a pool of `workers` shards; returns
/// aggregate records/sec.
fn run_once(kind: LifeguardKind, workers: usize, n: u64) -> f64 {
    // Pre-generate the traces so trace synthesis is not part of the
    // measured window.
    let traces: Vec<(Benchmark, Vec<_>)> =
        TENANTS.iter().map(|b| (*b, b.trace(n).collect())).collect();
    let pool = MonitorPool::new(PoolConfig::with_workers(workers));
    let start = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = traces
            .into_iter()
            .map(|(bench, trace)| {
                let session = pool.open_session(
                    SessionConfig::new(bench.name(), kind)
                        .synthetic()
                        .premark(&bench.profile().premark_regions()),
                );
                scope.spawn(move || {
                    session.stream(trace).expect("pool alive");
                    session.finish()
                })
            })
            .collect();
        for h in handles {
            let report = h.join().expect("tenant completes");
            assert!(report.violations.is_empty(), "clean workloads only");
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let total = TENANTS.len() as u64 * n;
    pool.shutdown();
    total as f64 / elapsed
}

fn main() {
    let n = run_scale();
    let lifeguards = [LifeguardKind::AddrCheck, LifeguardKind::TaintCheck];
    let worker_counts = [1usize, 2, 4, 8];

    println!(
        "runtime throughput: {} tenants x {} records, workers x lifeguard\n",
        TENANTS.len(),
        n
    );
    println!("{:<12} {:>8} {:>16}", "lifeguard", "workers", "records/s");
    let mut entries = Vec::new();
    for kind in lifeguards {
        for workers in worker_counts {
            let rps = run_once(kind, workers, n);
            println!("{:<12} {:>8} {:>16.0}", kind.name(), workers, rps);
            entries.push(format!(
                "    {{\"lifeguard\": \"{}\", \"workers\": {}, \"records_per_sec\": {:.0}}}",
                kind.name(),
                workers,
                rps
            ));
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"throughput\",\n  \"tenants\": {},\n  \"records_per_tenant\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        TENANTS.len(),
        n,
        entries.join(",\n")
    );
    std::fs::write("BENCH_throughput.json", &json).expect("write BENCH_throughput.json");
    println!("\nwrote BENCH_throughput.json");
}
