//! Criterion micro-benchmarks of the hardware accelerator models and the
//! substrate data structures — throughput of the structures a simulation
//! spends its time in.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use igm_core::{
    AccelConfig, DispatchPipeline, IdempotentFilter, IfGeometry, InheritanceTracker, ItConfig,
    MetadataTlb,
};
use igm_isa::{Reg, TraceEntry};
use igm_lba::{Event, IfEventConfig};
use igm_lifeguards::{CostSink, Lifeguard, LifeguardKind, TaintCheck};
use igm_shadow::{ShadowLayout, TwoLevelShadow};
use igm_sim::{SimConfig, Simulator};
use igm_timing::{Cache, CacheConfig};
use igm_workload::Benchmark;

fn bench_inheritance_tracker(c: &mut Criterion) {
    let mut g = c.benchmark_group("inheritance_tracker");
    let events: Vec<Event> = Benchmark::Gcc
        .trace(20_000)
        .filter_map(|e| match e.op {
            igm_isa::TraceOp::Op(op) => Some(Event::Prop(op)),
            _ => None,
        })
        .collect();
    g.throughput(Throughput::Elements(events.len() as u64));
    g.bench_function("process_gcc_mix", |b| {
        b.iter(|| {
            let mut it = InheritanceTracker::new(ItConfig::taint_style());
            let mut out = Vec::with_capacity(4);
            for (i, ev) in events.iter().enumerate() {
                out.clear();
                it.process(i as u32, *ev, &mut out);
                black_box(&out);
            }
        })
    });
    g.finish();
}

fn bench_idempotent_filter(c: &mut Criterion) {
    let mut g = c.benchmark_group("idempotent_filter");
    let accesses: Vec<Event> =
        Benchmark::Crafty.trace(20_000).filter_map(|e| e.mem_read().map(Event::MemRead)).collect();
    let cfg = IfEventConfig::cacheable_addr(0);
    g.throughput(Throughput::Elements(accesses.len() as u64));
    for geom in [IfGeometry::isca08(), IfGeometry::set_associative(32, 4)] {
        g.bench_function(format!("{geom}"), |b| {
            b.iter(|| {
                let mut f = IdempotentFilter::new(geom);
                for ev in &accesses {
                    black_box(f.process(0, ev, &cfg));
                }
            })
        });
    }
    g.finish();
}

fn bench_mtlb(c: &mut Criterion) {
    let mut g = c.benchmark_group("metadata_tlb");
    let layout = ShadowLayout::taintcheck_fig7();
    let addrs: Vec<u32> =
        Benchmark::Gzip.trace(20_000).filter_map(|e| e.mem_read().map(|m| m.addr)).collect();
    g.throughput(Throughput::Elements(addrs.len() as u64));
    g.bench_function("lma_or_fill_64e", |b| {
        b.iter(|| {
            let mut tlb = MetadataTlb::new(64);
            tlb.lma_config(layout);
            let mut shadow = TwoLevelShadow::new(layout, 0);
            for &a in &addrs {
                black_box(tlb.lma_or_fill(a, || shadow.chunk_base_va(a)));
            }
        })
    });
    g.finish();
}

fn bench_shadow(c: &mut Criterion) {
    let mut g = c.benchmark_group("two_level_shadow");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("packed_set_get", |b| {
        b.iter(|| {
            let mut s = TwoLevelShadow::new(ShadowLayout::taintcheck_fig7(), 0);
            for i in 0..10_000u32 {
                s.packed_set(0x0900_0000 + i, (i % 4) as u8);
                black_box(s.packed_get(0x0900_0000 + i));
            }
        })
    });
    g.finish();
}

fn bench_cache_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_model");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("l1_stream", |b| {
        b.iter(|| {
            let mut l1 = Cache::new(CacheConfig::isca08_l1());
            for i in 0..100_000u32 {
                black_box(l1.access((i * 12_345) & 0xf_ffff));
            }
        })
    });
    g.finish();
}

fn bench_dispatch_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("dispatch_pipeline");
    let trace: Vec<TraceEntry> = Benchmark::Gcc.trace(20_000).collect();
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("taintcheck_full_accel", |b| {
        b.iter(|| {
            let accel = AccelConfig::full(ItConfig::taint_style());
            let masked = LifeguardKind::TaintCheck.mask_config(&accel);
            let mut lg = TaintCheck::new(&masked);
            let mut pipeline = DispatchPipeline::new(lg.etct(), &masked);
            let mut cost = CostSink::new();
            for e in &trace {
                pipeline.dispatch(e, |dev| {
                    cost.clear();
                    lg.handle(&dev, &mut cost);
                });
            }
            black_box(pipeline.stats().delivered)
        })
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end_sim");
    g.sample_size(10);
    g.throughput(Throughput::Elements(20_000));
    g.bench_function("addrcheck_optimized_gzip", |b| {
        b.iter(|| {
            let r = Simulator::new(SimConfig::optimized(LifeguardKind::AddrCheck))
                .run_benchmark(Benchmark::Gzip, 20_000);
            black_box(r.slowdown())
        })
    });
    g.finish();
}

fn bench_machine(c: &mut Criterion) {
    use igm_isa::asm::{Addressing, BinOp, Cond, ProgramBuilder, SelfOp};
    use igm_isa::{Machine, MemSize};
    let mut g = c.benchmark_group("functional_machine");
    let mut p = ProgramBuilder::new(0x0804_8000);
    let top = p.label();
    p.mov_ri(Reg::Ecx, 10_000);
    p.mov_ri(Reg::Ebx, 0x0900_0000);
    p.bind(top);
    p.load(Reg::Eax, Addressing::base_disp(Reg::Ebx, 0, MemSize::B4));
    p.alu_rr(BinOp::Add, Reg::Edx, Reg::Eax);
    p.store(Addressing::base_disp(Reg::Ebx, 4, MemSize::B4), Reg::Edx);
    p.alu_ri(SelfOp::AddI(8), Reg::Ebx);
    p.alu_ri(SelfOp::SubI(1), Reg::Ecx);
    p.cmp_ri(Reg::Ecx, 0);
    p.jcc(Cond::Ne, top);
    p.halt();
    let prog = p.build();
    g.throughput(Throughput::Elements(70_000));
    g.bench_function("loop_70k_instrs", |b| {
        b.iter(|| {
            let mut m = Machine::new(prog.clone());
            m.run().expect("loop terminates");
            black_box(m.retired())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_inheritance_tracker,
    bench_idempotent_filter,
    bench_mtlb,
    bench_shadow,
    bench_cache_model,
    bench_dispatch_pipeline,
    bench_end_to_end,
    bench_machine,
);
criterion_main!(benches);
