//! The live stats endpoint: one `std::net` thread serving a registry.
//!
//! [`StatsServer::serve`] binds a TCP listener, spawns a single thread
//! named `igm-stats`, and answers plain HTTP/1.1 until [`StatsServer::stop`]
//! (or drop). It is deliberately minimal — no keep-alive, no TLS, no
//! framework — because its job is a `curl` or a Prometheus scrape against
//! a monitor that is busy doing real work:
//!
//! | path                  | body                                      |
//! |-----------------------|-------------------------------------------|
//! | `/metrics`            | Prometheus text exposition                |
//! | `/stats.json`         | [`MetricsSnapshot::to_json`]              |
//! | `/events.json?since=N`| event ring from sequence `N` (default 0)  |
//! | `/spans.json?since=N` | flight-recorder span records from `N`     |
//! | `/trace`              | Chrome trace-event JSON (`chrome://tracing`) |
//! | `/`                   | plain-text index of the above             |
//!
//! The span routes answer 404 unless a flight recorder was attached via
//! [`StatsServer::serve_with`]. Every snapshot is taken on the serving
//! thread; the hot paths feeding the registry never notice a scrape.
//! Responses carry `Content-Length`, tolerate slow (drip-reading)
//! clients up to a total write deadline, and `HEAD` is answered with
//! headers only.

#[cfg(doc)]
use crate::registry::MetricsSnapshot;

use crate::query::{Query, QueryError};
use crate::registry::MetricsRegistry;
use igm_span::FlightRecorder;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// A response produced by a [`RouteHandler`].
#[derive(Debug, Clone)]
pub struct RouteResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl RouteResponse {
    /// A `200 OK` JSON response.
    pub fn json(body: impl Into<String>) -> RouteResponse {
        RouteResponse { status: 200, content_type: "application/json", body: body.into() }
    }

    /// A `400 Bad Request` with the typed JSON error body.
    pub fn bad_request(err: &QueryError) -> RouteResponse {
        RouteResponse { status: 400, content_type: "application/json", body: err.to_json() }
    }

    /// A `404 Not Found` with a plain-text body.
    pub fn not_found(msg: impl Into<String>) -> RouteResponse {
        RouteResponse { status: 404, content_type: "text/plain; charset=utf-8", body: msg.into() }
    }
}

/// A pluggable route family served alongside the built-in stats routes
/// (attach via [`StatsServer::serve_routes`]). Handlers receive the
/// request only after the query string passed the hardened [`Query`]
/// parser — a malformed query is a `400` on every path, before any
/// handler runs.
pub trait RouteHandler: Send + Sync {
    /// Handles `path`, or returns `None` when the path is not this
    /// handler's (the server then tries the next handler, and finally
    /// answers 404).
    fn handle(&self, path: &str, query: &Query) -> Option<RouteResponse>;

    /// Lines advertising this handler's routes on the `/` index (e.g.
    /// `"/lake/query?tenant=T  bitmap-index record query"`).
    fn index_lines(&self) -> Vec<String> {
        Vec::new()
    }
}

/// How long the serving thread dozes between accept polls.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Per-IO-operation read/write deadline — a stuck scraper must not wedge
/// the (single) serving thread.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Total budget for writing one response: a drip-reading client may take
/// many short writes, each under [`IO_TIMEOUT`], but the connection as a
/// whole is cut off here.
const WRITE_DEADLINE: Duration = Duration::from_secs(10);

/// Largest request head we bother reading.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// A running stats endpoint. Stops (and joins its thread) on drop.
#[derive(Debug)]
pub struct StatsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl StatsServer {
    /// Binds `addr` (`"127.0.0.1:0"` picks a free port — read it back
    /// with [`StatsServer::local_addr`]) and starts serving `registry`.
    pub fn serve(
        addr: impl ToSocketAddrs,
        registry: Arc<MetricsRegistry>,
    ) -> io::Result<StatsServer> {
        StatsServer::serve_with(addr, registry, None)
    }

    /// Like [`StatsServer::serve`], but also attaches a span
    /// [`FlightRecorder`], enabling the `/spans.json?since=N` and
    /// `/trace` (Chrome trace-event JSON) routes.
    pub fn serve_with(
        addr: impl ToSocketAddrs,
        registry: Arc<MetricsRegistry>,
        spans: Option<Arc<FlightRecorder>>,
    ) -> io::Result<StatsServer> {
        StatsServer::serve_routes(addr, registry, spans, Vec::new())
    }

    /// Like [`StatsServer::serve_with`], but additionally mounts custom
    /// [`RouteHandler`]s. Paths not claimed by a built-in route are
    /// offered to each handler in order; the first `Some` wins.
    pub fn serve_routes(
        addr: impl ToSocketAddrs,
        registry: Arc<MetricsRegistry>,
        spans: Option<Arc<FlightRecorder>>,
        routes: Vec<Arc<dyn RouteHandler>>,
    ) -> io::Result<StatsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = thread::Builder::new()
            .name("igm-stats".into())
            .spawn(move || serve_loop(listener, registry, spans, routes, stop2))?;
        Ok(StatsServer { addr, stop, thread: Some(thread) })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops serving and joins the thread. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for StatsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_loop(
    listener: TcpListener,
    registry: Arc<MetricsRegistry>,
    spans: Option<Arc<FlightRecorder>>,
    routes: Vec<Arc<dyn RouteHandler>>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Serve inline: one thread, one connection at a time —
                // a scrape endpoint, not a web server.
                let _ = handle_connection(stream, &registry, spans.as_deref(), &routes);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Routes one parsed request. The query string has already passed the
/// hardened parser; this only decides which body to build.
fn route_request(
    path: &str,
    q: &Query,
    registry: &MetricsRegistry,
    spans: Option<&FlightRecorder>,
    routes: &[Arc<dyn RouteHandler>],
) -> RouteResponse {
    // Built-in routes declare their accepted parameters; anything else
    // (including a well-formed but unknown key) is a typed 400.
    let strict = |allowed: &[&str]| q.expect_only(allowed).err();
    let out = match path {
        "/metrics" => match strict(&[]) {
            Some(e) => RouteResponse::bad_request(&e),
            None => RouteResponse {
                status: 200,
                content_type: "text/plain; version=0.0.4; charset=utf-8",
                body: registry.snapshot().to_prometheus(),
            },
        },
        "/stats.json" => match strict(&[]) {
            Some(e) => RouteResponse::bad_request(&e),
            None => RouteResponse::json(registry.snapshot().to_json()),
        },
        "/events.json" => match strict(&["since"]).map(Err).unwrap_or_else(|| q.get_u64("since")) {
            Err(e) => RouteResponse::bad_request(&e),
            Ok(since) => RouteResponse::json(registry.events().since(since.unwrap_or(0)).to_json()),
        },
        "/spans.json" => match strict(&["since"]).map(Err).unwrap_or_else(|| q.get_u64("since")) {
            Err(e) => RouteResponse::bad_request(&e),
            Ok(since) => match spans {
                Some(rec) => RouteResponse::json(rec.since(since.unwrap_or(0)).to_json()),
                None => RouteResponse::not_found("no flight recorder attached\n"),
            },
        },
        "/trace" => match (strict(&[]), spans) {
            (Some(e), _) => RouteResponse::bad_request(&e),
            (None, Some(rec)) => RouteResponse::json(igm_span::chrome_trace(&rec.snapshot())),
            (None, None) => RouteResponse::not_found("no flight recorder attached\n"),
        },
        "/" => match strict(&[]) {
            Some(e) => RouteResponse::bad_request(&e),
            None => {
                let mut body = String::from(
                    "igm stats endpoint\n\n/metrics            Prometheus text exposition\n/stats.json         metrics snapshot as JSON\n/events.json?since=N  lifecycle event ring\n/spans.json?since=N   frame span records (flight recorder)\n/trace              Chrome trace-event JSON (chrome://tracing)\n",
                );
                for h in routes {
                    for line in h.index_lines() {
                        body.push_str(&line);
                        body.push('\n');
                    }
                }
                RouteResponse { status: 200, content_type: "text/plain; charset=utf-8", body }
            }
        },
        _ => {
            return routes
                .iter()
                .find_map(|h| h.handle(path, q))
                .unwrap_or_else(|| RouteResponse::not_found("not found\n"))
        }
    };
    out
}

fn handle_connection(
    mut stream: TcpStream,
    registry: &MetricsRegistry,
    spans: Option<&FlightRecorder>,
    routes: &[Arc<dyn RouteHandler>],
) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let (method, target) = match read_request_line(&mut stream)? {
        Some(parts) => parts,
        None => {
            return respond(&mut stream, false, 400, "text/plain; charset=utf-8", "bad request\n")
        }
    };
    // HEAD mirrors GET (same status, same Content-Length), body elided.
    let head_only = method == "HEAD";
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target.as_str(), None),
    };
    // The query string is validated before any route logic runs: a
    // malformed query is the same typed 400 body on every path.
    let resp = match Query::parse(query) {
        Ok(q) => route_request(path, &q, registry, spans, routes),
        Err(e) => RouteResponse::bad_request(&e),
    };
    respond(&mut stream, head_only, resp.status, resp.content_type, &resp.body)
}

/// Reads the request head and returns `(method, target)` (e.g. `("GET",
/// "/events.json?since=3")`), or `None` for an unparsable request.
fn read_request_line(stream: &mut TcpStream) -> io::Result<Option<(String, String)>> {
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() >= MAX_REQUEST_BYTES {
            return Ok(None);
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        head.extend_from_slice(&chunk[..n]);
    }
    let head = String::from_utf8_lossy(&head);
    let request_line = match head.lines().next() {
        Some(l) => l,
        None => return Ok(None),
    };
    // "GET /path HTTP/1.1" — the HTTP version is not worth policing.
    let mut parts = request_line.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some(method), Some(target)) => Ok(Some((method.to_owned(), target.to_owned()))),
        _ => Ok(None),
    }
}

/// Writes all of `bytes`, looping over short writes and transient errors
/// until `deadline`. A drip-reading client stalls each `write` for at
/// most [`IO_TIMEOUT`]; progress resets nothing — the total budget caps
/// how long one slow scraper can hold the serving thread.
fn write_fully(stream: &mut TcpStream, bytes: &[u8], deadline: Instant) -> io::Result<()> {
    let mut sent = 0;
    while sent < bytes.len() {
        if Instant::now() >= deadline {
            return Err(io::Error::new(io::ErrorKind::TimedOut, "response write deadline"));
        }
        match stream.write(&bytes[sent..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => sent += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // The socket buffer is full behind a slow reader; yield
                // briefly and retry until the overall deadline.
                thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn respond(
    stream: &mut TcpStream,
    head_only: bool,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let deadline = Instant::now() + WRITE_DEADLINE;
    write_fully(stream, head.as_bytes(), deadline)?;
    if !head_only {
        write_fully(stream, body.as_bytes(), deadline)?;
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventKind;

    fn request(addr: SocketAddr, method: &str, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "{method} {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        request(addr, "GET", path)
    }

    #[test]
    fn serves_metrics_json_events_and_404() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.counter("igm_test_total", "test counter").add(7);
        registry.histogram("igm_test_nanos", "test latency").record(900);
        registry
            .events()
            .record(EventKind::LaneFailure { lane: "t0".into(), error: "boom".into() });

        let mut server = StatsServer::serve("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = server.local_addr();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200"));
        assert!(metrics.contains("igm_test_total 7"));
        assert!(metrics.contains("igm_test_nanos_bucket"));

        let json = get(addr, "/stats.json");
        assert!(json.contains("\"igm_test_total\""));

        let events = get(addr, "/events.json?since=0");
        assert!(events.contains("\"lane_failure\""));
        assert!(events.contains("\"boom\""));
        assert!(get(addr, "/events.json?since=99").contains("\"events\": []"));

        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));
        assert!(get(addr, "/").contains("igm stats endpoint"));

        // Self-describing scrape: build info + uptime ride every format.
        assert!(metrics.contains("igm_build_info{version=\""));
        assert!(metrics.contains("igm_uptime_seconds "));
        assert!(json.contains("\"uptime_seconds\""));
        assert!(json.contains("\"build\""));

        server.stop();
        // Stopped: new connections must fail (give the OS a beat).
        thread::sleep(Duration::from_millis(50));
        assert!(
            TcpStream::connect(addr).is_err() || {
                // Some platforms accept into the dead listener's backlog;
                // a read then yields nothing.
                let mut s = TcpStream::connect(addr).unwrap();
                write!(s, "GET / HTTP/1.1\r\n\r\n").unwrap();
                let mut buf = String::new();
                s.set_read_timeout(Some(Duration::from_millis(200))).unwrap();
                s.read_to_string(&mut buf).unwrap_or(0) == 0
            }
        );
    }

    #[test]
    fn head_requests_get_headers_only() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.counter("igm_head_total", "test counter").add(3);
        let mut server = StatsServer::serve("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = server.local_addr();

        let head = request(addr, "HEAD", "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"));
        let content_length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("HEAD carries Content-Length")
            .parse()
            .unwrap();
        assert!(content_length > 0);
        let body_at = head.find("\r\n\r\n").unwrap() + 4;
        assert_eq!(&head[body_at..], "", "HEAD must not carry a body");

        // The advertised length matches what GET actually sends.
        let get_resp = get(addr, "/metrics");
        let get_body = &get_resp[get_resp.find("\r\n\r\n").unwrap() + 4..];
        assert_eq!(get_body.len(), content_length);

        // HEAD mirrors GET's status on a miss, too.
        assert!(request(addr, "HEAD", "/nope").starts_with("HTTP/1.1 404"));
        server.stop();
    }

    #[test]
    fn drip_reading_client_receives_the_full_response() {
        let registry = Arc::new(MetricsRegistry::new());
        // A response big enough to overflow loopback socket buffers, so
        // the server's write loop actually sees short/blocked writes.
        let filler = "x".repeat(2048);
        for i in 0..1024 {
            registry
                .events()
                .record(EventKind::LaneFailure { lane: format!("lane{i}"), error: filler.clone() });
        }
        let mut server = StatsServer::serve("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = server.local_addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /events.json HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        // Drip: small reads with pauses, far slower than one write_all.
        let mut response = Vec::new();
        let mut chunk = [0u8; 16 * 1024];
        loop {
            let n = match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => panic!("drip read failed: {e}"),
            };
            response.extend_from_slice(&chunk[..n]);
            thread::sleep(Duration::from_millis(1));
        }
        let response = String::from_utf8(response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200"));
        let content_length: usize = response
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("Content-Length present")
            .parse()
            .unwrap();
        let body = &response[response.find("\r\n\r\n").unwrap() + 4..];
        assert!(content_length > 2 * 1024 * 1024, "test body must be big: {content_length}");
        assert_eq!(body.len(), content_length, "drip client must receive every byte");
        assert!(body.ends_with("]}"), "body must be complete JSON");
        server.stop();
    }

    #[test]
    fn malformed_queries_are_typed_400s_on_every_route() {
        let registry = Arc::new(MetricsRegistry::new());
        let mut server = StatsServer::serve("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = server.local_addr();

        let assert_400 = |path: &str, kind: &str| {
            let resp = get(addr, path);
            assert!(resp.starts_with("HTTP/1.1 400"), "{path} must 400, got: {resp}");
            assert!(resp.contains("Content-Type: application/json"), "{path}: {resp}");
            assert!(
                resp.contains(&format!("\"kind\": \"{kind}\"")),
                "{path} must report {kind}: {resp}"
            );
        };

        // Malformed queries reject identically on every path — built-in,
        // recorder-gated, index, and unknown alike.
        for path in
            ["/metrics", "/stats.json", "/events.json", "/spans.json", "/trace", "/", "/nope"]
        {
            assert_400(&format!("{path}?x=%zz"), "bad_escape");
            assert_400(&format!("{path}?a=1&a=2"), "duplicate_param");
        }

        // Well-formed but wrong for the route.
        assert_400("/events.json?since=12x", "bad_number");
        assert_400("/spans.json?since=-1", "bad_number");
        assert_400("/events.json?sinse=3", "unknown_param");
        assert_400("/metrics?since=1", "unknown_param");
        assert_400("/stats.json?pretty=1", "unknown_param");
        assert_400("/trace?since=1", "unknown_param");
        let long = format!("/events.json?x={}", "y".repeat(4096));
        assert_400(&long, "overlong_query");

        // HEAD mirrors the 400 status.
        assert!(request(addr, "HEAD", "/events.json?since=bad").starts_with("HTTP/1.1 400"));

        // Valid queries still work after all that.
        assert!(get(addr, "/events.json?since=0").starts_with("HTTP/1.1 200"));
        assert!(get(addr, "/metrics").starts_with("HTTP/1.1 200"));
        server.stop();
    }

    #[test]
    fn route_handlers_extend_the_server() {
        struct Echo;
        impl RouteHandler for Echo {
            fn handle(&self, path: &str, query: &Query) -> Option<RouteResponse> {
                if path != "/echo.json" {
                    return None;
                }
                match query.expect_only(&["msg"]) {
                    Err(e) => Some(RouteResponse::bad_request(&e)),
                    Ok(()) => Some(RouteResponse::json(format!(
                        "{{\"msg\": \"{}\"}}",
                        query.get("msg").unwrap_or("")
                    ))),
                }
            }
            fn index_lines(&self) -> Vec<String> {
                vec!["/echo.json?msg=S    echoes msg".into()]
            }
        }

        let registry = Arc::new(MetricsRegistry::new());
        let mut server = StatsServer::serve_routes(
            "127.0.0.1:0",
            Arc::clone(&registry),
            None,
            vec![Arc::new(Echo)],
        )
        .unwrap();
        let addr = server.local_addr();

        let ok = get(addr, "/echo.json?msg=hi+there");
        assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
        assert!(ok.contains("\"msg\": \"hi there\""));

        // The hardened parser runs before the handler.
        assert!(get(addr, "/echo.json?msg=%zz").starts_with("HTTP/1.1 400"));
        assert!(get(addr, "/echo.json?other=1").contains("\"unknown_param\""));

        // Built-ins still win their paths; unknowns still 404.
        assert!(get(addr, "/metrics").starts_with("HTTP/1.1 200"));
        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));

        // The index advertises the plugged-in route.
        assert!(get(addr, "/").contains("/echo.json?msg=S"));
        server.stop();
    }

    #[test]
    fn span_routes_serve_the_flight_recorder_or_404() {
        use igm_span::{FrameTag, SpanConfig, Stage, Track};

        let registry = Arc::new(MetricsRegistry::new());
        // Without a recorder, the span routes are explicit 404s.
        let mut bare = StatsServer::serve("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        assert!(get(bare.local_addr(), "/spans.json").starts_with("HTTP/1.1 404"));
        assert!(get(bare.local_addr(), "/trace").starts_with("HTTP/1.1 404"));
        bare.stop();

        let recorder = Arc::new(FlightRecorder::new(SpanConfig {
            rings: 2,
            slots_per_ring: 16,
            sample_every: 1,
        }));
        let tag = FrameTag { flow: 3, seq: 0 };
        recorder.record(0, Stage::ChannelWait, Track::Worker(1), tag, 100, 250);
        recorder.record(0, Stage::Dispatch, Track::Worker(1), tag, 250, 900);
        let mut server =
            StatsServer::serve_with("127.0.0.1:0", Arc::clone(&registry), Some(recorder)).unwrap();
        let addr = server.local_addr();

        let spans = get(addr, "/spans.json?since=0");
        assert!(spans.starts_with("HTTP/1.1 200"));
        assert!(spans.contains("\"stage\": \"dispatch\""));
        assert!(spans.contains("\"next_seq\": 2"));
        // Cursor paging mirrors /events.json.
        assert!(get(addr, "/spans.json?since=2").contains("\"spans\": []"));

        let trace = get(addr, "/trace");
        assert!(trace.starts_with("HTTP/1.1 200"));
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"ph\": \"X\""));
        assert!(trace.contains("\"name\": \"worker 1\""));

        // The index advertises the span routes.
        assert!(get(addr, "/").contains("/spans.json"));
        server.stop();
    }
}
