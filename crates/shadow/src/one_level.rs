//! The one-level shadow memory (paper Figure 6, left).
//!
//! A single conceptual region translates application addresses by
//! scale-and-offset: `meta_va = BASE + (app_addr >> scale) `. The paper
//! discusses why this design is limited — it is only viable when metadata is
//! denser than data, wastes address space for sparse applications, and
//! clashes with the lifeguard's own memory when both share an address space
//! (§6.1) — and therefore adopts the two-level design as baseline. The
//! one-level design is provided for completeness and for the documentation
//! benchmarks comparing translation costs.
//!
//! The backing store is sparse (page-hashed) so tests can exercise the full
//! 32-bit range without allocating 512 MB.

use std::collections::HashMap;

/// Base of the one-level shadow region in simulated lifeguard space.
pub const ONE_LEVEL_BASE: u32 = 0x4000_0000;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// A one-level, scale-and-offset shadow map with 1/2/4/8 metadata bits per
/// application byte.
#[derive(Debug, Clone)]
pub struct OneLevelShadow {
    bits_per_app_byte: u32,
    default_byte: u8,
    pages: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl OneLevelShadow {
    /// Creates a map with `bits_per_app_byte` metadata bits per application
    /// byte (1, 2, 4 or 8).
    ///
    /// # Panics
    ///
    /// Panics for unsupported densities: the one-level design is only viable
    /// when metadata consume less space than data (paper §6.1), so more than
    /// 8 bits per byte is rejected.
    pub fn new(bits_per_app_byte: u32, default_byte: u8) -> OneLevelShadow {
        assert!(
            matches!(bits_per_app_byte, 1 | 2 | 4 | 8),
            "one-level shadow supports 1/2/4/8 bits per application byte"
        );
        OneLevelShadow { bits_per_app_byte, default_byte, pages: HashMap::new() }
    }

    /// Metadata bits per application byte.
    pub fn bits_per_app_byte(&self) -> u32 {
        self.bits_per_app_byte
    }

    /// Metadata virtual address of the byte holding `app_addr`'s metadata:
    /// the scale-and-offset translation (one shift, one add — the cheap
    /// mapping the one-level design buys).
    pub fn meta_va(&self, app_addr: u32) -> u32 {
        let app_bytes_per_meta_byte = 8 / self.bits_per_app_byte;
        ONE_LEVEL_BASE + app_addr / app_bytes_per_meta_byte
    }

    fn geometry(&self, app_addr: u32) -> (u32, u32, u8) {
        let per_byte = 8 / self.bits_per_app_byte;
        let byte_index = app_addr / per_byte;
        let shift = (app_addr % per_byte) * self.bits_per_app_byte;
        let mask = ((1u16 << self.bits_per_app_byte) - 1) as u8;
        (byte_index, shift, mask)
    }

    fn store_byte(&self, index: u32) -> u8 {
        match self.pages.get(&(index >> PAGE_SHIFT)) {
            Some(p) => p[(index as usize) & (PAGE_SIZE - 1)],
            None => self.default_byte,
        }
    }

    /// Reads the packed metadata value for `app_addr`.
    pub fn get(&self, app_addr: u32) -> u8 {
        let (index, shift, mask) = self.geometry(app_addr);
        (self.store_byte(index) >> shift) & mask
    }

    /// Writes the packed metadata value for `app_addr`.
    pub fn set(&mut self, app_addr: u32, v: u8) {
        let (index, shift, mask) = self.geometry(app_addr);
        let default = self.default_byte;
        let page =
            self.pages.entry(index >> PAGE_SHIFT).or_insert_with(|| Box::new([default; PAGE_SIZE]));
        let b = &mut page[(index as usize) & (PAGE_SIZE - 1)];
        *b = (*b & !(mask << shift)) | ((v & mask) << shift);
    }

    /// Sets every application byte in `[start, start+len)` to `v`.
    pub fn set_range(&mut self, start: u32, len: u32, v: u8) {
        for i in 0..len {
            self.set(start.wrapping_add(i), v);
        }
    }

    /// Total shadow bytes the one-level design reserves for a full 32-bit
    /// application space at this density — the space-consumption argument of
    /// paper §6.1.
    pub fn reserved_bytes(&self) -> u64 {
        (1u64 << 32) * self.bits_per_app_byte as u64 / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_bit_round_trip() {
        let mut s = OneLevelShadow::new(1, 0);
        s.set(0x9007, 1);
        assert_eq!(s.get(0x9007), 1);
        assert_eq!(s.get(0x9006), 0);
    }

    #[test]
    fn two_bit_round_trip_at_extremes() {
        let mut s = OneLevelShadow::new(2, 0);
        s.set(0, 0b10);
        s.set(u32::MAX, 0b01);
        assert_eq!(s.get(0), 0b10);
        assert_eq!(s.get(u32::MAX), 0b01);
    }

    #[test]
    fn meta_va_is_scale_and_offset() {
        let s = OneLevelShadow::new(2, 0);
        // 2 bits/byte -> 4 app bytes per metadata byte.
        assert_eq!(s.meta_va(0), ONE_LEVEL_BASE);
        assert_eq!(s.meta_va(4), ONE_LEVEL_BASE + 1);
        assert_eq!(s.meta_va(7), ONE_LEVEL_BASE + 1);
        let s8 = OneLevelShadow::new(8, 0);
        assert_eq!(s8.meta_va(100), ONE_LEVEL_BASE + 100);
    }

    #[test]
    fn default_byte_applies() {
        let s = OneLevelShadow::new(2, 0xff);
        assert_eq!(s.get(12345), 0b11);
    }

    #[test]
    fn reserved_bytes_shows_space_cost() {
        assert_eq!(OneLevelShadow::new(1, 0).reserved_bytes(), 512 << 20);
        assert_eq!(OneLevelShadow::new(8, 0).reserved_bytes(), 4 << 30);
    }

    #[test]
    #[should_panic(expected = "1/2/4/8 bits")]
    fn rejects_dense_metadata() {
        let _ = OneLevelShadow::new(16, 0);
    }

    #[test]
    fn set_range_covers_interval() {
        let mut s = OneLevelShadow::new(1, 0);
        s.set_range(10, 8, 1);
        assert_eq!(s.get(9), 0);
        for a in 10..18 {
            assert_eq!(s.get(a), 1);
        }
        assert_eq!(s.get(18), 0);
    }
}
