//! Handler cost accounting.
//!
//! Lifeguard handlers are real software; their *cost* is what the timing
//! model charges to the lifeguard core. Each handler reports its dynamic
//! instruction count and the metadata virtual addresses it touches (those
//! addresses flow into the lifeguard core's cache model).
//!
//! The calibration anchor is the paper's Figure 7 TaintCheck handler:
//! eight IA32 instructions with the software two-level walk — five of them
//! metadata *mapping* — versus four with the `LMA` instruction.

use igm_core::MetadataTlb;
use igm_shadow::TwoLevelShadow;

/// Instructions for the software two-level address mapping (Figure 7: five
/// of the handler's eight instructions).
pub const SOFTWARE_MAP_INSTRS: u32 = 5;

/// Instructions charged for one M-TLB miss handler invocation: fault entry,
/// level-1 table walk, `lma_fill`, return, `lma` re-execution (paper §6.3;
/// estimated, since the paper reports only that misses are rare after the
/// flexible sizing).
pub const MISS_HANDLER_INSTRS: u32 = 20;

/// The `nlba` event-dispatch instruction ending every handler.
pub const NLBA_INSTRS: u32 = 1;

/// Per-event cost accumulator, reused across events.
#[derive(Debug, Default, Clone)]
pub struct CostSink {
    instrs: u64,
    mem_vas: Vec<u32>,
}

impl CostSink {
    /// A fresh sink.
    pub fn new() -> CostSink {
        CostSink::default()
    }

    /// Resets the sink for the next event.
    pub fn clear(&mut self) {
        self.instrs = 0;
        self.mem_vas.clear();
    }

    /// Charges `n` handler instructions.
    #[inline]
    pub fn instr(&mut self, n: u32) {
        self.instrs += n as u64;
    }

    /// Records a metadata memory reference at lifeguard virtual address
    /// `va` (also counts as one instruction's memory operand; the
    /// instruction itself must be charged separately).
    #[inline]
    pub fn mem(&mut self, va: u32) {
        self.mem_vas.push(va);
    }

    /// Instructions charged so far.
    pub fn instrs(&self) -> u64 {
        self.instrs
    }

    /// Metadata references recorded so far.
    pub fn mem_vas(&self) -> &[u32] {
        &self.mem_vas
    }
}

/// A metadata map bundling the shadow memory with its (optional) M-TLB,
/// charging the correct mapping cost per translation.
///
/// Every lifeguard owns one `MetaMap` per shadow structure; `map` is the
/// first thing almost every handler does (paper §2.1, metadata mapping).
#[derive(Debug, Clone)]
pub struct MetaMap {
    shadow: TwoLevelShadow,
    mtlb: Option<MetadataTlb>,
}

impl MetaMap {
    /// Wraps `shadow`; `mtlb_entries` of `Some(n)` enables `LMA`
    /// translation through an M-TLB with `n` entries.
    pub fn new(shadow: TwoLevelShadow, mtlb_entries: Option<usize>) -> MetaMap {
        let mtlb = mtlb_entries.map(|n| {
            let mut t = MetadataTlb::new(n);
            t.lma_config(*shadow.layout());
            t
        });
        MetaMap { shadow, mtlb }
    }

    /// The underlying shadow map.
    pub fn shadow(&self) -> &TwoLevelShadow {
        &self.shadow
    }

    /// Mutable access to the underlying shadow map (for direct metadata
    /// manipulation after mapping).
    pub fn shadow_mut(&mut self) -> &mut TwoLevelShadow {
        &mut self.shadow
    }

    /// The M-TLB, when enabled.
    pub fn mtlb(&self) -> Option<&MetadataTlb> {
        self.mtlb.as_ref()
    }

    /// Translates an application address to its metadata element address,
    /// charging mapping cost: one `lma` instruction (plus the miss handler
    /// on a miss) with the M-TLB, or the five-instruction software walk
    /// with its level-1 table load without.
    pub fn map(&mut self, app_addr: u32, cost: &mut CostSink) -> u32 {
        match &mut self.mtlb {
            Some(tlb) => {
                cost.instr(1); // the lma instruction itself
                let shadow = &mut self.shadow;
                let l1_va = shadow.l1_entry_va(app_addr);
                let (va, missed) = tlb.lma_or_fill(app_addr, || shadow.chunk_base_va(app_addr));
                if missed {
                    cost.instr(MISS_HANDLER_INSTRS);
                    cost.mem(l1_va);
                }
                va
            }
            None => {
                cost.instr(SOFTWARE_MAP_INSTRS);
                cost.mem(self.shadow.l1_entry_va(app_addr));
                self.shadow.elem_va(app_addr)
            }
        }
    }

    /// Metadata bytes allocated by the shadow map.
    pub fn metadata_bytes(&self) -> u64 {
        self.shadow.metadata_bytes() + 4 * self.shadow.layout().level1_entries() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igm_shadow::ShadowLayout;

    fn map_with(mtlb: Option<usize>) -> MetaMap {
        MetaMap::new(TwoLevelShadow::new(ShadowLayout::taintcheck_fig7(), 0), mtlb)
    }

    #[test]
    fn software_walk_costs_five_instructions_and_one_load() {
        let mut m = map_with(None);
        let mut c = CostSink::new();
        let va = m.map(0xb3fb_703a, &mut c);
        assert_eq!(c.instrs(), SOFTWARE_MAP_INSTRS as u64);
        assert_eq!(c.mem_vas().len(), 1);
        assert_eq!(va, m.shadow_mut().elem_va(0xb3fb_703a));
    }

    #[test]
    fn lma_hit_costs_one_instruction() {
        let mut m = map_with(Some(16));
        let mut c = CostSink::new();
        m.map(0xb3fb_703a, &mut c); // cold miss
        assert_eq!(c.instrs(), 1 + MISS_HANDLER_INSTRS as u64);
        c.clear();
        let va = m.map(0xb3fb_703a, &mut c);
        assert_eq!(c.instrs(), 1);
        assert!(c.mem_vas().is_empty());
        assert_eq!(va, m.shadow_mut().elem_va(0xb3fb_703a));
    }

    #[test]
    fn figure7_handler_cost_ratio() {
        // A dest_reg_op_mem handler: map + metadata load + combine + nlba.
        let handler = |m: &mut MetaMap| {
            let mut c = CostSink::new();
            let va = m.map(0x9000, &mut c);
            c.instr(1); // load metadata
            c.mem(va);
            c.instr(1); // or into reg_taint
            c.instr(NLBA_INSTRS);
            c.instrs()
        };
        let mut soft = map_with(None);
        assert_eq!(handler(&mut soft), 8); // Figure 7 left: 8 instructions
        let mut hw = map_with(Some(16));
        let _warm = handler(&mut hw); // cold
        assert_eq!(handler(&mut hw), 4); // Figure 7 right: 4 instructions
    }

    #[test]
    fn cost_sink_reuse() {
        let mut c = CostSink::new();
        c.instr(3);
        c.mem(0x10);
        c.clear();
        assert_eq!(c.instrs(), 0);
        assert!(c.mem_vas().is_empty());
    }
}
