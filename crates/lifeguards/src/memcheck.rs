//! MemCheck: AddrCheck plus detection of uninitialized-value use (Table 1).
//!
//! Metadata is two bits per application byte — *accessible* and
//! *initialized* — in one two-level shadow map (1-byte elements covering 4
//! application bytes, exactly the packing of paper §7.1), plus a per-byte
//! initialized mask per register.
//!
//! A load of an uninitialized value is not itself an error; MemCheck
//! propagates initialized state and flags *uses*: base/index registers of
//! address computations, conditional-test inputs and system-call arguments.
//! Under Inheritance Tracking the paper's *eager* variant additionally
//! checks the sources of non-unary operations (delivered as
//! `CheckNonUnary` events by the IT hardware) and treats their destinations
//! as initialized — the same handlers serve both modes, because the
//! baseline simply never receives eager check events.
//!
//! The Idempotent Filter caches only the *accessibility* checks (loads and
//! stores, one shared check category); initialized-state checks depend on
//! propagation and are not cacheable (see `DESIGN.md`).

use crate::cost::{CostSink, MetaMap};
use crate::violation::{SourceDesc, Violation};
use crate::{Lifeguard, LifeguardKind};
use igm_core::AccelConfig;
use igm_isa::{Annotation, MemRef, OpClass, Reg};
use igm_lba::{DeliveredEvent, Etct, Event, EventType, IfEventConfig, MetaSource};
use igm_shadow::layout::ElemSize;
use igm_shadow::{RegMeta, ShadowLayout, TwoLevelShadow};
use std::collections::HashMap;

/// Accessible bit within the 2-bit packed metadata.
const A_BIT: u8 = 0b01;
/// Initialized bit within the 2-bit packed metadata.
const I_BIT: u8 = 0b10;
/// Fully valid: accessible and initialized.
const AI: u8 = 0b11;

/// The MemCheck lifeguard.
#[derive(Debug, Clone)]
pub struct MemCheck {
    meta: MetaMap,
    /// Per-register initialized mask: bit i set = byte i initialized.
    regs: RegMeta<u8>,
    live: HashMap<u32, u32>,
    freed: HashMap<u32, u32>,
    violations: Vec<Violation>,
    /// Treat `malloc` as `calloc` (initialize on allocation). Used by the
    /// synthetic-workload harness so that statistically generated reads do
    /// not trip uninitialized-use reports; detection examples leave it off.
    assume_calloc: bool,
}

impl MemCheck {
    /// Two metadata bits per application byte: 1-byte elements covering 4
    /// application bytes (the paper's §7.1 packing).
    pub fn layout() -> ShadowLayout {
        ShadowLayout::for_coverage(12, 4, ElemSize::B1).expect("constant layout is valid")
    }

    /// Builds MemCheck under `cfg`.
    pub fn new(cfg: &AccelConfig) -> MemCheck {
        MemCheck {
            meta: MetaMap::new(
                TwoLevelShadow::new(Self::layout(), 0),
                cfg.lma.then_some(cfg.mtlb_entries),
            ),
            regs: RegMeta::new(0xf), // registers are defined at program start
            live: HashMap::new(),
            freed: HashMap::new(),
            violations: Vec::new(),
            assume_calloc: false,
        }
    }

    /// Enables calloc-style allocation (see type docs).
    pub fn set_assume_calloc(&mut self, v: bool) {
        self.assume_calloc = v;
    }

    /// Reports still-live blocks as leaks.
    pub fn report_leaks(&mut self) {
        let mut leaks: Vec<_> = self.live.iter().map(|(b, s)| (*b, *s)).collect();
        leaks.sort_unstable();
        for (base, size) in leaks {
            self.violations.push(Violation::Leak { base, size });
        }
    }

    fn range_all(&self, m: MemRef, bit: u8) -> bool {
        self.meta.shadow().packed_test_all(m.addr, m.size.bytes(), bit)
    }

    fn set_bits_range(&mut self, base: u32, len: u32, set: u8, clear: u8) {
        self.meta.shadow_mut().packed_update_range(base, len, set, clear);
    }

    fn check_accessible(&mut self, pc: u32, mref: MemRef, is_write: bool, cost: &mut CostSink) {
        let va = self.meta.map(mref.addr, cost);
        // Load, bit-offset compute, extract, compare, branch.
        cost.instr(5);
        cost.mem(va);
        if !self.range_all(mref, A_BIT) {
            self.violations.push(Violation::UnallocatedAccess { pc, mref, is_write });
        }
    }

    fn check_reg_init(&mut self, pc: u32, r: Reg, cost: &mut CostSink) {
        cost.instr(3);
        cost.mem(self.regs.va(r.index()));
        if self.regs.get(r.index()) != 0xf {
            self.violations.push(Violation::UninitUse { pc, source: SourceDesc::Reg(r.index()) });
            // Avoid cascading reports from the same value (paper §4.2).
            self.regs.set(r.index(), 0xf);
        }
    }

    fn check_mem_init(&mut self, pc: u32, m: MemRef, cost: &mut CostSink) {
        let va = self.meta.map(m.addr, cost);
        cost.instr(3);
        cost.mem(va);
        if !self.range_all(m, I_BIT) {
            self.violations.push(Violation::UninitUse { pc, source: SourceDesc::Mem(m) });
            self.set_bits_range(m.addr, m.size.bytes(), I_BIT, 0);
        }
    }

    /// Per-byte initialized mask of a memory range (bit i = byte i), bytes
    /// beyond the range read as initialized (zero-extension).
    fn mem_mask(&self, m: MemRef) -> u8 {
        let mut mask = 0u8;
        for i in 0..4 {
            let init = if i < m.size.bytes() {
                self.meta.shadow().packed_get(m.addr.wrapping_add(i)) & I_BIT != 0
            } else {
                true
            };
            if init {
                mask |= 1 << i;
            }
        }
        mask
    }

    fn write_mask_to_mem(&mut self, m: MemRef, mask: u8) {
        for i in 0..m.size.bytes() {
            let a = m.addr.wrapping_add(i);
            let v = self.meta.shadow().packed_get(a);
            let nv = if mask & (1 << i) != 0 { v | I_BIT } else { v & !I_BIT };
            self.meta.shadow_mut().packed_set(a, nv);
        }
    }

    fn handle_prop(&mut self, op: &OpClass, cost: &mut CostSink) {
        match *op {
            OpClass::ImmToReg { rd } => {
                cost.instr(1);
                cost.mem(self.regs.va(rd.index()));
                self.regs.set(rd.index(), 0xf);
            }
            OpClass::ImmToMem { dst } => {
                let va = self.meta.map(dst.addr, cost);
                cost.instr(2);
                cost.mem(va);
                self.set_bits_range(dst.addr, dst.size.bytes(), I_BIT, 0);
            }
            OpClass::RegSelf { .. } | OpClass::MemSelf { .. } | OpClass::ReadOnly { .. } => {
                cost.instr(1);
            }
            OpClass::RegToReg { rs, rd } => {
                cost.instr(2);
                cost.mem(self.regs.va(rs.index()));
                cost.mem(self.regs.va(rd.index()));
                let m = self.regs.get(rs.index());
                self.regs.set(rd.index(), m);
            }
            OpClass::RegToMem { rs, dst } => {
                let va = self.meta.map(dst.addr, cost);
                cost.instr(3);
                cost.mem(self.regs.va(rs.index()));
                cost.mem(va);
                let mask = self.regs.get(rs.index());
                self.write_mask_to_mem(dst, mask);
            }
            OpClass::MemToReg { src, rd } => {
                let va = self.meta.map(src.addr, cost);
                cost.instr(3);
                cost.mem(va);
                cost.mem(self.regs.va(rd.index()));
                let mask = self.mem_mask(src);
                self.regs.set(rd.index(), mask);
            }
            OpClass::MemToMem { src, dst } => {
                let sva = self.meta.map(src.addr, cost);
                let dva = self.meta.map(dst.addr, cost);
                cost.instr(4);
                cost.mem(sva);
                cost.mem(dva);
                let mask = self.mem_mask(src);
                self.write_mask_to_mem(dst, mask);
            }
            OpClass::DestRegOpReg { rs, rd } => {
                // Generic (lazy) propagation: result defined iff both
                // sources fully defined.
                cost.instr(3);
                cost.mem(self.regs.va(rs.index()));
                cost.mem(self.regs.va(rd.index()));
                let full = self.regs.get(rs.index()) == 0xf && self.regs.get(rd.index()) == 0xf;
                self.regs.set(rd.index(), if full { 0xf } else { 0 });
            }
            OpClass::DestRegOpMem { src, rd } => {
                let va = self.meta.map(src.addr, cost);
                cost.instr(3);
                cost.mem(va);
                cost.mem(self.regs.va(rd.index()));
                let full = self.range_all(src, I_BIT) && self.regs.get(rd.index()) == 0xf;
                self.regs.set(rd.index(), if full { 0xf } else { 0 });
            }
            OpClass::DestMemOpReg { rs, dst } => {
                let va = self.meta.map(dst.addr, cost);
                cost.instr(3);
                cost.mem(va);
                cost.mem(self.regs.va(rs.index()));
                let full = self.regs.get(rs.index()) == 0xf && self.range_all(dst, I_BIT);
                self.write_mask_to_mem(dst, if full { 0xf } else { 0 });
            }
            OpClass::Other { writes, mem_write, .. } => {
                // Slow path: decode the record, conservatively define
                // outputs.
                cost.instr(12);
                for r in writes.iter() {
                    cost.mem(self.regs.va(r.index()));
                    self.regs.set(r.index(), 0xf);
                }
                if let Some(mw) = mem_write {
                    let va = self.meta.map(mw.addr, cost);
                    cost.mem(va);
                    self.set_bits_range(mw.addr, mw.size.bytes(), I_BIT, 0);
                }
            }
        }
    }
}

impl Lifeguard for MemCheck {
    fn kind(&self) -> LifeguardKind {
        LifeguardKind::MemCheck
    }

    fn etct(&self) -> Etct {
        let mut etct = Etct::new();
        // Accessibility checks: same category for loads and stores.
        etct.register(EventType::MemRead, IfEventConfig::cacheable_addr(0));
        etct.register(EventType::MemWrite, IfEventConfig::cacheable_addr(0));
        // Propagation events.
        etct.register_all([
            EventType::ImmToReg,
            EventType::ImmToMem,
            EventType::RegSelf,
            EventType::MemSelf,
            EventType::RegToReg,
            EventType::RegToMem,
            EventType::MemToReg,
            EventType::MemToMem,
            EventType::DestRegOpReg,
            EventType::DestRegOpMem,
            EventType::DestMemOpReg,
            EventType::Other,
        ]);
        // Initialized-state checks (not cacheable: metadata changes with
        // propagation).
        etct.register_all([
            EventType::CheckNonUnary,
            EventType::CheckAddrCompute,
            EventType::CheckCondBranch,
            EventType::CheckSyscallArg,
        ]);
        // Rare events; allocation changes accessibility, so flush.
        etct.register(EventType::Malloc, IfEventConfig::invalidates_all());
        etct.register(EventType::Free, IfEventConfig::invalidates_all());
        etct.register(EventType::Syscall, IfEventConfig::invalidates_all());
        etct.register_plain(EventType::ReadInput);
        etct
    }

    /// Columnar batch sweep: the access checks and propagation handlers are
    /// dispatched without re-entering the generic `handle` match, so the
    /// hot loads/stores/props path stays branch-predictable. Cost accounting
    /// is identical to per-event handling.
    fn handle_batch(&mut self, evs: &[DeliveredEvent], cost: &mut CostSink) {
        for ev in evs {
            match &ev.event {
                Event::MemRead(m) => self.check_accessible(ev.pc, *m, false, cost),
                Event::MemWrite(m) => self.check_accessible(ev.pc, *m, true, cost),
                Event::Prop(op) => self.handle_prop(op, cost),
                _ => self.handle(ev, cost),
            }
        }
    }

    fn handle(&mut self, ev: &DeliveredEvent, cost: &mut CostSink) {
        match &ev.event {
            Event::MemRead(m) => self.check_accessible(ev.pc, *m, false, cost),
            Event::MemWrite(m) => self.check_accessible(ev.pc, *m, true, cost),
            Event::Prop(op) => self.handle_prop(op, cost),
            Event::Check { source, .. } => match source {
                MetaSource::Reg(r) => self.check_reg_init(ev.pc, *r, cost),
                MetaSource::Mem(m) => self.check_mem_init(ev.pc, *m, cost),
            },
            Event::Annot(Annotation::Malloc { base, size }) => {
                cost.instr(20 + (size / 16).max(1)); // word-granular metadata memset
                let va = self.meta.map(*base, cost);
                cost.mem(va);
                let init = if self.assume_calloc { I_BIT } else { 0 };
                self.set_bits_range(*base, *size, A_BIT | init, if init == 0 { I_BIT } else { 0 });
                self.live.insert(*base, *size);
                self.freed.remove(base);
            }
            Event::Annot(Annotation::Free { base }) => {
                cost.instr(20);
                match self.live.remove(base) {
                    Some(size) => {
                        let va = self.meta.map(*base, cost);
                        cost.instr((size / 16).max(1));
                        cost.mem(va);
                        self.set_bits_range(*base, size, 0, AI);
                        self.freed.insert(*base, size);
                    }
                    None => {
                        if self.freed.contains_key(base) {
                            self.violations.push(Violation::DoubleFree { pc: ev.pc, base: *base });
                        } else {
                            self.violations.push(Violation::InvalidFree { pc: ev.pc, base: *base });
                        }
                    }
                }
            }
            Event::Annot(Annotation::ReadInput { base, len }) => {
                let va = self.meta.map(*base, cost);
                cost.instr(3 + len / 16);
                cost.mem(va);
                if !self.meta.shadow().packed_test_all(*base, *len, A_BIT) {
                    self.violations.push(Violation::UnallocatedAccess {
                        pc: ev.pc,
                        mref: MemRef::word(*base),
                        is_write: true,
                    });
                }
                // Kernel-written bytes are initialized.
                self.set_bits_range(*base, *len, I_BIT, 0);
            }
            Event::Annot(Annotation::Syscall { .. }) => cost.instr(5),
            Event::Annot(_) => cost.instr(2),
        }
    }

    fn violations(&self) -> &[Violation] {
        &self.violations
    }

    fn take_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    fn premark_region(&mut self, base: u32, len: u32) {
        self.set_bits_range(base, len, AI, 0);
    }

    fn set_synthetic_workload_mode(&mut self, enabled: bool) {
        self.assume_calloc = enabled;
    }

    fn metadata_bytes(&self) -> u64 {
        self.meta.metadata_bytes() + (self.live.len() + self.freed.len()) as u64 * 8 + 8
    }
    fn try_snapshot(&self) -> Option<Box<dyn Lifeguard + Send>> {
        Some(crate::ShardableLifeguard::snapshot_shard(self))
    }
}

/// Marks the heap's initialized bits without touching accessibility —
/// used with [`MemCheck::set_assume_calloc`] by the synthetic-workload
/// harness (see module docs).
impl MemCheck {
    /// Pre-marks only the initialized bits of `[base, base+len)`.
    pub fn premark_initialized(&mut self, base: u32, len: u32) {
        self.set_bits_range(base, len, I_BIT, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igm_isa::MemSize;
    use igm_lba::CheckKind;

    fn run(lg: &mut MemCheck, event: Event) {
        let mut c = CostSink::new();
        lg.handle(&DeliveredEvent::new(0x1000, event), &mut c);
    }

    fn malloc(lg: &mut MemCheck, base: u32, size: u32) {
        run(lg, Event::Annot(Annotation::Malloc { base, size }));
    }

    #[test]
    fn uninitialized_load_is_silent_until_use() {
        let mut lg = MemCheck::new(&AccelConfig::baseline());
        malloc(&mut lg, 0x9000, 64);
        // Load of uninitialized memory: no report (copying is harmless).
        run(&mut lg, Event::MemRead(MemRef::word(0x9000)));
        run(&mut lg, Event::Prop(OpClass::MemToReg { src: MemRef::word(0x9000), rd: Reg::Eax }));
        assert!(lg.violations().is_empty());
        // Using %eax as a branch input is an error.
        run(
            &mut lg,
            Event::Check { kind: CheckKind::CondBranchInput, source: MetaSource::Reg(Reg::Eax) },
        );
        assert_eq!(lg.violations().len(), 1);
        assert!(matches!(lg.violations()[0], Violation::UninitUse { .. }));
    }

    #[test]
    fn initialization_clears_the_report_path() {
        let mut lg = MemCheck::new(&AccelConfig::baseline());
        malloc(&mut lg, 0x9000, 64);
        run(&mut lg, Event::Prop(OpClass::ImmToMem { dst: MemRef::word(0x9000) }));
        run(&mut lg, Event::Prop(OpClass::MemToReg { src: MemRef::word(0x9000), rd: Reg::Eax }));
        run(
            &mut lg,
            Event::Check { kind: CheckKind::CondBranchInput, source: MetaSource::Reg(Reg::Eax) },
        );
        assert!(lg.violations().is_empty());
    }

    #[test]
    fn propagation_through_memory_copies() {
        let mut lg = MemCheck::new(&AccelConfig::baseline());
        malloc(&mut lg, 0x9000, 64);
        malloc(&mut lg, 0xa000, 64);
        // Initialize source, copy mem->mem, then load+use: clean.
        run(&mut lg, Event::Prop(OpClass::ImmToMem { dst: MemRef::word(0x9000) }));
        run(
            &mut lg,
            Event::Prop(OpClass::MemToMem { src: MemRef::word(0x9000), dst: MemRef::word(0xa000) }),
        );
        run(&mut lg, Event::Prop(OpClass::MemToReg { src: MemRef::word(0xa000), rd: Reg::Ecx }));
        run(
            &mut lg,
            Event::Check { kind: CheckKind::AddrCompute, source: MetaSource::Reg(Reg::Ecx) },
        );
        assert!(lg.violations().is_empty());
        // Copy from an uninitialized word propagates the uninit state.
        run(
            &mut lg,
            Event::Prop(OpClass::MemToMem { src: MemRef::word(0x9010), dst: MemRef::word(0xa010) }),
        );
        run(&mut lg, Event::Prop(OpClass::MemToReg { src: MemRef::word(0xa010), rd: Reg::Edx }));
        run(
            &mut lg,
            Event::Check { kind: CheckKind::AddrCompute, source: MetaSource::Reg(Reg::Edx) },
        );
        assert_eq!(lg.violations().len(), 1);
    }

    #[test]
    fn generic_binary_op_poisons_destination() {
        let mut lg = MemCheck::new(&AccelConfig::baseline());
        malloc(&mut lg, 0x9000, 64);
        run(&mut lg, Event::Prop(OpClass::MemToReg { src: MemRef::word(0x9000), rd: Reg::Eax }));
        run(&mut lg, Event::Prop(OpClass::DestRegOpReg { rs: Reg::Eax, rd: Reg::Edx }));
        run(
            &mut lg,
            Event::Check { kind: CheckKind::CondBranchInput, source: MetaSource::Reg(Reg::Edx) },
        );
        assert_eq!(lg.violations().len(), 1);
    }

    #[test]
    fn eager_nonunary_check_reports_mem_source() {
        // With IT, the hardware delivers the check with the inherited
        // memory source.
        let mut lg = MemCheck::new(&AccelConfig::baseline());
        malloc(&mut lg, 0x9000, 64);
        run(
            &mut lg,
            Event::Check {
                kind: CheckKind::NonUnaryInput,
                source: MetaSource::Mem(MemRef::word(0x9000)),
            },
        );
        assert_eq!(lg.violations().len(), 1);
        assert!(matches!(
            lg.violations()[0],
            Violation::UninitUse { source: SourceDesc::Mem(_), .. }
        ));
    }

    #[test]
    fn no_cascade_after_first_report() {
        let mut lg = MemCheck::new(&AccelConfig::baseline());
        malloc(&mut lg, 0x9000, 64);
        run(&mut lg, Event::Prop(OpClass::MemToReg { src: MemRef::word(0x9000), rd: Reg::Eax }));
        for _ in 0..3 {
            run(
                &mut lg,
                Event::Check {
                    kind: CheckKind::CondBranchInput,
                    source: MetaSource::Reg(Reg::Eax),
                },
            );
        }
        assert_eq!(lg.violations().len(), 1, "report must not cascade");
    }

    #[test]
    fn partial_word_copy_tracks_byte_granularity() {
        let mut lg = MemCheck::new(&AccelConfig::baseline());
        malloc(&mut lg, 0x9000, 64);
        // Initialize one byte only.
        run(&mut lg, Event::Prop(OpClass::ImmToMem { dst: MemRef::byte(0x9000) }));
        // A 1-byte load zero-extends: fully defined register.
        run(&mut lg, Event::Prop(OpClass::MemToReg { src: MemRef::byte(0x9000), rd: Reg::Eax }));
        run(
            &mut lg,
            Event::Check { kind: CheckKind::CondBranchInput, source: MetaSource::Reg(Reg::Eax) },
        );
        assert!(lg.violations().is_empty());
        // A 4-byte load of the same word picks up 3 undefined bytes.
        run(
            &mut lg,
            Event::Prop(OpClass::MemToReg { src: MemRef::new(0x9000, MemSize::B4), rd: Reg::Ecx }),
        );
        run(
            &mut lg,
            Event::Check { kind: CheckKind::CondBranchInput, source: MetaSource::Reg(Reg::Ecx) },
        );
        assert_eq!(lg.violations().len(), 1);
    }

    #[test]
    fn accessibility_still_checked() {
        let mut lg = MemCheck::new(&AccelConfig::baseline());
        run(&mut lg, Event::MemWrite(MemRef::word(0x9000)));
        assert!(matches!(lg.violations()[0], Violation::UnallocatedAccess { is_write: true, .. }));
    }

    #[test]
    fn free_clears_initialized_state() {
        let mut lg = MemCheck::new(&AccelConfig::baseline());
        malloc(&mut lg, 0x9000, 64);
        run(&mut lg, Event::Prop(OpClass::ImmToMem { dst: MemRef::word(0x9000) }));
        run(&mut lg, Event::Annot(Annotation::Free { base: 0x9000 }));
        malloc(&mut lg, 0x9000, 64);
        run(&mut lg, Event::Prop(OpClass::MemToReg { src: MemRef::word(0x9000), rd: Reg::Eax }));
        run(
            &mut lg,
            Event::Check { kind: CheckKind::CondBranchInput, source: MetaSource::Reg(Reg::Eax) },
        );
        assert_eq!(lg.violations().len(), 1, "recycled memory is uninitialized again");
    }

    #[test]
    fn read_input_initializes_buffer() {
        let mut lg = MemCheck::new(&AccelConfig::baseline());
        malloc(&mut lg, 0x9000, 128);
        run(&mut lg, Event::Annot(Annotation::ReadInput { base: 0x9000, len: 128 }));
        run(&mut lg, Event::Prop(OpClass::MemToReg { src: MemRef::word(0x9040), rd: Reg::Eax }));
        run(
            &mut lg,
            Event::Check { kind: CheckKind::SyscallArg, source: MetaSource::Reg(Reg::Eax) },
        );
        assert!(lg.violations().is_empty());
    }

    #[test]
    fn assume_calloc_suppresses_uninit_tracking() {
        let mut lg = MemCheck::new(&AccelConfig::baseline());
        lg.set_assume_calloc(true);
        malloc(&mut lg, 0x9000, 64);
        run(&mut lg, Event::Prop(OpClass::MemToReg { src: MemRef::word(0x9000), rd: Reg::Eax }));
        run(
            &mut lg,
            Event::Check { kind: CheckKind::CondBranchInput, source: MetaSource::Reg(Reg::Eax) },
        );
        assert!(lg.violations().is_empty());
    }

    #[test]
    fn batch_override_matches_per_event_handling() {
        let evs = vec![
            DeliveredEvent::new(0x10, Event::Annot(Annotation::Malloc { base: 0x9000, size: 64 })),
            DeliveredEvent::new(0x14, Event::MemWrite(MemRef::word(0x9000))),
            DeliveredEvent::new(0x18, Event::Prop(OpClass::ImmToMem { dst: MemRef::word(0x9000) })),
            DeliveredEvent::new(
                0x1c,
                Event::Prop(OpClass::MemToReg { src: MemRef::word(0x9004), rd: Reg::Eax }),
            ),
            DeliveredEvent::new(
                0x20,
                Event::Check {
                    kind: CheckKind::CondBranchInput,
                    source: MetaSource::Reg(Reg::Eax),
                },
            ),
            DeliveredEvent::new(0x24, Event::MemRead(MemRef::word(0xdead_0000))),
            DeliveredEvent::new(0x28, Event::Annot(Annotation::Free { base: 0x9000 })),
        ];
        let mut a = MemCheck::new(&AccelConfig::baseline());
        let mut b = MemCheck::new(&AccelConfig::baseline());
        let mut c1 = CostSink::new();
        let mut c2 = CostSink::new();
        a.handle_batch(&evs, &mut c1);
        for ev in &evs {
            b.handle(ev, &mut c2);
        }
        assert_eq!(a.violations(), b.violations());
        assert_eq!(c1.instrs(), c2.instrs());
        assert_eq!(c1.mem_vas(), c2.mem_vas());
    }

    #[test]
    fn etct_registers_propagation_and_checks() {
        let lg = MemCheck::new(&AccelConfig::baseline());
        let etct = lg.etct();
        assert!(etct.is_registered(EventType::DestRegOpMem));
        assert!(etct.is_registered(EventType::CheckNonUnary));
        assert!(etct.if_config(EventType::MemRead).cacheable);
        assert!(!etct.if_config(EventType::CheckCondBranch).cacheable);
        assert!(etct.if_config(EventType::Free).invalidate_all);
    }
}
