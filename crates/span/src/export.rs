//! Span export: the `/spans.json` snapshot format and Chrome trace-event
//! JSON (`/trace`) for `chrome://tracing` / Perfetto.

use crate::{SpanRecord, SpanSnapshot, Track};

impl SpanSnapshot {
    /// Renders the snapshot as the `/spans.json` body: the cursor pair
    /// plus one object per record.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.spans.len() * 160);
        out.push_str(&format!(
            "{{\n  \"next_seq\": {},\n  \"dropped\": {},\n  \"spans\": [",
            self.next_seq, self.dropped
        ));
        for (i, rec) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (kind, id) = track_parts(rec.track);
            out.push_str(&format!(
                "\n    {{\"seq\": {}, \"stage\": \"{}\", \"track\": \"{kind}\", \
                 \"track_id\": {id}, \"flow\": {}, \"frame_seq\": {}, \
                 \"t_start_nanos\": {}, \"t_end_nanos\": {}}}",
                rec.seq,
                rec.stage.name(),
                rec.tag.flow,
                rec.tag.seq,
                rec.t_start,
                rec.t_end,
            ));
        }
        if self.spans.is_empty() {
            out.push_str("]\n}\n");
        } else {
            out.push_str("\n  ]\n}\n");
        }
        out
    }
}

fn track_parts(track: Track) -> (&'static str, u32) {
    match track {
        Track::Worker(id) => ("worker", id),
        Track::Lane(id) => ("lane", id),
        Track::Client(id) => ("client", id),
    }
}

/// Renders stage records as Chrome trace-event JSON: one complete
/// (`"ph": "X"`) event per record on a per-track timeline (workers,
/// lanes and clients each get their own named "thread"), with the frame
/// chain key in `args`. The output loads directly in `chrome://tracing`
/// and Perfetto.
pub fn chrome_trace(records: &[SpanRecord]) -> String {
    let mut tracks: Vec<Track> = records.iter().map(|r| r.track).collect();
    tracks.sort_unstable();
    tracks.dedup();
    let mut out = String::with_capacity(128 + tracks.len() * 96 + records.len() * 160);
    out.push_str("{\"traceEvents\": [");
    let mut first = true;
    // Thread-name metadata first, so the viewer labels every track.
    for track in &tracks {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n  {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {}, \
             \"args\": {{\"name\": \"{}\"}}}}",
            track.code(),
            track.label(),
        ));
    }
    for rec in records {
        if !first {
            out.push(',');
        }
        first = false;
        // Chrome trace timestamps are microseconds; keep nanosecond
        // resolution in the fraction.
        let ts = rec.t_start as f64 / 1000.0;
        let dur = rec.nanos() as f64 / 1000.0;
        out.push_str(&format!(
            "\n  {{\"name\": \"{}\", \"cat\": \"igm\", \"ph\": \"X\", \"ts\": {ts:.3}, \
             \"dur\": {dur:.3}, \"pid\": 1, \"tid\": {}, \
             \"args\": {{\"flow\": {}, \"frame_seq\": {}}}}}",
            rec.stage.name(),
            rec.track.code(),
            rec.tag.flow,
            rec.tag.seq,
        ));
    }
    out.push_str("\n], \"displayTimeUnit\": \"ns\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FrameTag, Stage};

    fn rec(stage: Stage, track: Track, flow: u32, seq: u64, t0: u64, t1: u64) -> SpanRecord {
        SpanRecord { seq: 0, stage, track, tag: FrameTag { flow, seq }, t_start: t0, t_end: t1 }
    }

    #[test]
    fn spans_json_shape() {
        let snap = crate::SpanSnapshot {
            spans: vec![rec(Stage::Dispatch, Track::Worker(2), 7, 3, 1000, 2500)],
            next_seq: 5,
            dropped: 4,
        };
        let json = snap.to_json();
        assert!(json.contains("\"next_seq\": 5"));
        assert!(json.contains("\"dropped\": 4"));
        assert!(json.contains("\"stage\": \"dispatch\""));
        assert!(json.contains("\"track\": \"worker\""));
        assert!(json.contains("\"flow\": 7"));
        assert!(json.contains("\"t_end_nanos\": 2500"));
    }

    #[test]
    fn chrome_trace_names_every_track_and_emits_complete_events() {
        let records = [
            rec(Stage::ClientSend, Track::Client(7), 7, 0, 0, 1500),
            rec(Stage::ChannelWait, Track::Worker(1), 7, 0, 2000, 4000),
            rec(Stage::Dispatch, Track::Worker(1), 7, 0, 4000, 9000),
        ];
        let json = chrome_trace(&records);
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\": \"worker 1\""));
        assert!(json.contains("\"name\": \"client 7\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"name\": \"dispatch\""));
        assert!(json.contains("\"ts\": 4.000"));
        assert!(json.contains("\"dur\": 5.000"));
        // Two distinct tracks → exactly two metadata events.
        assert_eq!(json.matches("thread_name").count(), 2);
        // Crude structural sanity: braces and brackets balance.
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}') && balance('[', ']'));
    }
}
