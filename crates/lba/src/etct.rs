//! The Event Type Configuration Table (ETCT).
//!
//! LBA lifeguards register their event handlers in the ETCT; the `nlba`
//! dispatch instruction looks up the handler for each record's event type
//! (paper §3). The paper's Idempotent Filter proposal *extends* the ETCT
//! with filtering-control fields (§5):
//!
//! * a **cacheable** bit — the event is checking-only and may be filtered;
//! * a **check categorization (CC)** value — event types with equal CC
//!   perform the same check (e.g. loads and stores in AddrCheck);
//! * per-record-field **cacheable bits** ([`FieldSelect`]) — which fields
//!   participate in the filter-cache line;
//! * two **invalidation bits** — whether an event of this type flushes the
//!   whole filter or only the entries matching its own key.

use crate::event::{EventType, NUM_EVENT_TYPES};

/// Which record fields participate in an Idempotent Filter cache line
/// ("a cacheable bit for every field of the instruction record", paper §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FieldSelect {
    /// Include the data address.
    pub addr: bool,
    /// Include the access size.
    pub size: bool,
    /// Include the program counter.
    pub pc: bool,
    /// Include the register operand identifier.
    pub reg: bool,
}

impl FieldSelect {
    /// Key on the data address and size (the AddrCheck/MemCheck/LockSet
    /// configuration).
    pub const ADDR_SIZE: FieldSelect =
        FieldSelect { addr: true, size: true, pc: false, reg: false };
    /// Key on the register identifier only.
    pub const REG: FieldSelect = FieldSelect { addr: false, size: false, pc: false, reg: true };
    /// No fields selected.
    pub const NONE: FieldSelect = FieldSelect { addr: false, size: false, pc: false, reg: false };
}

/// Idempotent-Filter control fields for one event type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IfEventConfig {
    /// The event is checking-only (non-updating) and may be filtered.
    pub cacheable: bool,
    /// Check-categorization value; equal CC means "results in the same
    /// check".
    pub cc: u8,
    /// Record fields included in the cache line.
    pub fields: FieldSelect,
    /// An event of this type invalidates the entire filter.
    pub invalidate_all: bool,
    /// An event of this type invalidates entries matching its own key.
    pub invalidate_match: bool,
}

impl IfEventConfig {
    /// A cacheable check keyed on `(cc, addr, size)`.
    pub fn cacheable_addr(cc: u8) -> IfEventConfig {
        IfEventConfig { cacheable: true, cc, fields: FieldSelect::ADDR_SIZE, ..Default::default() }
    }

    /// A cacheable check keyed on `(cc, reg)`.
    pub fn cacheable_reg(cc: u8) -> IfEventConfig {
        IfEventConfig { cacheable: true, cc, fields: FieldSelect::REG, ..Default::default() }
    }

    /// An event that flushes the whole filter (e.g. `malloc`/`free`/system
    /// calls for AddrCheck, every annotation for LockSet).
    pub fn invalidates_all() -> IfEventConfig {
        IfEventConfig { invalidate_all: true, ..Default::default() }
    }

    /// An event that invalidates the filter entries matching `(cc, fields)`
    /// of its own key.
    pub fn invalidates_match(cc: u8, fields: FieldSelect) -> IfEventConfig {
        IfEventConfig { cc, fields, invalidate_match: true, ..Default::default() }
    }
}

/// One ETCT row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EtctEntry {
    /// Whether the lifeguard registered a handler for this event type.
    /// Unregistered events are dropped at dispatch with no cost.
    pub registered: bool,
    /// Idempotent Filter behaviour for this event type.
    pub if_cfg: IfEventConfig,
}

/// The event type configuration table.
///
/// # Example
///
/// ```
/// use igm_lba::{Etct, EventType, IfEventConfig};
///
/// let mut etct = Etct::new();
/// etct.register(EventType::MemRead, IfEventConfig::cacheable_addr(0));
/// etct.register(EventType::MemWrite, IfEventConfig::cacheable_addr(0));
/// etct.register(EventType::Malloc, IfEventConfig::invalidates_all());
/// assert!(etct.is_registered(EventType::MemRead));
/// assert!(!etct.is_registered(EventType::Lock));
/// ```
#[derive(Debug, Clone)]
pub struct Etct {
    entries: [EtctEntry; NUM_EVENT_TYPES],
}

impl Default for Etct {
    fn default() -> Etct {
        Etct::new()
    }
}

impl Etct {
    /// An empty table: nothing registered, nothing cacheable.
    pub fn new() -> Etct {
        Etct { entries: [EtctEntry::default(); NUM_EVENT_TYPES] }
    }

    /// Registers a handler for `et` with the given filter behaviour.
    pub fn register(&mut self, et: EventType, if_cfg: IfEventConfig) -> &mut Self {
        self.entries[et.index()] = EtctEntry { registered: true, if_cfg };
        self
    }

    /// Registers a handler with default (non-cacheable, non-invalidating)
    /// filter behaviour.
    pub fn register_plain(&mut self, et: EventType) -> &mut Self {
        self.register(et, IfEventConfig::default())
    }

    /// Registers every event type in `ets` with plain behaviour.
    pub fn register_all<I: IntoIterator<Item = EventType>>(&mut self, ets: I) -> &mut Self {
        for et in ets {
            self.register_plain(et);
        }
        self
    }

    /// The full row for `et`.
    pub fn entry(&self, et: EventType) -> &EtctEntry {
        &self.entries[et.index()]
    }

    /// Whether a handler is registered for `et`.
    pub fn is_registered(&self, et: EventType) -> bool {
        self.entries[et.index()].registered
    }

    /// The filter behaviour for `et`.
    pub fn if_config(&self, et: EventType) -> &IfEventConfig {
        &self.entries[et.index()].if_cfg
    }

    /// Number of registered event types.
    pub fn registered_count(&self) -> usize {
        self.entries.iter().filter(|e| e.registered).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_registers_nothing() {
        let t = Etct::new();
        for et in EventType::all() {
            assert!(!t.is_registered(et));
        }
        assert_eq!(t.registered_count(), 0);
    }

    #[test]
    fn register_sets_flags_and_config() {
        let mut t = Etct::new();
        t.register(EventType::MemRead, IfEventConfig::cacheable_addr(3));
        assert!(t.is_registered(EventType::MemRead));
        let cfg = t.if_config(EventType::MemRead);
        assert!(cfg.cacheable);
        assert_eq!(cfg.cc, 3);
        assert!(cfg.fields.addr && cfg.fields.size);
        assert!(!cfg.invalidate_all && !cfg.invalidate_match);
    }

    #[test]
    fn invalidation_constructors() {
        let all = IfEventConfig::invalidates_all();
        assert!(all.invalidate_all && !all.cacheable);
        let m = IfEventConfig::invalidates_match(2, FieldSelect::ADDR_SIZE);
        assert!(m.invalidate_match && m.cc == 2 && m.fields.addr);
    }

    #[test]
    fn register_all_is_plain() {
        let mut t = Etct::new();
        t.register_all([EventType::Malloc, EventType::Free]);
        assert_eq!(t.registered_count(), 2);
        assert!(!t.if_config(EventType::Malloc).cacheable);
    }
}
