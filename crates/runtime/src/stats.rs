//! Aggregated runtime statistics and per-session reports.
//!
//! Since the `igm-obs` integration, [`PoolStats`] is a *view over the
//! pool's metrics registry* rather than parallel bookkeeping: each field
//! is an [`igm_obs::Counter`] handle registered under an `igm_pool_*`
//! name, so [`PoolStatsSnapshot`] and the `/metrics` scrape read the same
//! atomics. Cloning a `PoolStats` ([`PoolStats::per_worker`]) claims a
//! fresh counter stripe per handle, so each worker thread increments
//! disjoint cache lines.

use crate::pool::SessionId;
use crate::spsc::ChannelStatsSnapshot;
use igm_core::DispatchStats;
use igm_lifeguards::{LifeguardKind, Violation};
use igm_obs::{Counter, MetricsRegistry};
use std::time::{Duration, Instant};

/// Pool-wide monotone counters: registry handles, updated by the workers
/// with relaxed striped atomics — the hot path never takes a lock for
/// accounting.
#[derive(Debug, Clone)]
pub struct PoolStats {
    pub(crate) records: Counter,
    pub(crate) events_delivered: Counter,
    pub(crate) violations: Counter,
    pub(crate) sessions_opened: Counter,
    pub(crate) sessions_closed: Counter,
    pub(crate) epoch_jobs: Counter,
    pub(crate) steals: Counter,
    pub(crate) parks: Counter,
    started: Instant,
}

impl PoolStats {
    /// Registers the pool counter family on `registry`. These counters are
    /// live regardless of the registry's timer switch — the pool's own
    /// stats snapshot depends on them.
    pub(crate) fn new(registry: &MetricsRegistry) -> PoolStats {
        PoolStats {
            records: registry
                .counter("igm_pool_records_total", "records processed across sessions and epochs"),
            events_delivered: registry.counter(
                "igm_pool_events_delivered_total",
                "events delivered to lifeguard handlers",
            ),
            violations: registry.counter("igm_pool_violations_total", "violations reported"),
            sessions_opened: registry
                .counter("igm_pool_sessions_opened_total", "sessions ever opened"),
            sessions_closed: registry
                .counter("igm_pool_sessions_closed_total", "sessions finalized"),
            epoch_jobs: registry.counter("igm_pool_epoch_jobs_total", "epoch jobs executed"),
            steals: registry
                .counter("igm_pool_steals_total", "sessions migrated by the stealing scheduler"),
            parks: registry.counter("igm_pool_parks_total", "times an idle worker parked"),
            started: Instant::now(),
        }
    }

    /// A per-worker clone: every counter handle claims its own stripe, so
    /// the worker's hot increments touch cache lines no other worker does.
    pub(crate) fn per_worker(&self) -> PoolStats {
        self.clone()
    }

    pub(crate) fn snapshot(&self) -> PoolStatsSnapshot {
        PoolStatsSnapshot {
            records: self.records.value(),
            events_delivered: self.events_delivered.value(),
            violations: self.violations.value(),
            sessions_opened: self.sessions_opened.value(),
            sessions_closed: self.sessions_closed.value(),
            epoch_jobs: self.epoch_jobs.value(),
            steals: self.steals.value(),
            parks: self.parks.value(),
            uptime: self.started.elapsed(),
        }
    }
}

/// A point-in-time view of a pool's aggregate counters.
#[derive(Debug, Clone, Copy)]
pub struct PoolStatsSnapshot {
    /// Records processed across all sessions and epoch jobs.
    pub records: u64,
    /// Events delivered to lifeguard handlers (finalized sessions and epoch
    /// jobs; open sessions contribute on close).
    pub events_delivered: u64,
    /// Violations reported.
    pub violations: u64,
    /// Sessions ever opened.
    pub sessions_opened: u64,
    /// Sessions finalized.
    pub sessions_closed: u64,
    /// Epoch jobs executed.
    pub epoch_jobs: u64,
    /// Sessions migrated between workers by the work-stealing scheduler
    /// (each steal transfers the session's pending batches *and* its shadow
    /// shard to the thief).
    pub steals: u64,
    /// Times an idle worker parked on its doorbell (a measure of how often
    /// the pool went to sleep vs. spun through work).
    pub parks: u64,
    /// Time since the pool started.
    pub uptime: Duration,
}

impl PoolStatsSnapshot {
    /// Aggregate records per second since the pool started.
    pub fn records_per_sec(&self) -> f64 {
        let secs = self.uptime.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.records as f64 / secs
        }
    }
}

/// Everything one finished tenant session produced.
#[derive(Debug)]
pub struct SessionReport {
    /// Pool-wide session id.
    pub id: SessionId,
    /// Tenant label.
    pub name: String,
    /// Which lifeguard monitored the tenant.
    pub lifeguard: LifeguardKind,
    /// Records processed.
    pub records: u64,
    /// Dispatch pipeline counters.
    pub dispatch: DispatchStats,
    /// Violations reported, in trace order.
    pub violations: Vec<Violation>,
    /// Parallel to `violations`: each violation's attributed global
    /// record id ([`igm_span::RecordId`]) — `Some` when the violation
    /// anchors to a trace record, `None` for end-of-run properties
    /// (leaks) or records that left the attribution window.
    pub violation_records: Vec<Option<igm_span::RecordId>>,
    /// Final lifeguard metadata footprint in bytes.
    pub metadata_bytes: u64,
    /// Log-channel transport counters (stalls, peak occupancy, depth).
    pub channel: ChannelStatsSnapshot,
    /// Wall-clock session duration (open → finalize).
    pub wall: Duration,
}

impl SessionReport {
    /// Records per wall-clock second for this session.
    pub fn records_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.records as f64 / secs
        }
    }

    /// One formatted row for [`stats_table`].
    pub fn table_row(&self) -> String {
        format!(
            "{:<10} {:<28} {:>10} {:>12.0} {:>7} {:>8} {:>10}",
            self.name,
            self.lifeguard.name(),
            self.records,
            self.records_per_sec(),
            self.violations.len(),
            self.channel.stall_events,
            self.channel.peak_bytes,
        )
    }
}

/// Renders finished sessions as the aggregated stats table the examples
/// print.
pub fn stats_table(reports: &[SessionReport]) -> String {
    let mut out = format!(
        "{:<10} {:<28} {:>10} {:>12} {:>7} {:>8} {:>10}\n",
        "tenant", "lifeguard", "records", "records/s", "viols", "stalls", "peak B"
    );
    for r in reports {
        out.push_str(&r.table_row());
        out.push('\n');
    }
    let records: u64 = reports.iter().map(|r| r.records).sum();
    let viols: usize = reports.iter().map(|r| r.violations.len()).sum();
    out.push_str(&format!("total      {records} records, {viols} violations\n"));
    out
}
