//! The two-level shadow memory (paper Figure 6, right).
//!
//! A level-1 table indexed by the high bits of the application address holds
//! pointers to lazily-allocated level-2 chunks of metadata elements. Every
//! structure has a stable *metadata virtual address* in the simulated
//! lifeguard address space so the timing model can replay lifeguard memory
//! traffic: the level-1 table lives at [`crate::LEVEL1_TABLE_BASE`] and
//! chunks are bump-allocated from [`crate::CHUNK_REGION_BASE`].

use crate::layout::ShadowLayout;
use crate::{CHUNK_REGION_BASE, LEVEL1_TABLE_BASE};

#[derive(Debug, Clone)]
struct Chunk {
    base_va: u32,
    data: Box<[u8]>,
}

/// A two-level shadow map.
///
/// # Example
///
/// ```
/// use igm_shadow::{ShadowLayout, TwoLevelShadow};
/// use igm_shadow::layout::ElemSize;
///
/// // TaintCheck: 2 taint bits per application byte.
/// let mut shadow = TwoLevelShadow::new(ShadowLayout::taintcheck_fig7(), 0);
/// shadow.packed_set(0xb3fb_703a, 0b11);
/// assert_eq!(shadow.packed_get(0xb3fb_703a), 0b11);
/// assert_eq!(shadow.packed_get(0xb3fb_703b), 0b00); // neighbour untouched
/// ```
#[derive(Debug, Clone)]
pub struct TwoLevelShadow {
    layout: ShadowLayout,
    default_byte: u8,
    chunks: Vec<Option<Chunk>>,
    next_chunk_va: u32,
}

impl TwoLevelShadow {
    /// Creates an empty shadow map; unallocated metadata reads as
    /// `default_byte` repeated.
    pub fn new(layout: ShadowLayout, default_byte: u8) -> TwoLevelShadow {
        TwoLevelShadow {
            layout,
            default_byte,
            chunks: vec![None; layout.level1_entries() as usize],
            next_chunk_va: CHUNK_REGION_BASE,
        }
    }

    /// The geometry of this map.
    pub fn layout(&self) -> &ShadowLayout {
        &self.layout
    }

    /// Metadata virtual address of the level-1 table slot consulted when
    /// software-translating `app_addr` (the memory reference charged to the
    /// two-level walk).
    pub fn l1_entry_va(&self, app_addr: u32) -> u32 {
        LEVEL1_TABLE_BASE + self.layout.l1_index(app_addr) * 4
    }

    /// Base metadata virtual address of the chunk covering `app_addr`,
    /// allocating the chunk on first touch. This is the value an M-TLB miss
    /// handler obtains from the level-1 table and inserts with `lma_fill`.
    pub fn chunk_base_va(&mut self, app_addr: u32) -> u32 {
        self.ensure_chunk(app_addr).base_va
    }

    /// Base metadata virtual address of the chunk covering `app_addr`, or
    /// `None` if it has never been touched.
    pub fn chunk_base_va_if_present(&self, app_addr: u32) -> Option<u32> {
        self.chunks[self.layout.l1_index(app_addr) as usize].as_ref().map(|c| c.base_va)
    }

    /// Metadata virtual address of the element covering `app_addr`
    /// (allocates the chunk on first touch). Equals the result of the
    /// hardware `lma` instruction.
    pub fn elem_va(&mut self, app_addr: u32) -> u32 {
        self.chunk_base_va(app_addr) + self.layout.elem_offset_in_chunk(app_addr)
    }

    fn ensure_chunk(&mut self, app_addr: u32) -> &mut Chunk {
        let idx = self.layout.l1_index(app_addr) as usize;
        if self.chunks[idx].is_none() {
            let bytes = self.layout.chunk_bytes() as usize;
            let chunk = Chunk {
                base_va: self.next_chunk_va,
                data: vec![self.default_byte; bytes].into_boxed_slice(),
            };
            // Chunks are laid out back-to-back in lifeguard space.
            self.next_chunk_va = self.next_chunk_va.wrapping_add(self.layout.chunk_bytes());
            self.chunks[idx] = Some(chunk);
        }
        self.chunks[idx].as_mut().expect("just ensured")
    }

    /// Borrows the metadata element covering `app_addr`, if its chunk is
    /// allocated.
    pub fn elem(&self, app_addr: u32) -> Option<&[u8]> {
        let chunk = self.chunks[self.layout.l1_index(app_addr) as usize].as_ref()?;
        let off = self.layout.elem_offset_in_chunk(app_addr) as usize;
        Some(&chunk.data[off..off + self.layout.elem_size().bytes() as usize])
    }

    /// Mutably borrows (allocating on demand) the element covering
    /// `app_addr`.
    pub fn elem_mut(&mut self, app_addr: u32) -> &mut [u8] {
        let off = self.layout.elem_offset_in_chunk(app_addr) as usize;
        let size = self.layout.elem_size().bytes() as usize;
        let chunk = self.ensure_chunk(app_addr);
        &mut chunk.data[off..off + size]
    }

    /// Reads the element covering `app_addr` as a little-endian integer,
    /// zero-extended to 64 bits. Unallocated chunks read as the default
    /// byte repeated.
    pub fn elem_u64(&self, app_addr: u32) -> u64 {
        match self.elem(app_addr) {
            Some(bytes) => {
                let mut v = 0u64;
                for (i, b) in bytes.iter().enumerate() {
                    v |= (*b as u64) << (8 * i);
                }
                v
            }
            None => {
                let mut v = 0u64;
                for i in 0..self.layout.elem_size().bytes() {
                    v |= (self.default_byte as u64) << (8 * i);
                }
                v
            }
        }
    }

    /// Writes the element covering `app_addr` from a little-endian integer.
    pub fn set_elem_u64(&mut self, app_addr: u32, v: u64) {
        for (i, b) in self.elem_mut(app_addr).iter_mut().enumerate() {
            *b = (v >> (8 * i)) as u8;
        }
    }

    /// Reads the element covering `app_addr` as a `u32` (convenience for
    /// 4-byte elements, e.g. LockSet records).
    pub fn elem_u32(&self, app_addr: u32) -> u32 {
        self.elem_u64(app_addr) as u32
    }

    /// Writes the element covering `app_addr` from a `u32`.
    pub fn set_elem_u32(&mut self, app_addr: u32, v: u32) {
        self.set_elem_u64(app_addr, v as u64);
    }

    fn packed_geometry(&self, app_addr: u32) -> (u32, u32, u8) {
        let bits = self.layout.bits_per_app_byte();
        debug_assert!(
            matches!(bits, 1 | 2 | 4 | 8),
            "packed accessors require 1/2/4/8 metadata bits per application byte"
        );
        let bit_off = self.layout.offset_in_elem(app_addr) * bits;
        let byte = bit_off / 8;
        let shift = bit_off % 8;
        let mask = ((1u16 << bits) - 1) as u8;
        (byte, shift, mask)
    }

    /// Reads the per-application-byte packed metadata value for `app_addr`
    /// (layouts with 1, 2, 4 or 8 metadata bits per application byte).
    pub fn packed_get(&self, app_addr: u32) -> u8 {
        let (byte, shift, mask) = self.packed_geometry(app_addr);
        let elem_byte = match self.elem(app_addr) {
            Some(bytes) => bytes[byte as usize],
            None => self.default_byte,
        };
        (elem_byte >> shift) & mask
    }

    /// Writes the per-application-byte packed metadata value for `app_addr`.
    pub fn packed_set(&mut self, app_addr: u32, v: u8) {
        let (byte, shift, mask) = self.packed_geometry(app_addr);
        let elem = self.elem_mut(app_addr);
        let b = &mut elem[byte as usize];
        *b = (*b & !(mask << shift)) | ((v & mask) << shift);
    }

    /// Whether the packed fast paths apply: a bit-packed layout and a range
    /// that does not wrap the 32-bit application space (wrap-around keeps
    /// the per-byte loop so its modular semantics are preserved).
    fn packed_range_fast(&self, start: u32, len: u32) -> bool {
        matches!(self.layout.bits_per_app_byte(), 1 | 2 | 4 | 8)
            && start.checked_add(len - 1).is_some()
    }

    /// Sets the packed metadata of every application byte in
    /// `[start, start+len)` to `v`.
    pub fn packed_set_range(&mut self, start: u32, len: u32, v: u8) {
        self.packed_update_range(start, len, v, 0xff);
    }

    /// Applies `meta = (meta & !clear) | set` to the packed metadata of
    /// every application byte in `[start, start+len)`. `set` and `clear`
    /// are packed-value masks (only the low `bits_per_app_byte` bits are
    /// used); bits in `set` are always written, so `packed_set_range` is
    /// the `clear = full mask` special case.
    pub fn packed_update_range(&mut self, start: u32, len: u32, set: u8, clear: u8) {
        if len == 0 {
            return;
        }
        let bits = self.layout.bits_per_app_byte();
        if !self.packed_range_fast(start, len) {
            let mask = ((1u16 << bits.min(8)) - 1) as u8;
            for i in 0..len {
                let a = start.wrapping_add(i);
                let old = self.packed_get(a);
                self.packed_set(a, (old & !clear & mask) | (set & mask));
            }
            return;
        }
        // The packed metadata of a chunk is one contiguous bitstring:
        // the app byte at chunk-relative offset `o` owns bits
        // `[o*bits, (o+1)*bits)` of `chunk.data`, so a range is a head
        // partial byte, a run of fill bytes, and a tail partial byte.
        let set_fill = fill_byte(set, bits);
        let clear_fill = fill_byte(clear, bits) | set_fill;
        let span = self.layout.chunk_app_span();
        let bits = bits as u64;
        let mut a = start as u64;
        let end = start as u64 + len as u64;
        while a < end {
            let chunk_start = a & !(span - 1);
            let seg_end = (chunk_start + span).min(end);
            let bit0 = (a - chunk_start) * bits;
            let bit1 = (seg_end - chunk_start) * bits;
            let chunk = self.ensure_chunk(a as u32);
            apply_bits(&mut chunk.data, bit0, bit1, set_fill, clear_fill);
            a = seg_end;
        }
    }

    /// Whether every application byte in `[start, start+len)` has packed
    /// metadata equal to `v`.
    pub fn packed_all(&self, start: u32, len: u32, v: u8) -> bool {
        if len == 0 {
            return true;
        }
        if !self.packed_range_fast(start, len) {
            return (0..len).all(|i| self.packed_get(start.wrapping_add(i)) == v);
        }
        let bits = self.layout.bits_per_app_byte();
        self.packed_check(start, len, fill_byte(v, bits), 0xff)
    }

    /// Whether every application byte in `[start, start+len)` has all the
    /// bits of `bit` set in its packed metadata (a bit-test, not an
    /// equality: `meta & bit == bit` per application byte).
    pub fn packed_test_all(&self, start: u32, len: u32, bit: u8) -> bool {
        if len == 0 || bit == 0 {
            return true;
        }
        let bits = self.layout.bits_per_app_byte();
        if !self.packed_range_fast(start, len) {
            return (0..len).all(|i| self.packed_get(start.wrapping_add(i)) & bit == bit);
        }
        self.packed_check(start, len, 0xff, fill_byte(bit, bits))
    }

    /// Shared masked-compare walk: every application byte in the range must
    /// satisfy `(meta_byte ^ want) & field == 0` on its packed bits.
    fn packed_check(&self, start: u32, len: u32, want: u8, field: u8) -> bool {
        let span = self.layout.chunk_app_span();
        let bits = self.layout.bits_per_app_byte() as u64;
        let mut a = start as u64;
        let end = start as u64 + len as u64;
        while a < end {
            let chunk_start = a & !(span - 1);
            let seg_end = (chunk_start + span).min(end);
            let bit0 = (a - chunk_start) * bits;
            let bit1 = (seg_end - chunk_start) * bits;
            let ok = match &self.chunks[self.layout.l1_index(a as u32) as usize] {
                Some(c) => check_bits(&c.data, bit0, bit1, want, field),
                // An absent chunk reads as the default byte everywhere, so
                // one masked compare against the union of the in-byte bit
                // positions the range uses decides the whole segment.
                None => (self.default_byte ^ want) & field & union_mask(bit0, bit1) == 0,
            };
            if !ok {
                return false;
            }
            a = seg_end;
        }
        true
    }

    /// Whether any application byte in `[start, start+len)` has packed
    /// metadata equal to `v`.
    pub fn packed_any(&self, start: u32, len: u32, v: u8) -> bool {
        (0..len).any(|i| self.packed_get(start.wrapping_add(i)) == v)
    }

    /// Number of level-2 chunks currently allocated.
    pub fn allocated_chunks(&self) -> u32 {
        self.chunks.iter().filter(|c| c.is_some()).count() as u32
    }

    /// Total metadata bytes currently allocated (chunks only; the level-1
    /// table adds `4 * level1_entries()` bytes).
    pub fn metadata_bytes(&self) -> u64 {
        self.allocated_chunks() as u64 * self.layout.chunk_bytes() as u64
    }
}

/// Repeats a `bits`-wide packed value across a full metadata byte.
fn fill_byte(v: u8, bits: u32) -> u8 {
    let mask = ((1u16 << bits) - 1) as u8;
    let mut fill = 0u8;
    let mut s = 0;
    while s < 8 {
        fill |= (v & mask) << s;
        s += bits;
    }
    fill
}

/// `(1 << n) - 1` for `n` in `0..=8`.
#[inline]
fn low_mask(n: u32) -> u8 {
    ((1u16 << n) - 1) as u8
}

/// Writes `b = (b & !clear) | set` to bit range `[bit0, bit1)` of `data`,
/// where `set`/`clear` are full-byte fill patterns and the range endpoints
/// are multiples of the packed field width (so field boundaries never
/// straddle the head/tail masks).
fn apply_bits(data: &mut [u8], bit0: u64, bit1: u64, set: u8, clear: u8) {
    let mut byte0 = (bit0 / 8) as usize;
    let byte1 = (bit1 / 8) as usize;
    let head_shift = (bit0 % 8) as u32;
    let tail_bits = (bit1 % 8) as u32;
    if byte0 == byte1 {
        let m = low_mask(tail_bits - head_shift) << head_shift;
        data[byte0] = (data[byte0] & !(clear & m)) | (set & m);
        return;
    }
    if head_shift != 0 {
        let m = 0xffu8 << head_shift;
        data[byte0] = (data[byte0] & !(clear & m)) | (set & m);
        byte0 += 1;
    }
    if clear == 0xff {
        data[byte0..byte1].fill(set);
    } else {
        for b in &mut data[byte0..byte1] {
            *b = (*b & !clear) | set;
        }
    }
    if tail_bits != 0 {
        let m = low_mask(tail_bits);
        data[byte1] = (data[byte1] & !(clear & m)) | (set & m);
    }
}

/// Whether every byte of bit range `[bit0, bit1)` satisfies
/// `(b ^ want) & field == 0` on the range's bits.
fn check_bits(data: &[u8], bit0: u64, bit1: u64, want: u8, field: u8) -> bool {
    let mut byte0 = (bit0 / 8) as usize;
    let byte1 = (bit1 / 8) as usize;
    let head_shift = (bit0 % 8) as u32;
    let tail_bits = (bit1 % 8) as u32;
    if byte0 == byte1 {
        let m = low_mask(tail_bits - head_shift) << head_shift;
        return (data[byte0] ^ want) & field & m == 0;
    }
    if head_shift != 0 {
        if (data[byte0] ^ want) & field & (0xffu8 << head_shift) != 0 {
            return false;
        }
        byte0 += 1;
    }
    let mid_ok = if field == 0xff {
        data[byte0..byte1].iter().all(|&b| b == want)
    } else {
        data[byte0..byte1].iter().all(|&b| (b ^ want) & field == 0)
    };
    if !mid_ok {
        return false;
    }
    tail_bits == 0 || (data[byte1] ^ want) & field & low_mask(tail_bits) == 0
}

/// Union of the in-byte bit positions used by bit range `[bit0, bit1)`.
fn union_mask(bit0: u64, bit1: u64) -> u8 {
    let mut byte0 = (bit0 / 8) as usize;
    let byte1 = (bit1 / 8) as usize;
    let head_shift = (bit0 % 8) as u32;
    let tail_bits = (bit1 % 8) as u32;
    if byte0 == byte1 {
        return low_mask(tail_bits - head_shift) << head_shift;
    }
    let mut m = 0u8;
    if head_shift != 0 {
        m |= 0xffu8 << head_shift;
        byte0 += 1;
    }
    if byte1 > byte0 {
        m |= 0xff;
    }
    if tail_bits != 0 {
        m |= low_mask(tail_bits);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::ElemSize;

    fn taint_shadow() -> TwoLevelShadow {
        TwoLevelShadow::new(ShadowLayout::taintcheck_fig7(), 0)
    }

    #[test]
    fn packed_round_trip_neighbouring_bytes() {
        let mut s = taint_shadow();
        // Four app bytes share one element byte (2 bits each).
        for i in 0..4u32 {
            s.packed_set(0x1000_0000 + i, (i as u8) & 0b11);
        }
        for i in 0..4u32 {
            assert_eq!(s.packed_get(0x1000_0000 + i), (i as u8) & 0b11);
        }
        // They all landed in a single element byte.
        assert_eq!(s.elem(0x1000_0000).unwrap()[0], 0b11_10_01_00);
    }

    #[test]
    fn default_byte_visible_before_allocation() {
        let s = TwoLevelShadow::new(ShadowLayout::taintcheck_fig7(), 0xff);
        assert_eq!(s.packed_get(0xdead_beef), 0b11);
        assert_eq!(s.allocated_chunks(), 0);
        assert_eq!(s.elem_u64(0xdead_beef), 0xff);
    }

    #[test]
    fn chunk_allocation_is_lazy_and_stable() {
        let mut s = taint_shadow();
        assert_eq!(s.allocated_chunks(), 0);
        let va1 = s.elem_va(0x0804_8000);
        assert_eq!(s.allocated_chunks(), 1);
        let va2 = s.elem_va(0x0804_8004);
        assert_eq!(va2, va1 + 1); // next word's element is the next byte
        let va3 = s.elem_va(0xbfff_0000); // far away -> second chunk
        assert_eq!(s.allocated_chunks(), 2);
        assert_ne!(s.layout().l1_index(0x0804_8000), s.layout().l1_index(0xbfff_0000));
        // Re-translation is stable.
        assert_eq!(s.elem_va(0x0804_8000), va1);
        assert_eq!(s.elem_va(0xbfff_0000), va3);
    }

    #[test]
    fn l1_entry_va_is_table_slot() {
        let s = taint_shadow();
        let addr = 0xb3fb_703a;
        assert_eq!(s.l1_entry_va(addr), crate::LEVEL1_TABLE_BASE + 0xb3fb * 4);
    }

    #[test]
    fn elem_va_matches_fig9_arithmetic() {
        let mut s = taint_shadow();
        let addr = 0xb3fb_703a;
        let chunk = s.chunk_base_va(addr);
        assert_eq!(s.elem_va(addr), chunk + 0x1c0e);
    }

    #[test]
    fn range_helpers() {
        let mut s = taint_shadow();
        s.packed_set_range(0x9000, 16, 0b01);
        assert!(s.packed_all(0x9000, 16, 0b01));
        assert!(!s.packed_all(0x8fff, 17, 0b01));
        assert!(s.packed_any(0x8ff0, 17, 0b01));
        assert!(!s.packed_any(0x8ff0, 16, 0b01));
    }

    #[test]
    fn u32_element_round_trip() {
        // LockSet-style: 4-byte records per 4-byte word.
        let layout = ShadowLayout::for_coverage(16, 4, ElemSize::B4).unwrap();
        let mut s = TwoLevelShadow::new(layout, 0);
        s.set_elem_u32(0x9004, 0xdead_beef);
        assert_eq!(s.elem_u32(0x9004), 0xdead_beef);
        assert_eq!(s.elem_u32(0x9005), 0xdead_beef); // same word
        assert_eq!(s.elem_u32(0x9008), 0); // next word
    }

    #[test]
    fn u64_element_round_trip() {
        // Detailed-TaintCheck-style: 8-byte records per 4-byte word.
        let layout = ShadowLayout::for_coverage(16, 4, ElemSize::B8).unwrap();
        let mut s = TwoLevelShadow::new(layout, 0);
        s.set_elem_u64(0x9000, 0x1122_3344_5566_7788);
        assert_eq!(s.elem_u64(0x9000), 0x1122_3344_5566_7788);
        let bytes = s.elem(0x9000).unwrap();
        assert_eq!(bytes[0], 0x88); // little-endian
        assert_eq!(bytes[7], 0x11);
    }

    #[test]
    fn one_bit_per_byte_layout() {
        // AddrCheck: 1 bit per app byte, 8 app bytes per element byte.
        let layout = ShadowLayout::for_coverage(16, 8, ElemSize::B1).unwrap();
        let mut s = TwoLevelShadow::new(layout, 0);
        s.packed_set(0x9003, 1);
        assert_eq!(s.packed_get(0x9003), 1);
        assert_eq!(s.packed_get(0x9002), 0);
        assert_eq!(s.packed_get(0x9004), 0);
        assert_eq!(s.elem(0x9000).unwrap()[0], 0b0000_1000);
    }

    /// Reference implementations: the per-byte loops the fast range ops
    /// replaced.
    fn slow_all(s: &TwoLevelShadow, start: u32, len: u32, v: u8) -> bool {
        (0..len).all(|i| s.packed_get(start.wrapping_add(i)) == v)
    }
    fn slow_test_all(s: &TwoLevelShadow, start: u32, len: u32, bit: u8) -> bool {
        (0..len).all(|i| s.packed_get(start.wrapping_add(i)) & bit == bit)
    }

    #[test]
    fn fast_range_ops_match_per_byte_loops() {
        // Small-span layouts (64 KiB of app space per chunk) so the slow
        // reference loops stay cheap: 1-bit and 2-bit packed fields.
        for app_bytes_per_elem in [8u32, 4] {
            let layout = ShadowLayout::for_coverage(16, app_bytes_per_elem, ElemSize::B1).unwrap();
            let mask = ((1u16 << layout.bits_per_app_byte()) - 1) as u8;
            let mut fast = TwoLevelShadow::new(layout, 0);
            let mut slow = TwoLevelShadow::new(layout, 0);
            // A messy pile of ranges: chunk-crossing, sub-byte, byte-aligned.
            let span = layout.chunk_app_span() as u32;
            let ranges = [
                (0x9000u32, 3u32),
                (0x9001, 7),
                (0x9000, 64),
                (span - 5, 11),    // crosses the first chunk boundary
                (2 * span - 3, 7), // crosses the second
                (0x9003, 1),
            ];
            for (i, &(start, len)) in ranges.iter().enumerate() {
                let v = (i as u8 + 1) & mask;
                fast.packed_set_range(start, len, v);
                for j in 0..len {
                    slow.packed_set(start.wrapping_add(j), v);
                }
                for &(qs, ql) in &ranges {
                    for q in 0..=mask {
                        assert_eq!(
                            fast.packed_all(qs, ql, q),
                            slow_all(&slow, qs, ql, q),
                            "packed_all({qs:#x}, {ql}, {q}) diverged"
                        );
                        assert_eq!(
                            fast.packed_test_all(qs, ql, q),
                            slow_test_all(&slow, qs, ql, q),
                            "packed_test_all({qs:#x}, {ql}, {q}) diverged"
                        );
                    }
                }
            }
            // Byte-for-byte identical shadow state.
            for &(start, len) in &ranges {
                for j in 0..len {
                    let a = start.wrapping_add(j);
                    assert_eq!(fast.packed_get(a), slow.packed_get(a));
                }
            }
            // A range covering several whole chunks: interior fully set,
            // both exclusive boundaries untouched.
            let (base, big) = (span / 2 + 1, 3 * span + 13);
            fast.packed_set_range(base, big, 1);
            assert!(fast.packed_all(base, big, 1));
            assert_eq!(fast.packed_get(base.wrapping_sub(1)), 0);
            assert_eq!(fast.packed_get(base + big), 0);
        }
    }

    #[test]
    fn packed_update_range_sets_and_clears_fields() {
        // MemCheck-style 2-bit fields: bit0 = allocated, bit1 = uninit.
        let layout = ShadowLayout::for_coverage(12, 4, ElemSize::B1).unwrap();
        let mut s = TwoLevelShadow::new(layout, 0);
        s.packed_update_range(0x9000, 40, 0b01, 0b10); // allocate, mark init-clear
        assert!(s.packed_all(0x9000, 40, 0b01));
        s.packed_update_range(0x9008, 8, 0b10, 0); // taint the middle as uninit
        assert!(s.packed_all(0x9008, 8, 0b11));
        assert!(s.packed_all(0x9000, 8, 0b01), "head untouched");
        assert!(s.packed_all(0x9010, 24, 0b01), "tail untouched");
        s.packed_update_range(0x9000, 40, 0, 0b11); // free everything
        assert!(s.packed_all(0x9000, 40, 0));
    }

    #[test]
    fn fast_ranges_against_absent_chunks_honor_default() {
        let layout = ShadowLayout::for_coverage(12, 8, ElemSize::B1).unwrap();
        let s = TwoLevelShadow::new(layout, 0xff);
        assert!(s.packed_all(0x5000_0000, 4096, 1));
        assert!(s.packed_test_all(0x5000_0000, 4096, 1));
        assert!(!s.packed_all(0x5000_0000, 4096, 0));
        let z = TwoLevelShadow::new(layout, 0);
        assert!(!z.packed_test_all(0x5000_0000, 3, 1));
        assert_eq!(z.allocated_chunks(), 0, "checks never allocate");
    }

    #[test]
    fn wrapping_ranges_fall_back_to_modular_semantics() {
        let layout = ShadowLayout::for_coverage(12, 8, ElemSize::B1).unwrap();
        let mut s = TwoLevelShadow::new(layout, 0);
        // A range wrapping past u32::MAX touches both address-space ends.
        s.packed_set_range(u32::MAX - 2, 6, 1);
        assert_eq!(s.packed_get(u32::MAX), 1);
        assert_eq!(s.packed_get(2), 1);
        assert_eq!(s.packed_get(3), 0);
        assert!(s.packed_all(u32::MAX - 2, 6, 1));
        assert!(s.packed_test_all(u32::MAX - 2, 6, 1));
    }

    #[test]
    fn metadata_accounting() {
        let mut s = taint_shadow();
        s.packed_set(0, 1);
        s.packed_set(0xffff_ffff, 1);
        assert_eq!(s.allocated_chunks(), 2);
        assert_eq!(s.metadata_bytes(), 2 * 16 * 1024);
    }
}
